#!/usr/bin/env python3
"""SRV vs FlexVec: the figure 13 comparison across conflict rates.

FlexVec (Baghsorkhi et al., PLDI 2016) vectorises loops with unknown
dependences by emitting *run-time checks* (a cracked VPCONFLICTM) and
partially vectorising up to each violating lane.  SRV detects the same
conflicts implicitly in the LSU.  This example sweeps the conflict rate of
the paper's listing 1 pattern and prints the dynamic instruction count of
each technique: FlexVec pays its checks even when conflicts never occur,
which is exactly the gap figure 13 reports.
"""

from repro.common.rng import sparse_conflict_indices
from repro.compiler import Strategy, compile_loop, scalar_reference
from repro.emu import run_program
from repro.memory import MemoryImage
from repro.workloads.base import indirect_update

N = 512
LANES = 16


def instructions(strategy: Strategy, x_vals: list[int]) -> int:
    loop = indirect_update()
    a_vals = list(range(N))
    mem = MemoryImage()
    mem.alloc("a", N, 4, init=a_vals)
    mem.alloc("x", N, 4, init=x_vals)
    program = compile_loop(loop, mem, N, strategy)
    metrics, _ = run_program(program, mem)
    oracle = scalar_reference(loop, {"a": a_vals, "x": x_vals}, N)
    assert mem.load_array(mem.allocation("a")) == oracle["a"], strategy
    return metrics.dynamic_instructions


def main() -> None:
    print(f"{'conflict rate':>13s}  {'scalar':>7s}  {'flexvec':>7s}  "
          f"{'srv':>7s}  {'srv/flexvec':>11s}")
    for rate in (0.0, 0.05, 0.25, 0.5, 1.0):
        x_vals = sparse_conflict_indices(N, LANES, rate, seed=11)
        scalar = instructions(Strategy.SCALAR, x_vals)
        flexvec = instructions(Strategy.FLEXVEC, x_vals)
        srv = instructions(Strategy.SRV, x_vals)
        print(
            f"{rate:13.2f}  {scalar:7d}  {flexvec:7d}  {srv:7d}  "
            f"{srv / flexvec:10.1%}"
        )
    print(
        "\nSRV needs a fraction of FlexVec's dynamic instructions (the"
        "\npaper reports <60% for most benchmarks): no check loop, and"
        "\nreplay re-executes only violating lanes instead of splitting"
        "\nevery group into partitions."
    )


if __name__ == "__main__":
    main()
