#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs all ten experiment harnesses (section II limit study, figures 6-13,
and the headline aggregates) at full workload sizes and prints each table.
Pass ``--quick`` to trim trip counts for a fast smoke run.
"""

import argparse
import time

from repro.experiments import ALL_EXPERIMENTS

ORDER = (
    "limit_study",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "headline",
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="trim loop trip counts to 128 iterations",
    )
    parser.add_argument(
        "--only", choices=ORDER, default=None,
        help="run a single experiment",
    )
    args = parser.parse_args()
    n_override = 128 if args.quick else None

    names = [args.only] if args.only else list(ORDER)
    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name](n_override=n_override)
        elapsed = time.perf_counter() - start
        print("=" * 72)
        print(result.format_table())
        print(f"[{name}: {elapsed:.1f}s]")
        print()


if __name__ == "__main__":
    main()
