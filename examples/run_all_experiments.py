#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs all ten experiment harnesses (section II limit study, figures 6-13,
and the headline aggregates) at full workload sizes and prints each table.
Pass ``--quick`` to trim trip counts for a fast smoke run.

The sweep is hardened and fast:

* completed loop runs are checkpointed to disk after every run
  (``--checkpoint``, atomic writes), so killing the script and re-running
  it resumes where it stopped instead of re-executing finished work;
* ``--jobs N`` shards the (loop x strategy x config) run matrix across N
  worker processes (:mod:`repro.parallel`) that warm a content-addressed
  on-disk result cache (``--cache-dir``); the harnesses then replay
  sequentially against the cache, so the printed tables are bit-identical
  to a ``--jobs 1`` run.  A checkpoint written by a sequential run is
  honoured by a ``--jobs N`` run and vice versa;
* a failing experiment is recorded as a structured failure table and the
  sweep continues with the next one.
"""

import argparse
import sys
import time

from repro.common.errors import ReproError
from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    enable_checkpoint,
    enable_disk_cache,
)
from repro.experiments.runner import RunFailure

ORDER = (
    "limit_study",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "headline",
)

DEFAULT_CHECKPOINT = "results/experiments.ckpt"
DEFAULT_CACHE_DIR = "results/cache"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="trim loop trip counts to 128 iterations",
    )
    parser.add_argument(
        "--only", choices=ORDER, default=None,
        help="run a single experiment",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the run matrix across N worker processes "
             "(default: 1, fully sequential)",
    )
    parser.add_argument(
        "--checkpoint", default=DEFAULT_CHECKPOINT, metavar="PATH",
        help="checkpoint file for resumable sweeps "
             f"(default: {DEFAULT_CHECKPOINT})",
    )
    parser.add_argument(
        "--no-checkpoint", action="store_true",
        help="disable checkpointing (every run re-executes)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help="content-addressed result cache used by --jobs "
             f"(default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--trace-mode", choices=("stream", "list"), default="stream",
        help="'stream' (default) fuses emulation and timing into one "
             "bounded-memory pass; 'list' materialises each dynamic trace "
             "first — results are bit-identical",
    )
    args = parser.parse_args()
    n_override = 128 if args.quick else None

    from repro.experiments.runner import set_default_trace_mode
    set_default_trace_mode(args.trace_mode)

    if not args.no_checkpoint:
        resumed = enable_checkpoint(args.checkpoint)
        if resumed:
            print(f"[resumed {resumed} completed runs from {args.checkpoint}]")

    names = [args.only] if args.only else list(ORDER)
    cache_dir = None if args.no_cache else args.cache_dir

    if args.jobs > 1:
        # Warm phase: shard the run matrix across worker processes.  The
        # engine skips cells already satisfied by the checkpoint loaded
        # above, so sequential and parallel invocations compose.
        from repro.parallel import cells_for_experiments, warm_cells
        from repro.experiments import cache_key_for, checkpoint_has
        from repro.parallel.cache import result_cache

        enable_disk_cache(cache_dir or DEFAULT_CACHE_DIR)
        cells = cells_for_experiments(names, n_override=n_override)
        cache = result_cache()
        pending = []
        for cell in cells:
            spec, strategy, config = cell.resolve()
            key = cache_key_for(
                spec, strategy, cell.seed, config, cell.timing,
                cell.n_override, cell.core,
            )
            if not checkpoint_has(key) and not cache.contains(key):
                pending.append(cell)
        print(f"[warming {len(pending)} of {len(cells)} cells "
              f"with {args.jobs} workers]")
        start = time.perf_counter()
        for report in warm_cells(pending, args.jobs, cache_dir,
                                 trace_mode=args.trace_mode, progress=print):
            if report.failures:
                for failure in report.failures:
                    print(f"[shard {report.index} failure] {failure}")
        print(f"[warm phase: {time.perf_counter() - start:.1f}s]")
    elif cache_dir is not None:
        enable_disk_cache(cache_dir)

    failed = 0
    for name in names:
        start = time.perf_counter()
        try:
            result = ALL_EXPERIMENTS[name](n_override=n_override)
        except ReproError as exc:
            failed += 1
            result = ExperimentResult(
                name=name,
                title=f"{name}: FAILED ({type(exc).__name__})",
                columns=("error",),
            )
            result.failures.append(RunFailure(
                loop="-", strategy="-", seed=0, stage="experiment",
                error=type(exc).__name__, message=str(exc),
            ))
        elapsed = time.perf_counter() - start
        print("=" * 72)
        print(result.format_table())
        print(f"[{name}: {elapsed:.1f}s]")
        print()
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
