#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs all ten experiment harnesses (section II limit study, figures 6-13,
and the headline aggregates) at full workload sizes and prints each table.
Pass ``--quick`` to trim trip counts for a fast smoke run.

The sweep is hardened: completed loop runs are checkpointed to disk after
every run (``--checkpoint``, atomic writes), so killing the script and
re-running it resumes where it stopped instead of re-executing finished
work.  A failing experiment is recorded as a structured failure table and
the sweep continues with the next one.
"""

import argparse
import sys
import time

from repro.common.errors import ReproError
from repro.experiments import ALL_EXPERIMENTS, ExperimentResult, enable_checkpoint
from repro.experiments.runner import RunFailure

ORDER = (
    "limit_study",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "headline",
)

DEFAULT_CHECKPOINT = "results/experiments.ckpt"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="trim loop trip counts to 128 iterations",
    )
    parser.add_argument(
        "--only", choices=ORDER, default=None,
        help="run a single experiment",
    )
    parser.add_argument(
        "--checkpoint", default=DEFAULT_CHECKPOINT, metavar="PATH",
        help="checkpoint file for resumable sweeps "
             f"(default: {DEFAULT_CHECKPOINT})",
    )
    parser.add_argument(
        "--no-checkpoint", action="store_true",
        help="disable checkpointing (every run re-executes)",
    )
    args = parser.parse_args()
    n_override = 128 if args.quick else None

    if not args.no_checkpoint:
        resumed = enable_checkpoint(args.checkpoint)
        if resumed:
            print(f"[resumed {resumed} completed runs from {args.checkpoint}]")

    failed = 0
    names = [args.only] if args.only else list(ORDER)
    for name in names:
        start = time.perf_counter()
        try:
            result = ALL_EXPERIMENTS[name](n_override=n_override)
        except ReproError as exc:
            failed += 1
            result = ExperimentResult(
                name=name,
                title=f"{name}: FAILED ({type(exc).__name__})",
                columns=("error",),
            )
            result.failures.append(RunFailure(
                loop="-", strategy="-", seed=0, stage="experiment",
                error=type(exc).__name__, message=str(exc),
            ))
        elapsed = time.perf_counter() - start
        print("=" * 72)
        print(result.format_table())
        print(f"[{name}: {elapsed:.1f}s]")
        print()
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
