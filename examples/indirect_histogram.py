#!/usr/bin/env python3
"""Histogram binning under SRV: read-modify-writes through an index array.

``h[x[i]] += 1`` is the classic loop no vectoriser touches: two iterations
hitting the same bin form a true cross-iteration dependence.  SRV
vectorises it anyway — lanes that gather a bin count before an older lane
scatters its increment are flagged by the horizontal RAW logic and
replayed, so every collision chain resolves exactly as scalar code would.

The example sweeps the bin count: fewer bins mean more intra-group
collisions, more replayed lanes, and a lower (but still correct) speedup —
the gradual degradation the paper's replay bound guarantees.
"""

from repro.common.rng import uniform_indices
from repro.compiler import Strategy, compile_loop, scalar_reference
from repro.emu import run_program
from repro.memory import MemoryImage
from repro.pipeline import Tracer, simulate
from repro.workloads.base import histogram

N = 512


def run_binning(num_bins: int, seed: int = 42) -> None:
    loop = histogram()
    x_vals = uniform_indices(N, num_bins, seed=seed)
    arrays = {"h": [0] * num_bins, "x": x_vals}
    oracle = scalar_reference(loop, arrays, N)

    cycles = {}
    replay_info = ""
    for strategy in (Strategy.SVE, Strategy.SRV):
        mem = MemoryImage()
        mem.alloc("h", num_bins, 4, init=arrays["h"])
        mem.alloc("x", N, 4, init=x_vals)
        program = compile_loop(loop, mem, N, strategy)
        tracer = Tracer()
        metrics, _ = run_program(program, mem, tracer=tracer)
        stats = simulate(tracer.ops, warm=True, validate_lsu=True)
        assert mem.load_array(mem.allocation("h")) == oracle["h"], strategy
        cycles[strategy] = stats.cycles
        if strategy is Strategy.SRV:
            srv = metrics.srv
            replay_info = (
                f"replays={srv.replays:4d}  "
                f"raw={srv.raw_violations:4d}  "
                f"max-replays/region={srv.max_replays_in_region}"
            )

    speedup = cycles[Strategy.SVE] / cycles[Strategy.SRV]
    print(
        f"bins={num_bins:6d}  speedup={speedup:5.2f}x  {replay_info}"
    )


def main() -> None:
    print(f"histogram of {N} samples, SRV vs SVE-binary (scalar) baseline\n")
    for num_bins in (8192, 1024, 256, 64, 16):
        run_binning(num_bins)
    print(
        "\nfewer bins -> more intra-group collisions -> more selective"
        "\nreplays; results stay bit-exact with scalar execution throughout."
    )


if __name__ == "__main__":
    main()
