#!/usr/bin/env python3
"""Machine ablations: LSU capacity and vector length.

Two design knobs the paper discusses:

* **LSU capacity** (section III-D7): a region needing more entries than
  the LSU provides transparently falls back to one-lane-at-a-time
  sequential execution.  Shrinking the LSU below a loop's demand shows
  the fallback kicking in — still correct, much slower.
* **Vector length** (section V fixes 16 lanes): longer vectors amortise
  scalar overhead further but raise the replay cost per violation.
"""

from repro.common.config import TABLE_I
from repro.common.rng import sparse_conflict_indices
from repro.compiler import Strategy, compile_loop
from repro.emu import run_program
from repro.memory import MemoryImage
from repro.pipeline import Tracer, simulate
from repro.workloads.base import indirect_update

N = 256


def run_with(config, lanes=None):
    loop = indirect_update()
    lanes = lanes or config.vector_lanes
    x_vals = sparse_conflict_indices(N, lanes, 0.1, seed=3)
    mem = MemoryImage()
    mem.alloc("a", N, 4, init=range(N))
    mem.alloc("x", N, 4, init=x_vals)
    program = compile_loop(loop, mem, N, Strategy.SRV, vector_length=lanes)
    tracer = Tracer()
    metrics, _ = run_program(program, mem, config=config, tracer=tracer)
    stats = simulate(tracer.ops, config=config, warm=True)
    return metrics, stats


def main() -> None:
    print("LSU-capacity ablation (listing 1, 16 lanes; demand = 18 entries)")
    for entries in (64, 32, 20, 16, 8):
        config = TABLE_I.with_overrides(lsu_entries=entries)
        metrics, stats = run_with(config)
        mode = "fallback" if metrics.srv.lsu_fallbacks else "speculative"
        print(
            f"  lsu={entries:3d}  mode={mode:11s}  cycles={stats.cycles:6d}  "
            f"instructions={metrics.dynamic_instructions:6d}"
        )

    print("\nvector-length ablation (Table I LSU, 10% conflicting groups)")
    for lanes in (4, 8, 16):
        config = TABLE_I.with_overrides(vector_lanes=lanes)
        metrics, stats = run_with(config, lanes)
        print(
            f"  lanes={lanes:2d}  cycles={stats.cycles:6d}  "
            f"replays={metrics.srv.replays:3d}  "
            f"regions={metrics.srv.regions_entered:3d}"
        )


if __name__ == "__main__":
    main()
