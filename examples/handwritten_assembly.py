#!/usr/bin/env python3
"""Hand-written SRV assembly, assembled and executed.

Writes the paper's listing 2 directly in the text assembly dialect (the
same one ``Program.listing()`` prints), assembles it, runs it against the
motivating input pattern, and shows the selective replays — without going
through the compiler at all.
"""

from repro.common.rng import periodic_conflict_indices
from repro.emu import run_program
from repro.isa.assembler import parse_asm
from repro.memory import MemoryImage

N = 64

LISTING2 = """
; listing 2 of the paper: a[x[i]] = a[i] + 2, 16 lanes per group
; x1 = &a, x2 = &x, x3 = i, x4 = N
Loop:
    shl x7, x3, #2          ; byte offset of iteration i
    add x5, x1, x7          ; &a[i]
    add x6, x2, x7          ; &x[i]
    srv_start (up)
    v_load v0, [x5, #0] (4B)
    v_add v0, v0, #2
    v_load v1, [x6, #0] (4B)
    v_scatter v0, [x1, v1] (4B)
    srv_end
    add x3, x3, #16
    blt x3, x4, Loop
    halt
"""


def main() -> None:
    mem = MemoryImage()
    a = mem.alloc("a", N, 4, init=range(100, 100 + N))
    xs = mem.alloc("x", N, 4, init=periodic_conflict_indices(N, 4))

    program = parse_asm(LISTING2, name="listing2-asm")
    print(program.listing())
    print()

    # bind the pointer/loop registers the assembly expects
    from repro.common.config import TABLE_I
    from repro.emu import Interpreter
    from repro.isa import x

    interp = Interpreter(program, mem, TABLE_I)
    interp.state.write_scalar(x(1), a.base)
    interp.state.write_scalar(x(2), xs.base)
    interp.state.write_scalar(x(3), 0)
    interp.state.write_scalar(x(4), N)
    metrics = interp.run()

    expected = list(range(100, 100 + N))
    x_vals = mem.load_array(xs)
    for i in range(N):
        expected[x_vals[i]] = expected[i] + 2
    assert mem.load_array(a) == expected, "SRV result must match scalar"

    srv = metrics.srv
    print(f"regions: {srv.regions_entered}   passes: {srv.region_passes}   "
          f"selective replays: {srv.replays}")
    print(f"RAW violations caught: {srv.raw_violations} "
          f"(lanes 3, 7, 11, 15 of each group)")
    print("result verified against scalar semantics")


if __name__ == "__main__":
    main()
