#!/usr/bin/env python3
"""Quickstart: the paper's listing 1 under selective-replay vectorisation.

Builds the motivating loop

    for (i = 0; i < N; i++)
        a[x[i]] = a[i] + 2;

in the compiler IR, compiles it four ways (scalar, SVE, SRV, FlexVec),
executes each on the functional emulator plus the cycle-approximate
pipeline, and prints what the paper's sections II-III describe: with the
index pattern {3, 0, 1, 2, 7, 4, 5, 6, ...}, lanes 3, 7, 11 and 15 of
every 16-lane group read stale data and are selectively replayed.
"""

from repro.common.rng import periodic_conflict_indices
from repro.compiler import (
    Affine,
    BinOp,
    Const,
    Indirect,
    Loop,
    Read,
    Store,
    Strategy,
    compile_loop,
    loop_class,
    scalar_reference,
)
from repro.emu import run_program
from repro.memory import MemoryImage
from repro.pipeline import Tracer, simulate

N = 256


def build_loop() -> Loop:
    return Loop(
        "listing1",
        arrays={"a": 4, "x": 4},
        body=[
            Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(2)))
        ],
    )


def main() -> None:
    loop = build_loop()
    print(f"loop dependence class: {loop_class(loop).name}")
    print("(UNKNOWN: the compiler cannot prove a[x[i]] never aliases a[i])\n")

    x_vals = periodic_conflict_indices(N, 4)
    a_vals = list(range(100, 100 + N))
    oracle = scalar_reference(loop, {"a": a_vals, "x": x_vals}, N)

    results = {}
    for strategy in Strategy:
        mem = MemoryImage()
        mem.alloc("a", N, 4, init=a_vals)
        mem.alloc("x", N, 4, init=x_vals)
        program = compile_loop(loop, mem, N, strategy)
        tracer = Tracer()
        metrics, _ = run_program(program, mem, tracer=tracer)
        stats = simulate(tracer.ops, warm=True, validate_lsu=True)
        correct = mem.load_array(mem.allocation("a")) == oracle["a"]
        results[strategy] = (metrics, stats, correct)
        print(
            f"{strategy.value:8s}  correct={correct}  "
            f"instructions={metrics.dynamic_instructions:6d}  "
            f"cycles={stats.cycles:6d}"
        )

    srv_metrics, srv_stats, _ = results[Strategy.SRV]
    sve_stats = results[Strategy.SVE][1]
    print()
    print(f"SRV regions executed : {srv_metrics.srv.regions_entered}")
    print(f"selective replays    : {srv_metrics.srv.replays} "
          f"(one per region: lanes 3, 7, 11, 15 re-execute)")
    print(f"RAW violations caught: {srv_metrics.srv.raw_violations}")
    print(f"loop speedup over SVE: {sve_stats.cycles / srv_stats.cycles:.2f}x")


if __name__ == "__main__":
    main()
