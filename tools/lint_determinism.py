#!/usr/bin/env python
"""Fail CI when ``src/repro`` grows a nondeterminism hazard.

Everything the simulator produces is supposed to be a pure function of
``(code, seed, config)`` — that is what the content-addressed result
cache, the differential fuzzer, and the pinned experiment tests all
assume.  This lint walks the AST of every module under ``src/repro`` and
flags the three ways that contract quietly breaks:

* **unseeded-random** — calls through the *module-level* ``random``
  API (``random.random()``, ``random.choice(...)``, ``random.seed()``,
  or importing those functions directly).  They share one ambient
  generator whose state depends on call order across the whole process.
  Construct an explicit ``random.Random(seed)`` (see
  ``repro.common.rng.make_rng``) instead; ``random.Random`` itself is
  allowed.
* **wall-clock** — calls that *read the clock into a value*:
  ``time.time()``, ``time.time_ns()``, ``datetime.now()``,
  ``datetime.utcnow()``, ``datetime.today()``.  Elapsed-time telemetry
  via ``time.perf_counter()``/``time.monotonic()`` is allowed — those
  feed report fields, never results — as is passing a clock *function*
  for injection (``clock=time.time`` is a reference, not a call).
* **unordered-iteration** — ``for`` loops and comprehensions whose
  iterable is a set literal, a set comprehension, or a direct
  ``set(...)``/``frozenset(...)`` call.  Set iteration order is
  hash-seed dependent; wrap the expression in ``sorted(...)``.  (Plain
  dict iteration is insertion-ordered and therefore fine.)

A line may carry ``# lint: allow-<rule>`` to waive one finding with an
audit trail; there are currently no waivers in the tree.

Usage: ``python tools/lint_determinism.py`` from the repository root
(exits non-zero listing every finding).
"""

from __future__ import annotations

import ast
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: module-level ``random`` attributes that touch the shared generator
AMBIENT_RANDOM = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "triangular", "vonmisesvariate",
})

#: ``module attribute`` call pairs that read the wall clock into a value
WALL_CLOCK = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
})


def _dotted(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty tuple for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel_path: str, source_lines: list[str]):
        self.rel_path = rel_path
        self.lines = source_lines
        self.findings: list[str] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = ""
        if 1 <= node.lineno <= len(self.lines):
            line = self.lines[node.lineno - 1]
        if f"lint: allow-{rule}" in line:
            return
        self.findings.append(
            f"{self.rel_path}:{node.lineno}: [{rule}] {message}"
        )

    # -- unseeded-random ------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in AMBIENT_RANDOM:
                    self._flag(
                        node, "unseeded-random",
                        f"'from random import {alias.name}' binds the "
                        f"shared ambient generator; use random.Random(seed)",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if len(dotted) >= 2:
            head, tail = dotted[-2], dotted[-1]
            if head == "random" and tail in AMBIENT_RANDOM:
                self._flag(
                    node, "unseeded-random",
                    f"random.{tail}() uses the shared ambient generator; "
                    f"construct random.Random(seed) instead",
                )
            if (head, tail) in WALL_CLOCK:
                self._flag(
                    node, "wall-clock",
                    f"{head}.{tail}() reads the wall clock into a value; "
                    f"results must be a pure function of (code, seed, "
                    f"config)",
                )
        self.generic_visit(node)

    # -- unordered-iteration --------------------------------------------

    def _check_iterable(self, iterable: ast.expr) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            self._flag(
                iterable, "unordered-iteration",
                "iterating a set literal/comprehension; order is "
                "hash-seed dependent — wrap in sorted(...)",
            )
            return
        if isinstance(iterable, ast.Call):
            dotted = _dotted(iterable.func)
            if dotted and dotted[-1] in ("set", "frozenset"):
                self._flag(
                    iterable, "unordered-iteration",
                    f"iterating {dotted[-1]}(...) directly; order is "
                    f"hash-seed dependent — wrap in sorted(...)",
                )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def lint_file(path: str) -> list[str]:
    rel = os.path.relpath(path, REPO_ROOT)
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=rel)
    visitor = _Visitor(rel, source.splitlines())
    visitor.visit(tree)
    return visitor.findings


def lint_tree(root: str = LINT_ROOT) -> tuple[list[str], int]:
    findings: list[str] = []
    count = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            count += 1
            findings.extend(lint_file(os.path.join(dirpath, name)))
    return findings, count


def main() -> int:
    findings, count = lint_tree()
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s):")
        for finding in findings:
            print(f"  {finding}")
        return 1
    print(f"lint_determinism: OK ({count} modules scanned)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
