#!/usr/bin/env python
"""Fail CI when the documentation references code that does not exist.

Scans the Markdown documentation for two kinds of references and checks
each against the working tree:

* dotted module/attribute references such as ``repro.parallel.cache`` or
  ``repro.lsu.unit.LoadStoreUnit`` — some prefix of the dotted path must
  resolve to a real module file or package under ``src/repro``;
* backticked repository paths such as ``docs/PERFORMANCE.md`` or
  ``src/repro/pipeline/core.py`` (an optional ``::test`` suffix is
  ignored) — the file or directory must exist.

It also checks the reverse direction for two registries: every CLI
subcommand registered in ``src/repro/cli.py`` (every
``add_parser("name")`` call) must be mentioned as ``repro <name>``
somewhere in ``README.md``, and every generator knob declared in
``src/repro/gen/knobs.py`` (every ``KnobSpec(name="...")``) must appear
backticked in ``docs/GENERATOR.md`` — so neither a new subcommand nor a
new knob can ship undocumented.  Likewise every member of the two
dependence-verdict enums (``DepClass`` in ``src/repro/compiler/analysis.py``
and ``RegionVerdict`` in ``src/repro/analyze/dependence.py``) must appear
backticked in ``docs/ANALYSIS.md``, so the verdict lattice the analyzer
can emit is exactly the one the documentation explains.

The point is cheap rot detection: when a module is renamed or a file is
deleted, the docs that still mention it break this check instead of
silently going stale.

Usage: ``python tools/check_docs.py`` from the repository root (exits
non-zero listing every stale reference).
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: Documents under contract.  ``docs/*.md`` plus the top-level docs that
#: reference modules and paths.
DOC_GLOBS = (
    "docs",
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "ROADMAP.md",
)

MODULE_REF = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
PATH_REF = re.compile(
    r"`((?:src|docs|tests|benchmarks|examples|tools)/[^`\s]+?)"
    r"(?:::[^`]*)?`"
)


def doc_files() -> list[str]:
    files = []
    for entry in DOC_GLOBS:
        path = os.path.join(REPO_ROOT, entry)
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".md")
            )
        elif os.path.isfile(path):
            files.append(path)
    return files


def module_exists(dotted: str) -> bool:
    """True if some prefix of ``dotted`` is a module/package in src/.

    ``repro.lsu.unit.LoadStoreUnit`` passes because ``repro/lsu/unit.py``
    exists; the trailing components are assumed to be attributes.  The
    bare package ``repro`` alone always exists and is not interesting,
    so at least two components must be given.
    """
    parts = dotted.split(".")
    if len(parts) < 2:
        return True
    for end in range(len(parts), 1, -1):
        rel = os.path.join(*parts[:end])
        if os.path.isdir(os.path.join(SRC_ROOT, rel)):
            return True
        if os.path.isfile(os.path.join(SRC_ROOT, rel + ".py")):
            return True
    return False


def path_exists(rel: str) -> bool:
    # a doc may legitimately reference glob-ish families ("docs/*.md")
    # or a directory with a trailing slash
    if "*" in rel or "…" in rel:
        return True
    return os.path.exists(os.path.join(REPO_ROOT, rel.rstrip("/")))


def check_file(path: str) -> list[str]:
    problems = []
    rel_doc = os.path.relpath(path, REPO_ROOT)
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            for match in MODULE_REF.finditer(line):
                if not module_exists(match.group(0)):
                    problems.append(
                        f"{rel_doc}:{lineno}: unresolved module reference "
                        f"{match.group(0)!r}"
                    )
            for match in PATH_REF.finditer(line):
                if not path_exists(match.group(1)):
                    problems.append(
                        f"{rel_doc}:{lineno}: missing path "
                        f"{match.group(1)!r}"
                    )
    return problems


SUBCOMMAND_REF = re.compile(r"add_parser\(\s*[\"']([a-z_]+)[\"']")


def cli_subcommands(cli_path: str | None = None) -> list[str]:
    """Subcommand names registered in ``src/repro/cli.py``."""
    if cli_path is None:
        cli_path = os.path.join(SRC_ROOT, "repro", "cli.py")
    with open(cli_path, encoding="utf-8") as fh:
        return SUBCOMMAND_REF.findall(fh.read())


def check_cli_documented(readme_path: str | None = None) -> list[str]:
    """Every CLI subcommand must appear as ``repro <name>`` in README."""
    if readme_path is None:
        readme_path = os.path.join(REPO_ROOT, "README.md")
    with open(readme_path, encoding="utf-8") as fh:
        readme = fh.read()
    rel_readme = os.path.relpath(readme_path, REPO_ROOT)
    problems = []
    for name in cli_subcommands():
        if f"repro {name}" not in readme:
            problems.append(
                f"{rel_readme}: CLI subcommand {name!r} is not documented "
                f"(expected the text 'repro {name}')"
            )
    return problems


KNOB_REF = re.compile(r"KnobSpec\(\s*\n?\s*name=[\"']([a-z_]+)[\"']")


def generator_knobs(knobs_path: str | None = None) -> list[str]:
    """Knob names declared in ``src/repro/gen/knobs.py``.

    Parsed from source rather than imported so the checker keeps
    working without ``PYTHONPATH=src`` (CI runs it bare).
    """
    if knobs_path is None:
        knobs_path = os.path.join(SRC_ROOT, "repro", "gen", "knobs.py")
    with open(knobs_path, encoding="utf-8") as fh:
        return KNOB_REF.findall(fh.read())


def check_knobs_documented(doc_path: str | None = None) -> list[str]:
    """Every generator knob must appear backticked in docs/GENERATOR.md."""
    if doc_path is None:
        doc_path = os.path.join(REPO_ROOT, "docs", "GENERATOR.md")
    with open(doc_path, encoding="utf-8") as fh:
        doc = fh.read()
    rel_doc = os.path.relpath(doc_path, REPO_ROOT)
    problems = []
    for name in generator_knobs():
        if f"`{name}`" not in doc:
            problems.append(
                f"{rel_doc}: generator knob {name!r} is not documented "
                f"(expected the text '`{name}`')"
            )
    return problems


def enum_members(source_path: str, class_name: str) -> list[str]:
    """UPPER_CASE member names of one enum class, parsed from source.

    Parsed (not imported) for the same reason as :func:`generator_knobs`:
    CI runs this checker without ``PYTHONPATH=src``.
    """
    class_re = re.compile(rf"^class {class_name}\b")
    member_re = re.compile(r"^    ([A-Z][A-Z0-9_]*)\s*=")
    members = []
    in_class = False
    with open(source_path, encoding="utf-8") as fh:
        for line in fh:
            if class_re.match(line):
                in_class = True
                continue
            if in_class:
                if line.strip() and not line.startswith(" "):
                    break  # next top-level statement ends the class body
                match = member_re.match(line)
                if match:
                    members.append(match.group(1))
    return members


#: (source file, enum class, doc that must name every member backticked)
VERDICT_ENUMS = (
    (os.path.join("src", "repro", "compiler", "analysis.py"), "DepClass",
     os.path.join("docs", "ANALYSIS.md")),
    (os.path.join("src", "repro", "analyze", "dependence.py"),
     "RegionVerdict", os.path.join("docs", "ANALYSIS.md")),
)


def check_verdicts_documented() -> list[str]:
    """Every ``DepClass``/``RegionVerdict`` member must appear backticked
    in ``docs/ANALYSIS.md``."""
    problems = []
    for src_rel, class_name, doc_rel in VERDICT_ENUMS:
        members = enum_members(os.path.join(REPO_ROOT, src_rel), class_name)
        if not members:
            problems.append(
                f"{src_rel}: enum {class_name!r} not found (doc gate "
                f"for {doc_rel} has nothing to check)"
            )
            continue
        doc_path = os.path.join(REPO_ROOT, doc_rel)
        if not os.path.isfile(doc_path):
            problems.append(f"{doc_rel}: missing (documents {class_name})")
            continue
        with open(doc_path, encoding="utf-8") as fh:
            doc = fh.read()
        for name in members:
            if f"`{name}`" not in doc:
                problems.append(
                    f"{doc_rel}: {class_name} verdict {name!r} is not "
                    f"documented (expected the text '`{name}`')"
                )
    return problems


def main() -> int:
    files = doc_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    problems.extend(check_cli_documented())
    problems.extend(check_knobs_documented())
    problems.extend(check_verdicts_documented())
    if problems:
        print(f"check_docs: {len(problems)} stale reference(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"check_docs: OK ({len(files)} documents scanned)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
