"""Fault-injection subsystem tests.

The acceptance bar: every fault class in the default campaign catalogue
(>= 5 classes, >= 20 seeded injections) fires AND is detected by an
invariant monitor, the scalar-reference oracle, or the LSU differential
check — and an armed-but-empty plan perturbs nothing.
"""

import pytest

from repro.compiler import Strategy, compile_loop
from repro.emu import run_program
from repro.memory import MemoryImage
from repro.verify import faults
from repro.verify.campaign import (
    default_catalogue,
    run_campaign,
    run_injection,
)
from repro.verify.faults import FaultClass, FaultPlan, FaultSpec
from repro.workloads import by_name


def _run_srv(workload, loop_name, n, seed=0):
    """Compile + emulate one loop under SRV; returns (arrays, metrics)."""
    spec = next(
        s for s in by_name(workload).loops if s.name == loop_name
    )
    arrays = spec.arrays(seed)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(spec.loop, mem, n, Strategy.SRV,
                           params=spec.params)
    metrics, _ = run_program(program, mem)
    out = {
        name: mem.load_array(mem.allocation(name)) for name in arrays
    }
    return out, metrics


class TestPlanMechanics:
    def test_unarmed_by_default(self):
        assert faults.ACTIVE is None

    def test_inject_arms_and_disarms(self):
        plan = FaultPlan([])
        with faults.inject(plan):
            assert faults.ACTIVE is plan
        assert faults.ACTIVE is None

    def test_inject_disarms_on_error(self):
        plan = FaultPlan([])
        with pytest.raises(ValueError):
            with faults.inject(plan):
                raise ValueError("boom")
        assert faults.ACTIVE is None

    def test_nested_inject_rejected(self):
        with faults.inject(FaultPlan([])):
            with pytest.raises(RuntimeError):
                with faults.inject(FaultPlan([])):
                    pass

    def test_empty_plan_changes_nothing(self):
        """An armed plan with no specs must be a behavioural no-op."""
        baseline, base_metrics = _run_srv("hmmer", "hmmer_viterbi_row", 64)
        with faults.inject(FaultPlan([])):
            armed, armed_metrics = _run_srv("hmmer", "hmmer_viterbi_row", 64)
        assert armed == baseline
        assert (armed_metrics.srv.replays, armed_metrics.dynamic_instructions) \
            == (base_metrics.srv.replays, base_metrics.dynamic_instructions)

    def test_spec_occurrence_counting(self):
        spec = FaultSpec(FaultClass.SKEW_LANE_ADDR, occurrence=2, lane=0)
        plan = FaultPlan([spec])
        # polls 0 and 1 do not match; poll 2 fires; poll 3 does not (one-shot)
        assert plan.perturb_addr(0x100, 0, is_store=False) == 0x100
        assert plan.perturb_addr(0x100, 0, is_store=False) == 0x100
        assert plan.perturb_addr(0x100, 0, is_store=False) == 0x100 + spec.delta
        assert plan.perturb_addr(0x100, 0, is_store=False) == 0x100
        assert len(plan.fired) == 1

    def test_repeat_spec_fires_every_poll(self):
        plan = FaultPlan([
            FaultSpec(FaultClass.SKEW_LANE_ADDR, repeat=True, lane=0)
        ])
        for _ in range(3):
            assert plan.perturb_addr(0x100, 0, is_store=False) != 0x100
        assert len(plan.fired) == 3

    def test_store_bit_flip(self):
        plan = FaultPlan([
            FaultSpec(FaultClass.CORRUPT_STORE_DATA, bit=3, lane=1,
                      repeat=True)
        ])
        assert plan.perturb_store_value(0, 4, lane=1) == 8
        assert plan.perturb_store_value(0, 4, lane=0) == 0  # wrong lane


class TestSingleInjections:
    def test_skew_addr_detected_by_oracle(self):
        from repro.verify.campaign import Injection

        inj = Injection(
            spec=FaultSpec(FaultClass.SKEW_LANE_ADDR, lane=1, delta=4,
                           repeat=True),
            workload="livermore", loop="livermore_k1_hydro", n=64,
        )
        result = run_injection(inj)
        assert result.fired
        assert result.detected, result.report.format_lines()

    def test_force_replay_detected(self):
        from repro.verify.campaign import Injection

        inj = Injection(
            spec=FaultSpec(FaultClass.FORCE_REPLAY, repeat=True),
            workload="hmmer", loop="hmmer_viterbi_row", n=64,
        )
        result = run_injection(inj)
        assert result.fired
        assert result.detected


class TestCampaign:
    def test_catalogue_meets_acceptance_floor(self):
        catalogue = default_catalogue()
        assert len(catalogue) >= 20
        classes = {inj.spec.fault for inj in catalogue}
        assert len(classes) >= 5

    def test_full_campaign_all_detected(self):
        """Every seeded injection fires and is caught by some checker."""
        result = run_campaign(default_catalogue())
        undetected = result.undetected()
        assert result.all_detected, result.format_table()
        assert undetected == []
        assert len(result.classes_covered()) >= 5
        # each detection names the checker that caught it
        for r in result.results:
            assert r.detectors, r.injection

    def test_world_is_clean_after_campaign(self):
        """The campaign must not leak an armed plan into later runs."""
        assert faults.ACTIVE is None
        out, metrics = _run_srv("hmmer", "hmmer_viterbi_row", 64)
        ref, ref_metrics = _run_srv("hmmer", "hmmer_viterbi_row", 64)
        assert out == ref
