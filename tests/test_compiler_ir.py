"""Tests for the loop IR and its sequential reference executor."""

import pytest

from repro.common.errors import CompilerError
from repro.compiler import (
    Affine,
    BinOp,
    Const,
    Indirect,
    Loop,
    LoopIndex,
    Param,
    Read,
    Select,
    Store,
    scalar_reference,
)


def listing1():
    return Loop(
        "listing1",
        {"a": 4, "x": 4},
        [Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(2)))],
    )


class TestConstruction:
    def test_listing1_builds(self):
        loop = listing1()
        assert len(loop.body) == 1
        assert loop.step == 1

    def test_unknown_array_rejected(self):
        with pytest.raises(CompilerError):
            Loop("bad", {"a": 4}, [Store("b", Affine(), Const(0))])

    def test_unknown_index_array_rejected(self):
        with pytest.raises(CompilerError):
            Loop("bad", {"a": 4}, [Store("a", Indirect("x"), Const(0))])

    def test_empty_body_rejected(self):
        with pytest.raises(CompilerError):
            Loop("bad", {"a": 4}, [])

    def test_bad_step_rejected(self):
        with pytest.raises(CompilerError):
            Loop("bad", {"a": 4}, [Store("a", Affine(), Const(0))], step=2)

    def test_invalid_binop_rejected(self):
        with pytest.raises(CompilerError):
            BinOp("**", Const(1), Const(2))

    def test_invalid_cmp_rejected(self):
        with pytest.raises(CompilerError):
            Select("~", Const(1), Const(2), Const(3), Const(4))


class TestReferenceEnumeration:
    def test_reads_found_in_nested_expressions(self):
        loop = Loop(
            "nest",
            {"a": 4, "b": 4},
            [
                Store(
                    "a",
                    Affine(),
                    Select(
                        "<",
                        Read("a", Affine()),
                        Const(0),
                        Read("b", Affine()),
                        BinOp("+", Read("b", Affine(1, 1)), Const(1)),
                    ),
                )
            ],
        )
        assert len(loop.reads()) == 3

    def test_index_arrays(self):
        assert listing1().index_arrays() == {"x"}

    def test_gather_scatter_count(self):
        loop = listing1()
        assert loop.gather_scatter_count() == 1  # the indirect store
        strided = Loop(
            "strided", {"a": 4}, [Store("a", Affine(2), Read("a", Affine(2)))]
        )
        assert strided.gather_scatter_count() == 2


class TestScalarReference:
    def test_listing1_semantics(self):
        x_vals = [3, 0, 1, 2, 7, 4, 5, 6]
        a_vals = list(range(8))
        out = scalar_reference(listing1(), {"a": a_vals, "x": x_vals}, 8)
        expect = list(a_vals)
        for i in range(8):
            expect[x_vals[i]] = expect[i] + 2
        assert out["a"] == expect

    def test_param_binding(self):
        loop = Loop(
            "scaled", {"a": 4},
            [Store("a", Affine(), BinOp("*", Read("a", Affine()), Param("k")))],
        )
        out = scalar_reference(loop, {"a": [1, 2, 3]}, 3, params={"k": 5})
        assert out["a"] == [5, 10, 15]

    def test_loop_index_value(self):
        loop = Loop("iota", {"a": 4}, [Store("a", Affine(), LoopIndex())])
        out = scalar_reference(loop, {"a": [0] * 5}, 5)
        assert out["a"] == [0, 1, 2, 3, 4]

    def test_select_semantics(self):
        loop = Loop(
            "clamp", {"a": 4},
            [
                Store(
                    "a", Affine(),
                    Select("<", Read("a", Affine()), Const(0), Const(0),
                           Read("a", Affine())),
                )
            ],
        )
        out = scalar_reference(loop, {"a": [-3, 4, -1, 7]}, 4)
        assert out["a"] == [0, 4, 0, 7]

    def test_downward_loop_order(self):
        # a[i] = a[i+1] + 1 with decreasing i: values ripple from the end.
        loop = Loop(
            "down", {"a": 4},
            [Store("a", Affine(), BinOp("+", Read("a", Affine(1, 1)), Const(1)))],
            step=-1,
        )
        out = scalar_reference(loop, {"a": [0, 0, 0, 10]}, 3)
        assert out["a"] == [13, 12, 11, 10]

    def test_division_semantics(self):
        loop = Loop(
            "div", {"a": 4},
            [Store("a", Affine(), BinOp("/", Read("a", Affine()), Const(2)))],
        )
        out = scalar_reference(loop, {"a": [7, -7, 0, 9]}, 4)
        assert out["a"] == [3, -3, 0, 4]

    def test_store_wraps_to_element_size(self):
        loop = Loop(
            "wrap", {"a": 1},
            [Store("a", Affine(), BinOp("+", Read("a", Affine()), Const(1)))],
        )
        out = scalar_reference(loop, {"a": [127, 255 - 256]}, 2)
        assert out["a"][0] == -128  # 127 + 1 wraps in int8
