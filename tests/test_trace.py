"""Tests for the dynamic-trace machinery feeding the timing models."""

from repro.common.rng import periodic_conflict_indices
from repro.compiler import Strategy, compile_loop
from repro.emu import run_program
from repro.memory import MemoryImage
from repro.pipeline import MemAccess, OpClass, RegionEvent, Tracer
from repro.workloads.base import indirect_update

N = 48


def traced(strategy, x_vals=None):
    loop = indirect_update()
    x_vals = x_vals if x_vals is not None else list(range(N))
    mem = MemoryImage()
    mem.alloc("a", N, 4, init=range(N))
    mem.alloc("x", N, 4, init=x_vals)
    program = compile_loop(loop, mem, N, strategy)
    tracer = Tracer()
    metrics, _ = run_program(program, mem, tracer=tracer)
    return tracer.ops, metrics


class TestTraceStructure:
    def test_one_op_per_dynamic_instruction(self):
        trace, metrics = traced(Strategy.SRV)
        assert len(trace) == metrics.dynamic_instructions
        assert [op.index for op in trace] == list(range(len(trace)))

    def test_region_markers_balanced(self):
        trace, metrics = traced(Strategy.SRV)
        starts = [op for op in trace if op.region_event is RegionEvent.START]
        commits = [
            op for op in trace if op.region_event is RegionEvent.END_COMMIT
        ]
        assert len(starts) == len(commits) == metrics.srv.regions_entered

    def test_replay_markers_carry_lanes(self):
        trace, metrics = traced(Strategy.SRV, periodic_conflict_indices(N, 4))
        replays = [
            op for op in trace if op.region_event is RegionEvent.END_REPLAY
        ]
        assert len(replays) == metrics.srv.replays
        for op in replays:
            assert op.replay_lanes == frozenset({3, 7, 11, 15})

    def test_in_region_flags(self):
        trace, _ = traced(Strategy.SRV)
        inside = [op for op in trace if op.in_region]
        assert inside
        # scalar loop-control ops stay outside the region
        assert all(op.inst.is_vector or op.op_class in
                   (OpClass.SRV_START, OpClass.SRV_END) for op in inside)

    def test_region_pass_numbers(self):
        trace, _ = traced(Strategy.SRV, periodic_conflict_indices(N, 4))
        passes = {op.region_pass for op in trace if op.in_region}
        assert passes == {0, 1}   # first pass + one replay pass

    def test_scalar_trace_has_no_regions(self):
        trace, _ = traced(Strategy.SCALAR)
        assert all(op.region_event is None for op in trace)
        assert all(not op.in_region for op in trace)


class TestMemAccesses:
    def test_contiguous_load_records_all_lanes(self):
        trace, _ = traced(Strategy.SRV)
        loads = [op for op in trace if op.op_class is OpClass.VEC_LOAD]
        assert loads
        first = loads[0]
        assert len(first.mem) == 16
        assert all(isinstance(a, MemAccess) and not a.is_store for a in first.mem)
        lanes = [a.lane for a in first.mem]
        assert lanes == list(range(16))
        addrs = [a.addr for a in first.mem]
        assert addrs == sorted(addrs)
        assert addrs[1] - addrs[0] == 4

    def test_scatter_records_per_lane_targets(self):
        x_vals = periodic_conflict_indices(N, 4)
        trace, _ = traced(Strategy.SRV, x_vals)
        stores = [op for op in trace if op.op_class is OpClass.VEC_STORE]
        first = stores[0]
        assert len(first.mem) == 16
        assert all(a.is_store for a in first.mem)

    def test_branch_outcomes_recorded(self):
        trace, _ = traced(Strategy.SRV)
        branches = [op for op in trace if op.op_class is OpClass.BRANCH]
        assert branches
        assert branches[-1].branch_taken is False   # final loop exit
        assert all(op.branch_taken is True for op in branches[:-1])

    def test_register_dependences_present(self):
        trace, _ = traced(Strategy.SRV)
        vec_adds = [op for op in trace if op.op_class is OpClass.VEC_INT]
        assert any(op.src_regs and op.dst_regs for op in vec_adds)
