"""Unit and property tests for repro.common.bitvec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitvec import (
    BitVector,
    lane_mask_below,
    lane_mask_strictly_above,
    lane_mask_up_from,
)


class TestConstruction:
    def test_zeros(self):
        bv = BitVector.zeros(64)
        assert bv.none()
        assert not bv.any()
        assert bv.popcount() == 0
        assert len(bv) == 64

    def test_ones(self):
        bv = BitVector.ones(16)
        assert bv.all()
        assert bv.popcount() == 16

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BitVector(0)
        with pytest.raises(ValueError):
            BitVector(-3)

    def test_bits_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitVector(4, 0b10000)

    def test_from_range_basic(self):
        bv = BitVector.from_range(64, 16, 16)
        assert bv.popcount() == 16
        assert bv.test(16) and bv.test(31)
        assert not bv.test(15) and not bv.test(32)

    def test_from_range_clipping(self):
        bv = BitVector.from_range(64, 60, 16)
        assert bv.popcount() == 4
        bv2 = BitVector.from_range(64, -8, 16)
        assert bv2.popcount() == 8
        assert bv2.test(0) and bv2.test(7)

    def test_from_range_empty(self):
        assert BitVector.from_range(64, 70, 5).none()
        assert BitVector.from_range(64, 3, 0).none()

    def test_from_range_negative_length(self):
        with pytest.raises(ValueError):
            BitVector.from_range(64, 0, -1)

    def test_from_indices(self):
        bv = BitVector.from_indices(16, [0, 3, 15])
        assert sorted(bv.set_indices()) == [0, 3, 15]

    def test_from_indices_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector.from_indices(8, [8])


class TestOperations:
    def test_and_or_xor(self):
        a = BitVector(8, 0b1100)
        b = BitVector(8, 0b1010)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110

    def test_invert(self):
        a = BitVector(4, 0b0101)
        assert (~a).bits == 0b1010

    def test_andnot(self):
        a = BitVector(8, 0b1111)
        b = BitVector(8, 0b0101)
        assert a.andnot(b).bits == 0b1010

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            BitVector(8) & BitVector(16)

    def test_shift_left_drops_high_bits(self):
        a = BitVector(4, 0b1001)
        assert a.shift_left(1).bits == 0b0010

    def test_shift_right(self):
        a = BitVector(4, 0b1001)
        assert a.shift_right(3).bits == 0b0001

    def test_negative_shift_flips_direction(self):
        a = BitVector(8, 0b0010)
        assert a.shift_left(-1) == a.shift_right(1)

    def test_with_bit(self):
        a = BitVector.zeros(8).with_bit(3)
        assert a.test(3)
        assert a.with_bit(3, False).none()

    def test_lowest_set(self):
        assert BitVector(8, 0b0110).lowest_set() == 1
        assert BitVector.zeros(8).lowest_set() is None

    def test_test_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(8).test(8)


class TestReduce:
    def test_reduce_4byte_elements(self):
        # Bits 12-15, 28-31 set (the paper's section IV-D example pattern,
        # truncated): reducing by 4 gives lanes 3 and 7.
        bv = BitVector.from_range(64, 12, 4) | BitVector.from_range(64, 28, 4)
        lanes = bv.reduce(4)
        assert sorted(lanes.set_indices()) == [3, 7]

    def test_reduce_full_paper_example(self):
        # Section IV-D: bits 12-15, 28-31, 44-47, 60-63 set, element size 4
        # -> SRV-needs-replay lanes 3, 7, 11, 15.
        bv = BitVector.zeros(64)
        for start in (12, 28, 44, 60):
            bv = bv | BitVector.from_range(64, start, 4)
        assert sorted(bv.reduce(4).set_indices()) == [3, 7, 11, 15]

    def test_reduce_rejects_ragged(self):
        with pytest.raises(ValueError):
            BitVector(10).reduce(4)

    def test_expand_inverse(self):
        lanes = BitVector.from_indices(16, [0, 5, 15])
        assert lanes.expand(4).reduce(4) == lanes


class TestLaneMasks:
    def test_up_from(self):
        m = lane_mask_up_from(16, 4)
        assert sorted(m.set_indices()) == list(range(4, 16))

    def test_strictly_above(self):
        m = lane_mask_strictly_above(16, 4)
        assert sorted(m.set_indices()) == list(range(5, 16))

    def test_strictly_above_last_lane_empty(self):
        assert lane_mask_strictly_above(16, 15).none()

    def test_below(self):
        m = lane_mask_below(16, 4)
        assert sorted(m.set_indices()) == [0, 1, 2, 3]

    def test_partition(self):
        full = lane_mask_below(16, 7) | lane_mask_up_from(16, 7)
        assert full.all()


@given(st.integers(1, 128), st.data())
def test_property_invert_involution(width, data):
    bits = data.draw(st.integers(0, (1 << width) - 1))
    bv = BitVector(width, bits)
    assert ~~bv == bv


@given(st.integers(1, 128), st.data())
def test_property_and_or_identities(width, data):
    bits = data.draw(st.integers(0, (1 << width) - 1))
    bv = BitVector(width, bits)
    assert (bv & BitVector.ones(width)) == bv
    assert (bv | BitVector.zeros(width)) == bv
    assert (bv & ~bv).none()
    assert (bv | ~bv).all()


@given(st.integers(0, 80), st.integers(0, 80))
def test_property_from_range_popcount(start, length):
    bv = BitVector.from_range(64, start, length)
    expected = max(0, min(start + length, 64) - max(start, 0))
    assert bv.popcount() == expected


@given(st.integers(1, 16), st.integers(1, 8), st.data())
def test_property_reduce_expand_roundtrip(lanes, group, data):
    bits = data.draw(st.integers(0, (1 << lanes) - 1))
    lane_vec = BitVector(lanes, bits)
    assert lane_vec.expand(group).reduce(group) == lane_vec


@given(st.integers(1, 64), st.integers(0, 70), st.data())
def test_property_shift_roundtrip_preserves_low_bits(width, amount, data):
    bits = data.draw(st.integers(0, (1 << width) - 1))
    bv = BitVector(width, bits)
    back = bv.shift_left(amount).shift_right(amount)
    if amount >= width:
        assert back.none()
    else:
        # low (width - amount) bits survive the round trip
        keep = BitVector.from_range(width, 0, width - amount)
        assert back == (bv & keep)
