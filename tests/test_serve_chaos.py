"""Chaos suite: the service under worker kills, hangs and disk damage.

The acceptance bar for ``repro.serve``: every accepted job reaches a
terminal state no matter what is done to the workers or the disk, the
journal replays pending work after a server kill, and answers produced
through the service are byte-identical to the sequential harnesses.

All scenarios are deterministic — the ``chaos_flaky``/``chaos_stall``
kinds coordinate through flag files (first execution plants the flag
then dies/stalls; the retry sees it and succeeds), so there are no
timing races to flake on.
"""

import asyncio
import os

import pytest

from repro.parallel.cache import result_cache
from repro.serve import chaos
from repro.serve.jobs import execute_job
from repro.serve.journal import JobJournal
from repro.serve.service import ServeConfig, SweepService

LOOP_PAYLOAD = {"workload": "is", "loop": "is_key_rank", "n": 48}


@pytest.fixture(autouse=True)
def _isolated_cache():
    cache = result_cache()
    saved = cache.disk_dir
    cache.clear_memory()
    yield
    cache.disk_dir = saved
    cache.clear_memory()


def _config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(
        workers=1,
        cache_dir=str(tmp_path / "cache"),
        allow_chaos=True,
        job_timeout_s=60.0,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _run(coro):
    return asyncio.run(coro)


async def _submit_and_drain(service, kind, payload, client="chaos"):
    job = service.submit(kind, payload, client)
    await service.drain()
    return job


class TestWorkerCrash:
    def test_sigkilled_worker_job_retries_to_done(self, tmp_path):
        """chaos_flaky: attempt 1 SIGKILLs its own worker; the supervisor
        replaces the pool and the retry completes."""

        async def scenario():
            service = SweepService(_config(tmp_path))
            await service.start()
            try:
                job = await _submit_and_drain(
                    service, "chaos_flaky",
                    {"flag": str(tmp_path / "flaky.flag")},
                )
                assert job.status == "done"
                assert job.result == {"recovered": True}
                assert job.attempts == 2
                assert service.pool.crashes >= 1
                assert service.pool.restarts >= 1
            finally:
                await service.stop()

        _run(scenario())

    def test_external_kill_mid_job(self, tmp_path):
        """CI-smoke shape: a worker is SIGKILLed from outside while its
        job runs; the job still reaches ``done``."""

        async def scenario():
            flag = str(tmp_path / "stall.flag")
            service = SweepService(_config(tmp_path))
            await service.start()
            try:
                job = service.submit("chaos_stall", {"flag": flag})
                # the flag appears the moment the worker starts stalling
                for _ in range(2000):
                    if os.path.exists(flag):
                        break
                    await asyncio.sleep(0.01)
                else:
                    raise AssertionError("worker never started the job")
                chaos.kill_one_worker(service.pool)
                await service.drain()
                assert job.status == "done"
                assert job.result == {"recovered": True}
            finally:
                await service.stop()

        _run(scenario())

    def test_pool_survives_for_subsequent_jobs(self, tmp_path):
        """After a crash/restart cycle the pool keeps serving real work."""

        async def scenario():
            service = SweepService(_config(tmp_path))
            await service.start()
            try:
                crash = await _submit_and_drain(
                    service, "chaos_flaky",
                    {"flag": str(tmp_path / "f.flag")},
                )
                assert crash.status == "done"
                loop_job = await _submit_and_drain(
                    service, "loop", LOOP_PAYLOAD
                )
                assert loop_job.status == "done"
                assert loop_job.result["correct"] is True
            finally:
                await service.stop()

        _run(scenario())


class TestWorkerHang:
    def test_budget_fires_and_stalled_job_recovers(self, tmp_path):
        """chaos_stall: attempt 1 wedges past the budget; the supervisor
        kills the pool and the retry (flag present) succeeds."""

        async def scenario():
            service = SweepService(_config(tmp_path, job_timeout_s=1.0))
            await service.start()
            try:
                job = await _submit_and_drain(
                    service, "chaos_stall",
                    {"flag": str(tmp_path / "stall.flag")},
                )
                assert job.status == "done"
                assert job.result == {"recovered": True}
                assert job.attempts == 2
                assert service.pool.hangs >= 1
            finally:
                await service.stop()

        _run(scenario())

    def test_persistent_hang_fails_terminally(self, tmp_path):
        """chaos_hang never recovers: every attempt exhausts its budget
        and the job lands in ``failed`` — a terminal state, not limbo."""

        async def scenario():
            service = SweepService(
                _config(tmp_path, job_timeout_s=0.5, max_retries=1)
            )
            await service.start()
            try:
                job = await _submit_and_drain(service, "chaos_hang", {})
                assert job.status == "failed"
                assert job.error["error"] == "WorkerHungError"
                assert job.attempts == 2
                assert service.pool.hangs == 2
                # the recycled pool still works
                after = await _submit_and_drain(service, "loop", LOOP_PAYLOAD)
                assert after.status == "done"
            finally:
                await service.stop()

        _run(scenario())


class TestJournalReplay:
    def test_pending_jobs_replay_after_server_kill(self, tmp_path):
        """Accept jobs, never dispatch them, drop everything (simulated
        kill): a fresh service recovers and completes them."""
        path = str(tmp_path / "journal.jsonl")
        first = SweepService(_config(tmp_path), JobJournal(path))
        accepted = first.submit("loop", LOOP_PAYLOAD, "alice")
        assert accepted.status == "queued"
        # simulated kill -9: no stop(), no terminal records, just gone

        async def scenario():
            journal = JobJournal(path)
            assert len(journal) == 1
            service = SweepService(_config(tmp_path), journal)
            resumed = service.recover()
            assert resumed == 1
            replayed = service.jobs[accepted.id]
            assert replayed.resumed
            await service.start()
            try:
                await service.drain()
                assert replayed.status == "done"
                assert replayed.result["correct"] is True
                assert len(service.journal) == 0
                # the per-dispatcher accounting renders the resumed column
                table = service.stats_report().format_table()
                assert "resumed" in table
                assert sum(s.resumed for s in service.shards) == 1
            finally:
                await service.stop()

        _run(scenario())

    def test_replay_with_torn_journal_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first = SweepService(_config(tmp_path), JobJournal(path))
        first.submit("loop", LOOP_PAYLOAD, "alice")
        chaos.corrupt_tail(path)

        async def scenario():
            journal = JobJournal(path)
            assert journal.corrupt_lines == 1
            service = SweepService(_config(tmp_path), journal)
            assert service.recover() == 1
            await service.start()
            try:
                await service.drain()
                assert all(j.status == "done" for j in service.jobs.values())
            finally:
                await service.stop()

        _run(scenario())

    def test_completed_before_kill_answers_from_cache(self, tmp_path):
        """The terminal record was lost but the result was published in
        the content-addressed cache: recovery answers instantly and
        closes the journal entry."""
        path = str(tmp_path / "journal.jsonl")
        cache_dir = str(tmp_path / "cache")
        # the job ran to completion (cache populated) but the terminal
        # journal record never made it out
        execute_job("loop", LOOP_PAYLOAD, cache_dir)
        # the dying server itself never saw the store (else the original
        # submit would have been a fast-path hit, not a pending accept)
        result_cache().clear_memory()
        result_cache().disable_disk()
        first = SweepService(
            ServeConfig(workers=1, cache_dir=None), JobJournal(path)
        )
        accepted = first.submit("loop", LOOP_PAYLOAD, "alice")
        assert accepted.status == "queued"

        journal = JobJournal(path)
        service = SweepService(_config(tmp_path), journal)
        assert service.recover() == 1
        job = next(iter(service.jobs.values()))
        assert job.status == "done" and job.cache_hit
        assert len(journal) == 0  # closed out without dispatch


class TestDiskCorruption:
    def _warm(self, cache_dir) -> dict:
        return execute_job("loop", LOOP_PAYLOAD, cache_dir)

    @pytest.mark.parametrize("mode", ["truncate", "zero"])
    def test_corrupt_cache_entry_recomputes(self, tmp_path, mode):
        cache_dir = str(tmp_path / "cache")
        clean = self._warm(cache_dir)
        result_cache().clear_memory()
        chaos.corrupt_cache_entry(cache_dir, mode=mode)

        async def scenario():
            service = SweepService(_config(tmp_path))
            await service.start()
            try:
                job = service.submit("loop", LOOP_PAYLOAD)
                # damaged entry cannot answer the fast path ...
                assert not job.cache_hit
                await service.drain()
                # ... but the recompute restores the identical answer
                assert job.status == "done"
                assert job.result == clean
            finally:
                await service.stop()

        _run(scenario())


class TestSequentialEquivalence:
    def test_experiment_job_table_is_byte_identical(self, tmp_path):
        """The figure harness through the service produces exactly the
        sequential harness's table."""
        from repro.experiments import ALL_EXPERIMENTS

        direct = ALL_EXPERIMENTS["figure9"](seed=0, n_override=32)

        async def scenario():
            service = SweepService(_config(tmp_path))
            await service.start()
            try:
                job = await _submit_and_drain(
                    service, "experiment", {"name": "figure9", "n": 32}
                )
                assert job.status == "done"
                assert job.result["table"] == direct.format_table()
            finally:
                await service.stop()

        _run(scenario())

    def test_injected_fault_surfaces_structured(self, tmp_path):
        """A chaos-enabled service routes fault injection through the
        serving path: corruption arrives as ``correct: false``, never a
        silently wrong answer and never a poisoned cache entry."""

        async def scenario():
            service = SweepService(_config(tmp_path))
            await service.start()
            try:
                job = await _submit_and_drain(
                    service, "loop",
                    dict(LOOP_PAYLOAD, inject="corrupt-store-data"),
                )
                assert job.status == "done"
                assert job.result["correct"] is False
                assert job.result["injected"] == ["corrupt-store-data"]
                # the clean address must still miss: nothing was poisoned
                clean = service.submit("loop", LOOP_PAYLOAD)
                assert not clean.cache_hit
            finally:
                await service.stop()

        _run(scenario())
