"""Unit tests for the architectural-state container."""

import pytest

from repro.emu.state import ArchState
from repro.isa import p, v, x


class TestScalarRegisters:
    def test_read_write_signed(self):
        state = ArchState()
        state.write_scalar(x(3), -42)
        assert state.read_scalar(x(3)) == -42

    def test_64bit_wraparound(self):
        state = ArchState()
        state.write_scalar(x(1), 2**64 + 5)
        assert state.read_scalar(x(1)) == 5
        state.write_scalar(x(1), 2**63)
        assert state.read_scalar(x(1)) == -(2**63)

    def test_operand_reading(self):
        from repro.isa import imm

        state = ArchState()
        state.write_scalar(x(2), 7)
        assert state.read_operand(x(2)) == 7
        assert state.read_operand(imm(-3)) == -3

    def test_initial_zero(self):
        state = ArchState()
        assert all(state.read_scalar(x(i)) == 0 for i in range(32))


class TestVectorRegisters:
    def test_lane_roundtrip_per_elem(self):
        state = ArchState()
        for elem in (1, 2, 4, 8):
            state.write_lane(v(0), 3, -1, elem)
            assert state.read_lane(v(0), 3, elem) == -1
            assert state.read_lane(v(0), 3, elem, signed=False) == (
                (1 << (8 * elem)) - 1
            )

    def test_masked_write_merges(self):
        state = ArchState()
        state.write_vector_masked(v(1), [10] * 16, [True] * 16, 4)
        mask = [i % 2 == 0 for i in range(16)]
        state.write_vector_masked(v(1), [99] * 16, mask, 4)
        got = state.read_vector(v(1))
        assert got == [99 if i % 2 == 0 else 10 for i in range(16)]

    def test_narrow_write_wraps(self):
        state = ArchState()
        state.write_vector_masked(v(2), [256 + 7] * 16, [True] * 16, 1)
        assert state.read_lane(v(2), 0, 1) == 7


class TestPredicates:
    def test_read_write(self):
        state = ArchState()
        mask = [i < 5 for i in range(16)]
        state.write_pred(p(1), mask)
        assert state.read_pred(p(1)) == mask

    def test_wrong_width_rejected(self):
        state = ArchState()
        with pytest.raises(ValueError):
            state.write_pred(p(1), [True] * 8)

    def test_effective_mask_none_is_all(self):
        state = ArchState()
        assert state.effective_mask(None) == [True] * 16

    def test_read_returns_copy(self):
        state = ArchState()
        state.write_pred(p(2), [True] * 16)
        got = state.read_pred(p(2))
        got[0] = False
        assert state.read_pred(p(2))[0] is True


class TestSnapshots:
    def test_snapshot_detects_changes(self):
        state = ArchState()
        before = state.registers_snapshot()
        state.write_scalar(x(5), 1)
        assert state.registers_snapshot() != before

    def test_custom_lane_count(self):
        state = ArchState(lanes=4)
        assert len(state.read_vector(v(0))) == 4
        assert state.effective_mask(None) == [True] * 4
