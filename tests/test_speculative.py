"""Direct unit tests for the SRV speculative buffer."""

import pytest

from repro.emu.metrics import SrvMetrics
from repro.emu.speculative import SpeculativeBuffer
from repro.memory import MemoryImage


@pytest.fixture
def mem():
    image = MemoryImage(size=4096, base=0x1000)
    for i in range(64):
        image.write_int(0x1000 + 4 * i, 1000 + i, 4)
    return image


@pytest.fixture
def buffer(mem):
    return SpeculativeBuffer(mem, SrvMetrics())


class TestLoadForwarding:
    def test_memory_when_empty(self, buffer):
        value, forwarded = buffer.load(0x1000, 4, lane=0, instr=0)
        assert value == 1000
        assert not forwarded

    def test_same_lane_earlier_instr_forwards(self, buffer):
        buffer.store(0x1000, 4, 77, lane=2, instr=0)
        value, forwarded = buffer.load(0x1000, 4, lane=2, instr=1)
        assert value == 77 and forwarded

    def test_older_lane_forwards(self, buffer):
        buffer.store(0x1000, 4, 55, lane=1, instr=3)
        value, forwarded = buffer.load(0x1000, 4, lane=9, instr=0)
        # lane 9 instr 0 is sequentially later than lane 1 instr 3
        assert value == 55 and forwarded

    def test_later_lane_suppressed_war(self, buffer):
        buffer.store(0x1000, 4, 99, lane=9, instr=0)
        value, forwarded = buffer.load(0x1000, 4, lane=1, instr=1)
        assert value == 1000            # memory, not the future store
        assert not forwarded
        assert buffer.metrics.war_events == 1

    def test_latest_older_store_wins(self, buffer):
        buffer.store(0x1000, 4, 11, lane=0, instr=0)
        buffer.store(0x1000, 4, 22, lane=3, instr=0)
        value, _ = buffer.load(0x1000, 4, lane=8, instr=1)
        assert value == 22

    def test_partial_byte_forwarding(self, buffer):
        """Bytes mix buffered-store data and memory (Witt-style)."""
        buffer.store(0x1002, 2, 0xBEEF, lane=0, instr=0)
        value, forwarded = buffer.load(0x1000, 4, lane=1, instr=1)
        assert forwarded
        assert value & 0xFFFF == 1000 & 0xFFFF       # low bytes from memory
        assert value >> 16 == 0xBEEF                 # high bytes forwarded


class TestRawDetection:
    def test_store_flags_later_lane_load(self, buffer):
        buffer.load(0x1008, 4, lane=5, instr=0)
        buffer.store(0x1008, 4, 1, lane=2, instr=1)
        assert buffer.needs_replay == {5}
        assert buffer.metrics.raw_violations == 1

    def test_store_ignores_older_lane_load(self, buffer):
        buffer.load(0x1008, 4, lane=1, instr=0)
        buffer.store(0x1008, 4, 1, lane=4, instr=1)
        assert buffer.needs_replay == set()

    def test_no_flag_without_overlap(self, buffer):
        buffer.load(0x1008, 4, lane=5, instr=0)
        buffer.store(0x1020, 4, 1, lane=2, instr=1)
        assert buffer.needs_replay == set()

    def test_load_after_store_not_flagged(self, buffer):
        """A load that executes after the store forwarded correctly."""
        buffer.store(0x1008, 4, 9, lane=2, instr=0)
        buffer.load(0x1008, 4, lane=5, instr=1)
        assert buffer.needs_replay == set()


class TestCommit:
    def test_commit_sequential_order(self, buffer, mem):
        buffer.store(0x1000, 4, 111, lane=5, instr=0)   # sequentially later
        buffer.store(0x1000, 4, 222, lane=2, instr=0)   # earlier
        buffer.commit()
        assert mem.read_int(0x1000, 4) == 111           # lane 5 wins

    def test_replay_updates_entry_in_place(self, buffer, mem):
        buffer.store(0x1000, 4, 1, lane=3, instr=0)
        buffer.store(0x1000, 4, 2, lane=3, instr=0)     # replay: same SRV-id
        buffer.commit()
        assert mem.read_int(0x1000, 4) == 2
        assert buffer.lsu_entries_used() == 1

    def test_discard(self, buffer, mem):
        buffer.store(0x1000, 4, 5, lane=0, instr=0)
        buffer.discard()
        buffer.commit()
        assert mem.read_int(0x1000, 4) == 1000

    def test_commit_prefix(self, buffer, mem):
        buffer.store(0x1000, 4, 10, lane=0, instr=0)   # older lane: committed
        buffer.store(0x1004, 4, 20, lane=2, instr=0)   # oldest active, <= offset
        buffer.store(0x1008, 4, 30, lane=2, instr=5)   # beyond offset: dropped
        buffer.store(0x100C, 4, 40, lane=7, instr=0)   # younger lane: dropped
        buffer.commit_prefix(oldest_lane=2, offset=3)
        assert mem.read_int(0x1000, 4) == 10
        assert mem.read_int(0x1004, 4) == 20
        assert mem.read_int(0x1008, 4) == 1002   # untouched
        assert mem.read_int(0x100C, 4) == 1003   # untouched
        assert buffer.lsu_entries_used() == 0
        assert buffer.needs_replay == set()


class TestTmMode:
    def test_war_aborts_writing_lane(self, mem):
        buffer = SpeculativeBuffer(mem, SrvMetrics(), tm_mode=True)
        buffer.store(0x1000, 4, 99, lane=9, instr=0)
        buffer.load(0x1000, 4, lane=1, instr=1)
        assert 9 in buffer.needs_replay
        assert buffer.metrics.tm_war_replays == 1

    def test_srv_mode_does_not(self, buffer):
        buffer.store(0x1000, 4, 99, lane=9, instr=0)
        buffer.load(0x1000, 4, lane=1, instr=1)
        assert buffer.needs_replay == set()
