"""Tests for the memory image and cache timing hierarchy."""

import pytest

from repro.common.config import CacheConfig, MemoryConfig
from repro.common.errors import MemoryAccessError
from repro.memory import Cache, CacheHierarchy, MemoryImage, to_signed, to_unsigned


class TestIntConversions:
    def test_roundtrip_signed(self):
        for size in (1, 2, 4, 8):
            for value in (0, 1, -1, 127, -128, 2 ** (size * 8 - 1) - 1):
                assert to_signed(to_unsigned(value, size), size) == value

    def test_wrap(self):
        assert to_unsigned(-1, 1) == 0xFF
        assert to_signed(0xFF, 1) == -1
        assert to_signed(0x7F, 1) == 127


class TestMemoryImage:
    def test_read_write_int(self):
        mem = MemoryImage(size=4096, base=0x1000)
        mem.write_int(0x1000, -5, 4)
        assert mem.read_int(0x1000, 4, signed=True) == -5
        assert mem.read_int(0x1000, 4, signed=False) == 0xFFFFFFFB

    def test_little_endian(self):
        mem = MemoryImage(size=4096, base=0x1000)
        mem.write_int(0x1000, 0x01020304, 4)
        assert mem.read_bytes(0x1000, 4) == bytes([4, 3, 2, 1])

    def test_out_of_bounds(self):
        mem = MemoryImage(size=64, base=0x100)
        with pytest.raises(MemoryAccessError):
            mem.read_bytes(0x90, 4)
        with pytest.raises(MemoryAccessError):
            mem.read_bytes(0x100 + 62, 4)

    def test_alloc_and_arrays(self):
        mem = MemoryImage()
        a = mem.alloc("a", 10, 4, init=range(10))
        assert mem.load_array(a) == list(range(10))
        assert a.base % 64 == 0

    def test_alloc_duplicate_name(self):
        mem = MemoryImage()
        mem.alloc("a", 4)
        with pytest.raises(MemoryAccessError):
            mem.alloc("a", 4)

    def test_allocation_lookup(self):
        mem = MemoryImage()
        mem.alloc("data", 8, 2)
        assert mem.allocation("data").elem == 2
        with pytest.raises(MemoryAccessError):
            mem.allocation("missing")

    def test_allocation_addr_bounds(self):
        mem = MemoryImage()
        a = mem.alloc("a", 4, 4)
        assert a.addr(3) == a.base + 12
        with pytest.raises(MemoryAccessError):
            a.addr(4)

    def test_allocations_do_not_overlap(self):
        mem = MemoryImage()
        a = mem.alloc("a", 100, 4)
        b = mem.alloc("b", 100, 8)
        assert a.end <= b.base

    def test_store_array_overflow(self):
        mem = MemoryImage()
        a = mem.alloc("a", 4, 4)
        with pytest.raises(MemoryAccessError):
            mem.store_array(a, [1, 2, 3], start=2)

    def test_clone_is_independent(self):
        mem = MemoryImage()
        a = mem.alloc("a", 4, 4, init=[1, 2, 3, 4])
        copy = mem.clone()
        copy.write_int(a.addr(0), 99, 4)
        assert mem.read_int(a.addr(0), 4) == 1
        assert copy.allocation("a").base == a.base

    def test_signed_array_roundtrip(self):
        mem = MemoryImage()
        a = mem.alloc("a", 3, 4, init=[-1, -2, 3])
        assert mem.load_array(a) == [-1, -2, 3]
        assert mem.load_array(a, signed=False)[0] == 0xFFFFFFFF


class TestCache:
    def cfg(self, **kw):
        defaults = dict(size_bytes=1024, associativity=2, hit_latency=1, line_bytes=64)
        defaults.update(kw)
        return CacheConfig(**defaults)

    def test_miss_then_hit(self):
        cache = Cache(self.cfg())
        hit, _ = cache.access(0x1000, False)
        assert not hit
        hit, _ = cache.access(0x1000, False)
        assert hit
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = Cache(self.cfg())
        cache.access(0x1000, False)
        hit, _ = cache.access(0x103F, False)
        assert hit

    def test_lru_eviction(self):
        # 2-way set: three conflicting lines evict the least recent.
        cache = Cache(self.cfg())
        sets = cache.config.num_sets
        stride = sets * 64
        cache.access(0, False)
        cache.access(stride, False)
        cache.access(2 * stride, False)  # evicts line 0
        hit, _ = cache.access(0, False)
        assert not hit

    def test_lru_touch_on_hit(self):
        cache = Cache(self.cfg())
        stride = cache.config.num_sets * 64
        cache.access(0, False)
        cache.access(stride, False)
        cache.access(0, False)                 # touch line 0
        cache.access(2 * stride, False)        # should evict `stride`
        hit, _ = cache.access(0, False)
        assert hit

    def test_dirty_writeback_counted(self):
        cache = Cache(self.cfg())
        stride = cache.config.num_sets * 64
        cache.access(0, True)  # dirty
        cache.access(stride, False)
        cache.access(2 * stride, False)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_invalidate_all(self):
        cache = Cache(self.cfg())
        cache.access(0x2000, False)
        cache.invalidate_all()
        hit, _ = cache.access(0x2000, False)
        assert not hit


class TestHierarchy:
    def test_latencies(self):
        h = CacheHierarchy()
        cold = h.access(0x4000, 4, False)
        assert cold == 2 + 7 + h.config.dram_latency
        l1_hit = h.access(0x4000, 4, False)
        assert l1_hit == 2

    def test_l2_hit_latency(self):
        h = CacheHierarchy(
            MemoryConfig(l1=CacheConfig(128, 2, 2), l2=CacheConfig(4096, 4, 7))
        )
        h.access(0, 4, False)
        # Evict from tiny L1 by touching the same set
        h.access(128, 4, False)
        h.access(256, 4, False)
        latency = h.access(0, 4, False)  # L1 miss, L2 hit
        assert latency == 2 + 7

    def test_line_straddle_charges_worst_line(self):
        h = CacheHierarchy()
        h.access(0x1000, 64, False)       # warm first line
        latency = h.access(0x103C, 8, False)  # straddles into cold line
        assert latency > h.config.l1.hit_latency

    def test_stats_accumulate(self):
        h = CacheHierarchy()
        h.access(0, 4, False)
        h.access(0, 4, False)
        assert h.stats.l1_hits == 1
        assert h.stats.l1_misses == 1
        assert h.stats.l2_misses == 1

    def test_warm_preserves_stats(self):
        h = CacheHierarchy()
        h.access(0x9000, 4, False)
        before = (h.stats.l1_hits, h.stats.l1_misses)
        h.warm(0x5000, 64)
        assert (h.stats.l1_hits, h.stats.l1_misses) == before
        assert h.access(0x5000, 4, False) == h.config.l1.hit_latency

    def test_invalid_size(self):
        h = CacheHierarchy()
        with pytest.raises(ValueError):
            h.access(0, 0, False)
