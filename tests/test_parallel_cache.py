"""Content-addressed result cache (repro.parallel.cache).

Covers digest stability, the in-memory LRU bound, cross-process disk
hits (modelled with two cache instances), implicit invalidation via the
code-version hash, and corrupt-entry recovery.
"""

import os
import pickle

import pytest

from repro.parallel import cache as cache_mod
from repro.parallel.cache import (
    ResultCache,
    cache_digest,
    code_version_hash,
)

KEY_A = ("loop_a", "srv", 0, "cfg", True, 64, "ooo")
KEY_B = ("loop_b", "srv", 0, "cfg", True, 64, "ooo")


def payload(**extra) -> dict:
    """A structurally valid run payload (disk reads validate the shape)."""
    return {"emu": None, "pipe": None, "correct": True, **extra}


@pytest.fixture(autouse=True)
def _stable_code_version(monkeypatch):
    """Pin the code-version hash so tests don't re-hash the source tree."""
    monkeypatch.setattr(cache_mod, "_CODE_VERSION", "f" * 64)
    yield


class TestDigest:
    def test_stable_across_calls(self):
        assert cache_digest(KEY_A) == cache_digest(KEY_A)

    def test_distinct_keys_distinct_digests(self):
        assert cache_digest(KEY_A) != cache_digest(KEY_B)

    def test_code_version_is_part_of_the_address(self):
        assert cache_digest(KEY_A, "a" * 64) != cache_digest(KEY_A, "b" * 64)

    def test_value_keyed_not_identity_keyed(self):
        # equal tuples built separately must address the same entry
        other = tuple(["loop_a", "srv", 0, "cfg", True, 64, "ooo"])
        assert other is not KEY_A
        assert cache_digest(other) == cache_digest(KEY_A)

    def test_code_version_hash_is_hex_sha256(self, monkeypatch):
        monkeypatch.setattr(cache_mod, "_CODE_VERSION", None)
        digest = code_version_hash()
        assert len(digest) == 64
        int(digest, 16)
        # cached on the second call
        assert code_version_hash() == digest


class TestMemoryLayer:
    def test_lru_eviction(self):
        cache = ResultCache(max_memory=3)
        for i in range(5):
            cache.put((i,), {"v": i})
        assert len(cache) == 3
        assert cache.get((0,)) is None
        assert cache.get((4,)) == {"v": 4}

    def test_get_promotes_recency(self):
        cache = ResultCache(max_memory=2)
        cache.put((1,), {"v": 1})
        cache.put((2,), {"v": 2})
        cache.get((1,))  # touch: (2,) becomes the eviction candidate
        cache.put((3,), {"v": 3})
        assert cache.get((1,)) == {"v": 1}
        assert cache.get((2,)) is None

    def test_put_memory_does_not_write_disk(self, tmp_path):
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        cache.put_memory(KEY_A, {"v": 1})
        fresh = ResultCache()
        fresh.enable_disk(str(tmp_path))
        assert fresh.get(KEY_A) is None

    def test_stats_accounting(self):
        cache = ResultCache()
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"v": 1})
        cache.get(KEY_A)
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.memory_hits == 1


class TestDiskLayer:
    def test_hit_across_instances(self, tmp_path):
        writer = ResultCache()
        writer.enable_disk(str(tmp_path))
        writer.put(KEY_A, payload(v=42))

        reader = ResultCache()
        reader.enable_disk(str(tmp_path))
        assert reader.contains(KEY_A)
        assert reader.get(KEY_A) == payload(v=42)
        assert reader.stats.disk_hits == 1
        # the hit was promoted into the reader's memory layer
        assert len(reader) == 1

    def test_code_edit_invalidates_implicitly(self, tmp_path, monkeypatch):
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        cache.put(KEY_A, payload(v=1))
        cache.clear_memory()
        assert cache.contains(KEY_A)
        # simulate editing a core simulator module: the version hash moves
        monkeypatch.setattr(cache_mod, "_CODE_VERSION", "0" * 64)
        assert not cache.contains(KEY_A)
        assert cache.get(KEY_A) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        cache.put(KEY_A, payload(v=1))
        cache.clear_memory()
        path = cache._disk_path(cache_digest(KEY_A))
        with open(path, "wb") as fh:
            fh.write(b"torn write garbage")
        assert cache.get(KEY_A) is None
        assert not os.path.exists(path)
        assert cache.stats.evictions == 1
        # the slot can be rewritten cleanly afterwards
        cache.put(KEY_A, payload(v=2))
        cache.clear_memory()
        assert cache.get(KEY_A) == payload(v=2)

    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        cache.put(KEY_A, payload(v=1))
        cache.clear_memory()
        path = cache._disk_path(cache_digest(KEY_A))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        # contains stays optimistic (non-empty file) but get detects it
        assert cache.contains(KEY_A)
        assert cache.get(KEY_A) is None
        assert not os.path.exists(path)
        assert cache.stats.evictions == 1

    def test_zero_byte_entry_treated_as_absent(self, tmp_path):
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        cache.put(KEY_A, payload(v=1))
        cache.clear_memory()
        path = cache._disk_path(cache_digest(KEY_A))
        with open(path, "wb"):
            pass
        assert not cache.contains(KEY_A)
        assert not os.path.exists(path)
        assert cache.stats.evictions == 1

    def test_non_dict_payload_rejected(self, tmp_path):
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        path = cache._disk_path(cache_digest(KEY_A))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(["not", "a", "payload"], fh)
        assert cache.get(KEY_A) is None
        assert not os.path.exists(path)
        assert cache.stats.evictions == 1

    def test_wrong_shape_dict_rejected(self, tmp_path):
        # unpickles fine but lacks the run-payload keys: foreign file
        # dropped in the cache directory, or a half-flipped entry
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        path = cache._disk_path(cache_digest(KEY_A))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump({"emu": None, "wrong": True}, fh)
        assert cache.get(KEY_A) is None
        assert not os.path.exists(path)
        assert cache.stats.evictions == 1

    def test_disable_disk(self, tmp_path):
        cache = ResultCache()
        cache.enable_disk(str(tmp_path))
        cache.put(KEY_A, payload(v=1))
        cache.clear_memory()
        cache.disable_disk()
        assert cache.get(KEY_A) is None
