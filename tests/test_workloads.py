"""Tests for the benchmark workloads (section V substitution)."""

import pytest

from repro.common.config import TABLE_I
from repro.compiler import DepClass, Strategy, loop_class, scalar_reference
from repro.experiments.runner import clear_cache, run_loop
from repro.workloads import ALL_WORKLOADS, HPC_WORKLOADS, SPEC_WORKLOADS, all_loops, by_name

SMALL_N = 64


class TestSuiteStructure:
    def test_eleven_spec_benchmarks(self):
        """Paper section V: "taking only eleven C/C++ benchmarks from SPEC"."""
        assert len(SPEC_WORKLOADS) == 11

    def test_five_hpc_benchmarks(self):
        assert len(HPC_WORKLOADS) == 5
        assert {w.name for w in HPC_WORKLOADS} == {
            "is", "livermore", "ssca2", "randacc", "lc",
        }

    def test_names_unique(self):
        names = [w.name for w in ALL_WORKLOADS]
        assert len(names) == len(set(names))
        loop_names = [spec.name for _, spec in all_loops()]
        assert len(loop_names) == len(set(loop_names))

    def test_by_name(self):
        assert by_name("bzip2").suite == "spec"
        with pytest.raises(KeyError):
            by_name("nonexistent")

    def test_coverage_values(self):
        """High-coverage benchmarks match figure 6's series."""
        assert by_name("astar").coverage == pytest.approx(0.127)
        assert by_name("milc").coverage == pytest.approx(0.257)
        assert by_name("xalancbmk").coverage == pytest.approx(0.208)
        assert by_name("is").coverage == pytest.approx(0.253)
        assert by_name("randacc").coverage == pytest.approx(0.173)
        assert by_name("lc").coverage == pytest.approx(0.114)
        for workload in ALL_WORKLOADS:
            assert 0 < workload.coverage < 0.30

    def test_weights_normalise(self):
        for workload in ALL_WORKLOADS:
            weights = workload.normalised_weights()
            assert sum(weights) == pytest.approx(1.0)
            assert all(w > 0 for w in weights)


class TestLoopProperties:
    def test_every_loop_is_srv_vectorisable_only(self):
        """Each loop must be blocked for SVE: its class must be UNKNOWN or
        provably unsafe — this is the defining property of the paper's
        SRV-vectorisable loop set."""
        for workload, spec in all_loops():
            cls = loop_class(spec.loop, TABLE_I.vector_lanes)
            assert cls in (DepClass.UNKNOWN, DepClass.PROVABLE_UNSAFE), (
                workload.name, spec.name, cls,
            )

    def test_array_builders_deterministic(self):
        for _, spec in all_loops():
            assert spec.arrays(7) == spec.arrays(7)

    def test_array_builders_seed_sensitive(self):
        changed = 0
        for _, spec in all_loops():
            if spec.arrays(1) != spec.arrays(2):
                changed += 1
        assert changed > len(ALL_WORKLOADS)  # most builders vary with seed

    def test_arrays_cover_loop_references(self):
        for _, spec in all_loops():
            arrays = spec.arrays(0)
            assert set(arrays) == set(spec.loop.arrays)

    def test_index_arrays_in_bounds(self):
        """Every index value must address inside its target arrays."""
        for workload, spec in all_loops():
            arrays = spec.arrays(3)
            # run the oracle: it raises IndexError on out-of-bounds
            scalar_reference(spec.loop, arrays, spec.n, params=spec.params)

    def test_figure10_histogram_shape(self):
        """80% of SRV-vectorisable loops have <= 10 memory references."""
        counts = [spec.loop.memory_reference_count() for _, spec in all_loops()]
        small = sum(1 for c in counts if c <= 10)
        assert small / len(counts) >= 0.75
        assert any(c > 16 for c in counts)  # figure 10's tail exists


class TestExecution:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_srv_correct_for_every_workload(self, workload):
        for spec in workload.loops:
            run = run_loop(spec, Strategy.SRV, seed=1, n_override=SMALL_N,
                           timing=False)
            assert run.correct, (workload.name, spec.name)

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_sve_falls_back_for_every_workload(self, workload):
        """The SVE binary runs these loops scalar: zero vector instructions."""
        for spec in workload.loops:
            run = run_loop(spec, Strategy.SVE, seed=1, n_override=SMALL_N,
                           timing=False)
            assert run.correct
            assert run.emu.vector_instructions == 0, (workload.name, spec.name)

    def test_violating_benchmarks(self):
        """Only bzip2, hmmer, is and randacc incur run-time violations
        (figure 9); all other workloads run their regions clean."""
        clear_cache()
        violators = set()
        for workload in ALL_WORKLOADS:
            raw = 0
            for spec in workload.loops:
                run = run_loop(spec, Strategy.SRV, seed=0, timing=False)
                assert run.correct
                raw += run.emu.srv.raw_violations
            if raw:
                violators.add(workload.name)
        assert violators == {"bzip2", "hmmer", "is", "randacc"}

    def test_lc_exercises_lsu_fallback(self):
        workload = by_name("lc")
        fallback_specs = [s for s in workload.loops if "dense_flow" in s.name]
        assert fallback_specs
        run = run_loop(fallback_specs[0], Strategy.SRV, timing=False)
        assert run.emu.srv.lsu_fallbacks > 0
        assert run.correct

    def test_srv_uses_fewer_instructions_everywhere(self):
        for workload in ALL_WORKLOADS:
            for spec in workload.loops:
                srv = run_loop(spec, Strategy.SRV, n_override=SMALL_N, timing=False)
                sve = run_loop(spec, Strategy.SVE, n_override=SMALL_N, timing=False)
                assert (
                    srv.emu.dynamic_instructions < sve.emu.dynamic_instructions
                ), (workload.name, spec.name)
