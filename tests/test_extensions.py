"""Tests for the design-space extensions: in-order core, relaxed barrier,
TM mode, interrupt injection, and the CLI."""

import pytest

from repro.common.config import TABLE_I
from repro.common.rng import periodic_conflict_indices, sparse_conflict_indices
from repro.compiler import Strategy, compile_loop, scalar_reference
from repro.emu import Interpreter, run_program
from repro.memory import MemoryImage
from repro.pipeline import Tracer, simulate
from repro.pipeline.inorder import simulate_in_order
from repro.workloads.base import indirect_update

N = 64


def compiled(strategy=Strategy.SRV, x_vals=None, n=N, config=TABLE_I):
    loop = indirect_update()
    x_vals = x_vals if x_vals is not None else list(range(n))
    a_vals = list(range(n))
    mem = MemoryImage()
    mem.alloc("a", n, 4, init=a_vals)
    mem.alloc("x", n, 4, init=x_vals)
    program = compile_loop(loop, mem, n, strategy)
    oracle = scalar_reference(loop, {"a": a_vals, "x": x_vals}, n)
    return program, mem, oracle


class TestInOrderCore:
    def trace_for(self, strategy, x_vals=None):
        program, mem, oracle = compiled(strategy, x_vals)
        tracer = Tracer()
        run_program(program, mem, tracer=tracer)
        assert mem.load_array(mem.allocation("a")) == oracle["a"]
        return tracer.ops

    def test_runs_and_counts(self):
        trace = self.trace_for(Strategy.SRV)
        stats = simulate_in_order(trace, warm=True)
        assert stats.cycles > 0
        assert stats.instructions == len(trace)
        assert stats.srv_regions == N // 16

    def test_slower_than_ooo_on_scalar_code(self):
        trace = self.trace_for(Strategy.SCALAR)
        ooo = simulate(trace, warm=True)
        ino = simulate_in_order(trace, warm=True)
        assert ino.cycles > ooo.cycles

    def test_srv_advantage_larger_in_order(self):
        """Section III-D6: SRV adds 'a limited form of out-of-order
        execution' — worth more on the in-order machine."""
        scalar = self.trace_for(Strategy.SCALAR)
        srv = self.trace_for(Strategy.SRV)
        ooo_speedup = simulate(scalar, warm=True).cycles / simulate(
            srv, warm=True
        ).cycles
        ino_speedup = (
            simulate_in_order(scalar, warm=True).cycles
            / simulate_in_order(srv, warm=True).cycles
        )
        assert ino_speedup > ooo_speedup

    def test_replays_tracked(self):
        trace = self.trace_for(Strategy.SRV, periodic_conflict_indices(N, 4))
        stats = simulate_in_order(trace, warm=True)
        assert stats.srv_replay_passes == N // 16


class TestRelaxedBarrier:
    def test_relaxed_is_faster_and_correct(self):
        program, mem, oracle = compiled()
        tracer = Tracer()
        run_program(program, mem, tracer=tracer)
        assert mem.load_array(mem.allocation("a")) == oracle["a"]
        base = simulate(tracer.ops, TABLE_I, warm=True)
        relaxed = simulate(
            tracer.ops, TABLE_I.with_overrides(srv_relax_barrier=True), warm=True
        )
        assert relaxed.cycles < base.cycles
        assert relaxed.barrier_cycles == 0
        assert base.barrier_cycles > 0


class TestTmMode:
    def tm_config(self):
        return TABLE_I.with_overrides(srv_tm_mode=True)

    def test_tm_mode_still_correct(self):
        x_vals = sparse_conflict_indices(N, 16, 0.5, seed=4)
        program, mem, oracle = compiled(x_vals=x_vals, config=self.tm_config())
        metrics, _ = run_program(program, mem, config=self.tm_config())
        assert mem.load_array(mem.allocation("a")) == oracle["a"]

    def test_war_forces_replay_in_tm_mode(self):
        """A WAR-only region: SRV needs no replay, version-less TM does."""
        from repro.isa import ProgramBuilder, imm, v, x

        def build(config):
            mem = MemoryImage()
            a = mem.alloc("a", 32, 4, init=list(range(32)))
            b = ProgramBuilder("war-only")
            b.mov(x(1), imm(a.base))
            b.srv_start()
            # figure 4's shape: the store executes first, the load then
            # reads bytes written by *later* lanes — forwarding must be
            # suppressed (WAR), which version-less TM can only achieve by
            # aborting the writing lanes.
            b.v_index(v(0), imm(100))
            b.v_store(v(0), x(1))             # writes a[0:16]
            b.v_load(v(1), x(1), offset=32)   # reads a[8:24]
            b.srv_end()
            b.halt()
            metrics, _ = run_program(b.build(), mem, config=config)
            return metrics, mem.load_array(a)

        srv_metrics, srv_out = build(TABLE_I)
        tm_metrics, tm_out = build(self.tm_config())
        assert srv_out == tm_out               # both correct
        assert srv_metrics.srv.replays == 0    # WAR is free under SRV
        assert tm_metrics.srv.replays >= 1     # TM aborts the writing lane
        assert tm_metrics.srv.tm_war_replays > 0

    def test_tm_never_fewer_replays(self):
        x_vals = sparse_conflict_indices(N, 16, 0.5, seed=8)
        _, mem1, _ = compiled(x_vals=x_vals)
        program, mem, oracle = compiled(x_vals=x_vals)
        srv_metrics, _ = run_program(program, mem)
        program2, mem2, _ = compiled(x_vals=x_vals)
        tm_metrics, _ = run_program(program2, mem2, config=self.tm_config())
        assert tm_metrics.srv.replays >= srv_metrics.srv.replays


class TestInterruptInjection:
    def run_with_interrupt(self, step, x_vals):
        loop = indirect_update()
        a_vals = list(range(N))
        mem = MemoryImage()
        mem.alloc("a", N, 4, init=a_vals)
        mem.alloc("x", N, 4, init=x_vals)
        program = compile_loop(loop, mem, N, Strategy.SRV)
        interp = Interpreter(program, mem, TABLE_I, interrupt_at_step=step)
        metrics = interp.run()
        oracle = scalar_reference(loop, {"a": a_vals, "x": x_vals}, N)
        return metrics, mem.load_array(mem.allocation("a")), oracle["a"]

    def test_interrupt_outside_region_is_noop(self):
        metrics, got, want = self.run_with_interrupt(1, list(range(N)))
        assert got == want
        assert metrics.srv.interrupts_taken == 0

    def test_interrupt_inside_region_preserves_semantics(self):
        # step 12 lands inside the first region body (after the compiled
        # prologue and the per-iteration scalar pointer/predicate setup)
        metrics, got, want = self.run_with_interrupt(
            12, periodic_conflict_indices(N, 4)
        )
        assert got == want
        assert metrics.srv.interrupts_taken == 1

    @pytest.mark.parametrize("step", list(range(1, 60, 3)))
    def test_interrupt_sweep_with_conflicts(self, step):
        """Correctness must hold wherever the context switch lands."""
        metrics, got, want = self.run_with_interrupt(
            step, periodic_conflict_indices(N, 4)
        )
        assert got == want

    def test_interrupt_costs_extra_passes(self):
        x_vals = list(range(N))
        clean, _, _ = self.run_with_interrupt(None, x_vals)
        hit, got, want = self.run_with_interrupt(7, x_vals)
        assert got == want
        if hit.srv.interrupts_taken:
            assert hit.srv.region_passes > clean.srv.region_passes


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bzip2" in out and "randacc" in out

    def test_loop_command(self, capsys):
        from repro.cli import main

        assert main(["loop", "perlbench", "slot_bump", "-n", "32"]) == 0
        out = capsys.readouterr().out
        assert "srv" in out and "True" in out

    def test_disasm_command(self, capsys):
        from repro.cli import main

        assert main(["disasm", "perlbench", "slot_bump", "srv", "-n", "32"]) == 0
        out = capsys.readouterr().out
        assert "srv_start" in out and "srv_end" in out

    def test_experiment_unknown(self, capsys):
        from repro.cli import main

        assert main(["experiment", "nope"]) == 2

    def test_experiment_runs(self, capsys):
        from repro.cli import main

        assert main(["experiment", "figure10", "-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
