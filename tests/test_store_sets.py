"""Tests for the store-set memory-dependence predictor."""

from repro.pipeline.store_sets import StoreSetPredictor


class TestColdBehaviour:
    def test_untrained_load_has_no_dependence(self):
        p = StoreSetPredictor()
        assert p.load_depends_on(0x40) is None

    def test_untrained_store_does_not_register(self):
        p = StoreSetPredictor()
        p.store_fetched(0x80, 5)
        assert p.load_depends_on(0x40) is None


class TestTraining:
    def test_violation_creates_dependence(self):
        p = StoreSetPredictor()
        p.record_violation(load_pc=0x40, store_pc=0x80)
        p.store_fetched(0x80, 7)
        assert p.load_depends_on(0x40) == 7

    def test_dependence_cleared_when_store_retires(self):
        p = StoreSetPredictor()
        p.record_violation(0x40, 0x80)
        p.store_fetched(0x80, 7)
        p.store_retired(0x80, 7)
        assert p.load_depends_on(0x40) is None

    def test_retire_of_stale_instance_keeps_newer(self):
        p = StoreSetPredictor()
        p.record_violation(0x40, 0x80)
        p.store_fetched(0x80, 7)
        p.store_fetched(0x80, 9)   # newer in-flight instance
        p.store_retired(0x80, 7)   # stale retire must not clear
        assert p.load_depends_on(0x40) == 9

    def test_merge_into_existing_set(self):
        p = StoreSetPredictor()
        p.record_violation(0x40, 0x80)
        p.record_violation(0x44, 0x80)  # second load joins the same set
        p.store_fetched(0x80, 3)
        assert p.load_depends_on(0x40) == 3
        assert p.load_depends_on(0x44) == 3

    def test_two_sets_merge_to_lower_id(self):
        """Merging reassigns only the two PCs involved (Chrysos & Emer):
        after merging, 0x40 and 0x84 share set 0 while 0x44 stays in set 1."""
        p = StoreSetPredictor()
        p.record_violation(0x40, 0x80)   # set 0
        p.record_violation(0x44, 0x84)   # set 1
        p.record_violation(0x40, 0x84)   # merge the pair into set 0
        p.store_fetched(0x84, 11)
        assert p.load_depends_on(0x40) == 11
        assert p.load_depends_on(0x44) is None

    def test_stats(self):
        p = StoreSetPredictor()
        p.record_violation(0x40, 0x80)
        p.store_fetched(0x80, 1)
        p.load_depends_on(0x40)
        assert p.stats.merges == 1
        assert p.stats.load_waits == 1


class TestAliasing:
    def test_pc_aliasing_within_table(self):
        """PCs separated by the table size share SSIT slots — the standard
        constructive-aliasing behaviour of the original design."""
        p = StoreSetPredictor(entries=16)
        p.record_violation(0x3, 0x8)
        p.store_fetched(0x8 + 16, 4)  # aliases with 0x8
        assert p.load_depends_on(0x3 + 16) == 4
