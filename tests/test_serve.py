"""Sweep-service unit tests (repro.serve).

Covers the pieces in isolation — job identity and backoff, the
write-ahead journal (including torn tails and rotation), the circuit
breaker's state machine under an injected clock, admission control and
the cache fast path, worker-side job execution — plus one end-to-end
pass over the HTTP front end.  Crash/hang/corruption integration lives
in ``test_serve_chaos.py``.
"""

import asyncio
import json
import os

import pytest

from repro.parallel.cache import result_cache
from repro.serve.breaker import CircuitBreaker
from repro.serve.jobs import (
    CHAOS_KINDS,
    PUBLIC_KINDS,
    backoff_delay,
    execute_job,
    job_id,
)
from repro.serve.journal import JobJournal
from repro.serve.service import ServeConfig, SweepService

LOOP_PAYLOAD = {"workload": "is", "loop": "is_key_rank", "n": 48}


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture(autouse=True)
def _isolated_cache():
    """Service construction flips the global cache's disk layer; keep
    each test hermetic."""
    cache = result_cache()
    saved = cache.disk_dir
    cache.clear_memory()
    yield
    cache.disk_dir = saved
    cache.clear_memory()


class TestJobIdentity:
    def test_job_id_is_deterministic(self):
        a = job_id("loop", {"n": 8}, "cli", 3)
        b = job_id("loop", {"n": 8}, "cli", 3)
        assert a == b
        assert a.startswith("loop-000003-")

    def test_job_id_distinguishes_sequence(self):
        assert job_id("loop", {}, "cli", 1) != job_id("loop", {}, "cli", 2)

    def test_backoff_deterministic_and_capped(self):
        delays = [backoff_delay("job-1", a, 0.05, 2.0) for a in range(12)]
        assert delays == [backoff_delay("job-1", a, 0.05, 2.0)
                          for a in range(12)]
        assert all(0.0 < d <= 2.0 for d in delays)
        assert delays[-1] == 2.0  # exponential growth reaches the cap

    def test_backoff_jitter_varies_by_job(self):
        assert backoff_delay("job-1", 0) != backoff_delay("job-2", 0)


class TestJournal:
    def _job(self, ident, status="queued", kind="loop"):
        from repro.serve.jobs import Job

        return Job(id=ident, kind=kind, payload={"n": 1}, status=status)

    def test_pending_survives_reload(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.record_accept(self._job("a"))
        journal.record_accept(self._job("b"))
        done = self._job("a", status="done")
        journal.record_start(done)
        journal.record_terminal(done)
        journal.close()

        reloaded = JobJournal(path)
        pending = reloaded.pending()
        assert [r["id"] for r in pending] == ["b"]
        assert pending[0]["payload"] == {"n": 1}
        assert reloaded.corrupt_lines == 0

    def test_torn_tail_is_counted_not_fatal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.record_accept(self._job("a"))
        journal.record_accept(self._job("b"))
        journal.close()
        with open(path, "ab") as fh:
            fh.write(b'{"event": "done", "id": "b"')  # kill mid-append

        reloaded = JobJournal(path)
        # the torn terminal never landed: both jobs still owed
        assert sorted(r["id"] for r in reloaded.pending()) == ["a", "b"]
        assert reloaded.corrupt_lines == 1

    def test_rotation_bounds_file_and_keeps_pending(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path, rotate_bytes=2048)
        journal.record_accept(self._job("keep"))
        for i in range(100):
            job = self._job(f"j{i}", status="done")
            journal.record_accept(job)
            journal.record_terminal(job)
        journal.close()
        assert os.path.getsize(path) < 2048 + 512  # compacted under load
        assert [r["id"] for r in JobJournal(path).pending()] == ["keep"]

    def test_compaction_is_atomic_format(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.record_accept(self._job("a"))
        journal.compact()
        journal.close()
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == 1 and lines[0]["event"] == "accept"

    def test_resumed_accept_not_reappended(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.record_accept(self._job("a"))
        size = os.path.getsize(path)
        journal.record_accept(self._job("a"), resumed=True)
        journal.close()
        assert os.path.getsize(path) == size  # no duplicate accept line


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.t = 5.0
        assert breaker.allow()           # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()       # everything else is shed

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.t = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_probe_failure_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=2.0, clock=clock)
        breaker.record_failure()         # open at t=0
        clock.t = 2.0
        assert breaker.allow()           # probe
        breaker.record_failure()         # back to open at t=2
        clock.t = 3.9
        assert not breaker.allow()
        clock.t = 4.0
        assert breaker.allow()


def _service(tmp_path=None, **overrides) -> SweepService:
    cache_dir = None
    if tmp_path is not None:
        cache_dir = str(tmp_path / "cache")
    defaults = dict(workers=1, cache_dir=cache_dir)
    defaults.update(overrides)
    return SweepService(ServeConfig(**defaults))


class TestAdmission:
    """submit() decisions, none of which need the pool running."""

    def test_unknown_kind_rejected_400(self):
        job = _service().submit("frobnicate", {})
        assert job.status == "rejected"
        assert job.error == {
            "status": 400, "reason": "unknown job kind 'frobnicate'",
        }

    def test_chaos_kind_needs_opt_in(self):
        service = _service()
        for kind in CHAOS_KINDS:
            assert service.submit(kind, {}).error["status"] == 400

    def test_inject_needs_opt_in(self):
        job = _service().submit(
            "loop", dict(LOOP_PAYLOAD, inject="force-replay")
        )
        assert job.error["status"] == 400

    def test_queue_full_sheds_429(self):
        service = _service(queue_limit=1)
        assert service.submit("loop", LOOP_PAYLOAD).status == "queued"
        job = service.submit("loop", LOOP_PAYLOAD)
        assert job.error["status"] == 429
        assert "load shed" in job.error["reason"]

    def test_client_quota_sheds_429(self):
        service = _service(client_quota=1)
        assert service.submit("loop", LOOP_PAYLOAD, "alice").status == "queued"
        assert service.submit(
            "loop", LOOP_PAYLOAD, "alice").error["status"] == 429
        # a different client is unaffected
        assert service.submit("loop", LOOP_PAYLOAD, "bob").status == "queued"

    def test_open_breaker_rejects_503(self):
        service = _service()
        breaker = service.breaker_for("loop")
        for _ in range(breaker.threshold):
            breaker.record_failure()
        job = service.submit("loop", LOOP_PAYLOAD)
        assert job.error["status"] == 503
        # other kinds have their own breaker and still queue
        assert service.submit("verify", {"workload": "is"}).status == "queued"

    def test_shutdown_rejects_503(self):
        service = _service()
        service._accepting = False
        assert service.submit("loop", LOOP_PAYLOAD).error["status"] == 503

    def test_rejections_are_journaled_nowhere(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        service = SweepService(
            ServeConfig(cache_dir=None), JobJournal(path)
        )
        service.submit("nope", {})
        service.journal.close()
        assert not os.path.exists(path) or os.path.getsize(path) == 0


class TestCacheFastPath:
    def _warm(self, tmp_path):
        from repro.compiler import Strategy
        from repro.experiments import runner
        from repro.serve.jobs import _find_spec

        runner.enable_disk_cache(str(tmp_path / "cache"))
        spec = _find_spec("is", "is_key_rank")
        runner.run_loop(spec, Strategy.SRV, n_override=48)

    def test_hit_answers_terminal_at_submit(self, tmp_path):
        self._warm(tmp_path)
        service = _service(tmp_path)
        job = service.submit("loop", LOOP_PAYLOAD)
        assert job.terminal and job.status == "done"
        assert job.cache_hit
        assert job.result["loop"] == "is_key_rank"
        assert job.result["correct"] is True
        assert service.counters["cache_hits"] == 1

    def test_hit_answers_even_with_breaker_open(self, tmp_path):
        self._warm(tmp_path)
        service = _service(tmp_path)
        breaker = service.breaker_for("loop")
        for _ in range(breaker.threshold):
            breaker.record_failure()
        # uncached requests are shed ...
        other = dict(LOOP_PAYLOAD, n=32)
        assert service.submit("loop", other).error["status"] == 503
        # ... but the store still answers what it knows
        assert service.submit("loop", LOOP_PAYLOAD).status == "done"

    def test_hit_answers_even_when_queue_full(self, tmp_path):
        self._warm(tmp_path)
        service = _service(tmp_path, queue_limit=0)
        assert service.submit("verify", {"workload": "is"}).error[
            "status"] == 429
        assert service.submit("loop", LOOP_PAYLOAD).status == "done"

    def test_miss_takes_the_queue(self, tmp_path):
        service = _service(tmp_path)
        job = service.submit("loop", LOOP_PAYLOAD)
        assert job.status == "queued" and not job.cache_hit


class TestExecuteJob:
    """Worker-side entry point, run in-process for shape checks."""

    def test_loop_result_shape(self, tmp_path):
        result = execute_job("loop", LOOP_PAYLOAD, str(tmp_path / "cache"))
        assert result["loop"] == "is_key_rank"
        assert result["correct"] is True
        assert result["cycles"] > 0
        assert result["failures"] == []

    def test_loop_populates_shared_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        execute_job("loop", LOOP_PAYLOAD, cache_dir)
        from repro.serve.chaos import cache_entry_paths

        assert cache_entry_paths(cache_dir)

    def test_verify_result_shape(self):
        result = execute_job(
            "verify", {"workload": "is", "n": 48}, None
        )
        assert result["loops"] == 1
        assert result["violations"] == 0

    def test_attrib_result_shape(self):
        result = execute_job("attrib", dict(LOOP_PAYLOAD), None)
        assert result["cycles"] > 0
        assert sum(result["buckets"].values()) == result["cycles"]

    def test_trace_result_shape(self):
        result = execute_job("trace", dict(LOOP_PAYLOAD), None)
        assert result["events"] > 0
        assert sum(result["event_counts"].values()) == result["events"]

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            execute_job("nope", {}, None)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            execute_job("experiment", {"name": "figure99"}, None)

    def test_injected_loop_reports_corruption(self, tmp_path):
        result = execute_job(
            "loop",
            dict(LOOP_PAYLOAD, inject="corrupt-store-data"),
            str(tmp_path / "cache"),
        )
        assert result["correct"] is False
        assert result["injected"] == ["corrupt-store-data"]
        # the corrupt run must not have been published in the cache
        from repro.serve.chaos import cache_entry_paths

        assert not cache_entry_paths(str(tmp_path / "cache"))


class TestHttpEndToEnd:
    def test_submit_status_stats_health(self, tmp_path):
        from repro.serve.http import (
            request,
            server_port,
            start_http_server,
            submit_job,
            wait_job,
        )

        async def scenario():
            service = _service(tmp_path, workers=1)
            await service.start()
            server = await start_http_server(service)
            port = server_port(server)
            loop = asyncio.get_running_loop()

            def rpc(fn, *args, **kwargs):
                return loop.run_in_executor(
                    None, lambda: fn("127.0.0.1", port, *args, **kwargs)
                )

            status, body = await rpc(submit_job, "loop", LOOP_PAYLOAD)
            assert status == 202 and body["status"] == "queued"
            final = await rpc(wait_job, body["id"])
            assert final["status"] == "done"
            assert final["result"]["correct"] is True

            # warm: the identical request answers 200 immediately
            status, hit = await rpc(submit_job, "loop", LOOP_PAYLOAD)
            assert status == 200 and hit["cache_hit"]
            assert hit["result"] == final["result"]

            status, health = await rpc(request, "GET", "/healthz")
            assert status == 200 and health["ok"]
            status, stats = await rpc(request, "GET", "/stats")
            assert status == 200
            assert stats["counters"]["done"] == 1
            assert stats["counters"]["cache_hits"] == 1
            assert "shard" in stats["shard_table"]

            status, _ = await rpc(request, "GET", "/jobs/none-such")
            assert status == 404
            status, _ = await rpc(request, "DELETE", "/jobs")
            assert status == 405
            status, _ = await rpc(request, "GET", "/nope")
            assert status == 404
            status, err = await rpc(request, "POST", "/jobs", {"no": "kind"})
            assert status == 400 and "kind" in err["error"]

            server.close()
            await server.wait_closed()
            await service.stop()

        asyncio.run(scenario())

    def test_malformed_json_is_400(self, tmp_path):
        async def scenario():
            from repro.serve.http import server_port, start_http_server

            service = _service(tmp_path)
            server = await start_http_server(service)
            port = server_port(server)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            body = b"{not json"
            writer.write(
                b"POST /jobs HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body
            )
            await writer.drain()
            response = await reader.read()
            assert b"400" in response.split(b"\r\n", 1)[0]
            writer.close()
            server.close()
            await server.wait_closed()
            await service.stop()

        asyncio.run(scenario())

    def test_oversized_body_is_413(self, tmp_path):
        async def scenario():
            from repro.serve.http import server_port, start_http_server

            service = _service(tmp_path)
            server = await start_http_server(service)
            port = server_port(server)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
            )
            await writer.drain()
            response = await reader.read()
            assert b"413" in response.split(b"\r\n", 1)[0]
            writer.close()
            server.close()
            await server.wait_closed()
            await service.stop()

        asyncio.run(scenario())
