"""Two-engine equivalence: the numpy lane-batched engine vs the Python path.

The lane-batched engine (:mod:`repro.emu.lanes`) promises **bit-identical**
results to the per-lane Python interpreter.  These tests pin that contract
from three directions:

* generated kernels across the knob space (dependence density/distance,
  gather/scatter, DOWN-direction regions, predication boundaries) must
  produce identical final memory images, emulator metrics, register files
  and invariant-monitor verdicts under both engines;
* every loop of the 28-loop paper suite must match under both engines and
  both vector strategies;
* a paper figure table regenerated under each engine must be byte-identical.

Because the engines are interchangeable, ``lane_engine`` is deliberately
**excluded** from the result-cache key (like ``trace_mode``): a cached
result produced by either engine is valid for both.  The exclusion is only
sound while the identity above holds, so the cache test below documents
and enforces the pairing — if an engine divergence ever slips in, the
equivalence tests fail first and the exclusion must be revisited.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.common.bitvec import BitVector
from repro.compiler import Strategy, compile_loop
from repro.emu import run_program
from repro.emu.lanes import ENGINES, resolve_engine
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import runner as runner_mod
from repro.gen.campaign import FuzzConfig, _lane_engine_diff_check
from repro.gen.emitter import generate_kernel, kernel_seed
from repro.gen.knobs import Knobs
from repro.memory import MemoryImage
from repro.workloads import all_loops

# ---------------------------------------------------------------------------
# engine resolution
# ---------------------------------------------------------------------------


def test_resolve_engine_defaults_and_validates():
    assert resolve_engine(None) in ENGINES
    assert resolve_engine("python") == "python"
    assert resolve_engine("numpy") == "numpy"  # numpy imported above
    with pytest.raises(ValueError, match="unknown lane engine"):
        resolve_engine("cuda")


# ---------------------------------------------------------------------------
# generated kernels: both engines, full functional identity
# ---------------------------------------------------------------------------

#: Directed knob sets covering the axes where the engines could plausibly
#: diverge: dependence-driven replays, indirect accesses, DOWN-direction
#: lane mirroring, and merging predication under partial masks.
DIRECTED_KNOBS = (
    Knobs(dep_density=0.8, dep_distance=1),        # dense short-range RAW
    Knobs(dep_density=0.5, dep_distance=15),       # longest-range deps
    Knobs(alias_rate=0.7, dep_density=0.2),        # aliasing store targets
    Knobs(gather_ratio=1.0, scatter=True),         # all-indirect kernels
    Knobs(gather_ratio=0.0, scatter=False),        # all-contiguous kernels
    Knobs(stride=4),                               # strided -> gather lowering
    Knobs(direction="down"),                       # DOWN-direction regions
    Knobs(direction="down", dep_density=0.6, dep_distance=2),
    Knobs(predication_rate=1.0),                   # fully predicated body
    Knobs(predication_rate=0.5, dep_density=0.3),  # predication + replay
    Knobs(broadcast_rate=0.8),                     # broadcast-heavy reads
    Knobs(elem_size=8, gather_ratio=0.7),          # 8-byte elements
    Knobs(statements=3, reads_per_stmt=4),         # widest bodies
    Knobs(region_len=24),                          # longest SRV-regions
    Knobs(n=64, dep_density=1.0, dep_distance=1),  # every lane conflicts
)

KERNEL_CASES = [
    pytest.param(kernel_seed(97, i), None, id=f"sampled-{i}")
    for i in range(15)
] + [
    pytest.param(1_000 + i, knobs, id=f"directed-{i}")
    for i, knobs in enumerate(DIRECTED_KNOBS)
]


@pytest.mark.parametrize("seed,knobs", KERNEL_CASES)
def test_generated_kernel_identical_between_engines(seed, knobs):
    kernel = generate_kernel(seed, knobs)
    n = min(96, kernel.spec.n)
    ok, detail = _lane_engine_diff_check(
        kernel.spec, FuzzConfig(lane_engine_diff=True), n
    )
    assert ok, f"{kernel.name}: {detail}"


# ---------------------------------------------------------------------------
# the 28-loop paper suite: both engines, both vector strategies
# ---------------------------------------------------------------------------

SUITE = [
    pytest.param(spec, id=f"{workload.name}/{spec.name}")
    for workload, spec in all_loops()
]


def _run_engine(spec, strategy, engine, n):
    arrays = spec.arrays(0)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(spec.loop, mem, n, strategy, params=spec.params)
    metrics, state = run_program(program, mem, lane_engine=engine)
    return metrics, state.registers_snapshot(), mem.snapshot()


@pytest.mark.parametrize("spec", SUITE)
def test_suite_loop_identical_between_engines(spec):
    n = min(64, spec.n)
    for strategy in (Strategy.SRV, Strategy.SVE):
        results = [
            _run_engine(spec, strategy, engine, n) for engine in ENGINES
        ]
        first, rest = results[0], results[1:]
        for other in rest:
            assert other[0] == first[0], f"{strategy}: metrics diverge"
            assert other[1] == first[1], f"{strategy}: registers diverge"
            assert other[2] == first[2], f"{strategy}: memory diverges"


# ---------------------------------------------------------------------------
# figure tables: byte-identical under either engine
# ---------------------------------------------------------------------------


def test_figure_table_identical_between_engines():
    tables = {}
    for engine in ENGINES:
        runner_mod.clear_cache()  # a warm cache would make this vacuous
        runner_mod.set_default_lane_engine(engine)
        try:
            tables[engine] = ALL_EXPERIMENTS["figure9"](
                n_override=128
            ).format_table()
        finally:
            runner_mod.set_default_lane_engine(None)
    runner_mod.clear_cache()
    assert tables["python"] == tables["numpy"]
    assert len(tables["python"].splitlines()) > 3  # rows, not a header stub


# ---------------------------------------------------------------------------
# cache-key contract: lane_engine is output-invariant and excluded
# ---------------------------------------------------------------------------


def test_lane_engine_excluded_from_result_cache_key(monkeypatch):
    """A run cached under one engine must satisfy the other engine's query.

    This is the documented design decision: because the engines are
    bit-identical (tests above), ``lane_engine`` — like ``trace_mode`` —
    does not participate in the result-cache key.  The monkeypatched
    ``_execute`` proves the second call is a genuine cache hit.
    """
    spec = all_loops()[0][1]
    runner_mod.clear_cache()
    first = runner_mod.run_loop(
        spec, Strategy.SRV, n_override=32, lane_engine="python"
    )

    def no_execute(*args, **kwargs):
        raise AssertionError(
            "run_loop re-executed: lane_engine leaked into the cache key"
        )

    monkeypatch.setattr(runner_mod, "_execute", no_execute)
    second = runner_mod.run_loop(
        spec, Strategy.SRV, n_override=32, lane_engine="numpy"
    )
    runner_mod.clear_cache()
    assert second.emu == first.emu
    assert second.pipe == first.pipe
    assert second.correct == first.correct


def test_unavailable_engine_fails_fast_before_cache_lookup():
    with pytest.raises(ValueError, match="unknown lane engine"):
        runner_mod.run_loop(
            all_loops()[0][1], Strategy.SRV, n_override=32,
            lane_engine="fortran",
        )


# ---------------------------------------------------------------------------
# BitVector numpy bridge (used by the vectorised LSU paths)
# ---------------------------------------------------------------------------


def test_bitvector_bool_array_roundtrip():
    for width in (1, 7, 8, 63, 64, 65, 128):
        mask = (1 << width) - 1
        patterns = (0, mask, 0x5A5A_5A5A_5A5A_5A5A_5A5A & mask,
                    (1 << (width - 1)) | 1)
        for bits in patterns:
            bv = BitVector(width, bits & mask)
            flags = bv.to_bool_array()
            assert len(flags) == width
            assert BitVector.from_bool_array(flags) == bv


def test_bitvector_from_bool_array_matches_from_indices():
    flags = np.zeros(64, dtype=np.bool_)
    flags[[0, 3, 17, 63]] = True
    assert (BitVector.from_bool_array(flags)
            == BitVector.from_indices(64, [0, 3, 17, 63]))
