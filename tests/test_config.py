"""Tests for the machine configuration (Table I of the paper)."""

import pytest

from repro.common.config import (
    TABLE_I,
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
)


class TestTableI:
    """The defaults must match Table I exactly."""

    def test_core(self):
        assert TABLE_I.clock_ghz == 3.0
        assert TABLE_I.pipeline_width == 8

    def test_structures(self):
        assert TABLE_I.lsu_entries == 64
        assert TABLE_I.iq_entries == 32
        assert TABLE_I.rob_entries == 400

    def test_vector_length(self):
        # "fixing the vector length to 16 elements (agnostic of the element
        # size) for all simulations"
        assert TABLE_I.vector_lanes == 16

    def test_ports(self):
        ports = TABLE_I.ports
        assert (ports.saq_reads, ports.saq_writes, ports.saq_cams) == (2, 2, 2)
        assert (ports.sdq_reads, ports.sdq_writes) == (5, 2)
        assert (ports.vec_rf_reads, ports.vec_rf_writes) == (6, 2)
        assert ports.cache_read_write == 1 and ports.cache_read_only == 1

    def test_issue_limits(self):
        issue = TABLE_I.issue
        assert issue.vec_int_ops == 2
        assert issue.vec_other_ops == 1
        assert issue.vec_loads == 2
        assert issue.vec_stores == 1

    def test_branch_predictor(self):
        bp = TABLE_I.branch
        assert bp.local_entries == 64
        assert bp.global_entries == 1024
        assert bp.btb_entries == 128
        assert bp.chooser_entries == 1024
        assert bp.ras_entries == 8

    def test_caches(self):
        l1, l2 = TABLE_I.memory.l1, TABLE_I.memory.l2
        assert l1.size_bytes == 32 * 1024 and l1.associativity == 4
        assert l1.hit_latency == 2
        assert l2.size_bytes == 1024 * 1024 and l2.associativity == 16
        assert l2.hit_latency == 7

    def test_alignment_region(self):
        # Section IV-A's example uses 64-byte alignment regions.
        assert TABLE_I.alignment_region_bytes == 64


class TestValidation:
    def test_cache_shape_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 1)

    def test_num_sets(self):
        assert CacheConfig(32 * 1024, 4, 2).num_sets == 128

    def test_nonpositive_lanes_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(vector_lanes=0)

    def test_alignment_power_of_two(self):
        with pytest.raises(ValueError):
            MachineConfig(alignment_region_bytes=48)

    def test_with_overrides(self):
        small = TABLE_I.with_overrides(lsu_entries=8)
        assert small.lsu_entries == 8
        assert small.rob_entries == TABLE_I.rob_entries
        assert TABLE_I.lsu_entries == 64  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            TABLE_I.lsu_entries = 128  # type: ignore[misc]

    def test_branch_predictor_defaults_standalone(self):
        bp = BranchPredictorConfig()
        assert bp.mispredict_penalty > 0
