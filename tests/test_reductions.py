"""Tests for reduction statements and their SRV legality boundary."""

import pytest

from repro.common.errors import CompilerError
from repro.compiler import (
    Affine,
    BinOp,
    Const,
    Indirect,
    Loop,
    Read,
    Reduce,
    Store,
    Strategy,
    compile_loop,
    scalar_reference,
)
from repro.emu import run_program
from repro.memory import MemoryImage

N = 48


def sum_loop():
    """acc[0] += a[i] * 2 — a clean, vectorisable reduction."""
    return Loop(
        "sum", {"a": 4, "acc": 8},
        [Reduce("acc", "+", BinOp("*", Read("a", Affine()), Const(2)))],
    )


def minmax_loop():
    return Loop(
        "minmax", {"a": 4, "lo": 4, "hi": 4},
        [
            Reduce("lo", "min", Read("a", Affine())),
            Reduce("hi", "max", Read("a", Affine())),
        ],
    )


def unsafe_reduction_loop():
    """Reduction + an unknown-dependence store: not SRV-vectorisable."""
    return Loop(
        "unsafe_red", {"a": 4, "x": 4, "acc": 8},
        [
            Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(1))),
            Reduce("acc", "+", Read("a", Affine())),
        ],
    )


def run_strategy(loop, arrays, strategy, n=N):
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), loop.arrays[name], init=init)
    program = compile_loop(loop, mem, n, strategy)
    metrics, _ = run_program(program, mem)
    return {name: mem.load_array(mem.allocation(name)) for name in arrays}, metrics, program


class TestIr:
    def test_invalid_op_rejected(self):
        with pytest.raises(CompilerError):
            Reduce("acc", "*", Const(1))

    def test_unknown_array_rejected(self):
        with pytest.raises(CompilerError):
            Loop("bad", {"a": 4}, [Reduce("acc", "+", Read("a", Affine()))])

    def test_memory_reference_count_includes_accumulator(self):
        assert sum_loop().memory_reference_count() == 3  # read + acc ld/st

    def test_oracle_semantics(self):
        arrays = {"a": [1, -2, 3, 4], "acc": [10]}
        out = scalar_reference(sum_loop(), arrays, 4)
        assert out["acc"] == [10 + 2 * (1 - 2 + 3 + 4)]

    def test_oracle_minmax(self):
        arrays = {"a": [5, -3, 9, 0], "lo": [100], "hi": [-100]}
        out = scalar_reference(minmax_loop(), arrays, 4)
        assert out["lo"] == [-3] and out["hi"] == [9]


class TestCodegen:
    @pytest.mark.parametrize("strategy", [Strategy.SCALAR, Strategy.SVE])
    def test_sum_matches_oracle(self, strategy):
        arrays = {"a": [(7 * i - 20) % 101 for i in range(N)], "acc": [5]}
        ref = scalar_reference(sum_loop(), arrays, N)
        out, _, _ = run_strategy(sum_loop(), arrays, strategy)
        assert out["acc"] == ref["acc"]

    @pytest.mark.parametrize("strategy", [Strategy.SCALAR, Strategy.SVE])
    def test_minmax_matches_oracle(self, strategy):
        arrays = {
            "a": [((i * 37) % 200) - 100 for i in range(N)],
            "lo": [2**31 - 1],
            "hi": [-(2**31)],
        }
        ref = scalar_reference(minmax_loop(), arrays, N)
        out, _, _ = run_strategy(minmax_loop(), arrays, strategy)
        assert out["lo"] == ref["lo"] and out["hi"] == ref["hi"]

    def test_sve_vectorises_clean_reduction(self):
        arrays = {"a": list(range(N)), "acc": [0]}
        _, metrics, _ = run_strategy(sum_loop(), arrays, Strategy.SVE)
        assert metrics.vector_instructions > 0

    def test_partial_tail_group(self):
        n = 21  # not a multiple of the vector length
        arrays = {"a": list(range(100)), "acc": [3]}
        ref = scalar_reference(sum_loop(), arrays, n)
        out, _, _ = run_strategy(sum_loop(), arrays, Strategy.SVE, n=n)
        assert out["acc"] == ref["acc"]


class TestSrvLegality:
    def test_region_codegen_rejects_reductions(self):
        from repro.compiler.codegen import LoopCodeGenerator

        mem = MemoryImage()
        mem.alloc("a", N, 4, init=range(N))
        mem.alloc("acc", 1, 8, init=[0])
        gen = LoopCodeGenerator(sum_loop(), mem, N)
        with pytest.raises(CompilerError):
            gen.vector_program(srv=True)

    def test_srv_strategy_vectorises_clean_reduction_without_region(self):
        arrays = {"a": list(range(N)), "acc": [0]}
        out, metrics, program = run_strategy(sum_loop(), arrays, Strategy.SRV)
        assert metrics.vector_instructions > 0
        assert program.region_spans() == []  # no srv_start emitted
        assert out["acc"][0] == 2 * sum(range(N))

    def test_srv_strategy_falls_back_scalar_for_unsafe_reduction(self):
        arrays = {
            "a": list(range(N)),
            "x": list(range(N)),
            "acc": [0],
        }
        ref = scalar_reference(unsafe_reduction_loop(), arrays, N)
        out, metrics, program = run_strategy(
            unsafe_reduction_loop(), arrays, Strategy.SRV
        )
        assert metrics.vector_instructions == 0  # scalar fallback
        assert out["a"] == ref["a"] and out["acc"] == ref["acc"]

    def test_flexvec_falls_back_for_reductions(self):
        arrays = {"a": list(range(N)), "x": list(range(N)), "acc": [0]}
        ref = scalar_reference(unsafe_reduction_loop(), arrays, N)
        out, metrics, _ = run_strategy(
            unsafe_reduction_loop(), arrays, Strategy.FLEXVEC
        )
        assert metrics.vector_instructions == 0
        assert out["acc"] == ref["acc"]
