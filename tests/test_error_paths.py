"""End-to-end coverage of the simulator's failure paths.

The happy paths are exercised everywhere; these tests drive the error
machinery the hardened runner depends on: LSU overflow with and without
the sequential fallback, nested-region detection, and the replay bound.
"""

import pytest

from repro.common.config import TABLE_I
from repro.common.errors import (
    IsaError,
    LsuOverflowError,
    NestedSrvRegionError,
    ReplayBoundExceededError,
)
from repro.compiler import Strategy
from repro.emu import run_program
from repro.experiments import runner
from repro.isa import ProgramBuilder, imm, v, x
from repro.lsu.entries import AccessType, LsuEntry
from repro.lsu.unit import LoadStoreUnit
from repro.memory import MemoryImage
from repro.srv.engine import SrvEngine
from repro.workloads import by_name

LANES = TABLE_I.vector_lanes


def _gather_loop_program(mem: MemoryImage, n: int) -> "Program":
    """One SRV-region with a gather + scatter (2 * lanes LSU entries)."""
    a = mem.allocation("a")
    xs = mem.allocation("x")
    b = ProgramBuilder("gather_loop")
    b.mov(x(1), imm(a.base))
    b.mov(x(2), imm(xs.base))
    b.mov(x(3), imm(0))
    b.mov(x(4), imm(n))
    b.label("Loop")
    b.shl(x(7), x(3), imm(2))
    b.add(x(6), x(2), x(7))
    b.srv_start()
    b.v_load(v(1), x(6))
    b.v_gather(v(0), x(1), v(1))
    b.v_add(v(0), v(0), imm(1))
    b.v_scatter(v(0), x(1), v(1))
    b.srv_end()
    b.add(x(3), x(3), imm(LANES))
    b.blt(x(3), x(4), "Loop")
    b.halt()
    return b.build()


def _gather_memory(n: int) -> MemoryImage:
    mem = MemoryImage()
    mem.alloc("a", n, 4, init=list(range(n)))
    mem.alloc("x", n, 4, init=[(i * 7) % n for i in range(n)])
    return mem


class TestLsuOverflow:
    def test_sequential_fallback_preserves_correctness(self):
        """Demand above capacity degrades to the III-D7 fallback, not an error."""
        n = LANES
        mem = _gather_memory(n)
        program = _gather_loop_program(mem, n)
        # gather + scatter demand 2 * lanes entries; force an overflow
        tiny = TABLE_I.with_overrides(lsu_entries=LANES)
        metrics, _ = run_program(program, mem, config=tiny)
        assert metrics.srv.lsu_fallbacks == 1
        got = mem.load_array(mem.allocation("a"))
        want = list(range(n))
        xs = [(i * 7) % n for i in range(n)]
        for i in range(n):
            want[xs[i]] += 1
        assert got == want

    def test_lsu_unit_raises_without_fallback(self):
        """The hardware LSU has no fallback: in-region overflow raises."""
        lsu = LoadStoreUnit(TABLE_I.with_overrides(lsu_entries=2))
        lsu.begin_region()
        for srv_id in range(2):
            entry = LsuEntry.make(
                srv_id=srv_id, is_store=True, access=AccessType.SCALAR,
                addr=0x1000 + 64 * srv_id, size=4, elem=4, lane=0,
                lanes_covered=1, region_bytes=64,
            )
            lsu.issue_store(entry)
        overflow = LsuEntry.make(
            srv_id=2, is_store=True, access=AccessType.SCALAR,
            addr=0x2000, size=4, elem=4, lane=0, lanes_covered=1,
            region_bytes=64,
        )
        with pytest.raises(LsuOverflowError):
            lsu.issue_store(overflow)

    def test_run_loop_degrades_on_timing_overflow(self, monkeypatch):
        """A cycle-model overflow re-runs with forced sequential fallback."""
        spec = by_name("hmmer").loops[0]
        runner.clear_cache()
        real_simulate = runner.simulate
        real_streaming = runner.simulate_streaming

        def overflowing_simulate(trace, config=TABLE_I, **kwargs):
            if not config.srv_force_sequential:
                raise LsuOverflowError("synthetic overflow")
            return real_simulate(trace, config=config, **kwargs)

        def overflowing_streaming(program, memory, config=TABLE_I, **kwargs):
            if not config.srv_force_sequential:
                raise LsuOverflowError("synthetic overflow")
            return real_streaming(program, memory, config, **kwargs)

        monkeypatch.setattr(runner, "simulate", overflowing_simulate)
        monkeypatch.setattr(runner, "simulate_streaming", overflowing_streaming)
        run = runner.run_loop(spec, Strategy.SRV, n_override=64)
        assert run.correct
        assert run.pipe is not None
        assert len(run.failures) == 1
        assert run.failures[0].degraded
        assert run.failures[0].error == "LsuOverflowError"
        assert run.emu.srv.lsu_fallbacks > 0
        runner.clear_cache()

    def test_run_loop_raises_without_degradation(self, monkeypatch):
        spec = by_name("hmmer").loops[0]
        runner.clear_cache()

        def overflowing_simulate(trace, config=TABLE_I, **kwargs):
            raise LsuOverflowError("synthetic overflow")

        def overflowing_streaming(program, memory, config=TABLE_I, **kwargs):
            raise LsuOverflowError("synthetic overflow")

        monkeypatch.setattr(runner, "simulate", overflowing_simulate)
        monkeypatch.setattr(runner, "simulate_streaming", overflowing_streaming)
        with pytest.raises(LsuOverflowError):
            runner.run_loop(
                spec, Strategy.SRV, n_override=64,
                degrade_lsu_overflow=False,
            )
        runner.clear_cache()


class TestNestedRegion:
    def test_engine_rejects_nested_start(self):
        engine = SrvEngine(lanes=LANES)
        engine.start_region(0x40)
        with pytest.raises(NestedSrvRegionError):
            engine.start_region(0x80)

    def test_builder_rejects_nested_start(self):
        b = ProgramBuilder("nested")
        b.mov(x(1), imm(0))
        b.srv_start()
        b.srv_start()
        b.v_load(v(0), x(1))
        b.srv_end()
        b.srv_end()
        b.halt()
        with pytest.raises(IsaError, match="nested"):
            b.build()

    def test_builder_rejects_unmatched_end(self):
        b = ProgramBuilder("unmatched")
        b.srv_end()
        b.halt()
        with pytest.raises(IsaError, match="srv_end without srv_start"):
            b.build()


class TestReplayBound:
    def test_engine_enforces_lanes_minus_one(self):
        engine = SrvEngine(lanes=4)
        engine.start_region(0x40)
        with pytest.raises(ReplayBoundExceededError):
            for _ in range(4):
                engine.record_violation({1, 2})
                engine.end_region()

    def test_engine_bound_can_be_waived(self):
        engine = SrvEngine(lanes=4, enforce_bound=False)
        engine.start_region(0x40)
        for _ in range(8):
            engine.record_violation({1})
            engine.end_region()
        assert engine.rollbacks_this_region == 8

    def test_emulator_bound_via_fault_injection(self):
        """End-to-end: a region forced to replay forever hits the bound."""
        from repro.verify import faults
        from repro.verify.faults import FaultClass, FaultPlan, FaultSpec

        n = LANES
        mem = _gather_memory(n)
        program = _gather_loop_program(mem, n)
        plan = FaultPlan([FaultSpec(FaultClass.FORCE_REPLAY, repeat=True)])
        with faults.inject(plan):
            with pytest.raises(ReplayBoundExceededError):
                run_program(program, mem)
