"""Tests for pipeline resource trackers (ports and capacity buffers)."""

import pytest

from repro.pipeline.resources import CapacityTracker, PortPool


class TestPortPool:
    def test_slots_within_limit_share_cycle(self):
        pool = PortPool({"load": 2})
        assert pool.reserve("load", 5) == 5
        assert pool.reserve("load", 5) == 5
        assert pool.reserve("load", 5) == 6  # third load spills to next cycle

    def test_later_ready_time_respected(self):
        pool = PortPool({"store": 1})
        assert pool.reserve("store", 3) == 3
        assert pool.reserve("store", 10) == 10

    def test_backfill_not_allowed_before_ready(self):
        pool = PortPool({"store": 1})
        pool.reserve("store", 5)
        assert pool.reserve("store", 4) == 4  # earlier cycle still free

    def test_kinds_isolated(self):
        pool = PortPool({"load": 1, "store": 1})
        assert pool.reserve("load", 2) == 2
        assert pool.reserve("store", 2) == 2

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            PortPool({"load": 0})

    def test_usage_query(self):
        pool = PortPool({"load": 2})
        pool.reserve("load", 7)
        assert pool.usage_at("load", 7) == 1
        assert pool.usage_at("load", 8) == 0


class TestCapacityTracker:
    def test_under_capacity_no_stall(self):
        t = CapacityTracker(4)
        for i in range(4):
            assert t.allocate(i) == i
            t.release(i + 100)

    def test_at_capacity_waits_for_release(self):
        t = CapacityTracker(2)
        assert t.allocate(0) == 0
        t.release(10)
        assert t.allocate(1) == 1
        t.release(20)
        # full: next allocation waits for the earliest release (10)
        assert t.allocate(2) == 10
        t.release(30)
        assert t.allocate(5) == 20

    def test_ready_after_release_no_stall(self):
        t = CapacityTracker(1)
        t.allocate(0)
        t.release(5)
        assert t.allocate(50) == 50

    def test_stall_cycles_accumulated(self):
        t = CapacityTracker(1)
        t.allocate(0)
        t.release(10)
        t.allocate(2)
        assert t.stall_cycles == 8

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CapacityTracker(0)
