"""Tests for the cycle-approximate pipeline model."""

import pytest

from repro.common.config import TABLE_I
from repro.common.rng import periodic_conflict_indices
from repro.emu import run_program
from repro.isa import CmpOpcode, ProgramBuilder, imm, p, v, x
from repro.isa.instructions import ScalarALU, ScalarOpcode, VecALU, VecOpcode
from repro.memory import MemoryImage
from repro.pipeline import OpClass, PipelineModel, Tracer, simulate
from repro.pipeline.deps import LATENCY, classify, instruction_regs

LANES = TABLE_I.vector_lanes


def trace_of(builder, mem=None, config=TABLE_I):
    mem = mem or MemoryImage()
    tracer = Tracer()
    run_program(builder.build(), mem, config=config, tracer=tracer)
    return tracer.ops


class TestDeps:
    def test_scalar_alu_regs(self):
        srcs, dsts = instruction_regs(ScalarALU(ScalarOpcode.ADD, x(1), x(2), x(3)))
        assert set(srcs) == {("x", 2), ("x", 3)}
        assert dsts == (("x", 1),)

    def test_immediate_not_a_register(self):
        srcs, _ = instruction_regs(ScalarALU(ScalarOpcode.ADD, x(1), x(2), imm(5)))
        assert srcs == (("x", 2),)

    def test_merging_predication_reads_destination(self):
        """Section III-D5: predicated vector writes read the old dest."""
        inst = VecALU(VecOpcode.ADD, v(1), v(2), v(3), pred=p(1))
        srcs, dsts = instruction_regs(inst)
        assert ("v", 1) in srcs
        assert dsts == (("v", 1),)

    def test_unpredicated_write_does_not_read_destination(self):
        inst = VecALU(VecOpcode.ADD, v(1), v(2), v(3))
        srcs, _ = instruction_regs(inst)
        assert ("v", 1) not in srcs

    def test_classification(self):
        from repro.isa.instructions import (
            Branch,
            BranchCond,
            SrvEnd,
            VecLoadGather,
            VecStoreContig,
        )

        assert classify(ScalarALU(ScalarOpcode.MUL, x(1), x(2), x(3))) is OpClass.SCALAR_MUL
        assert classify(VecALU(VecOpcode.ADD, v(1), v(2), v(3))) is OpClass.VEC_INT
        assert classify(VecALU(VecOpcode.FMA, v(1), v(2), v(3), v(4))) is OpClass.VEC_OTHER
        assert classify(VecLoadGather(v(1), x(1), v(2))) is OpClass.VEC_LOAD
        assert classify(VecStoreContig(v(1), x(1))) is OpClass.VEC_STORE
        assert classify(Branch(BranchCond.NE, x(1), imm(0), "a")) is OpClass.BRANCH
        assert classify(SrvEnd()) is OpClass.SRV_END

    def test_all_latencies_defined(self):
        for op_class in OpClass:
            assert op_class in LATENCY


class TestBasicTiming:
    def test_independent_ops_pipeline(self):
        """A run of independent scalar adds should approach width-limited
        throughput, far above 1 op/cycle."""
        b = ProgramBuilder()
        for i in range(4):
            b.mov(x(i + 1), imm(i))
        for _ in range(50):
            for i in range(4):
                b.add(x(i + 1), x(i + 1), imm(1))
        b.halt()
        stats = simulate(trace_of(b))
        assert stats.instructions == 205
        assert stats.ipc > 2.0

    def test_dependent_chain_serialises(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(0))
        for _ in range(100):
            b.add(x(1), x(1), imm(1))
        b.halt()
        stats = simulate(trace_of(b))
        # each add waits for the previous: >= 100 cycles
        assert stats.cycles >= 100

    def test_mul_latency_longer_than_add(self):
        def chain(method):
            b = ProgramBuilder()
            b.mov(x(1), imm(1))
            for _ in range(50):
                getattr(b, method)(x(1), x(1), imm(1))
            b.halt()
            return simulate(trace_of(b)).cycles

        assert chain("mul") > chain("add")

    def test_cycles_positive_for_empty_work(self):
        b = ProgramBuilder()
        b.halt()
        stats = simulate(trace_of(b))
        assert stats.cycles >= 1
        assert stats.instructions == 1


class TestBranchTiming:
    def loop_cycles(self, iters):
        b = ProgramBuilder()
        b.mov(x(1), imm(0))
        b.label("top")
        b.add(x(1), x(1), imm(1))
        b.blt(x(1), imm(iters), "top")
        b.halt()
        return simulate(trace_of(b))

    def test_predictable_loop_fast(self):
        stats = self.loop_cycles(200)
        assert stats.branch.lookups == 200
        # after warm-up the back edge is predicted; mispredict rate is low
        assert stats.branch.mispredict_rate < 0.1

    def test_mispredicts_cost_cycles(self):
        few = self.loop_cycles(8)
        # per-iteration cost should drop once the predictor warms up
        many = self.loop_cycles(400)
        assert many.cycles / 400 < few.cycles / 8


class TestMemoryTiming:
    def test_load_hits_after_warm(self):
        mem = MemoryImage()
        a = mem.alloc("a", 64, 4, init=range(64))
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base))
        for i in range(16):
            b.load(x(2), x(1), 4 * i, elem=4)
        b.halt()
        cold = simulate(trace_of(b, mem.clone()))
        warm = simulate(trace_of(b, mem.clone()), warm=True)
        assert warm.cycles < cold.cycles

    def test_gather_cracking_costs_port_cycles(self):
        mem = MemoryImage()
        a = mem.alloc("a", 64, 4, init=range(64))
        idx = mem.alloc("idx", LANES, 4, init=range(LANES))

        def prog(gather):
            b = ProgramBuilder()
            b.mov(x(1), imm(a.base)).mov(x(2), imm(idx.base))
            for _ in range(10):
                if gather:
                    b.v_load(v(1), x(2))
                    b.v_gather(v(2), x(1), v(1))
                else:
                    b.v_load(v(1), x(2))
                    b.v_load(v(2), x(1))
            b.halt()
            return b

        gather_c = simulate(trace_of(prog(True), mem.clone()), warm=True).cycles
        contig_c = simulate(trace_of(prog(False), mem.clone()), warm=True).cycles
        # 16 micro-ops through 2 load ports vs 1 slot: much slower
        assert gather_c > contig_c + 40

    def test_store_set_squash_and_learning(self):
        """A scalar loop with a store feeding the next iteration's load:
        first encounter squashes, the predictor then serialises them."""
        mem = MemoryImage()
        a = mem.alloc("a", 4, 4, init=[0, 0, 0, 0])
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base)).mov(x(2), imm(0))
        b.label("top")
        b.load(x(3), x(1), 0, elem=4)
        b.add(x(3), x(3), imm(1))
        b.store(x(3), x(1), 0, elem=4)
        b.add(x(2), x(2), imm(1))
        b.blt(x(2), imm(50), "top")
        b.halt()
        stats = simulate(trace_of(b, mem), warm=True)
        assert stats.store_set_squashes >= 1
        # training keeps squashes far below the iteration count
        assert stats.store_set_squashes < 25
        assert stats.store_sets.load_waits > 0


def build_listing2(mem, n):
    a = mem.allocation("a")
    xs = mem.allocation("x")
    b = ProgramBuilder()
    b.mov(x(1), imm(a.base)).mov(x(2), imm(xs.base))
    b.mov(x(3), imm(0)).mov(x(4), imm(n))
    b.label("Loop")
    b.shl(x(7), x(3), imm(2))
    b.add(x(5), x(1), x(7))
    b.add(x(6), x(2), x(7))
    b.srv_start()
    b.v_load(v(0), x(5))
    b.v_add(v(0), v(0), imm(2))
    b.v_load(v(1), x(6))
    b.v_scatter(v(0), x(1), v(1))
    b.srv_end()
    b.add(x(3), x(3), imm(LANES))
    b.blt(x(3), x(4), "Loop")
    b.halt()
    return b.build()


class TestSrvTiming:
    def srv_stats(self, x_vals, n=256, validate=True):
        mem = MemoryImage()
        mem.alloc("a", n, 4, init=list(range(n)))
        mem.alloc("x", n, 4, init=x_vals)
        tracer = Tracer()
        run_program(build_listing2(mem, n), mem, tracer=tracer)
        return simulate(tracer.ops, validate_lsu=validate, warm=True)

    def test_lsu_agrees_with_emulator(self):
        """The hardware LSU must flag exactly the lanes the functional
        emulator replayed — for the paper's periodic conflict pattern."""
        stats = self.srv_stats(periodic_conflict_indices(256, 4))
        assert stats.srv_regions == 16
        assert stats.srv_replay_passes == 16  # one replay per region

    def test_no_conflicts_no_replays(self):
        stats = self.srv_stats(list(range(256)))
        assert stats.srv_replay_passes == 0

    def test_barrier_cycles_counted(self):
        stats = self.srv_stats(list(range(256)))
        assert stats.barrier_cycles > 0
        assert 0 < stats.barrier_fraction < 1

    def test_replays_cost_cycles(self):
        clean = self.srv_stats(list(range(256)))
        dirty = self.srv_stats(periodic_conflict_indices(256, 4))
        assert dirty.cycles > clean.cycles

    def test_horizontal_disambiguation_counted(self):
        stats = self.srv_stats(list(range(256)))
        assert stats.lsu.horizontal_disambiguations > 0
        # in-region stores do vertical too; loads only horizontal
        assert stats.lsu.vertical_disambiguations > 0

    def test_region_cycles_tracked(self):
        stats = self.srv_stats(list(range(256)))
        assert 0 < stats.region_cycles <= stats.cycles * 2


class TestStructuralLimits:
    def make_vec_loop(self):
        mem = MemoryImage()
        a = mem.alloc("a", 512, 4, init=[1] * 512)
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base)).mov(x(2), imm(0))
        b.label("top")
        b.v_load(v(1), x(1))
        b.v_add(v(2), v(1), imm(1))
        b.v_mul(v(3), v(2), imm(3))
        b.v_store(v(3), x(1))
        b.add(x(2), x(2), imm(1))
        b.blt(x(2), imm(64), "top")
        b.halt()
        return b, mem

    def test_smaller_iq_not_faster(self):
        b, mem = self.make_vec_loop()
        trace = trace_of(b, mem.clone())
        big = simulate(trace, TABLE_I, warm=True).cycles
        small = simulate(trace, TABLE_I.with_overrides(iq_entries=2), warm=True).cycles
        assert small >= big

    def test_smaller_rob_not_faster(self):
        b, mem = self.make_vec_loop()
        trace = trace_of(b, mem.clone())
        big = simulate(trace, TABLE_I, warm=True).cycles
        small = simulate(trace, TABLE_I.with_overrides(rob_entries=8), warm=True).cycles
        assert small >= big

    def test_narrow_pipeline_slower(self):
        b, mem = self.make_vec_loop()
        trace = trace_of(b, mem.clone())
        wide = simulate(trace, TABLE_I, warm=True).cycles
        narrow = simulate(
            trace, TABLE_I.with_overrides(pipeline_width=1), warm=True
        ).cycles
        assert narrow > wide
