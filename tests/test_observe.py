"""Tests for the observability layer (:mod:`repro.observe`).

Covers the event bus mechanics, the instrumentation threaded through the
emulator / timing models / LSU, the stream-vs-list event-sequence
determinism contract, exact cycle attribution, the Perfetto exporter,
and the two zero-overhead guarantees: experiment tables are byte
identical with a null sink armed, and the disabled path costs <5% on
the simulator benchmark kernel.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import time
from pathlib import Path

import pytest

from repro.common.config import TABLE_I
from repro.common.errors import ObserveError
from repro.compiler import Strategy
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import clear_cache
from repro.observe import attrib as attrib_mod
from repro.observe import events as ev
from repro.observe.export import (
    ascii_timeline,
    attribution_table,
    counters_table,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.observe.harness import observe_loop
from repro.srv.engine import SrvEngine
from repro.workloads import all_loops

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    path = REPO_ROOT / "benchmarks" / "bench_simulator.py"
    spec = importlib.util.spec_from_file_location("bench_simulator", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_simulator", module)
    spec.loader.exec_module(module)
    return module


def _spec(workload: str, loop_fragment: str):
    for w, spec in all_loops():
        if w.name == workload and loop_fragment in spec.name:
            return spec
    raise LookupError(f"{workload}/{loop_fragment}")


SUITE = [(w.name, spec) for w, spec in all_loops()]


# ---------------------------------------------------------------------------
# bus + sink mechanics
# ---------------------------------------------------------------------------


class TestBus:
    def test_install_uninstall(self):
        sink = ev.ListSink()
        bus = ev.install(sink)
        try:
            assert ev.ACTIVE is bus
            bus.emit(ev.EventKind.FETCH, "pipe", 0, 1)
        finally:
            ev.uninstall()
        assert ev.ACTIVE is None
        assert len(sink.events) == 1

    def test_double_install_rejected(self):
        with ev.capture():
            with pytest.raises(ObserveError):
                ev.install(ev.ListSink())

    def test_capture_always_uninstalls(self):
        with pytest.raises(RuntimeError):
            with ev.capture():
                raise RuntimeError("boom")
        assert ev.ACTIVE is None

    def test_null_sink_never_allocates_events(self):
        sink = ev.NullSink()
        bus = ev.EventBus(sink)
        # emit is rebound to the module-level no-op for null sinks
        assert bus.emit is ev._swallow
        bus.emit(ev.EventKind.ISSUE, "pipe", 0, 5, 2)
        assert sink.finalized() == ()

    def test_ring_buffer_bounds_and_counts_drops(self):
        sink = ev.RingBufferSink(capacity=3)
        bus = ev.EventBus(sink)
        for i in range(5):
            bus.emit(ev.EventKind.COMMIT, "pipe", i, i)
        assert sink.dropped == 2
        assert [e.op for e in sink.finalized()] == [2, 3, 4]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ObserveError):
            ev.RingBufferSink(capacity=0)

    def test_counter_sink(self):
        sink = ev.CounterSink()
        bus = ev.EventBus(sink)
        bus.emit(ev.EventKind.ISSUE, "pipe", 0, 0)
        bus.emit(ev.EventKind.ISSUE, "pipe", 1, 1)
        bus.emit(ev.EventKind.COMMIT, "pipe", 0, 2)
        assert sink.counts[ev.EventKind.ISSUE] == 2
        assert sink.counts[ev.EventKind.COMMIT] == 1
        assert sink.finalized() == ()

    def test_emit_lsu_uses_bus_context(self):
        sink = ev.ListSink()
        bus = ev.EventBus(sink)
        bus.op = 7
        bus.cycle = 42
        bus.emit_lsu(ev.EventKind.H_VIOLATION, lane=3)
        (event,) = sink.events
        assert (event.op, event.t, event.lane) == (7, 42, 3)
        assert event.domain == "lsu"

    def test_event_get_and_end(self):
        event = ev.Event(
            ev.EventKind.REGION_PASS, "pipe", 1, 10, dur=5,
            data=(("pass", 2), ("region", 0)),
        )
        assert event.get("pass") == 2
        assert event.get("missing", "x") == "x"
        assert event.end == 15

    def test_canonical_order_is_stable_by_op_then_domain(self):
        events = [
            ev.Event(ev.EventKind.ISSUE, "pipe", 2, 0),
            ev.Event(ev.EventKind.REGION_BEGIN, "emu", 2, 0),
            ev.Event(ev.EventKind.H_VIOLATION, "lsu", 1, 0),
            ev.Event(ev.EventKind.FETCH, "pipe", 1, 0),
        ]
        ordered = ev.canonical_order(events)
        assert [(e.op, e.domain) for e in ordered] == [
            (1, "pipe"), (1, "lsu"), (2, "emu"), (2, "pipe"),
        ]


# ---------------------------------------------------------------------------
# instrumentation presence
# ---------------------------------------------------------------------------


class TestInstrumentation:
    @pytest.fixture(scope="class")
    def viterbi_run(self):
        return observe_loop(
            _spec("hmmer", "viterbi"), Strategy.SRV, n_override=128
        )

    def test_region_and_replay_events_present(self, viterbi_run):
        kinds = {e.kind for e in viterbi_run.events}
        assert ev.EventKind.REGION_BEGIN in kinds
        assert ev.EventKind.REGION_PASS in kinds
        assert ev.EventKind.REGION_END in kinds
        assert ev.EventKind.LANE_REPLAY in kinds
        assert ev.EventKind.H_VIOLATION in kinds
        assert ev.EventKind.BARRIER_STALL in kinds

    def test_per_op_lifecycle_covers_every_op(self, viterbi_run):
        per_kind = {}
        for event in viterbi_run.events:
            if event.domain == "pipe":
                per_kind.setdefault(event.kind, set()).add(event.op)
        n_ops = viterbi_run.pipe.instructions
        for kind in (ev.EventKind.FETCH, ev.EventKind.ISSUE,
                     ev.EventKind.COMMIT):
            assert len(per_kind[kind]) == n_ops

    def test_emu_and_pipe_agree_on_region_structure(self, viterbi_run):
        def count(kind, domain):
            return sum(
                1 for e in viterbi_run.events
                if e.kind is kind and e.domain == domain
            )
        for kind in (ev.EventKind.REGION_BEGIN, ev.EventKind.REGION_PASS,
                     ev.EventKind.REGION_END, ev.EventKind.LANE_REPLAY):
            assert count(kind, "emu") == count(kind, "pipe")

    def test_events_untouched_runs_emit_nothing(self):
        # no bus installed: the harnessless simulation path emits nothing
        assert ev.ACTIVE is None

    def test_srv_engine_emits(self):
        engine = SrvEngine(lanes=4)
        with ev.capture() as sink:
            engine.start_region(0x40)
            engine.record_violation({2, 3})
            decision = engine.end_region()
            assert decision.restart
            engine.end_region()
        kinds = [e.kind for e in sink.finalized()]
        assert kinds.count(ev.EventKind.REGION_BEGIN) == 1
        assert kinds.count(ev.EventKind.LANE_REPLAY) == 2
        assert kinds.count(ev.EventKind.REGION_END) == 1

    def test_inorder_core_instrumented(self):
        run = observe_loop(
            _spec("hmmer", "viterbi"), Strategy.SRV,
            n_override=64, core="inorder",
        )
        kinds = {e.kind for e in run.events}
        assert ev.EventKind.REGION_END in kinds
        assert ev.EventKind.ISSUE in kinds
        run.attribution.check()

    def test_sequential_fallback_emits_and_buckets(self):
        config = TABLE_I.with_overrides(srv_force_sequential=True)
        run = observe_loop(
            _spec("hmmer", "viterbi"), Strategy.SRV,
            n_override=64, config=config,
        )
        kinds = {e.kind for e in run.events}
        assert ev.EventKind.SEQ_FALLBACK in kinds
        assert run.attribution.buckets["fallback"] > 0
        run.attribution.check()

    def test_harness_validates_arguments(self):
        spec = _spec("hmmer", "viterbi")
        with pytest.raises(ValueError):
            observe_loop(spec, Strategy.SRV, core="vliw")
        with pytest.raises(ValueError):
            observe_loop(spec, Strategy.SRV, trace_mode="firehose")


# ---------------------------------------------------------------------------
# trace-mode determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize(
        "workload,spec", SUITE, ids=[s.name for _, s in SUITE]
    )
    def test_stream_and_list_yield_identical_event_sequences(
        self, workload, spec
    ):
        stream = observe_loop(spec, Strategy.SRV, n_override=48)
        listed = observe_loop(
            spec, Strategy.SRV, n_override=48, trace_mode="list"
        )
        assert stream.cycles == listed.cycles
        assert stream.events == listed.events
        assert stream.attribution.buckets == listed.attribution.buckets

    def test_ring_buffer_stream_matches_list_tail(self):
        spec = _spec("hmmer", "viterbi")
        full = observe_loop(spec, Strategy.SRV, n_override=64)
        ringed = observe_loop(
            spec, Strategy.SRV, n_override=64,
            sink_factory=lambda: ev.RingBufferSink(1 << 20),
        )
        # a ring large enough to drop nothing is order-identical
        assert ringed.events == full.events


# ---------------------------------------------------------------------------
# cycle attribution
# ---------------------------------------------------------------------------


class TestAttribution:
    @pytest.mark.parametrize(
        "workload,spec", SUITE, ids=[s.name for _, s in SUITE]
    )
    def test_buckets_sum_exactly_to_cycles(self, workload, spec):
        run = observe_loop(spec, Strategy.SRV, n_override=48)
        assert sum(run.attribution.buckets.values()) == run.cycles
        run.attribution.check()  # must not raise

    @pytest.mark.parametrize("strategy", [Strategy.SCALAR, Strategy.SVE])
    def test_non_srv_strategies_attribute_exactly(self, strategy):
        run = observe_loop(_spec("hmmer", "viterbi"), strategy, n_override=64)
        run.attribution.check()
        assert run.attribution.buckets["replay"] == 0
        assert run.attribution.buckets["fallback"] == 0

    def test_replay_bucket_nonzero_on_conflicting_loop(self):
        run = observe_loop(_spec("hmmer", "viterbi"), Strategy.SRV,
                           n_override=128)
        assert run.attribution.buckets["replay"] > 0
        regions = run.attribution.regions
        assert regions and any(r.passes > 1 for r in regions)
        replayed = next(r for r in regions if r.passes > 1)
        assert replayed.replay_cycles > 0
        assert replayed.cycles == replayed.end - replayed.start

    def test_check_raises_on_mismatch(self):
        bad = attrib_mod.RunAttribution(
            total=10, buckets={name: 0 for name in attrib_mod.BUCKETS}
        )
        with pytest.raises(AssertionError):
            bad.check()

    def test_rollup_sums_runs(self):
        runs = [
            observe_loop(_spec("hmmer", "viterbi"), Strategy.SRV,
                         n_override=48),
            observe_loop(_spec("bzip2", ""), Strategy.SRV, n_override=48),
        ]
        combined = attrib_mod.rollup(r.attribution for r in runs)
        assert combined.total == sum(r.cycles for r in runs)
        combined.check()

    def test_interval_merge(self):
        assert attrib_mod._merge([(5, 8), (0, 3), (2, 6)]) == [(0, 8)]
        assert attrib_mod._merge([]) == []
        assert attrib_mod._measure([(0, 8), (10, 12)]) == 10


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class TestExport:
    @pytest.fixture(scope="class")
    def run(self):
        return observe_loop(
            _spec("hmmer", "viterbi"), Strategy.SRV, n_override=128
        )

    def test_chrome_trace_round_trips(self, run, tmp_path):
        out = tmp_path / "trace.json"
        count = write_chrome_trace(str(out), run.events, label="test")
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert len(events) == count > 0
        phases = {e["ph"] for e in events}
        assert phases >= {"M", "X", "i"}
        names = {e["name"] for e in events}
        assert any(n.startswith("region ") for n in names)
        assert any(n.startswith("pass ") for n in names)
        assert ev.EventKind.LANE_REPLAY.value in names
        for entry in events:
            if entry["ph"] == "X":
                assert entry["dur"] >= 0

    def test_chrome_trace_splits_pid_by_domain(self, run):
        payload = to_chrome_trace(run.events)
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {1, 2}  # cycle domain + emulator-step domain

    def test_counters_table(self, run):
        table = counters_table(run.events)
        assert table.summary["total_events"] == len(run.events)
        assert sum(table.column("count")) == len(run.events)
        rendered = table.format_table()
        assert "issue" in rendered and "lsu" in rendered

    def test_attribution_table_totals(self, run):
        rows = [("a", run.attribution), ("b", run.attribution)]
        table = attribution_table(rows, total_row=True)
        assert table.summary["runs"] == 2
        assert table.summary["total_cycles"] == 2 * run.cycles
        total = table.row_for("TOTAL")
        assert total[1] == 2 * run.cycles
        fractions = [
            v for k, v in table.summary.items() if k.endswith("_fraction")
        ]
        assert abs(sum(fractions) - 1.0) < 1e-9

    def test_ascii_timeline_lists_regions(self, run):
        text = ascii_timeline(run.attribution)
        assert f"cycles {run.cycles}" in text
        assert text.count("region") == len(run.attribution.regions)
        assert "passes=2" in text  # the replaying region

    def test_ascii_timeline_without_regions(self):
        empty = attrib_mod.RunAttribution(
            total=0, buckets={name: 0 for name in attrib_mod.BUCKETS}
        )
        assert "(no SRV regions in this run)" in ascii_timeline(empty)


# ---------------------------------------------------------------------------
# zero-overhead guarantees
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_experiment_table_byte_identical_under_null_sink(self):
        clear_cache()
        baseline = ALL_EXPERIMENTS["figure9"](n_override=32).format_table()
        clear_cache()
        with ev.capture(ev.NullSink()):
            observed = ALL_EXPERIMENTS["figure9"](n_override=32).format_table()
        clear_cache()
        assert observed == baseline

    def test_cycles_bit_identical_with_and_without_bus(self):
        spec = _spec("hmmer", "viterbi")
        plain = observe_loop(spec, Strategy.SRV, n_override=128,
                             sink_factory=ev.NullSink)
        traced = observe_loop(spec, Strategy.SRV, n_override=128)
        assert plain.cycles == traced.cycles
        assert plain.events == ()

    def test_null_sink_overhead_under_five_percent(self):
        bench = _load_bench_module()

        def run_once() -> float:
            start = time.perf_counter()
            bench._bench_streaming()
            return time.perf_counter() - start

        reps = 5
        bench._bench_streaming()  # JIT-free warmup (imports, caches)
        base = min(run_once() for _ in range(reps))
        with ev.capture(ev.NullSink()):
            nulled = min(run_once() for _ in range(reps))
        # min-of-reps on both sides; small absolute epsilon absorbs timer
        # jitter on machines where one rep is a handful of milliseconds
        assert nulled <= base * 1.05 + 0.002, (
            f"null-sink run took {nulled:.4f}s vs baseline {base:.4f}s"
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_trace_command_writes_perfetto_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main([
            "trace", "hmmer", "viterbi", "-n", "64", "--out", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        printed = capsys.readouterr().out
        assert "cycles" in printed and "region" in printed

    def test_trace_command_ring_option(self, capsys):
        from repro.cli import main

        assert main(["trace", "hmmer", "viterbi", "-n", "64",
                     "--ring", "128"]) == 0
        assert "events" in capsys.readouterr().out

    def test_attrib_command_single_loop(self, capsys):
        from repro.cli import main

        assert main(["attrib", "hmmer", "viterbi", "-n", "64"]) == 0
        printed = capsys.readouterr().out
        assert "Cycle attribution" in printed

    def test_attrib_command_requires_target(self, capsys):
        from repro.cli import main

        assert main(["attrib"]) == 2
        assert "suite" in capsys.readouterr().err
