"""Tests for the invariant monitors and the differential checker.

Monitors are validated in both directions: clean traces from real
workloads must produce zero violations, and synthetic corrupted traces
must trip the matching monitor.
"""

from repro.common.config import TABLE_I
from repro.compiler import Strategy
from repro.isa import v, x
from repro.isa.instructions import SrvEnd, SrvStart, VecLoadContig
from repro.pipeline.trace import MemAccess, OpClass, RegionEvent, TraceOp
from repro.verify.differential import verify_loop, verify_workloads
from repro.verify.monitors import (
    check_mem_consistency,
    check_region_structure,
    check_well_formedness,
)
from repro.workloads import by_name

LANES = TABLE_I.vector_lanes


def _op(index, op_class=OpClass.SCALAR_ALU, **kwargs):
    inst = kwargs.pop("inst", None)
    if inst is None:
        inst = SrvStart() if op_class is OpClass.SRV_START else (
            SrvEnd() if op_class is OpClass.SRV_END else None
        )
    return TraceOp(index=index, pc=4 * index, inst=inst, op_class=op_class,
                   **kwargs)


def _region_trace(end_events):
    """A trace with one region: srv_start, a body op, then srv_end(s)."""
    ops = [_op(0, OpClass.SRV_START, in_region=True,
               region_event=RegionEvent.START)]
    for event in end_events:
        ops.append(_op(len(ops), OpClass.SCALAR_ALU, in_region=True,
                       active_lane_count=LANES))
        ops.append(_op(len(ops), OpClass.SRV_END, in_region=True,
                       region_event=event))
    return ops


class TestRegionStructureMonitor:
    def test_committed_region_is_clean(self):
        trace = _region_trace([RegionEvent.END_COMMIT])
        assert check_region_structure(trace, TABLE_I) == []

    def test_replay_bound_violation(self):
        events = [RegionEvent.END_REPLAY] * LANES + [RegionEvent.END_COMMIT]
        trace = _region_trace(events)
        violations = check_region_structure(trace, TABLE_I)
        assert any(v.monitor == "replay-bound" for v in violations)

    def test_nested_start_violation(self):
        trace = [
            _op(0, OpClass.SRV_START, in_region=True,
                region_event=RegionEvent.START),
            _op(1, OpClass.SRV_START, in_region=True,
                region_event=RegionEvent.START),
        ]
        violations = check_region_structure(trace, TABLE_I)
        assert any("inside an active" in v.message for v in violations)

    def test_trace_ending_inside_region_violation(self):
        trace = [
            _op(0, OpClass.SRV_START, in_region=True,
                region_event=RegionEvent.START),
            _op(1, OpClass.SCALAR_ALU, in_region=True,
                active_lane_count=LANES),
        ]
        violations = check_region_structure(trace, TABLE_I)
        assert violations


class TestMemConsistencyMonitor:
    def test_duplicate_lane_violation(self):
        op = _op(0, OpClass.VEC_LOAD, mem=[
            MemAccess(addr=0x100, size=4, is_store=False, lane=0),
            MemAccess(addr=0x104, size=4, is_store=False, lane=0),
        ])
        violations = check_mem_consistency([op], TABLE_I)
        assert any("lane" in v.message for v in violations)

    def test_out_of_range_lane_violation(self):
        op = _op(0, OpClass.VEC_LOAD, mem=[
            MemAccess(addr=0x100, size=4, is_store=False, lane=LANES + 3),
        ])
        violations = check_mem_consistency([op], TABLE_I)
        assert violations

    def test_contiguous_skew_violation(self):
        inst = VecLoadContig(dst=v(0), base=x(1))
        mem = [
            MemAccess(addr=0x100 + 4 * lane, size=4, is_store=False, lane=lane)
            for lane in range(LANES)
        ]
        # skew one lane's address: the common base is no longer unique
        mem[2] = MemAccess(addr=mem[2].addr + 4, size=4, is_store=False, lane=2)
        op = _op(0, OpClass.VEC_LOAD, inst=inst, mem=mem)
        violations = check_mem_consistency([op], TABLE_I)
        assert any("contiguous" in v.message for v in violations)

    def test_clean_contiguous_access(self):
        inst = VecLoadContig(dst=v(0), base=x(1))
        mem = [
            MemAccess(addr=0x100 + 4 * lane, size=4, is_store=False, lane=lane)
            for lane in range(LANES)
        ]
        op = _op(0, OpClass.VEC_LOAD, inst=inst, mem=mem)
        assert check_mem_consistency([op], TABLE_I) == []


class TestWellFormednessMonitor:
    def test_non_sequential_indices(self):
        trace = [_op(0), _op(2)]
        violations = check_well_formedness(trace, TABLE_I)
        assert any("index" in v.message for v in violations)

    def test_branch_without_outcome(self):
        from repro.isa.instructions import Branch, BranchCond

        inst = Branch(cond=BranchCond.LT, src1=x(1), src2=x(2), target="L")
        trace = [_op(0, OpClass.BRANCH, inst=inst, branch_taken=None)]
        violations = check_well_formedness(trace, TABLE_I)
        assert violations


class TestDifferentialChecker:
    def test_clean_loop_verifies(self):
        spec = by_name("hmmer").loops[0]
        report = verify_loop(spec, Strategy.SRV, n_override=64)
        assert report.clean
        assert report.violations == []

    def test_clean_loop_scalar_strategy(self):
        spec = by_name("gcc").loops[0]
        report = verify_loop(spec, Strategy.SCALAR, n_override=64)
        assert report.clean

    def test_verify_workloads_all_clean(self):
        reports = verify_workloads(["livermore", "astar"], n_override=64)
        assert reports
        assert all(r.clean for r in reports)

    def test_monitors_clean_on_real_srv_trace(self):
        """Full-suite acceptance at small n: zero false positives."""
        from repro.workloads import ALL_WORKLOADS

        for workload in ALL_WORKLOADS:
            for spec in workload.loops:
                report = verify_loop(spec, Strategy.SRV, n_override=64,
                                     timing=False)
                assert report.clean, (
                    f"{spec.name}: {[str(v) for v in report.violations]}"
                )
