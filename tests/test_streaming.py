"""Streaming (fused emulate+time) vs materialised-list equivalence.

The PR 3 contract: ``simulate_streaming`` must be *bit-identical* to
``run_program`` + ``simulate``/``simulate_in_order`` — same
``PipelineStats``, same emulator metrics, same final memory, same verify
monitor verdicts — while retaining only O(machine-state) memory.
"""

import pytest

from repro.common.config import TABLE_I
from repro.common.rng import periodic_conflict_indices
from repro.compiler import Strategy, compile_loop
from repro.emu import Interpreter, run_program
from repro.isa import ProgramBuilder, imm, v, x
from repro.memory import MemoryImage
from repro.pipeline import Tracer, simulate, simulate_streaming
from repro.pipeline.core import PipelineModel
from repro.pipeline import core as core_mod
from repro.pipeline.inorder import STORE_WINDOW, InOrderModel, simulate_in_order
from repro.verify.monitors import run_monitors
from repro.workloads import all_loops

N = 48
LANES = TABLE_I.vector_lanes

SUITE = [(w.name, spec) for w, spec in all_loops()]


def _materialise(spec, strategy, n):
    arrays = spec.arrays(0)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(spec.loop, mem, n, strategy, params=spec.params)
    return program, mem


def _final_arrays(spec, mem):
    return {
        name: mem.load_array(mem.allocation(name))
        for name in spec.arrays(0)
    }


class TestSuiteEquivalence:
    """All 28 suite loops, both timing models, identical stats."""

    @pytest.mark.parametrize(
        "workload, spec", SUITE, ids=[s.name for _, s in SUITE]
    )
    @pytest.mark.parametrize("core", ["ooo", "inorder"])
    def test_stream_equals_list(self, workload, spec, core):
        n = min(N, spec.n)

        program, mem_list = _materialise(spec, Strategy.SRV, n)
        tracer = Tracer()
        emu_list, _ = run_program(program, mem_list, tracer=tracer)
        if core == "ooo":
            stats_list = simulate(tracer.ops, validate_lsu=True, warm=True)
        else:
            stats_list = simulate_in_order(tracer.ops, warm=True)

        program2, mem_stream = _materialise(spec, Strategy.SRV, n)
        emu_stream, stats_stream, _ = simulate_streaming(
            program2, mem_stream,
            core=core, validate_lsu=(core == "ooo"), warm=True,
        )

        assert stats_stream == stats_list
        assert emu_stream == emu_list
        assert _final_arrays(spec, mem_stream) == _final_arrays(spec, mem_list)


class TestMonitorEquivalence:
    """iter_trace() yields the same ops the materialising tracer records,
    so verify monitors reach identical verdicts on either path."""

    @pytest.mark.parametrize(
        "workload, spec", SUITE[:6], ids=[s.name for _, s in SUITE[:6]]
    )
    def test_monitor_verdicts_match(self, workload, spec):
        n = min(N, spec.n)

        program, mem1 = _materialise(spec, Strategy.SRV, n)
        tracer = Tracer()
        run_program(program, mem1, tracer=tracer)

        program2, mem2 = _materialise(spec, Strategy.SRV, n)
        interp = Interpreter(program2, mem2)
        streamed = list(interp.iter_trace())

        assert len(streamed) == len(tracer.ops)
        for a, b in zip(streamed, tracer.ops):
            assert (a.index, a.pc, a.op_class, a.in_region, a.in_fallback,
                    a.region_event, a.replay_lanes) == (
                b.index, b.pc, b.op_class, b.in_region, b.in_fallback,
                b.region_event, b.replay_lanes)

        verdict_stream = [str(v) for v in run_monitors(streamed, TABLE_I)]
        verdict_list = [str(v) for v in run_monitors(tracer.ops, TABLE_I)]
        assert verdict_stream == verdict_list


def _long_program(mem, n):
    a = mem.allocation("a")
    xs = mem.allocation("x")
    b = ProgramBuilder("long_stream")
    b.mov(x(1), imm(a.base)).mov(x(2), imm(xs.base))
    b.mov(x(3), imm(0)).mov(x(4), imm(n))
    b.label("Loop")
    b.shl(x(7), x(3), imm(2))
    b.add(x(5), x(1), x(7))
    b.add(x(6), x(2), x(7))
    b.srv_start()
    b.v_load(v(0), x(5))
    b.v_add(v(0), v(0), imm(2))
    b.v_load(v(1), x(6))
    b.v_scatter(v(0), x(1), v(1))
    b.srv_end()
    b.add(x(3), x(3), imm(LANES))
    b.blt(x(3), x(4), "Loop")
    b.halt()
    return b.build()


def _long_memory(n):
    mem = MemoryImage()
    mem.alloc("a", n, 4, init=range(n))
    mem.alloc("x", n, 4, init=periodic_conflict_indices(n, 4))
    return mem


class TestBoundedMemory:
    """Retained state is sized by machine capacities, not trace length."""

    # enough iterations that the trace crosses the 2048-op prune interval
    LONG_N = 4096

    def _stream(self, model, n):
        mem = _long_memory(n)
        program = _long_program(mem, n)
        pump = model.stream()
        interp = Interpreter(program, mem)
        count = 0
        try:
            for op in interp.iter_trace():
                pump.send(op)
                count += 1
            pump.send(None)
        except StopIteration:
            pass
        return count

    def test_ooo_windows_are_capacity_sized(self):
        model = PipelineModel(TABLE_I)
        ops = self._stream(model, self.LONG_N)
        assert ops > 2 * core_mod.PRUNE_INTERVAL  # long enough to prune
        assert len(model._complete_ring) == TABLE_I.rob_entries
        assert model._recent_stores.maxlen == 64
        assert len(model._recent_stores) <= 64
        # in-flight LSU entries drain at commit / region end
        assert len(model._lsu_live) <= 2 * TABLE_I.lsu_entries
        assert model.stats.cycles > 0

    def test_port_occupancy_is_pruned(self):
        pruned = PipelineModel(TABLE_I)
        self._stream(pruned, self.LONG_N)

        unpruned = PipelineModel(TABLE_I)
        original = core_mod.PRUNE_INTERVAL
        core_mod.PRUNE_INTERVAL = 1 << 40  # never prune
        try:
            self._stream(unpruned, self.LONG_N)
        finally:
            core_mod.PRUNE_INTERVAL = original

        # pruning must not change a single statistic...
        assert pruned.stats == unpruned.stats
        # ...while keeping the occupancy maps bounded
        assert pruned.ports.footprint() < unpruned.ports.footprint()

    def test_inorder_windows_are_capacity_sized(self):
        model = InOrderModel(TABLE_I)
        self._stream(model, self.LONG_N)
        assert model._store_window.maxlen == STORE_WINDOW
        assert len(model._store_window) <= STORE_WINDOW
        assert len(model._lsu_live) <= 2 * TABLE_I.lsu_entries
        assert model.stats.cycles > 0

    def test_small_rob_config_equivalence(self):
        """The completion ring is exact even for a tiny ROB window."""
        config = TABLE_I.with_overrides(rob_entries=8, iq_entries=4)
        n = 256

        mem1 = _long_memory(n)
        tracer = Tracer()
        run_program(_long_program(mem1, n), mem1, config=config, tracer=tracer)
        stats_list = simulate(tracer.ops, config=config, warm=True)

        mem2 = _long_memory(n)
        _, stats_stream, _ = simulate_streaming(
            _long_program(mem2, n), mem2, config, warm=True
        )
        assert stats_stream == stats_list
        assert stats_stream.store_set_squashes == stats_list.store_set_squashes


class TestFaultArmedFallback:
    """With a fault plan armed, streaming must auto-fall back to the
    materialised path (a fused warm pre-pass would double-advance the
    plan's poll counters) — and record which path it took."""

    def _spec(self):
        for workload, spec in SUITE:
            if spec.name == "is_key_rank":
                return spec
        raise LookupError("is_key_rank missing from suite")

    def test_unarmed_takes_stream_path(self):
        from repro.pipeline import stream as stream_mod

        spec = self._spec()
        program, mem = _materialise(spec, Strategy.SRV, 32)
        simulate_streaming(program, mem, warm=True)
        assert stream_mod.LAST_PATH == "stream"

    def test_armed_falls_back_to_materialised(self):
        from repro.pipeline import stream as stream_mod
        from repro.verify import faults

        spec = self._spec()
        program, mem = _materialise(spec, Strategy.SRV, 32)
        plan = faults.FaultPlan([
            faults.FaultSpec(fault=faults.FaultClass.FORCE_REPLAY)
        ])
        with faults.inject(plan):
            simulate_streaming(program, mem, warm=True)
        assert stream_mod.LAST_PATH == "materialised"
        # and the armed plan actually fired during the run
        assert plan.fired

    def test_armed_results_match_materialised_call(self):
        from repro.verify import faults

        spec = self._spec()

        def run_once():
            program, mem = _materialise(spec, Strategy.SRV, 32)
            plan = faults.FaultPlan([
                faults.FaultSpec(fault=faults.FaultClass.FORCE_REPLAY)
            ])
            with faults.inject(plan):
                metrics, stats, _ = simulate_streaming(program, mem, warm=True)
            return metrics, stats, _final_arrays(spec, mem)

        metrics_a, stats_a, arrays_a = run_once()
        metrics_b, stats_b, arrays_b = run_once()
        # deterministic fallback: identical metrics, stats and memory
        assert metrics_a == metrics_b
        assert stats_a == stats_b
        assert arrays_a == arrays_b

    def test_runner_fallback_under_injection(self):
        """End to end: run_loop under an armed plan goes materialised
        and still produces a structured (possibly incorrect) result."""
        from repro.experiments import runner
        from repro.pipeline import stream as stream_mod
        from repro.verify import faults

        spec = self._spec()
        plan = faults.FaultPlan([
            faults.FaultSpec(
                fault=faults.FaultClass.CORRUPT_STORE_DATA, repeat=True
            )
        ])
        with faults.inject(plan):
            run = runner.run_loop(
                spec, Strategy.SRV, use_cache=False, n_override=32,
            )
        assert stream_mod.LAST_PATH == "materialised"
        assert plan.fired
        assert run.correct is False
