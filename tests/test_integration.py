"""Cross-layer integration tests.

These exercise the full stack — compiler → emulator → trace → timing
models → hardware LSU — and assert the cross-model invariants that anchor
the reproduction:

* the LSU bit-vector hardware flags exactly the lanes the functional
  emulator replays (checked by ``validate_lsu=True`` raising otherwise);
* all timing models agree on instruction counts;
* every execution mode (TM, relaxed barrier, interrupts, in-order)
  preserves the sequential-semantics oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import TABLE_I
from repro.common.rng import periodic_conflict_indices, sparse_conflict_indices
from repro.compiler import Strategy, compile_loop, scalar_reference
from repro.emu import Interpreter, run_program
from repro.memory import MemoryImage
from repro.pipeline import Tracer, simulate
from repro.pipeline.inorder import simulate_in_order
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import histogram, indirect_update

N = 64


def build_and_trace(loop, arrays, n, strategy, config=TABLE_I, **interp_kw):
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), loop.arrays[name], init=init)
    program = compile_loop(loop, mem, n, strategy)
    tracer = Tracer()
    interp = Interpreter(program, mem, config, tracer=tracer, **interp_kw)
    metrics = interp.run()
    return mem, metrics, tracer.ops


class TestLsuCrossValidation:
    """validate_lsu=True raises PipelineError on any replay-set mismatch
    between the section IV hardware model and the functional emulator."""

    @settings(max_examples=25, deadline=None)
    @given(x_vals=st.lists(st.integers(0, N - 1), min_size=N, max_size=N))
    def test_property_random_indices(self, x_vals):
        arrays = {"a": list(range(N)), "x": x_vals}
        mem, _, trace = build_and_trace(indirect_update(), arrays, N, Strategy.SRV)
        simulate(trace, validate_lsu=True, warm=True)  # must not raise

    def test_histogram_collisions(self):
        # i % 8: every bin is hit twice per 16-lane group -> genuine
        # gather/scatter RMW collisions and replays
        arrays = {"h": [0] * 16, "x": [i % 8 for i in range(N)]}
        mem, metrics, trace = build_and_trace(histogram(), arrays, N, Strategy.SRV)
        assert metrics.srv.replays > 0
        simulate(trace, validate_lsu=True, warm=True)

    def test_every_workload_validates(self):
        for workload in ALL_WORKLOADS:
            for spec in workload.loops:
                arrays = spec.arrays(0)
                mem = MemoryImage()
                for name, init in arrays.items():
                    mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
                n = min(spec.n, 64)
                program = compile_loop(
                    spec.loop, mem, n, Strategy.SRV, params=spec.params
                )
                tracer = Tracer()
                run_program(program, mem, tracer=tracer)
                simulate(tracer.ops, validate_lsu=True, warm=True)


class TestTimingModelAgreement:
    def test_instruction_counts_agree(self):
        arrays = {"a": list(range(N)), "x": periodic_conflict_indices(N, 4)}
        _, metrics, trace = build_and_trace(indirect_update(), arrays, N, Strategy.SRV)
        ooo = simulate(trace, warm=True)
        ino = simulate_in_order(trace, warm=True)
        assert ooo.instructions == ino.instructions == len(trace)
        assert ooo.srv_regions == ino.srv_regions

    def test_ooo_never_slower_than_inorder(self):
        for strategy in (Strategy.SCALAR, Strategy.SRV):
            arrays = {"a": list(range(N)), "x": list(range(N))}
            _, _, trace = build_and_trace(indirect_update(), arrays, N, strategy)
            assert (
                simulate(trace, warm=True).cycles
                <= simulate_in_order(trace, warm=True).cycles
            )


class TestModeCombinations:
    @settings(max_examples=15, deadline=None)
    @given(
        rate=st.floats(0.0, 1.0),
        seed=st.integers(0, 100),
        tm=st.booleans(),
        interrupt=st.integers(0, 80),
    )
    def test_property_modes_preserve_semantics(self, rate, seed, tm, interrupt):
        """TM mode and interrupt injection, combined, at any conflict rate,
        must still match sequential execution."""
        loop = indirect_update()
        x_vals = sparse_conflict_indices(N, 16, rate, seed=seed)
        arrays = {"a": [(seed + i) % 97 for i in range(N)], "x": x_vals}
        oracle = scalar_reference(loop, arrays, N)
        config = TABLE_I.with_overrides(srv_tm_mode=tm)
        mem, metrics, _ = build_and_trace(
            loop, arrays, N, Strategy.SRV, config=config,
            interrupt_at_step=interrupt or None,
        )
        assert mem.load_array(mem.allocation("a")) == oracle["a"]
        assert metrics.srv.max_replays_in_region <= 15

    def test_relaxed_barrier_all_workload_loops(self):
        relaxed = TABLE_I.with_overrides(srv_relax_barrier=True)
        for workload in ALL_WORKLOADS[:4]:
            for spec in workload.loops:
                arrays = spec.arrays(0)
                mem = MemoryImage()
                for name, init in arrays.items():
                    mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
                n = min(spec.n, 48)
                program = compile_loop(
                    spec.loop, mem, n, Strategy.SRV, params=spec.params
                )
                tracer = Tracer()
                run_program(program, mem, tracer=tracer)
                base = simulate(tracer.ops, TABLE_I, warm=True)
                fast = simulate(tracer.ops, relaxed, warm=True)
                assert fast.cycles <= base.cycles, spec.name


class TestEndToEndStrategies:
    @pytest.mark.parametrize(
        "pattern",
        ["identity", "periodic", "sparse"],
    )
    def test_four_strategies_agree(self, pattern):
        n = 48
        loop = indirect_update()
        x_vals = {
            "identity": list(range(n)),
            "periodic": periodic_conflict_indices(n, 4),
            "sparse": sparse_conflict_indices(n, 16, 0.4, seed=1),
        }[pattern]
        arrays = {"a": list(range(n)), "x": x_vals}
        oracle = scalar_reference(loop, arrays, n)
        outputs = {}
        for strategy in Strategy:
            mem, _, _ = build_and_trace(loop, arrays, n, strategy)
            outputs[strategy] = mem.load_array(mem.allocation("a"))
        for strategy, got in outputs.items():
            assert got == oracle["a"], strategy


class TestRobustness:
    def test_violator_set_stable_across_seeds(self):
        """The figure 9 violator set must not be a seed artefact."""
        from repro.experiments.runner import clear_cache, run_loop

        for seed in (0, 1, 2):
            clear_cache()
            violators = set()
            for workload in ALL_WORKLOADS:
                raw = 0
                for spec in workload.loops:
                    run = run_loop(spec, Strategy.SRV, seed=seed, timing=False)
                    assert run.correct, (workload.name, spec.name, seed)
                    raw += run.emu.srv.raw_violations
                if raw:
                    violators.add(workload.name)
            assert violators == {"bzip2", "hmmer", "is", "randacc"}, seed

    def test_down_loop_full_stack(self):
        """A decreasing-induction-variable loop runs through the whole
        stack with the DOWN attribute and validates against the LSU."""
        from repro.compiler import Affine, BinOp, Const, Indirect, Loop, Read, Store

        loop = Loop(
            "down_stack", {"a": 4, "x": 4},
            [Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(1)))],
            step=-1,
        )
        arrays = {"a": list(range(N)), "x": list(range(N))}
        oracle = scalar_reference(loop, arrays, N)
        mem, metrics, trace = build_and_trace(loop, arrays, N, Strategy.SRV)
        assert mem.load_array(mem.allocation("a")) == oracle["a"]
        from repro.isa import SrvDirection

        starts = [op for op in trace if op.op_class.name == "SRV_START"]
        assert all(op.direction is SrvDirection.DOWN for op in starts)
        stats = simulate(trace, validate_lsu=True, warm=True)
        assert stats.srv_regions == N // 16
