"""Scalar-instruction semantics of the functional emulator."""

import pytest

from repro.common.errors import SrvError
from repro.emu import run_program
from repro.isa import ProgramBuilder, imm, x
from repro.memory import MemoryImage


def run(build, mem=None):
    mem = mem or MemoryImage()
    metrics, state = run_program(build, mem)
    return metrics, state, mem


class TestScalarALU:
    @pytest.mark.parametrize(
        "method,a,b,expect",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("mul", -4, 3, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),  # truncation toward zero
            ("div", 7, -2, -3),
            ("div", 5, 0, 0),    # division by zero yields zero
            ("mod", 7, 3, 1),
            ("mod", -7, 3, -1),
            ("and_", 0b1100, 0b1010, 0b1000),
            ("or_", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 4, 16),
            ("min_", 3, -2, -2),
            ("max_", 3, -2, 3),
        ],
    )
    def test_binary_ops(self, method, a, b, expect):
        b_ = ProgramBuilder()
        b_.mov(x(1), imm(a)).mov(x(2), imm(b))
        getattr(b_, method)(x(3), x(1), x(2))
        b_.halt()
        _, state, _ = run(b_.build())
        assert state.read_scalar(x(3)) == expect

    def test_shr_logical(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(-8)).shr(x(2), x(1), imm(1)).halt()
        _, state, _ = run(b.build())
        assert state.read_scalar(x(2)) == (2**64 - 8) >> 1

    def test_mov_immediate(self):
        b = ProgramBuilder()
        b.mov(x(5), imm(-42)).halt()
        _, state, _ = run(b.build())
        assert state.read_scalar(x(5)) == -42

    def test_64bit_wrap(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(2**63 - 1)).add(x(1), x(1), imm(1)).halt()
        _, state, _ = run(b.build())
        assert state.read_scalar(x(1)) == -(2**63)


class TestScalarMemory:
    def test_load_store_roundtrip(self):
        mem = MemoryImage()
        a = mem.alloc("a", 4, 8)
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base))
        b.mov(x(2), imm(-77))
        b.store(x(2), x(1), 8)
        b.load(x(3), x(1), 8)
        b.halt()
        _, state, _ = run(b.build(), mem)
        assert state.read_scalar(x(3)) == -77
        assert mem.read_int(a.base + 8, 8, signed=True) == -77

    def test_narrow_load_sign_extends(self):
        mem = MemoryImage()
        a = mem.alloc("a", 4, 1, init=[0xFF, 1, 2, 3])
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base)).load(x(2), x(1), 0, elem=1).halt()
        _, state, _ = run(b.build(), mem)
        assert state.read_scalar(x(2)) == -1


class TestControlFlow:
    def test_counting_loop(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(0)).mov(x(2), imm(0))
        b.label("top")
        b.add(x(2), x(2), x(1))
        b.add(x(1), x(1), imm(1))
        b.blt(x(1), imm(10), "top")
        b.halt()
        metrics, state, _ = run(b.build())
        assert state.read_scalar(x(2)) == sum(range(10))
        assert metrics.branch_instructions == 10

    def test_jump(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(1))
        b.jump("end")
        b.mov(x(1), imm(99))
        b.label("end")
        b.halt()
        _, state, _ = run(b.build())
        assert state.read_scalar(x(1)) == 1

    @pytest.mark.parametrize(
        "method,a,b,taken",
        [
            ("beq", 1, 1, True),
            ("beq", 1, 2, False),
            ("bne", 1, 2, True),
            ("blt", -1, 0, True),
            ("ble", 0, 0, True),
            ("bgt", 1, 0, True),
            ("bge", 0, 1, False),
        ],
    )
    def test_conditions(self, method, a, b, taken):
        bld = ProgramBuilder()
        bld.mov(x(1), imm(a)).mov(x(2), imm(b)).mov(x(3), imm(0))
        getattr(bld, method)(x(1), x(2), "skip")
        bld.mov(x(3), imm(1))
        bld.label("skip")
        bld.halt()
        _, state, _ = run(bld.build())
        assert state.read_scalar(x(3)) == (0 if taken else 1)

    def test_infinite_loop_guard(self):
        from repro.emu import Interpreter
        from repro.common.config import TABLE_I

        b = ProgramBuilder()
        b.label("spin").jump("spin")
        interp = Interpreter(b.build(), MemoryImage(), TABLE_I, max_steps=1000)
        with pytest.raises(SrvError):
            interp.run()

    def test_dynamic_instruction_count(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(0))
        b.label("top")
        b.add(x(1), x(1), imm(1))
        b.blt(x(1), imm(5), "top")
        b.halt()
        metrics, _, _ = run(b.build())
        # 1 mov + 5*(add+branch) + halt
        assert metrics.dynamic_instructions == 1 + 10 + 1
