"""Tests for the McPAT-style power model (section VI-C)."""

import pytest

from repro.compiler import Strategy
from repro.experiments.runner import run_loop
from repro.power import LSU_POWER_SHARE, EnergyParams, PowerModel
from repro.workloads import by_name


def stats_for(workload_name: str, strategy: Strategy, loop_index: int = 0):
    spec = by_name(workload_name).loops[loop_index]
    run = run_loop(spec, strategy, n_override=128)
    assert run.correct
    return run.pipe


class TestCalibration:
    def test_baseline_lsu_share_is_11_percent(self):
        """Calibration pins the LSU at the paper's 11% of core power."""
        model = PowerModel()
        baseline = stats_for("bzip2", Strategy.SCALAR)
        scale = model.calibrate_scale(baseline)
        estimate = model.estimate(baseline, scale)
        assert estimate.lsu_share == pytest.approx(LSU_POWER_SHARE, rel=1e-6)

    def test_scale_positive(self):
        model = PowerModel()
        baseline = stats_for("gcc", Strategy.SCALAR)
        assert model.calibrate_scale(baseline) > 0

    def test_estimate_components(self):
        model = PowerModel()
        baseline = stats_for("astar", Strategy.SCALAR)
        est = model.estimate(baseline, 1.0)
        assert est.lsu_energy > 0
        assert est.other_energy > 0
        assert est.power > 0


class TestPowerChange:
    def test_whole_program_power_change_bounded(self):
        """Figure 12: the core-level change is within a few percent."""
        model = PowerModel()
        for name in ("bzip2", "astar", "is"):
            workload = by_name(name)
            base = stats_for(name, Strategy.SCALAR)
            srv = stats_for(name, Strategy.SRV)
            delta = model.whole_program_power_change(
                base, srv, workload.coverage, loop_speedup=2.5
            )
            assert -0.10 < delta < 0.10, (name, delta)

    def test_whole_program_validates_inputs(self):
        model = PowerModel()
        base = stats_for("gcc", Strategy.SCALAR)
        srv = stats_for("gcc", Strategy.SRV)
        with pytest.raises(ValueError):
            model.whole_program_power_change(base, srv, 0.0, 2.0)
        with pytest.raises(ValueError):
            model.whole_program_power_change(base, srv, 0.5, -1.0)

    def test_identical_runs_no_change(self):
        model = PowerModel()
        base = stats_for("gcc", Strategy.SCALAR)
        assert model.power_change(base, base) == pytest.approx(0.0)

    def test_custom_energy_params(self):
        model = PowerModel(EnergyParams(cam_lookup=10.0))
        base = stats_for("milc", Strategy.SCALAR)
        srv = stats_for("milc", Strategy.SRV)
        delta = model.power_change(base, srv)
        assert isinstance(delta, float)

    def test_srv_cam_lookups_exceed_per_instruction(self):
        """Inside regions stores double their CAM lookups plus one extra:
        SRV's lookups-per-memory-op must exceed the baseline's."""
        base = stats_for("bzip2", Strategy.SCALAR)
        srv = stats_for("bzip2", Strategy.SRV)
        base_rate = base.lsu.total_cam_lookups / max(base.loads + base.stores, 1)
        srv_rate = srv.lsu.total_cam_lookups / max(srv.loads + srv.stores, 1)
        assert srv_rate > base_rate
