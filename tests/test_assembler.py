"""Tests for the text assembler, including listing round-trips."""

import pytest

from repro.common.errors import IsaError
from repro.common.rng import periodic_conflict_indices
from repro.compiler import Strategy, compile_loop
from repro.emu import run_program
from repro.isa import Program, ProgramBuilder, imm, p, v, x
from repro.isa.assembler import parse_asm
from repro.memory import MemoryImage
from repro.workloads.base import indirect_update, masked_threshold_mem

LISTING2 = """
; the paper's listing 2
Loop:
    srv_start (up)
    v_load v0, [x5, #0] (4B)
    v_add v0, v0, #2
    v_load v1, [x6, #0] (4B)
    v_scatter v0, [x1, v1] (4B)
    srv_end
    add x3, x3, #16
    blt x3, x4, Loop
    halt
"""


class TestParsing:
    def test_listing2_shape(self):
        program = parse_asm(LISTING2)
        assert isinstance(program, Program)
        assert len(program) == 9
        assert program.labels["Loop"] == 0
        assert program.region_spans() == [(0, 5)]

    def test_comments_and_blank_lines_ignored(self):
        program = parse_asm("""
            // comment
            mov x1, #5   ; trailing comment

            halt
        """)
        assert len(program) == 2

    def test_predicate_annotation(self):
        program = parse_asm("v_add v1, v1, #1 (p2/m)\nhalt")
        inst = program[0]
        assert inst.pred == p(2)

    def test_elem_annotation(self):
        program = parse_asm("v_load v1, [x1, #8] (1B)\nhalt")
        assert program[0].elem == 1
        assert program[0].offset == 8

    def test_scalar_memory_defaults_to_8_bytes(self):
        program = parse_asm("ldr x2, [x1, #0]\nhalt")
        assert program[0].elem == 8

    def test_down_direction(self):
        from repro.isa import SrvDirection

        program = parse_asm("srv_start (down)\nsrv_end\nhalt")
        assert program[0].direction is SrvDirection.DOWN

    def test_gather_scatter_index_operand(self):
        program = parse_asm("v_gather v2, [x1, v3] (4B)\nhalt")
        assert program[0].index == v(3)

    def test_lane_extract(self):
        program = parse_asm("v_extract x1, v2[7]\nhalt")
        assert program[0].lane == 7

    def test_predicate_ops(self):
        program = parse_asm("""
            ptrue p1
            pfalse p2
            p_and p3, p1, p2
            p_not p4, p3
            pcount x1, p4
            pfirstn p5, x1
            prange p6, x1, x2
            halt
        """)
        assert len(program) == 8

    def test_fma(self):
        program = parse_asm("v_fma v1, v2, v3, v4\nhalt")
        assert program[0].src3 == v(4)

    def test_reduce(self):
        program = parse_asm("v_reduce_add x1, v2\nhalt")
        assert program[0].op == "add"

    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            parse_asm("frobnicate x1, x2\nhalt")

    def test_bad_memory_operand(self):
        with pytest.raises(IsaError):
            parse_asm("v_load v0, [x1 x2]\nhalt")

    def test_undefined_label_fails_validation(self):
        with pytest.raises(IsaError):
            parse_asm("b nowhere\nhalt")


class TestRoundTrip:
    def roundtrip(self, program: Program) -> Program:
        return parse_asm(program.listing(), name=program.name)

    def assert_equivalent(self, prog_a: Program, prog_b: Program, mem_builder):
        mem_a, mem_b = mem_builder(), mem_builder()
        metrics_a, _ = run_program(prog_a, mem_a)
        metrics_b, _ = run_program(prog_b, mem_b)
        assert mem_a.snapshot() == mem_b.snapshot()
        assert (
            metrics_a.dynamic_instructions == metrics_b.dynamic_instructions
        )

    def test_builder_program_roundtrips(self):
        b = ProgramBuilder("rt")
        b.mov(x(1), imm(3))
        b.label("top")
        b.add(x(1), x(1), imm(-1))
        b.bgt(x(1), imm(0), "top")
        b.halt()
        original = b.build()
        parsed = self.roundtrip(original)
        assert len(parsed) == len(original)
        assert parsed.labels == original.labels

    @pytest.mark.parametrize("strategy", [Strategy.SCALAR, Strategy.SRV])
    def test_compiled_listing1_roundtrips(self, strategy):
        n = 48
        loop = indirect_update()
        x_vals = periodic_conflict_indices(n, 4)

        def mem_builder():
            mem = MemoryImage()
            mem.alloc("a", n, 4, init=range(n))
            mem.alloc("x", n, 4, init=x_vals)
            return mem

        original = compile_loop(loop, mem_builder(), n, strategy)
        parsed = self.roundtrip(original)
        self.assert_equivalent(original, parsed, mem_builder)

    def test_compiled_broadcast_and_select_roundtrips(self):
        n = 32
        loop = masked_threshold_mem()

        def mem_builder():
            mem = MemoryImage()
            mem.alloc("a", n, 4, init=[i * 5 % 90 for i in range(n)])
            mem.alloc("x", n, 4, init=range(n))
            mem.alloc("t0", 1, 4, init=[40])
            return mem

        original = compile_loop(loop, mem_builder(), n, Strategy.SRV)
        parsed = self.roundtrip(original)
        self.assert_equivalent(original, parsed, mem_builder)

    def test_flexvec_roundtrips(self):
        n = 32
        loop = indirect_update()
        x_vals = periodic_conflict_indices(n, 4)

        def mem_builder():
            mem = MemoryImage()
            mem.alloc("a", n, 4, init=range(n))
            mem.alloc("x", n, 4, init=x_vals)
            return mem

        original = compile_loop(loop, mem_builder(), n, Strategy.FLEXVEC)
        parsed = self.roundtrip(original)
        self.assert_equivalent(original, parsed, mem_builder)
