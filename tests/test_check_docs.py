"""The documentation reference checker (tools/check_docs.py).

CI runs the script directly; these tests pin its resolution rules so a
refactor of the checker cannot silently stop detecting rot.
"""

import importlib.util
import os

import pytest

_TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools")


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(_TOOLS, "check_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestModuleRefs:
    def test_real_modules_resolve(self, check_docs):
        assert check_docs.module_exists("repro.parallel.cache")
        assert check_docs.module_exists("repro.lsu.unit.LoadStoreUnit")
        assert check_docs.module_exists("repro.experiments")

    def test_fake_module_fails(self, check_docs):
        assert not check_docs.module_exists("repro.nonexistent.widget")

    def test_bare_package_is_uninteresting(self, check_docs):
        assert check_docs.module_exists("repro")


class TestPathRefs:
    def test_real_paths_resolve(self, check_docs):
        assert check_docs.path_exists("docs/PERFORMANCE.md")
        assert check_docs.path_exists("src/repro/pipeline/core.py")

    def test_missing_path_fails(self, check_docs):
        assert not check_docs.path_exists("examples/limit_study.py")

    def test_glob_families_tolerated(self, check_docs):
        assert check_docs.path_exists("docs/*.md")


class TestCheckFile:
    def test_flags_stale_references(self, check_docs, tmp_path):
        doc = tmp_path / "stale.md"
        doc.write_text(
            "See `repro.bogus.module` and `src/repro/gone.py` for details;\n"
            "`repro.lsu.unit` is fine.\n"
        )
        problems = check_docs.check_file(str(doc))
        assert len(problems) == 2
        assert any("repro.bogus.module" in p for p in problems)
        assert any("src/repro/gone.py" in p for p in problems)

    def test_repo_docs_are_clean(self, check_docs):
        problems = []
        for path in check_docs.doc_files():
            problems.extend(check_docs.check_file(path))
        assert not problems, problems


class TestCliDocumented:
    def test_finds_all_registered_subcommands(self, check_docs):
        names = check_docs.cli_subcommands()
        assert {"list", "experiment", "loop", "disasm", "verify",
                "inject", "sweep", "trace", "attrib"} <= set(names)

    def test_readme_documents_every_subcommand(self, check_docs):
        assert check_docs.check_cli_documented() == []

    def test_flags_undocumented_subcommand(self, check_docs, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text("only `repro list` is mentioned here\n")
        problems = check_docs.check_cli_documented(str(readme))
        assert problems
        assert any("'trace'" in p for p in problems)
        # the one documented command is not flagged
        assert not any("'list'" in p for p in problems)


class TestKnobsDocumented:
    def test_finds_declared_knobs(self, check_docs):
        names = check_docs.generator_knobs()
        assert {"n", "dep_density", "dep_distance", "gather_ratio",
                "scatter", "predication_rate", "direction"} <= set(names)
        # the source parse must agree with the importable declaration
        from repro.gen.knobs import KNOB_SPACE
        assert set(names) == {spec.name for spec in KNOB_SPACE}

    def test_generator_doc_covers_every_knob(self, check_docs):
        assert check_docs.check_knobs_documented() == []

    def test_flags_undocumented_knob(self, check_docs, tmp_path):
        doc = tmp_path / "GENERATOR.md"
        doc.write_text("only `dep_density` is mentioned here\n")
        problems = check_docs.check_knobs_documented(str(doc))
        assert problems
        assert any("'gather_ratio'" in p for p in problems)
        assert not any("'dep_density'" in p for p in problems)


class TestVerdictsDocumented:
    def test_enum_members_parse_agrees_with_import(self, check_docs):
        from repro.analyze import RegionVerdict
        from repro.compiler.analysis import DepClass

        for src, cls, enum in (
            (("src", "repro", "compiler", "analysis.py"), "DepClass",
             DepClass),
            (("src", "repro", "analyze", "dependence.py"), "RegionVerdict",
             RegionVerdict),
        ):
            path = os.path.join(check_docs.REPO_ROOT, *src)
            assert set(check_docs.enum_members(path, cls)) \
                == {m.name for m in enum}

    def test_analysis_doc_covers_every_verdict(self, check_docs):
        assert check_docs.check_verdicts_documented() == []

    def test_flags_undocumented_verdict(self, check_docs, tmp_path, monkeypatch):
        doc_rel = os.path.join("docs", "ANALYSIS.md")
        (tmp_path / "docs").mkdir()
        (tmp_path / "src" / "repro" / "compiler").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "analyze").mkdir(parents=True)
        (tmp_path / doc_rel).write_text("only `NO_CONFLICT` here\n")
        for src, _, body in check_docs.VERDICT_ENUMS:
            real = os.path.join(check_docs.REPO_ROOT, src)
            (tmp_path / src).write_text(open(real, encoding="utf-8").read())
        monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
        problems = check_docs.check_verdicts_documented()
        assert any("'MUST_CONFLICT'" in p for p in problems)
        assert any("'UNKNOWN'" in p for p in problems)
        assert not any("'NO_CONFLICT'" in p for p in problems)
