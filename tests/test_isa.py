"""Tests for the ISA: registers, instructions, programs, builder."""

import pytest

from repro.common.errors import IsaError
from repro.isa import (
    Branch,
    BranchCond,
    ProgramBuilder,
    ScalarALU,
    ScalarOpcode,
    SrvDirection,
    SrvStart,
    VecALU,
    VecOpcode,
    imm,
    p,
    v,
    x,
)
from repro.isa.registers import PredReg, ScalarReg, VecReg


class TestRegisters:
    def test_valid_ranges(self):
        assert x(0).index == 0 and x(31).index == 31
        assert v(31).index == 31
        assert p(15).index == 15

    @pytest.mark.parametrize("ctor,bad", [(ScalarReg, 32), (VecReg, 32), (PredReg, 16)])
    def test_out_of_range(self, ctor, bad):
        with pytest.raises(IsaError):
            ctor(bad)
        with pytest.raises(IsaError):
            ctor(-1)

    def test_repr(self):
        assert repr(x(3)) == "x3"
        assert repr(v(7)) == "v7"
        assert repr(p(2)) == "p2"
        assert repr(imm(5)) == "#5"

    def test_hashable_equality(self):
        assert x(3) == x(3)
        assert x(3) != x(4)
        assert len({v(1), v(1), v(2)}) == 2


class TestInstructionValidation:
    def test_mov_single_operand(self):
        ScalarALU(ScalarOpcode.MOV, x(1), x(2))
        with pytest.raises(IsaError):
            ScalarALU(ScalarOpcode.MOV, x(1), x(2), x(3))

    def test_binary_requires_two_operands(self):
        with pytest.raises(IsaError):
            ScalarALU(ScalarOpcode.ADD, x(1), x(2))

    def test_vec_fma_requires_accumulator(self):
        with pytest.raises(IsaError):
            VecALU(VecOpcode.FMA, v(0), v(1), v(2))

    def test_vec_non_fma_rejects_third_operand(self):
        with pytest.raises(IsaError):
            VecALU(VecOpcode.ADD, v(0), v(1), v(2), v(3))

    def test_elem_size_validation(self):
        with pytest.raises(IsaError):
            VecALU(VecOpcode.ADD, v(0), v(1), v(2), elem=3)

    def test_classification_flags(self):
        from repro.isa import VecLoadGather, VecStoreContig

        gather = VecLoadGather(v(0), x(1), v(1))
        assert gather.is_vector and gather.is_mem and gather.is_load
        assert gather.access_kind == "gather"
        store = VecStoreContig(v(0), x(1))
        assert store.is_store and not store.is_load
        assert store.access_kind == "contiguous"
        branch = Branch(BranchCond.NE, x(1), imm(0), "top")
        assert branch.is_branch and not branch.is_vector

    def test_srv_start_direction(self):
        assert SrvStart().direction is SrvDirection.UP
        assert SrvStart(SrvDirection.DOWN).direction is SrvDirection.DOWN


class TestProgramBuilder:
    def test_listing2_shape(self):
        """The paper's listing 2 builds and validates."""
        b = ProgramBuilder("listing2")
        b.label("Loop")
        b.srv_start()
        b.v_load(v(0), x(1))
        b.v_add(v(0), v(0), imm(2))
        b.v_scatter(v(0), x(1), v(1))
        b.srv_end()
        b.add(x(2), x(2), imm(16))
        b.blt(x(2), x(3), "Loop")
        b.halt()
        prog = b.build()
        assert len(prog) == 8
        assert prog.labels["Loop"] == 0
        assert prog.region_spans() == [(0, 4)]

    def test_duplicate_label(self):
        b = ProgramBuilder()
        b.label("a")
        with pytest.raises(IsaError):
            b.label("a")

    def test_undefined_branch_target(self):
        b = ProgramBuilder()
        b.bne(x(0), imm(0), "nowhere").halt()
        with pytest.raises(IsaError):
            b.build()

    def test_nested_region_rejected(self):
        b = ProgramBuilder()
        b.srv_start().srv_start().srv_end().srv_end().halt()
        with pytest.raises(IsaError):
            b.build()

    def test_unclosed_region_rejected(self):
        b = ProgramBuilder()
        b.srv_start().halt()
        with pytest.raises(IsaError):
            b.build()

    def test_srv_end_without_start_rejected(self):
        b = ProgramBuilder()
        b.srv_end().halt()
        with pytest.raises(IsaError):
            b.build()

    def test_branch_inside_region_rejected(self):
        """Control flow in a region must be if-converted (section III-C)."""
        b = ProgramBuilder()
        b.label("top")
        b.srv_start()
        b.bne(x(0), imm(0), "top")
        b.srv_end()
        b.halt()
        with pytest.raises(IsaError):
            b.build()

    def test_predicated_code_inside_region_allowed(self):
        b = ProgramBuilder()
        b.srv_start()
        from repro.isa import CmpOpcode

        b.v_cmp(CmpOpcode.GT, p(1), v(0), imm(0))
        b.v_add(v(1), v(1), imm(1), pred=p(1))
        b.srv_end()
        b.halt()
        prog = b.build()
        assert prog.region_spans() == [(0, 3)]

    def test_listing_renders_labels(self):
        b = ProgramBuilder("demo")
        b.label("start").nop().halt()
        text = b.build().listing()
        assert "start:" in text
        assert "nop" in text

    def test_static_counts(self):
        b = ProgramBuilder()
        b.srv_start()
        b.v_load(v(0), x(1))
        b.v_gather(v(1), x(1), v(0))
        b.v_scatter(v(1), x(1), v(0))
        b.v_add(v(1), v(1), imm(1))
        b.srv_end()
        b.halt()
        counts = b.build().static_counts()
        assert counts["vector_mem"] == 3
        assert counts["gather_scatter"] == 2
        assert counts["vector"] == 4

    def test_builder_fluency(self):
        prog = (
            ProgramBuilder("fluent")
            .mov(x(1), imm(1))
            .add(x(1), x(1), imm(2))
            .halt()
            .build()
        )
        assert len(prog) == 3
