"""Tests for the SRV region-control engine (paper section III-D)."""

import pytest

from repro.common.bitvec import BitVector
from repro.common.errors import (
    NestedSrvRegionError,
    ReplayBoundExceededError,
    SrvRegionStateError,
)
from repro.isa.instructions import SrvDirection
from repro.srv import NORMAL_EXECUTION_PC, RegionOutcome, SrvEngine

LANES = 16


def engine():
    return SrvEngine(lanes=LANES)


class TestRegionLifecycle:
    def test_start_sets_registers(self):
        e = engine()
        e.start_region(0x40, SrvDirection.DOWN)
        assert e.regs.in_region
        assert e.regs.restart_pc == 0x40
        assert e.regs.replay.all()
        assert e.regs.needs_replay.none()
        assert e.regs.direction is SrvDirection.DOWN

    def test_outside_region_restart_pc_is_zero(self):
        e = engine()
        assert e.regs.restart_pc == NORMAL_EXECUTION_PC
        assert not e.regs.in_region

    def test_nested_start_rejected(self):
        e = engine()
        e.start_region(0x40)
        with pytest.raises(NestedSrvRegionError):
            e.start_region(0x80)

    def test_restart_pc_zero_reserved(self):
        with pytest.raises(SrvRegionStateError):
            engine().start_region(NORMAL_EXECUTION_PC)

    def test_end_without_start_rejected(self):
        with pytest.raises(SrvRegionStateError):
            engine().end_region()

    def test_clean_end_commits(self):
        e = engine()
        e.start_region(0x40)
        decision = e.end_region()
        assert decision.outcome is RegionOutcome.COMMIT
        assert not decision.restart
        assert not e.regs.in_region
        assert e.serialisation_points == 1

    def test_violation_outside_region_rejected(self):
        with pytest.raises(SrvRegionStateError):
            engine().record_violation({3})


class TestReplayDecision:
    def test_violations_trigger_replay(self):
        e = engine()
        e.start_region(0x40)
        e.record_violation({3, 7, 11, 15})
        decision = e.end_region()
        assert decision.restart
        assert sorted(decision.replay_lanes.set_indices()) == [3, 7, 11, 15]
        # SRV-needs-replay copied into SRV-replay; sticky bits cleared.
        assert sorted(e.regs.replay.set_indices()) == [3, 7, 11, 15]
        assert e.regs.needs_replay.none()
        assert e.regs.in_region

    def test_sticky_accumulation(self):
        e = engine()
        e.start_region(0x40)
        e.record_violation({3})
        e.record_violation({7})
        e.record_violation(BitVector.from_indices(LANES, [3, 11]))
        assert sorted(e.regs.needs_replay.set_indices()) == [3, 7, 11]

    def test_second_clean_pass_commits(self):
        e = engine()
        e.start_region(0x40)
        e.record_violation({5})
        assert e.end_region().restart
        decision = e.end_region()
        assert decision.outcome is RegionOutcome.COMMIT
        assert e.rollbacks_this_region == 1

    def test_rollback_bound_enforced(self):
        e = engine()
        e.start_region(0x40)
        for _ in range(LANES - 1):
            e.record_violation({15})
            assert e.end_region().restart
        e.record_violation({15})
        with pytest.raises(ReplayBoundExceededError):
            e.end_region()

    def test_bound_can_be_disabled(self):
        e = SrvEngine(lanes=4, enforce_bound=False)
        e.start_region(0x40)
        for _ in range(10):
            e.record_violation({3})
            e.end_region()
        assert e.total_rollbacks == 10

    def test_oldest_active_lane(self):
        e = engine()
        e.start_region(0x40)
        assert e.regs.oldest_active_lane == 0
        e.record_violation({5, 9})
        e.end_region()
        assert e.regs.oldest_active_lane == 5


class TestContextSwitch:
    def test_save_captures_three_values(self):
        e = engine()
        e.start_region(0x40)
        e.record_violation({6})
        e.end_region()  # replay pass for lane 6
        saved = e.save_context(current_pc=0x44)
        assert saved.current_pc == 0x44
        assert saved.restart_pc == 0x40
        assert sorted(saved.replay.set_indices()) == [6]
        assert not e.regs.in_region  # engine state cleared after save

    def test_save_outside_region_rejected(self):
        with pytest.raises(SrvRegionStateError):
            engine().save_context(0x44)

    def test_resume_restores_only_oldest_lane(self):
        """Section III-D2: only the oldest saved lane resumes; all younger
        lanes are marked needs-replay."""
        e = engine()
        e.start_region(0x40)
        saved = e.save_context(0x44)  # replay register was all lanes
        e.resume_context(saved)
        assert e.regs.in_region
        assert sorted(e.regs.replay.set_indices()) == [0]
        assert sorted(e.regs.needs_replay.set_indices()) == list(range(1, LANES))

    def test_resume_mid_replay(self):
        e = engine()
        e.start_region(0x40)
        e.record_violation({4, 9})
        e.end_region()
        saved = e.save_context(0x48)
        e.resume_context(saved)
        assert sorted(e.regs.replay.set_indices()) == [4]
        # lanes younger than 4 (5..15) marked, including 9.
        assert sorted(e.regs.needs_replay.set_indices()) == list(range(5, LANES))

    def test_resume_into_active_region_rejected(self):
        e = engine()
        e.start_region(0x40)
        saved = e.save_context(0x44)
        e.resume_context(saved)
        with pytest.raises(SrvRegionStateError):
            e.resume_context(saved)


class TestExceptions:
    def test_oldest_lane_delivers(self):
        e = engine()
        e.start_region(0x40)
        decision = e.exception_in_lane(0)
        assert decision.deliver
        assert decision.reexecute_lanes.none()

    def test_younger_lane_marks_reexecution(self):
        """Section III-D3: a fault in a speculative lane marks that lane
        and all younger ones for re-execution instead of delivering."""
        e = engine()
        e.start_region(0x40)
        decision = e.exception_in_lane(5)
        assert not decision.deliver
        assert sorted(decision.reexecute_lanes.set_indices()) == list(range(5, LANES))
        assert sorted(e.regs.needs_replay.set_indices()) == list(range(5, LANES))

    def test_oldest_lane_tracks_replay_set(self):
        e = engine()
        e.start_region(0x40)
        e.record_violation({4, 8})
        e.end_region()
        assert e.exception_in_lane(4).deliver
        decision = e.exception_in_lane(8)
        assert not decision.deliver
        # only active lanes are re-marked
        assert sorted(decision.reexecute_lanes.set_indices()) == [8]

    def test_exception_outside_region_rejected(self):
        with pytest.raises(SrvRegionStateError):
            engine().exception_in_lane(0)

    def test_lane_out_of_range(self):
        e = engine()
        e.start_region(0x40)
        with pytest.raises(SrvRegionStateError):
            e.exception_in_lane(16)


class TestStatistics:
    def test_region_and_rollback_counters(self):
        e = engine()
        for _ in range(3):
            e.start_region(0x40)
            e.record_violation({2})
            e.end_region()
            e.end_region()
        assert e.regions_entered == 3
        assert e.total_rollbacks == 3
        assert e.serialisation_points == 6
