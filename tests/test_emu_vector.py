"""Vector-instruction semantics (non-SRV) of the functional emulator."""

import pytest

from repro.emu import run_program
from repro.isa import CmpOpcode, ProgramBuilder, imm, p, v, x
from repro.memory import MemoryImage

LANES = 16


def run(builder, mem=None):
    mem = mem or MemoryImage()
    metrics, state = run_program(builder.build(), mem)
    return metrics, state, mem


class TestVectorALU:
    def test_elementwise_add(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(0))           # 0..15
        b.v_index(v(2), imm(100), imm(2))  # 100,102,...
        b.v_add(v(3), v(1), v(2))
        b.halt()
        _, state, _ = run(b)
        assert state.read_vector(v(3)) == [100 + 3 * i for i in range(LANES)]

    def test_vector_scalar_operand(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(7))
        b.v_index(v(1), imm(0))
        b.v_mul(v(2), v(1), x(1))
        b.halt()
        _, state, _ = run(b)
        assert state.read_vector(v(2)) == [7 * i for i in range(LANES)]

    def test_immediate_operand(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(0))
        b.v_add(v(2), v(1), imm(1000))
        b.halt()
        _, state, _ = run(b)
        assert state.read_vector(v(2))[5] == 1005

    def test_fma(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(1))     # a = 1..16
        b.v_splat(v(2), imm(3))     # b = 3
        b.v_splat(v(3), imm(10))    # c = 10
        b.v_fma(v(4), v(1), v(2), v(3))
        b.halt()
        _, state, _ = run(b)
        assert state.read_vector(v(4)) == [(1 + i) * 3 + 10 for i in range(LANES)]

    def test_elem_size_wrapping(self):
        b = ProgramBuilder()
        b.v_splat(v(1), imm(255), elem=1)
        b.v_add(v(2), v(1), imm(1), elem=1)
        b.halt()
        _, state, _ = run(b)
        assert state.read_vector(v(2)) == [0] * LANES

    def test_merging_predication(self):
        """Inactive lanes keep their previous register contents (III-D5)."""
        b = ProgramBuilder()
        b.v_splat(v(1), imm(5))
        b.mov(x(1), imm(4))
        b.pfirstn(p(1), x(1))                     # lanes 0-3 active
        b.v_add(v(1), v(1), imm(100), pred=p(1))
        b.halt()
        _, state, _ = run(b)
        expect = [105] * 4 + [5] * 12
        assert state.read_vector(v(1)) == expect


class TestPredicates:
    def test_ptrue_pfalse_count(self):
        b = ProgramBuilder()
        b.ptrue(p(1)).pcount(x(1), p(1))
        b.pfalse(p(2)).pcount(x(2), p(2))
        b.halt()
        _, state, _ = run(b)
        assert state.read_scalar(x(1)) == LANES
        assert state.read_scalar(x(2)) == 0

    def test_pfirstn_clamps(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(99)).pfirstn(p(1), x(1)).pcount(x(2), p(1))
        b.mov(x(3), imm(-5)).pfirstn(p(2), x(3)).pcount(x(4), p(2))
        b.halt()
        _, state, _ = run(b)
        assert state.read_scalar(x(2)) == LANES
        assert state.read_scalar(x(4)) == 0

    def test_prange(self):
        b = ProgramBuilder()
        b.mov(x(1), imm(3)).mov(x(2), imm(7))
        b.prange(p(1), x(1), x(2))
        b.halt()
        _, state, _ = run(b)
        assert state.read_pred(p(1)) == [3 <= i < 7 for i in range(LANES)]

    def test_vcmp_and_logic(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(0))
        b.v_cmp(CmpOpcode.GE, p(1), v(1), imm(8))    # lanes 8-15
        b.v_cmp(CmpOpcode.LT, p(2), v(1), imm(12))   # lanes 0-11
        b.p_and(p(3), p(1), p(2))                    # lanes 8-11
        b.p_or(p(4), p(1), p(2))                     # all
        b.p_not(p(5), p(4))                          # none
        b.p_andnot(p(6), p(2), p(1))                 # lanes 0-7
        b.halt()
        _, state, _ = run(b)
        assert state.read_pred(p(3)) == [8 <= i < 12 for i in range(LANES)]
        assert all(state.read_pred(p(4)))
        assert not any(state.read_pred(p(5)))
        assert state.read_pred(p(6)) == [i < 8 for i in range(LANES)]

    def test_vcmp_inactive_lanes_false(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(0))
        b.mov(x(1), imm(4)).pfirstn(p(1), x(1))
        b.v_cmp(CmpOpcode.GE, p(2), v(1), imm(0), pred=p(1))
        b.halt()
        _, state, _ = run(b)
        assert state.read_pred(p(2)) == [i < 4 for i in range(LANES)]


class TestVectorMemory:
    def test_contiguous_roundtrip(self):
        mem = MemoryImage()
        a = mem.alloc("a", LANES, 4, init=range(10, 10 + LANES))
        out = mem.alloc("out", LANES, 4)
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base)).mov(x(2), imm(out.base))
        b.v_load(v(1), x(1))
        b.v_add(v(1), v(1), imm(1))
        b.v_store(v(1), x(2))
        b.halt()
        run(b, mem)
        assert mem.load_array(out) == list(range(11, 11 + LANES))

    def test_contiguous_offset(self):
        mem = MemoryImage()
        a = mem.alloc("a", LANES * 2, 4, init=range(LANES * 2))
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base))
        b.v_load(v(1), x(1), offset=4 * LANES)
        b.halt()
        _, state, _ = run(b, mem)
        assert state.read_vector(v(1)) == list(range(LANES, 2 * LANES))

    def test_gather(self):
        mem = MemoryImage()
        table = mem.alloc("t", 64, 4, init=[i * i for i in range(64)])
        idx = mem.alloc("idx", LANES, 4, init=[3 * i for i in range(LANES)])
        b = ProgramBuilder()
        b.mov(x(1), imm(table.base)).mov(x(2), imm(idx.base))
        b.v_load(v(1), x(2))
        b.v_gather(v(2), x(1), v(1))
        b.halt()
        _, state, _ = run(b, mem)
        assert state.read_vector(v(2)) == [(3 * i) ** 2 for i in range(LANES)]

    def test_scatter(self):
        mem = MemoryImage()
        out = mem.alloc("out", 64, 4)
        b = ProgramBuilder()
        b.mov(x(1), imm(out.base))
        b.v_index(v(1), imm(0), imm(2))   # even slots
        b.v_index(v(2), imm(100))
        b.v_scatter(v(2), x(1), v(1))
        b.halt()
        run(b, mem)
        data = mem.load_array(out)
        assert data[0] == 100 and data[2] == 101 and data[30] == 115
        assert data[1] == 0

    def test_broadcast(self):
        mem = MemoryImage()
        a = mem.alloc("a", 4, 4, init=[7, 8, 9, 10])
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base))
        b.v_bcast(v(1), x(1), offset=8)
        b.halt()
        _, state, _ = run(b, mem)
        assert state.read_vector(v(1)) == [9] * LANES

    def test_predicated_load_merging(self):
        mem = MemoryImage()
        a = mem.alloc("a", LANES, 4, init=range(LANES))
        b = ProgramBuilder()
        b.v_splat(v(1), imm(-1))
        b.mov(x(1), imm(a.base))
        b.mov(x(2), imm(6)).pfirstn(p(1), x(2))
        b.v_load(v(1), x(1), pred=p(1))
        b.halt()
        _, state, _ = run(b, mem)
        assert state.read_vector(v(1)) == list(range(6)) + [2**32 - 1] * 10

    def test_predicated_store_skips_lanes(self):
        mem = MemoryImage()
        out = mem.alloc("out", LANES, 4, init=[-1] * LANES)
        b = ProgramBuilder()
        b.mov(x(1), imm(out.base))
        b.mov(x(2), imm(5)).pfirstn(p(1), x(2))
        b.v_index(v(1), imm(0))
        b.v_store(v(1), x(1), pred=p(1))
        b.halt()
        run(b, mem)
        assert mem.load_array(out) == [0, 1, 2, 3, 4] + [-1] * 11


class TestLaneUtilities:
    def test_extract(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(50))
        b.v_extract(x(1), v(1), 3)
        b.halt()
        _, state, _ = run(b)
        assert state.read_scalar(x(1)) == 53

    def test_reduce_add(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(0))
        b.v_reduce("add", x(1), v(1))
        b.halt()
        _, state, _ = run(b)
        assert state.read_scalar(x(1)) == sum(range(LANES))

    def test_reduce_min_max(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(-3), imm(2))
        b.v_reduce("min", x(1), v(1))
        b.v_reduce("max", x(2), v(1))
        b.halt()
        _, state, _ = run(b)
        assert state.read_scalar(x(1)) == -3
        assert state.read_scalar(x(2)) == -3 + 2 * 15

    def test_reduce_respects_predicate(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(1))
        b.mov(x(9), imm(4)).pfirstn(p(1), x(9))
        b.v_reduce("add", x(1), v(1), pred=p(1))
        b.halt()
        _, state, _ = run(b)
        assert state.read_scalar(x(1)) == 1 + 2 + 3 + 4

    def test_reduce_empty_mask_is_zero(self):
        b = ProgramBuilder()
        b.v_index(v(1), imm(5))
        b.pfalse(p(1))
        b.v_reduce("min", x(1), v(1), pred=p(1))
        b.halt()
        _, state, _ = run(b)
        assert state.read_scalar(x(1)) == 0

    def test_vector_instruction_metrics(self):
        mem = MemoryImage()
        a = mem.alloc("a", LANES, 4, init=range(LANES))
        b = ProgramBuilder()
        b.mov(x(1), imm(a.base))
        b.v_load(v(1), x(1))
        b.v_gather(v(2), x(1), v(1))
        b.v_add(v(3), v(1), v(2))
        b.halt()
        metrics, _, _ = run(b, mem)
        assert metrics.vector_instructions == 3
        assert metrics.vector_mem_instructions == 2
        assert metrics.gather_scatter_instructions == 1
