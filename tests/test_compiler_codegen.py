"""End-to-end codegen tests: every strategy must match the IR oracle.

These are the compiler's conformance tests: for each loop shape and each
strategy (scalar, SVE, SRV, FlexVec), the compiled program executed on the
functional emulator must produce exactly the arrays computed by the pure-
Python sequential reference.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import periodic_conflict_indices, sparse_conflict_indices
from repro.compiler import (
    Affine,
    BinOp,
    Const,
    Indirect,
    Loop,
    LoopIndex,
    Param,
    Read,
    Select,
    Store,
    Strategy,
    compile_loop,
    scalar_reference,
)
from repro.emu import run_program
from repro.isa.instructions import SrvStart, VecLoadContig, VecStoreContig
from repro.memory import MemoryImage

VL = 16
ALL_STRATEGIES = [Strategy.SCALAR, Strategy.SVE, Strategy.SRV, Strategy.FLEXVEC]


def run_strategy(loop, arrays, n, strategy, params=None):
    mem = MemoryImage()
    for name, values in arrays.items():
        mem.alloc(name, len(values), loop.arrays[name], init=values)
    prog = compile_loop(loop, mem, n, strategy, params=params)
    metrics, _ = run_program(prog, mem)
    out = {name: mem.load_array(mem.allocation(name)) for name in arrays}
    return out, metrics, prog


def check_all(loop, arrays, n, params=None, strategies=ALL_STRATEGIES):
    ref = scalar_reference(loop, arrays, n, params=params)
    results = {}
    for strategy in strategies:
        out, metrics, _ = run_strategy(loop, arrays, n, strategy, params)
        for name in arrays:
            assert out[name] == ref[name], (
                f"{strategy.value} mismatch on {name!r} for loop {loop.name!r}"
            )
        results[strategy] = metrics
    return results


def listing1():
    return Loop(
        "listing1", {"a": 4, "x": 4},
        [Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(2)))],
    )


class TestListing1AllStrategies:
    def test_periodic_conflicts(self):
        n = 64
        arrays = {
            "a": list(range(100, 100 + n)),
            "x": periodic_conflict_indices(n, 4),
        }
        results = check_all(listing1(), arrays, n)
        assert results[Strategy.SRV].srv.replays > 0

    def test_no_conflicts(self):
        n = 64
        arrays = {"a": list(range(n)), "x": list(range(n))}
        results = check_all(listing1(), arrays, n)
        assert results[Strategy.SRV].srv.replays == 0

    def test_sve_falls_back_to_scalar(self):
        n = 32
        arrays = {"a": list(range(n)), "x": list(range(n))}
        results = check_all(listing1(), arrays, n)
        assert (
            results[Strategy.SVE].dynamic_instructions
            == results[Strategy.SCALAR].dynamic_instructions
        )
        assert results[Strategy.SVE].vector_instructions == 0

    def test_srv_far_fewer_instructions(self):
        n = 128
        arrays = {"a": list(range(n)), "x": list(range(n))}
        results = check_all(listing1(), arrays, n)
        assert (
            results[Strategy.SRV].dynamic_instructions
            < results[Strategy.SCALAR].dynamic_instructions / 4
        )

    def test_flexvec_cheaper_than_scalar_but_dearer_than_srv(self):
        """Figure 13's shape: SRV needs fewer dynamic instructions."""
        n = 128
        arrays = {
            "a": list(range(n)),
            "x": sparse_conflict_indices(n, VL, 0.2, seed=5),
        }
        results = check_all(listing1(), arrays, n)
        assert (
            results[Strategy.SRV].dynamic_instructions
            < results[Strategy.FLEXVEC].dynamic_instructions
        )

    def test_non_multiple_trip_count_epilogue(self):
        """Tail iterations handled by the whilelt predicate."""
        for n in (1, 7, 17, 33, 50):
            arrays = {"a": list(range(n + 20)), "x": list(range(n))}
            check_all(listing1(), arrays, n)


class TestCleanLoops:
    def test_axpy_vectorised_by_sve(self):
        n = 80
        loop = Loop(
            "axpy", {"y": 4, "z": 4},
            [
                Store(
                    "y", Affine(),
                    BinOp("+", BinOp("*", Param("alpha"), Read("z", Affine())),
                          Read("y", Affine())),
                )
            ],
        )
        arrays = {"y": list(range(n)), "z": [2 * i for i in range(n)]}
        results = check_all(loop, arrays, n, params={"alpha": 3},
                            strategies=[Strategy.SCALAR, Strategy.SVE, Strategy.SRV])
        assert results[Strategy.SVE].vector_instructions > 0
        assert (
            results[Strategy.SVE].dynamic_instructions
            < results[Strategy.SCALAR].dynamic_instructions
        )

    def test_iota_with_loop_index(self):
        n = 40
        loop = Loop("iota", {"a": 4}, [Store("a", Affine(), LoopIndex())])
        check_all(loop, {"a": [0] * n}, n,
                  strategies=[Strategy.SCALAR, Strategy.SVE, Strategy.SRV])

    def test_offset_shift(self):
        """y[i] = y[i + 20] — provably safe at VL 16."""
        n = 20
        loop = Loop(
            "shift", {"y": 4},
            [Store("y", Affine(), Read("y", Affine(1, 20)))],
        )
        check_all(loop, {"y": list(range(100, 140))}, n,
                  strategies=[Strategy.SCALAR, Strategy.SVE, Strategy.SRV])


class TestSelectIfConversion:
    def test_clamp_all_strategies(self):
        n = 48
        loop = Loop(
            "clamp", {"a": 4, "x": 4},
            [
                Store(
                    "a", Indirect("x"),
                    Select("<", Read("a", Affine()), Const(50), Const(0),
                           Read("a", Affine())),
                )
            ],
        )
        arrays = {
            "a": [(i * 13) % 100 for i in range(n)],
            "x": sparse_conflict_indices(n, VL, 0.3, seed=9),
        }
        check_all(loop, arrays, n)


class TestElementSizes:
    @pytest.mark.parametrize("elem", [1, 2, 4, 8])
    def test_byte_short_word_double(self, elem):
        n = 32
        loop = Loop(
            "sized", {"a": elem, "x": 4},
            [Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(3)))],
        )
        arrays = {
            "a": [i % 100 for i in range(n)],
            "x": periodic_conflict_indices(n, 4),
        }
        check_all(loop, arrays, n,
                  strategies=[Strategy.SCALAR, Strategy.SRV])


class TestDownwardLoops:
    def test_down_loop_srv(self):
        n = 48
        loop = Loop(
            "down", {"a": 4, "x": 4},
            [Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(1)))],
            step=-1,
        )
        arrays = {"a": list(range(n)), "x": list(range(n))}
        check_all(loop, arrays, n, strategies=[Strategy.SCALAR, Strategy.SRV])

    def test_down_loop_uses_down_attribute(self):
        loop = Loop(
            "down", {"a": 4},
            [Store("a", Affine(), Read("a", Affine()))],
            step=-1,
        )
        mem = MemoryImage()
        mem.alloc("a", 16, 4, init=range(16))
        prog = compile_loop(loop, mem, 16, Strategy.SRV)
        starts = [i for i in prog.instructions if isinstance(i, SrvStart)]
        from repro.isa import SrvDirection

        assert starts and starts[0].direction is SrvDirection.DOWN


class TestGeneratedShape:
    def test_srv_region_contains_only_vector_instructions(self):
        mem = MemoryImage()
        mem.alloc("a", 32, 4, init=range(32))
        mem.alloc("x", 32, 4, init=range(32))
        prog = compile_loop(listing1(), mem, 32, Strategy.SRV)
        for start, end in prog.region_spans():
            for inst in prog.instructions[start + 1 : end]:
                assert inst.is_vector, f"non-vector {inst!r} inside SRV-region"

    def test_contiguous_accesses_use_contiguous_instructions(self):
        n = 32
        loop = Loop(
            "copy", {"a": 4, "b": 4},
            [Store("a", Affine(), Read("b", Affine()))],
        )
        mem = MemoryImage()
        mem.alloc("a", n, 4, init=[0] * n)
        mem.alloc("b", n, 4, init=range(n))
        prog = compile_loop(loop, mem, n, Strategy.SVE)
        kinds = [type(i) for i in prog.instructions]
        assert VecLoadContig in kinds and VecStoreContig in kinds
        assert prog.static_counts()["gather_scatter"] == 0

    def test_multi_statement_loop(self):
        n = 64
        loop = Loop(
            "two", {"a": 4, "b": 4, "x": 4},
            [
                Store("b", Affine(), BinOp("*", Read("a", Affine()), Const(2))),
                Store("a", Indirect("x"), Read("b", Affine())),
            ],
        )
        arrays = {
            "a": list(range(n)),
            "b": [0] * n,
            "x": sparse_conflict_indices(n, VL, 0.4, seed=2),
        }
        check_all(loop, arrays, n,
                  strategies=[Strategy.SCALAR, Strategy.SRV, Strategy.FLEXVEC])


# ---------------------------------------------------------------------------
# Property-based conformance
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    x_vals=st.lists(st.integers(0, 47), min_size=48, max_size=48),
    seed=st.integers(0, 1000),
)
def test_property_all_strategies_match_oracle(x_vals, seed):
    n = 48
    loop = listing1()
    arrays = {"a": [(seed * 7 + i * 3) % 251 for i in range(n)], "x": x_vals}
    ref = scalar_reference(loop, arrays, n)
    for strategy in (Strategy.SRV, Strategy.FLEXVEC):
        out, _, _ = run_strategy(loop, arrays, n, strategy)
        assert out["a"] == ref["a"], strategy


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 70),
    offset=st.integers(-4, 4),
    k=st.integers(-3, 3),
)
def test_property_affine_loops_sve_matches(n, offset, k):
    """SVE-compiled affine loops (safe or fallback) always match."""
    size = n + 10
    loop = Loop(
        "affine", {"a": 4, "b": 4},
        [
            Store(
                "a", Affine(),
                BinOp("+", Read("b", Affine(1, max(0, offset))), Const(k)),
            )
        ],
    )
    arrays = {"a": [0] * size, "b": list(range(size))}
    ref = scalar_reference(loop, arrays, n)
    out, _, _ = run_strategy(loop, arrays, n, Strategy.SVE)
    assert out["a"] == ref["a"]
