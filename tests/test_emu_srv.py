"""Functional SRV semantics: selective replay must preserve sequential order.

The central invariant (paper section III): executing a vectorised loop
inside an SRV-region produces exactly the memory state of the scalar loop,
for *any* index pattern — periodic conflicts, random conflicts, or none.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import TABLE_I
from repro.common.rng import periodic_conflict_indices, sparse_conflict_indices
from repro.emu import Interpreter, run_program
from repro.isa import ProgramBuilder, imm, p, v, x
from repro.memory import MemoryImage

LANES = TABLE_I.vector_lanes


def build_indirect_update(mem: MemoryImage, n: int, *, add: int = 2) -> "Program":
    """a[x[i]] = a[i] + add — the paper's listing 1 in SRV form (listing 2)."""
    a = mem.allocation("a")
    xs = mem.allocation("x")
    b = ProgramBuilder("listing2")
    b.mov(x(1), imm(a.base))
    b.mov(x(2), imm(xs.base))
    b.mov(x(3), imm(0))
    b.mov(x(4), imm(n))
    b.label("Loop")
    b.shl(x(7), x(3), imm(2))
    b.add(x(5), x(1), x(7))
    b.add(x(6), x(2), x(7))
    b.srv_start()
    b.v_load(v(0), x(5))
    b.v_add(v(0), v(0), imm(add))
    b.v_load(v(1), x(6))
    b.v_scatter(v(0), x(1), v(1))
    b.srv_end()
    b.add(x(3), x(3), imm(LANES))
    b.blt(x(3), x(4), "Loop")
    b.halt()
    return b.build()


def scalar_indirect_update(a_vals, x_vals, add=2):
    a = list(a_vals)
    for i in range(len(x_vals)):
        a[x_vals[i]] = a[i] + add
    return a


def run_indirect(a_vals, x_vals, add=2):
    n = len(x_vals)
    mem = MemoryImage()
    mem.alloc("a", max(n, max(x_vals) + 1 if x_vals else 1), 4, init=a_vals)
    mem.alloc("x", n, 4, init=x_vals)
    prog = build_indirect_update(mem, n, add=add)
    metrics, _ = run_program(prog, mem)
    return mem.load_array(mem.allocation("a")), metrics


class TestListing1Semantics:
    """The paper's motivating example (listing 1 / listing 2)."""

    def test_periodic_conflicts_match_scalar(self):
        n = 64
        x_vals = periodic_conflict_indices(n, 4)
        a_vals = list(range(100, 100 + n))
        got, metrics = run_indirect(a_vals, x_vals)
        assert got == scalar_indirect_update(a_vals, x_vals)

    def test_periodic_conflicts_replay_once_per_region(self):
        """Section II: lanes 3, 7, 11, 15 are replayed; the region finishes
        in two passes."""
        n = 16
        x_vals = periodic_conflict_indices(n, 4)
        _, metrics = run_indirect(list(range(n)), x_vals)
        assert metrics.srv.regions_entered == 1
        assert metrics.srv.region_passes == 2
        assert metrics.srv.replays == 1
        assert metrics.srv.raw_violations == 4  # lanes 3, 7, 11, 15

    def test_identity_indices_no_replay(self):
        n = 64
        x_vals = list(range(n))
        got, metrics = run_indirect(list(range(n)), x_vals)
        # a[i] = a[i] + 2 elementwise; WAW-free, same-lane RAW only.
        assert got == [i + 2 for i in range(n)]
        assert metrics.srv.replays == 0
        assert metrics.srv.region_passes == metrics.srv.regions_entered

    def test_forward_shift_no_violation(self):
        """x[i] = i + 16 writes strictly outside the group: no replay."""
        n = 32
        x_vals = [(i + 16) % 32 for i in range(16)] + list(range(16, 32))
        # group 0 scatters into group 1's territory before group 1 reads it:
        # cross-*region* dependence, handled because regions commit in order.
        got, metrics = run_indirect(list(range(n)), x_vals)
        assert got == scalar_indirect_update(list(range(n)), x_vals)

    def test_backward_reference_within_group_replays(self):
        n = 16
        x_vals = list(range(n))
        x_vals[2] = 9  # lane 9 reads a[9]; lane 2 writes a[9] -> RAW at lane 9
        got, metrics = run_indirect(list(range(n)), x_vals)
        assert got == scalar_indirect_update(list(range(n)), x_vals)
        assert metrics.srv.replays >= 1

    def test_sparse_conflicts_match_scalar(self):
        n = 256
        x_vals = sparse_conflict_indices(n, LANES, 0.5, seed=7)
        a_vals = [3 * i % 97 for i in range(n)]
        got, metrics = run_indirect(a_vals, x_vals)
        assert got == scalar_indirect_update(a_vals, x_vals)


class TestReplayBookkeeping:
    def test_replay_bound_respected(self):
        """Worst case: every lane reads the location lane-1 writes.

        x = [15, 0, 1, ..., 14] produces a chain where lane k reads a[k-1]
        which lane k-1 writes... the maximum replay cascade is bounded by
        lanes - 1 (section III-A)."""
        n = 16
        x_vals = [15] + list(range(15))
        got, metrics = run_indirect(list(range(n)), x_vals)
        assert got == scalar_indirect_update(list(range(n)), x_vals)
        assert metrics.srv.max_replays_in_region <= LANES - 1

    def test_chain_dependence_full_cascade(self):
        """a[i+1] = a[i] + 1 pattern: lane k depends on lane k-1's store.

        Sequential semantics ripple the value through every lane; SRV must
        reproduce this through repeated selective replays."""
        n = 16
        # a[x[i]] = a[i]+2 with x[i] = i+1 (lane k writes a[k+1], read by
        # lane k+1) — a serial chain through all lanes.
        x_vals = list(range(1, 16)) + [16]
        mem = MemoryImage()
        mem.alloc("a", 17, 4, init=[0] * 17)
        mem.alloc("x", 16, 4, init=x_vals)
        prog = build_indirect_update(mem, 16)
        metrics, _ = run_program(prog, mem)
        a = mem.load_array(mem.allocation("a"))
        expect = scalar_indirect_update([0] * 17, x_vals)
        assert a == expect
        # chain a[1]=a[0]+2, a[2]=a[1]+2 ... => a[16] = 32
        assert a[16] == 32
        assert metrics.srv.max_replays_in_region == LANES - 1

    def test_first_pass_and_replayed_lane_counts(self):
        n = 16
        x_vals = periodic_conflict_indices(n, 4)
        _, metrics = run_indirect(list(range(n)), x_vals)
        assert metrics.srv.first_pass_lane_executions == LANES
        assert metrics.srv.replayed_lane_executions == 4

    def test_dynamic_instructions_count_replay_passes(self):
        n = 16
        ident = list(range(n))
        _, clean = run_indirect(ident, ident)
        x_vals = periodic_conflict_indices(n, 4)
        _, dirty = run_indirect(ident, x_vals)
        # The replay pass refetches the 4-instruction region body + srv_end.
        assert (
            dirty.dynamic_instructions - clean.dynamic_instructions == 5
        )


class TestWARandWAW:
    def test_war_load_does_not_see_future_store(self):
        """Lane 0 reads a[8]; lane 8 writes a[8] (later lane): the load must
        return the *old* value — a WAR that store-buffering resolves."""
        n = 16
        # a[x[i]] = a[i] + 2 with x[8] = 8 untouched; craft instead with
        # overlapping windows: read a[i+8], write a[i].
        mem = MemoryImage()
        a = mem.alloc("a", 32, 4, init=list(range(32)))
        b = ProgramBuilder("war")
        b.mov(x(1), imm(a.base))
        b.srv_start()
        b.v_load(v(0), x(1), offset=32)       # a[8:24]
        b.v_store(v(0), x(1))                 # a[0:16] = those values
        b.srv_end()
        b.halt()
        metrics, _ = run_program(b.build(), mem)
        data = mem.load_array(a)
        # scalar semantics: for i in 0..15: a[i] = a[i+8] (reads see
        # earlier writes: a[8] was already overwritten by iteration 0? No -
        # iteration i reads a[i+8], writes a[i]: iteration 8 reads a[16],
        # writes a[8]; iteration 0 already read the ORIGINAL a[8].
        expect = list(range(32))
        for i in range(16):
            expect[i] = expect[i + 8]
        assert data == expect

    def test_waw_within_one_scatter_last_lane_wins(self):
        """All lanes of one scatter hit the same address: the highest lane's
        value must reach memory (selective memory update)."""
        mem = MemoryImage()
        out = mem.alloc("out", 4, 4, init=[0, 0, 0, 0])
        idx = mem.alloc("idx", LANES, 4, init=[0] * LANES)  # all lanes hit out[0]
        b = ProgramBuilder("waw")
        b.mov(x(1), imm(out.base))
        b.mov(x(2), imm(idx.base))
        b.srv_start()
        b.v_load(v(1), x(2))
        b.v_index(v(2), imm(100))        # lane i stores 100 + i
        b.v_scatter(v(2), x(1), v(1))
        b.srv_end()
        b.halt()
        metrics, _ = run_program(b.build(), mem)
        assert mem.load_array(out)[0] == 115  # lane 15 wins
        assert metrics.srv.replays == 0  # WAW needs no replay

    def test_waw_across_instructions_counted_and_resolved(self):
        """A scatter in an *earlier* lane overwrites an address already
        written by an older store in a *later* lane: the paper's WAW case,
        resolved by writing back the program-order-latest version."""
        mem = MemoryImage()
        out = mem.alloc("out", LANES, 4, init=[0] * LANES)
        idx = mem.alloc("idx", LANES, 4, init=[8] * LANES)  # all target out[8]
        b = ProgramBuilder("waw-cross")
        b.mov(x(1), imm(out.base))
        b.mov(x(2), imm(idx.base))
        b.srv_start()
        b.v_index(v(2), imm(100))
        b.v_store(v(2), x(1))            # instr A: out[i] = 100 + i
        b.v_load(v(1), x(2))
        b.v_index(v(3), imm(200))
        b.v_scatter(v(3), x(1), v(1))    # instr B: out[8] = 200 + i
        b.srv_end()
        b.halt()
        metrics, _ = run_program(b.build(), mem)
        data = mem.load_array(out)
        # Sequential: iteration i sets out[i]=100+i then out[8]=200+i;
        # final out[8] is iteration 15's B value.
        expect = [100 + i for i in range(LANES)]
        expect[8] = 215
        assert data == expect
        assert metrics.srv.waw_events > 0
        assert metrics.srv.replays == 0

    def test_war_events_counted(self):
        mem = MemoryImage()
        a = mem.alloc("a", 32, 4, init=list(range(32)))
        b = ProgramBuilder("war-count")
        b.mov(x(1), imm(a.base))
        b.srv_start()
        b.v_store(v(0), x(1), offset=0)       # writes a[0:16]
        b.v_load(v(1), x(1), offset=32)       # reads a[8:24]: overlap in later lanes?
        b.srv_end()
        b.halt()
        # store lanes 8..15 write a[8..15]? No: store writes a[0:16] lanes
        # 0-15; load reads a[8:24] lanes 0-15; load lane 0 reads a[8],
        # written by store lane 8 (later lane) -> WAR suppression.
        metrics, _ = run_program(b.build(), mem)
        assert metrics.srv.war_events > 0


class TestStoreToLoadForwarding:
    def test_same_lane_forwarding(self):
        """A load that reads what an earlier instruction's same lane stored
        must see the buffered value (vertical RAW satisfied in-region)."""
        mem = MemoryImage()
        a = mem.alloc("a", LANES, 4, init=[0] * LANES)
        b = ProgramBuilder("fwd")
        b.mov(x(1), imm(a.base))
        b.srv_start()
        b.v_index(v(1), imm(500))
        b.v_store(v(1), x(1))
        b.v_load(v(2), x(1))
        b.srv_end()
        b.halt()
        metrics, state = run_program(b.build(), mem)
        assert state.read_vector(v(2)) == [500 + i for i in range(LANES)]
        assert metrics.loads_forwarded > 0
        assert metrics.srv.replays == 0

    def test_earlier_lane_forwarding_via_replay(self):
        """Gather reading earlier lanes' scattered data is a horizontal RAW:
        resolved by replay, after which forwarding provides the data."""
        mem = MemoryImage()
        a = mem.alloc("a", LANES, 4, init=[0] * LANES)
        idx_fwd = mem.alloc("fwd", LANES, 4, init=list(range(LANES)))
        # gather index: lane i reads a[max(i-1, 0)]
        idx_back = mem.alloc(
            "back", LANES, 4, init=[max(i - 1, 0) for i in range(LANES)]
        )
        b = ProgramBuilder("hraw")
        b.mov(x(1), imm(a.base))
        b.mov(x(2), imm(idx_fwd.base))
        b.mov(x(3), imm(idx_back.base))
        b.srv_start()
        b.v_load(v(3), x(3))
        b.v_gather(v(4), x(1), v(3))        # lane i reads a[i-1]
        b.v_load(v(1), x(2))
        b.v_index(v(2), imm(10), imm(10))   # lane i: 10*(i+1)
        b.v_scatter(v(2), x(1), v(1))       # a[i] = 10*(i+1)
        b.srv_end()
        b.halt()
        metrics, state = run_program(b.build(), mem)
        # Scalar semantics: iteration i reads a[i-1] (iteration i-1 already
        # wrote 10*i there), then writes a[i] = 10*(i+1).  Lane 0 reads the
        # original a[0] = 0.
        expect = [0] + [10 * i for i in range(1, LANES)]
        assert state.read_vector(v(4)) == expect
        assert metrics.srv.replays >= 1
        assert metrics.loads_forwarded > 0


class TestLsuOverflowFallback:
    def make_many_access_region(self, mem, n_gathers):
        a = mem.alloc("a", 64, 4, init=list(range(64)))
        idx = mem.alloc("idx", LANES, 4, init=list(range(LANES)))
        b = ProgramBuilder("big-region")
        b.mov(x(1), imm(a.base))
        b.mov(x(2), imm(idx.base))
        b.srv_start()
        b.v_load(v(1), x(2))
        for i in range(n_gathers):
            b.v_gather(v(2 + i % 8), x(1), v(1))
        b.v_add(v(2), v(2), imm(1))
        b.v_store(v(2), x(1))
        b.srv_end()
        b.halt()
        return b.build()

    def test_overflow_triggers_sequential_fallback(self):
        mem = MemoryImage()
        # 5 gathers * 16 lanes + load + store = 82 entries > 64.
        prog = self.make_many_access_region(mem, 5)
        metrics, _ = run_program(prog, mem)
        assert metrics.srv.lsu_fallbacks == 1
        assert metrics.srv.region_passes == LANES
        a = mem.allocation("a")
        assert mem.load_array(a)[:LANES] == [i + 1 for i in range(LANES)]

    def test_no_overflow_within_budget(self):
        mem = MemoryImage()
        # 3 gathers * 16 + 2 = 50 <= 64 (the paper's sizing: 16*3+7=55).
        prog = self.make_many_access_region(mem, 3)
        metrics, _ = run_program(prog, mem)
        assert metrics.srv.lsu_fallbacks == 0

    def test_fallback_preserves_semantics_with_conflicts(self):
        mem = MemoryImage()
        n = 16
        x_vals = periodic_conflict_indices(n, 4)
        a_vals = list(range(n))
        mem.alloc("a", n, 4, init=a_vals)
        mem.alloc("x", n, 4, init=x_vals)
        prog = build_indirect_update(mem, n)
        small = TABLE_I.with_overrides(lsu_entries=4)
        interp = Interpreter(prog, mem, small)
        metrics = interp.run()
        assert metrics.srv.lsu_fallbacks == 1
        assert mem.load_array(mem.allocation("a")) == scalar_indirect_update(
            a_vals, x_vals
        )


# ---------------------------------------------------------------------------
# Property-based oracle: SRV == scalar for arbitrary index patterns
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    x_vals=st.lists(st.integers(0, 47), min_size=48, max_size=48),
    a_seed=st.integers(0, 2**16),
    add=st.integers(-5, 5),
)
def test_property_srv_matches_scalar(x_vals, a_seed, add):
    """For ANY index vector, SRV execution equals scalar execution."""
    n = 48
    a_vals = [(a_seed * (i + 1)) % 251 for i in range(n)]
    got, metrics = run_indirect(a_vals, x_vals, add=add)
    assert got == scalar_indirect_update(a_vals, x_vals, add=add)
    assert metrics.srv.max_replays_in_region <= LANES - 1


@settings(max_examples=30, deadline=None)
@given(
    perm_seed=st.integers(0, 2**16),
    rate=st.floats(0.0, 1.0),
)
def test_property_sparse_conflicts_match_scalar(perm_seed, rate):
    n = 64
    x_vals = sparse_conflict_indices(n, LANES, rate, seed=perm_seed)
    a_vals = [i * 7 % 113 for i in range(n)]
    got, _ = run_indirect(a_vals, x_vals)
    assert got == scalar_indirect_update(a_vals, x_vals)
