"""Tests for ``repro.analyze``: verdict units, guided codegen, the
pinned suite confusion matrix, and the soundness fuzzer.

The load-bearing assertions are the soundness ones: a region the
analysis marks ``NO_CONFLICT`` must never replay (pinned over all 28
suite loops against observed ``LANE_REPLAY`` events, and hunted over
generated kernels by ``repro fuzz --analyze-diff``), and a planted
must-conflict kernel must never be marked safe.
"""

import pytest

from repro.analyze import (
    DENSE_LANE_THRESHOLD,
    Region,
    RegionPlan,
    RegionVerdict,
    analyse_conflicts,
    analyse_spec,
    gather_facts,
    guided_plan,
    plan_from_conflicts,
    statement_refs,
)
from repro.common.config import TABLE_I
from repro.compiler import (
    Affine,
    BinOp,
    Const,
    DepClass,
    Indirect,
    Loop,
    Read,
    Store,
    Strategy,
    compile_loop,
    loop_class,
    region_class,
    scalar_reference,
)
from repro.emu import run_program
from repro.experiments.analyze_guided import CONFUSION_CELLS, run as run_analyze_guided
from repro.gen import FuzzConfig, check_kernel, generate_kernel, kernel_seed, run_fuzz
from repro.isa.instructions import SrvEnd, SrvStart
from repro.memory import MemoryImage
from repro.observe import RegionTruth, ReplayTruth, confusion_cell, replay_truth
from repro.workloads.base import LoopSpec

N = 64
VL = 16


def make_spec(loop, arrays, n=N):
    frozen = {name: list(values) for name, values in arrays.items()}
    return LoopSpec(
        loop=loop, n=n,
        arrays=lambda seed: {k: list(v) for k, v in frozen.items()},
    )


def histogram_loop(idx, name="t_hist"):
    """``a[idx[i]] += 1`` — conflicts are exactly idx's duplicates."""
    loop = Loop(name, {"a": 4, "idx": 4}, [
        Store("a", Indirect("idx"),
              BinOp("+", Read("a", Indirect("idx")), Const(1))),
    ])
    return loop, {"a": [0] * N, "idx": list(idx)}


def disjoint_loop():
    """``b[i] = a[i] + 1`` — no cross-lane hazard exists."""
    loop = Loop("t_disjoint", {"a": 4, "b": 4}, [
        Store("b", Affine(), BinOp("+", Read("a", Affine()), Const(1))),
    ])
    return loop, {"a": list(range(N)), "b": [0] * N}


def prefix_loop():
    """Safe statement, then a genuinely conflicting histogram."""
    loop = Loop("t_prefix", {"a": 4, "b": 4, "c": 4, "idx": 4}, [
        Store("c", Affine(), BinOp("+", Read("b", Affine()), Const(1))),
        Store("a", Indirect("idx"),
              BinOp("+", Read("a", Indirect("idx")), Const(1))),
    ])
    arrays = {"a": [0] * N, "b": list(range(N)), "c": [0] * N,
              "idx": [i // 2 for i in range(N)]}
    return loop, arrays


def run_strategy(loop, arrays, n, strategy):
    mem = MemoryImage()
    for name, values in arrays.items():
        mem.alloc(name, len(values), loop.arrays[name], init=values)
    prog = compile_loop(loop, mem, n, strategy)
    run_program(prog, mem)
    return ({name: mem.load_array(mem.allocation(name)) for name in arrays},
            prog)


class TestVerdicts:
    def test_affine_disjoint_is_no_conflict(self):
        loop, arrays = disjoint_loop()
        analysis = analyse_spec(make_spec(loop, arrays), "t")
        assert analysis.mode == "regions"
        assert analysis.loop_verdict is RegionVerdict.NO_CONFLICT
        assert analysis.proven_safe_regions >= 1
        assert not analysis.plan.speculative

    def test_injective_table_beats_banerjee(self):
        # the point of the abstract table domain: Banerjee says UNKNOWN
        # for any indirection, but known injective contents prove safety
        loop, arrays = histogram_loop(reversed(range(N)))
        assert loop_class(loop, VL) is DepClass.UNKNOWN
        analysis = analyse_spec(make_spec(loop, arrays), "t")
        assert analysis.loop_verdict is RegionVerdict.NO_CONFLICT

    def test_duplicate_table_is_must_conflict_with_witness(self):
        loop, arrays = histogram_loop(i // 2 for i in range(N))
        analysis = analyse_spec(make_spec(loop, arrays), "t")
        assert analysis.loop_verdict is RegionVerdict.MUST_CONFLICT
        region = analysis.regions[-1]
        assert region.conflict_pairs
        assert "a[" in region.witness and "lanes" in region.witness

    def test_stored_table_is_may_conflict(self):
        # storing to the index table voids its invariance: the analysis
        # must admit it cannot resolve the gather
        loop = Loop("t_mut", {"a": 4, "idx": 4}, [
            Store("idx", Affine(), Const(0)),
            Store("a", Indirect("idx"),
                  BinOp("+", Read("a", Indirect("idx")), Const(1))),
        ])
        arrays = {"a": [0] * N, "idx": list(range(N))}
        analysis = analyse_spec(make_spec(loop, arrays), "t")
        assert analysis.loop_verdict is RegionVerdict.MAY_CONFLICT
        assert analysis.unresolved

    def test_planted_conflict_is_never_marked_safe(self):
        # the soundness acceptance test: a kernel with a guaranteed
        # same-group collision must not be proven safe
        for idx in ([0] * N, [i % 4 for i in range(N)],
                    [3, 3] + list(range(2, N))):
            loop, arrays = histogram_loop(idx, name="t_plant")
            analysis = analyse_spec(make_spec(loop, arrays), "t")
            assert analysis.loop_verdict is not RegionVerdict.NO_CONFLICT
            assert analysis.plan.speculative

    def test_dense_region_gets_sequential_hint(self):
        loop, arrays = histogram_loop([0] * N)
        analysis = analyse_spec(make_spec(loop, arrays), "t")
        region = analysis.regions[-1]
        assert region.verdict is RegionVerdict.MUST_CONFLICT
        assert region.density > DENSE_LANE_THRESHOLD
        assert region.region.sequential

    def test_sparse_conflict_keeps_speculation(self):
        loop, arrays = histogram_loop([1, 1] + list(range(2, N)))
        analysis = analyse_spec(make_spec(loop, arrays), "t")
        region = analysis.regions[-1]
        assert region.verdict is RegionVerdict.MUST_CONFLICT
        assert region.density <= DENSE_LANE_THRESHOLD
        assert not region.region.sequential

    def test_verdicts_are_input_aware(self):
        # same loop, different seeded contents, different verdict — the
        # analysis is sound per (spec, seed, n), not per loop shape
        loop, safe = histogram_loop(range(N))
        _, dup = histogram_loop([0] * N)
        assert (analyse_spec(make_spec(loop, safe), "t").loop_verdict
                is RegionVerdict.NO_CONFLICT)
        assert (analyse_spec(make_spec(loop, dup), "t").loop_verdict
                is RegionVerdict.MUST_CONFLICT)

    def test_statement_refs_orders_table_before_data(self):
        loop, _ = histogram_loop(range(N))
        refs = statement_refs(loop)
        tables = [r for r in refs if r.is_table]
        assert tables, "indirect refs must surface their table loads"
        first_data = next(r for r in refs if not r.is_table)
        assert tables[0].order < first_data.order


class TestGuidedPlan:
    def test_safe_loop_plans_no_regions(self):
        loop, arrays = disjoint_loop()
        plan = guided_plan(loop, gather_facts(loop, arrays), N)
        assert [r.speculative for r in plan.regions] == [False]

    def test_prefix_escapes_speculation(self):
        loop, arrays = prefix_loop()
        plan = guided_plan(loop, gather_facts(loop, arrays), N)
        assert [(r.start, r.stop, r.speculative) for r in plan.regions] \
            == [(0, 1, False), (1, 2, True)]

    def test_plan_covers_body_gap_free(self):
        loop, arrays = prefix_loop()
        plan = guided_plan(loop, gather_facts(loop, arrays), N)
        assert plan.statement_count == len(loop.body)
        with pytest.raises(Exception):
            RegionPlan((Region(0, 1, speculative=False),
                        Region(2, 3, speculative=True)))

    def test_plan_from_conflicts_merges_spans(self):
        plan = plan_from_conflicts(4, {(1, 3)})
        spans = [(r.start, r.stop, r.speculative) for r in plan.regions]
        assert (1, 4, True) in spans or (1, 3 + 1, True) in spans
        assert plan.region_of(0) is not plan.region_of(1)


class TestGuidedCodegen:
    def test_safe_loop_compiles_without_brackets(self):
        loop, arrays = disjoint_loop()
        mem = MemoryImage()
        for name, values in arrays.items():
            mem.alloc(name, len(values), 4, init=values)
        guided = compile_loop(loop, mem, N, Strategy.SRV_GUIDED)
        base = compile_loop(loop, mem, N, Strategy.SRV)
        assert not any(isinstance(i, (SrvStart, SrvEnd))
                       for i in guided.instructions)
        assert any(isinstance(i, SrvStart) for i in base.instructions)

    def test_conflicted_loop_keeps_brackets(self):
        loop, arrays = histogram_loop([i // 2 for i in range(N)])
        mem = MemoryImage()
        for name, values in arrays.items():
            mem.alloc(name, len(values), 4, init=values)
        guided = compile_loop(loop, mem, N, Strategy.SRV_GUIDED)
        starts = [i for i in guided.instructions if isinstance(i, SrvStart)]
        assert starts and not starts[0].sequential

    def test_dense_loop_gets_sequential_start(self):
        loop, arrays = histogram_loop([0] * N)
        mem = MemoryImage()
        for name, values in arrays.items():
            mem.alloc(name, len(values), 4, init=values)
        guided = compile_loop(loop, mem, N, Strategy.SRV_GUIDED)
        starts = [i for i in guided.instructions if isinstance(i, SrvStart)]
        assert starts and starts[0].sequential
        assert "seq" in repr(starts[0])

    @pytest.mark.parametrize("builder", [
        disjoint_loop, prefix_loop,
        lambda: histogram_loop([i // 2 for i in range(N)]),
        lambda: histogram_loop([0] * N),
    ])
    def test_guided_matches_scalar_reference(self, builder):
        loop, arrays = builder()
        ref = scalar_reference(loop, arrays, N)
        out, _ = run_strategy(loop, arrays, N, Strategy.SRV_GUIDED)
        for name in arrays:
            assert out[name] == ref[name], name


class TestRegionClassAPI:
    def test_region_class_subset_granularity(self):
        loop, _ = prefix_loop()
        assert region_class(loop, [0]) in (DepClass.NONE,
                                           DepClass.PROVABLE_SAFE)
        assert region_class(loop, [1]) is DepClass.UNKNOWN

    def test_loop_class_is_whole_body_wrapper(self):
        for builder in (disjoint_loop, prefix_loop):
            loop, _ = builder()
            assert loop_class(loop, VL) is region_class(loop, None, VL)


class TestReplayTruth:
    def _truth(self, replayed=0, fallbacks=0, degraded=False):
        return ReplayTruth(
            regions=(RegionTruth(0, 4, replayed, fallbacks),),
            degraded=degraded,
        )

    def test_confusion_cells(self):
        assert confusion_cell("no_conflict", self._truth()) \
            == "proven_safe_clean"
        assert confusion_cell("no_conflict", self._truth(replayed=1)) \
            == "false_safe"
        assert confusion_cell("must_conflict", self._truth(replayed=2)) \
            == "predicted_replay_hit"
        assert confusion_cell("must_conflict", self._truth()) \
            == "predicted_replay_miss"
        assert confusion_cell("may_conflict", self._truth(replayed=1)) \
            == "unknown_replayed"
        assert confusion_cell("may_conflict", self._truth()) \
            == "unknown_clean"
        assert confusion_cell("must_conflict", self._truth(degraded=True)) \
            == "fallback"

    def test_fold_maps_dynamic_entries_to_static_regions(self):
        from repro.observe.events import Event, EventKind

        events = [
            Event(kind=EventKind.REGION_BEGIN, domain="emu", op=-1, t=0,
                  data=(("region", k),))
            for k in range(4)
        ] + [
            Event(kind=EventKind.LANE_REPLAY, domain="emu", op=-1, t=1,
                  lane=5, data=(("region", 3),)),
        ]
        truth = replay_truth(events, 2)
        assert truth.regions[0].entries == 2
        assert truth.regions[1].entries == 2
        # dynamic entry 3 -> static region 3 % 2 == 1
        assert truth.regions[1].replayed_lanes == 1
        assert not truth.regions[0].replayed


class TestSuiteConfusionMatrix:
    """Pinned over all 28 suite loops at n=64: static verdict vs the
    replay events the instrumented baseline-SRV run actually emitted."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_analyze_guided(n_override=64)

    def test_no_false_safe_and_matrix_pinned(self, result):
        matrix = result.summary["confusion_matrix"]
        assert set(matrix) == set(CONFUSION_CELLS)
        assert matrix["false_safe"] == 0
        assert matrix == {
            "proven_safe_clean": 19,
            "false_safe": 0,
            "predicted_replay_hit": 2,
            "predicted_replay_miss": 7,
            "unknown_clean": 0,
            "unknown_replayed": 0,
            "fallback": 0,
        }

    def test_guided_is_result_identical_and_never_slower(self, result):
        assert result.summary["result_mismatches"] == []
        assert result.summary["guided_regressions"] == []
        assert result.clean

    def test_safe_regions_save_cycles(self, result):
        assert result.summary["loops_with_safe_regions"] > 0
        assert result.summary["total_cycles_saved"] > 0
        for row in result.rows:
            if row[2] == "no_conflict":      # fully-proven loops
                assert row[6] >= 0           # cycle_delta

    def test_covers_every_suite_loop(self, result):
        assert len(result.rows) == 28


class TestAnalyzeDiffFuzz:
    def test_clean_campaign_passes(self, tmp_path):
        report = run_fuzz(FuzzConfig(
            count=4, seed=5, analyze_diff=True, use_cache=False,
            out_dir=tmp_path,
        ))
        obj = report.to_obj()
        assert obj["analyze_diff"] is True
        assert obj["passed"] == 4 and obj["failed"] == 0

    def test_planted_elide_regions_fails_and_shrinks(self, tmp_path):
        # campaign seed 5, kernel 0 has a real conflict: stripping every
        # bracket must corrupt it, and the failure must shrink
        report = run_fuzz(FuzzConfig(
            count=1, seed=5, analyze_diff=True, plant="elide-regions",
            shrink=True, use_cache=False, out_dir=tmp_path,
        ))
        failed = [o for o in report.outcomes if o.status == "fail"]
        assert failed
        assert failed[0].reproducer
        assert failed[0].shrink_steps

    def test_elide_regions_spares_conflict_free_kernels(self):
        # kernel 2 of the same campaign has no dynamic conflict, so
        # removing brackets is semantically invisible — the plant only
        # proves the fuzzer sees corruption where corruption occurs
        kernel = generate_kernel(kernel_seed(5, 2))
        cfg = FuzzConfig(count=1, seed=5, analyze_diff=True,
                         plant="elide-regions", use_cache=False)
        ok, _ = check_kernel(kernel.spec, cfg, use_cache=False)
        assert ok

    def test_plant_mode_combinations_are_validated(self):
        kernel = generate_kernel(kernel_seed(5, 0))
        with pytest.raises(ValueError):
            check_kernel(kernel.spec,
                         FuzzConfig(count=1, seed=5, analyze_diff=True,
                                    plant="store-skew", use_cache=False),
                         use_cache=False)
        with pytest.raises(ValueError):
            check_kernel(kernel.spec,
                         FuzzConfig(count=1, seed=5,
                                    plant="elide-regions", use_cache=False),
                         use_cache=False)

    def test_soundness_over_generated_kernels(self):
        # a direct (uncached) sweep of the first kernels of the pinned
        # campaign seed; the 120-kernel acceptance campaign runs in CI
        cfg = FuzzConfig(count=1, seed=11, analyze_diff=True,
                         use_cache=False)
        for k in range(6):
            kernel = generate_kernel(kernel_seed(11, k))
            ok, detail = check_kernel(kernel.spec, cfg, use_cache=False)
            assert ok, f"kernel {k}: {detail}"
