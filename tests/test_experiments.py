"""Tests for the experiment harnesses (reduced trip counts for speed)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, clear_cache
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import whole_program_speedup

N = 96


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield


@pytest.fixture(scope="module")
def fig6():
    return ALL_EXPERIMENTS["figure6"](n_override=N)


class TestRunnerHelpers:
    def test_whole_program_speedup_amdahl(self):
        assert whole_program_speedup(2.0, 0.5) == pytest.approx(1 / 0.75)
        assert whole_program_speedup(10.0, 0.0) == 1.0
        assert whole_program_speedup(1.0, 0.9) == pytest.approx(1.0)

    def test_whole_program_speedup_validation(self):
        with pytest.raises(ValueError):
            whole_program_speedup(2.0, 1.5)
        with pytest.raises(ValueError):
            whole_program_speedup(-1.0, 0.5)


class TestResultContainer:
    def test_format_and_lookup(self, fig6):
        table = fig6.format_table()
        assert "Figure 6" in table
        assert "bzip2" in table
        row = fig6.row_for("is")
        assert row[0] == "is"
        with pytest.raises(KeyError):
            fig6.row_for("nope")

    def test_as_dict(self, fig6):
        d = fig6.as_dict()
        assert d["milc"]["coverage"] == pytest.approx(0.257)

    def test_empty_result_formats(self):
        empty = ExperimentResult("x", "Empty", ("a", "b"))
        assert "Empty" in empty.format_table()


class TestFigure6and7:
    def test_all_benchmarks_present(self, fig6):
        assert len(fig6.rows) == 16

    def test_speedups_above_one(self, fig6):
        assert all(row[2] > 1.0 for row in fig6.rows)

    def test_fig7_consistency(self, fig6):
        fig7 = ALL_EXPERIMENTS["figure7"](n_override=N)
        for (name, _, loop_speedup, coverage), row7 in zip(fig6.rows, fig7.rows):
            assert row7[0] == name
            assert row7[2] == pytest.approx(
                whole_program_speedup(loop_speedup, coverage)
            )
        assert 1.0 < fig7.summary["geomean_all"] < 1.2


class TestOtherFigures:
    def test_fig8_fractions_valid(self):
        result = ALL_EXPERIMENTS["figure8"](n_override=N)
        assert all(0 <= row[1] < 0.5 for row in result.rows)

    def test_fig9_only_violators_listed(self):
        result = ALL_EXPERIMENTS["figure9"]()  # full size: seeds matter
        assert set(result.summary["violating_benchmarks"]) == {
            "bzip2", "hmmer", "is", "randacc",
        }

    def test_fig10_static_shape(self):
        result = ALL_EXPERIMENTS["figure10"](n_override=N)
        assert sum(result.column("loops")) == 28  # all loops bucketed
        assert result.summary["lsu_demand_10_access_loops"] == 55

    def test_fig11_counts_positive(self):
        result = ALL_EXPERIMENTS["figure11"](n_override=N)
        for name, seq_v, srv_v, srv_h, ratio in result.rows:
            assert seq_v > 0 and srv_h > 0
            assert ratio > 0

    def test_fig12_small_changes(self):
        result = ALL_EXPERIMENTS["figure12"](n_override=N)
        assert all(abs(row[1]) < 0.10 for row in result.rows)

    def test_fig13_srv_wins(self):
        result = ALL_EXPERIMENTS["figure13"](n_override=N)
        assert all(row[3] < 1.0 for row in result.rows)

    def test_limit_study_shape(self):
        result = ALL_EXPERIMENTS["limit_study"](n_override=N)
        assert result.summary["average_potential"] > result.summary[
            "average_without_unknown"
        ]
        assert result.summary["average_without_unknown"] < 1.1

    def test_headline_rows(self):
        result = ALL_EXPERIMENTS["headline"](n_override=N)
        metrics = {row[0] for row in result.rows}
        assert "average_loop_speedup" in metrics
        assert "geomean_whole_program" in metrics
