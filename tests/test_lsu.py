"""Tests for the LSU disambiguation microarchitecture (paper section IV).

Includes byte-exact checks of the paper's three worked examples:
figure 3 (vertical), figure 4 (horizontal WAR), and figure 5 / section
IV-D (horizontal RAW producing replay lanes 3, 7, 11, 15).
"""

import pytest

from repro.common.config import TABLE_I
from repro.common.errors import LsuOverflowError
from repro.isa.instructions import SrvDirection
from repro.lsu import (
    AccessType,
    LoadStoreUnit,
    LsuEntry,
    align_base,
    align_offset,
    chunks_for_access,
    forwardable_mask,
    hob_for_pair,
    horizontal_violation_vector,
    overall_hob,
    replay_lanes_from_hob,
    vob_for_pair,
)

REGION = 64


def make_entry(
    *,
    srv_id=0,
    is_store=False,
    access=AccessType.CONTIGUOUS,
    addr=0,
    size=16,
    elem=1,
    lane=0,
    lanes_covered=16,
    direction=SrvDirection.UP,
    data=None,
):
    return LsuEntry.make(
        srv_id=srv_id,
        is_store=is_store,
        access=access,
        addr=addr,
        size=size,
        elem=elem,
        lane=lane,
        lanes_covered=lanes_covered,
        region_bytes=REGION,
        direction=direction,
        data=data,
    )


class TestAlignment:
    def test_base_and_offset(self):
        assert align_base(0xAB10, 64) == 0xAB00
        assert align_offset(0xAB10, 64) == 0x10
        assert align_base(0xFF3F, 64) == 0xFF00

    def test_single_region_chunk(self):
        chunks = chunks_for_access(0xAB10, 16, 64)
        assert len(chunks) == 1
        assert chunks[0].base == 0xAB00
        assert sorted(chunks[0].bytes_accessed.set_indices()) == list(range(16, 32))
        assert chunks[0].offset == 16

    def test_straddling_chunk(self):
        # Paper IV-A: "The address space 0x0C-0x4C spans two consecutive
        # alignment regions."
        chunks = chunks_for_access(0x0C, 0x40, 64)
        assert len(chunks) == 2
        assert chunks[0].base == 0x00 and chunks[1].base == 0x40
        assert chunks[0].bytes_accessed.popcount() == 64 - 0x0C
        assert chunks[1].bytes_accessed.popcount() == 0x0C

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            chunks_for_access(0, 0, 64)


class TestLaneGeometry:
    def test_contiguous_up(self):
        e = make_entry(addr=0x100, size=64, elem=4)
        assert e.lane_of_byte(0x100) == 0
        assert e.lane_of_byte(0x100 + 13) == 3
        assert e.lane_of_byte(0x100 + 63) == 15

    def test_contiguous_down_mirrors(self):
        e = make_entry(addr=0x100, size=64, elem=4, direction=SrvDirection.DOWN)
        assert e.lane_of_byte(0x100) == 15
        assert e.lane_of_byte(0x100 + 63) == 0

    def test_gather_lane_fixed(self):
        e = make_entry(
            access=AccessType.GATHER_SCATTER, addr=0x200, size=4, elem=4,
            lane=7, lanes_covered=1,
        )
        assert e.lane_of_byte(0x200) == 7
        assert e.lane_of_byte(0x203) == 7

    def test_broadcast_span(self):
        e = make_entry(access=AccessType.BROADCAST, addr=0x300, size=4, elem=4)
        assert e.lane_span_of_byte(0x300) == (0, 15)

    def test_out_of_range_byte(self):
        e = make_entry(addr=0x100, size=16)
        with pytest.raises(ValueError):
            e.lane_of_byte(0x110)


class TestFigure3Vertical:
    """Store A then load B at the same 16 bytes: full forwarding."""

    def setup_method(self):
        self.store_a = make_entry(
            srv_id=0, is_store=True, addr=0xAB10, size=16, elem=1
        )
        self.load_b = make_entry(srv_id=1, addr=0xAB10, size=16, elem=1)

    def test_vob_bits_16_to_31(self):
        vob = vob_for_pair(self.load_b, self.store_a)
        assert set(vob) == {0xAB00}
        assert sorted(vob[0xAB00].set_indices()) == list(range(16, 32))

    def test_fully_forwardable_no_violation(self):
        # Same offsets -> no horizontal violation; all bytes forwardable.
        ok = forwardable_mask(self.load_b, self.store_a, REGION)
        assert sorted(ok[0xAB00].set_indices()) == list(range(16, 32))
        assert not hob_for_pair(self.load_b, self.store_a, REGION)


class TestFigure4HorizontalWAR:
    """Load C (offset 24) against store A (offset 16): bytes 24-31 violate."""

    def setup_method(self):
        self.store_a = make_entry(
            srv_id=0, is_store=True, addr=0xAB10, size=16, elem=1
        )
        self.load_c = make_entry(srv_id=2, addr=0xAB18, size=16, elem=1)

    def test_vob_bits_24_to_31(self):
        vob = vob_for_pair(self.load_c, self.store_a)
        assert sorted(vob[0xAB00].set_indices()) == list(range(24, 32))

    def test_hob_marks_violating_bytes(self):
        hob = hob_for_pair(self.load_c, self.store_a, REGION)
        assert sorted(hob[0xAB00].set_indices()) == list(range(24, 32))

    def test_no_bytes_forwardable(self):
        # "the vector store cannot forward these bytes to the vector load,
        # and instead the load has to obtain all bytes from the cache."
        assert not forwardable_mask(self.load_c, self.store_a, REGION)

    def test_reverse_offsets_fully_forwardable(self):
        """C1: if the load's alignment offset <= the store's, forwardable."""
        load_early = make_entry(srv_id=3, addr=0xAB08, size=16, elem=1)
        ok = forwardable_mask(load_early, self.store_a, REGION)
        assert sorted(ok[0xAB00].set_indices()) == list(range(16, 24))
        assert not hob_for_pair(load_early, self.store_a, REGION)


class TestFigure5SectionIVD:
    """The worked RAW example: scatter against a prior contiguous load.

    Array ``a`` at 0xFF00, 4-byte elements, v_load covers the whole
    64-byte region; the scatter writes a[3], a[0], a[1], a[2], a[7], ...
    Lanes 3, 7, 11, 15 must be flagged for replay.
    """

    def setup_method(self):
        self.load = make_entry(srv_id=0, addr=0xFF00, size=64, elem=4)
        self.x_pattern = []
        for base in range(0, 16, 4):
            self.x_pattern += [base + 3, base + 0, base + 1, base + 2]

    def scatter_op(self, lane, target_index):
        return make_entry(
            srv_id=1,
            is_store=True,
            access=AccessType.GATHER_SCATTER,
            addr=0xFF00 + 4 * target_index,
            size=4,
            elem=4,
            lane=lane,
            lanes_covered=1,
        )

    def test_step1_store_to_a3(self):
        store = self.scatter_op(0, 3)
        vob = vob_for_pair(store, self.load)
        assert sorted(vob[0xFF00].set_indices()) == [12, 13, 14, 15]
        violation = horizontal_violation_vector(store, self.load, 0xFF00, REGION)
        # "All but the first 4 bits of the horizontal-violation bit vector
        # are set to 1."
        assert sorted(violation.set_indices()) == list(range(4, 64))
        hob = hob_for_pair(store, self.load, REGION)
        assert sorted(hob[0xFF00].set_indices()) == [12, 13, 14, 15]

    def test_step2_store_to_a0_no_violation(self):
        store = self.scatter_op(1, 0)
        violation = horizontal_violation_vector(store, self.load, 0xFF00, REGION)
        # "all bits from the 8th inwards are set"
        assert sorted(violation.set_indices()) == list(range(8, 64))
        assert not hob_for_pair(store, self.load, REGION)

    def test_step5_store_to_a7(self):
        store = self.scatter_op(4, 7)
        hob = hob_for_pair(store, self.load, REGION)
        assert sorted(hob[0xFF00].set_indices()) == [28, 29, 30, 31]

    def test_full_scatter_flags_lanes_3_7_11_15(self):
        flagged = set()
        for lane, target in enumerate(self.x_pattern):
            store = self.scatter_op(lane, target)
            hob = overall_hob(store, [self.load], REGION)
            flagged |= replay_lanes_from_hob(store, hob, [self.load], REGION)
        assert flagged == {3, 7, 11, 15}

    def test_overall_hob_bytes(self):
        """ORing all micro-op HOBs gives bits 12-15, 28-31, 44-47, 60-63."""
        bits = set()
        for lane, target in enumerate(self.x_pattern):
            store = self.scatter_op(lane, target)
            for base, bv in overall_hob(store, [self.load], REGION).items():
                bits.update(bv.set_indices())
        expect = set()
        for start in (12, 28, 44, 60):
            expect.update(range(start, start + 4))
        assert bits == expect


class TestGatherScatterPairs:
    """Section IV-C2: lane-field comparisons for gather x scatter."""

    def micro(self, lane, addr, is_store):
        return make_entry(
            srv_id=int(is_store),
            is_store=is_store,
            access=AccessType.GATHER_SCATTER,
            addr=addr,
            size=4,
            elem=4,
            lane=lane,
            lanes_covered=1,
        )

    def test_load_lane_geq_store_lane_forwardable(self):
        store = self.micro(3, 0x100, True)
        load = self.micro(5, 0x100, False)
        assert forwardable_mask(load, store, REGION)
        assert not hob_for_pair(load, store, REGION)

    def test_load_lane_equal_forwardable(self):
        store = self.micro(5, 0x100, True)
        load = self.micro(5, 0x100, False)
        assert forwardable_mask(load, store, REGION)

    def test_load_lane_below_store_war(self):
        store = self.micro(9, 0x100, True)
        load = self.micro(2, 0x100, False)
        assert not forwardable_mask(load, store, REGION)
        assert hob_for_pair(load, store, REGION)

    def test_disjoint_addresses_no_interaction(self):
        store = self.micro(9, 0x100, True)
        load = self.micro(2, 0x140, False)  # different alignment region
        assert not forwardable_mask(load, store, REGION)
        assert not hob_for_pair(load, store, REGION)


class TestContiguousScatterMix:
    """Section IV-C3: contiguous load x prior scatter and gather x prior
    contiguous store."""

    def test_contiguous_load_prior_scatter(self):
        # scatter micro-op lane 9 wrote addr 0x10C; a contiguous load from
        # 0x100 reads it with lane 3 (elem 4) -> 9 > 3 violates.
        store = make_entry(
            srv_id=0, is_store=True, access=AccessType.GATHER_SCATTER,
            addr=0x10C, size=4, elem=4, lane=9, lanes_covered=1,
        )
        load = make_entry(srv_id=1, addr=0x100, size=64, elem=4)
        hob = hob_for_pair(load, store, REGION)
        assert sorted(hob[0x100].set_indices()) == [12, 13, 14, 15]

    def test_contiguous_load_prior_scatter_older_lane_ok(self):
        store = make_entry(
            srv_id=0, is_store=True, access=AccessType.GATHER_SCATTER,
            addr=0x10C, size=4, elem=4, lane=2, lanes_covered=1,
        )
        load = make_entry(srv_id=1, addr=0x100, size=64, elem=4)
        assert not hob_for_pair(load, store, REGION)
        assert forwardable_mask(load, store, REGION)

    def test_gather_prior_contiguous_store(self):
        # contiguous store covers lanes 0-15 at 0x100; gather micro-op lane
        # 2 reads 0x120 (store lane 8) -> 8 > 2 violates.
        store = make_entry(srv_id=0, is_store=True, addr=0x100, size=64, elem=4)
        load = make_entry(
            srv_id=1, access=AccessType.GATHER_SCATTER,
            addr=0x120, size=4, elem=4, lane=2, lanes_covered=1,
        )
        assert hob_for_pair(load, store, REGION)
        load_ok = make_entry(
            srv_id=2, access=AccessType.GATHER_SCATTER,
            addr=0x104, size=4, elem=4, lane=5, lanes_covered=1,
        )
        assert not hob_for_pair(load_ok, store, REGION)
        assert forwardable_mask(load_ok, store, REGION)


class TestBroadcastPairs:
    """Section IV-C4: broadcast treated as an access by every lane."""

    def test_broadcast_load_prior_contiguous_store(self):
        store = make_entry(srv_id=0, is_store=True, addr=0x100, size=64, elem=4)
        bcast = make_entry(
            srv_id=1, access=AccessType.BROADCAST, addr=0x120, size=4, elem=4,
            lane=0, lanes_covered=16,
        )
        # byte 0x120 is store lane 8; broadcast lanes 0-7 violate (younger
        # than the writing lane) -> WAR for the broadcast as a whole.
        assert hob_for_pair(bcast, store, REGION)

    def test_broadcast_load_of_oldest_lane_data_ok(self):
        store = make_entry(srv_id=0, is_store=True, addr=0x100, size=64, elem=4)
        bcast = make_entry(
            srv_id=1, access=AccessType.BROADCAST, addr=0x100, size=4, elem=4,
            lane=0, lanes_covered=16,
        )
        # store lane for 0x100 is 0; no broadcast lane is younger than 0.
        assert not hob_for_pair(bcast, store, REGION)

    def test_store_vs_prior_broadcast_load_flags_later_lanes(self):
        bcast = make_entry(
            srv_id=0, access=AccessType.BROADCAST, addr=0x100, size=4, elem=4,
            lane=0, lanes_covered=16,
        )
        store = make_entry(
            srv_id=1, is_store=True, access=AccessType.GATHER_SCATTER,
            addr=0x100, size=4, elem=4, lane=5, lanes_covered=1,
        )
        hob = overall_hob(store, [bcast], REGION)
        lanes = replay_lanes_from_hob(store, hob, [bcast], REGION)
        # lanes 6-15 of the broadcast read the byte before lane 5 wrote it.
        assert lanes == set(range(6, 16))


class TestDownDirection:
    def test_down_reverses_violation(self):
        """With a DOWN region, higher addresses belong to older lanes, so
        the figure-4 pattern no longer violates."""
        store = make_entry(
            srv_id=0, is_store=True, addr=0xAB10, size=16, elem=1,
            direction=SrvDirection.DOWN,
        )
        load = make_entry(
            srv_id=1, addr=0xAB18, size=16, elem=1, direction=SrvDirection.DOWN
        )
        # Overlap bytes 24-31: store lane = 15-(byte-16), load lane =
        # 15-(byte-24); store lane < load lane everywhere -> no violation.
        assert not hob_for_pair(load, store, REGION)
        assert forwardable_mask(load, store, REGION)

    def test_down_violates_mirrored_pattern(self):
        store = make_entry(
            srv_id=0, is_store=True, addr=0xAB18, size=16, elem=1,
            direction=SrvDirection.DOWN,
        )
        load = make_entry(
            srv_id=1, addr=0xAB10, size=16, elem=1, direction=SrvDirection.DOWN
        )
        assert hob_for_pair(load, store, REGION)


class TestLoadStoreUnit:
    def unit(self, **overrides):
        cfg = TABLE_I.with_overrides(**overrides) if overrides else TABLE_I
        return LoadStoreUnit(cfg)

    def test_baseline_load_counts_vertical(self):
        lsu = self.unit()
        load = make_entry(srv_id=0, addr=0x100, size=64, elem=4)
        result = lsu.issue_load(load)
        assert result.any_memory_bytes
        assert lsu.counters.vertical_disambiguations == 1
        assert lsu.counters.horizontal_disambiguations == 0
        assert lsu.counters.cam_lookups_saq == 1
        assert lsu.counters.cam_lookups_lq == 1

    def test_baseline_forwarding(self):
        lsu = self.unit()
        store = make_entry(
            srv_id=0, is_store=True, addr=0x100, size=64, elem=4,
            data=bytes(64),
        )
        lsu.issue_store(store)
        result = lsu.issue_load(make_entry(srv_id=1, addr=0x100, size=64, elem=4))
        assert (0, 0) in result.forwarded_from
        assert not result.any_memory_bytes

    def test_region_load_counts_horizontal_not_vertical(self):
        lsu = self.unit()
        lsu.begin_region()
        lsu.issue_load(make_entry(srv_id=0, addr=0x100, size=64, elem=4))
        assert lsu.counters.horizontal_disambiguations == 1
        assert lsu.counters.vertical_disambiguations == 0

    def test_region_store_counts_both_and_extra_cam(self):
        lsu = self.unit()
        lsu.begin_region()
        store = make_entry(
            srv_id=0, is_store=True, addr=0x100, size=64, elem=4, data=bytes(64)
        )
        lsu.issue_store(store)
        assert lsu.counters.vertical_disambiguations == 1
        # horizontal disambiguation searches both LQ and SAQ (empty: one
        # comparison charged per CAM activation)
        assert lsu.counters.horizontal_disambiguations == 2
        assert lsu.counters.cam_lookups_lq == 2   # doubled
        assert lsu.counters.cam_lookups_saq == 1  # the extra store-buffer CAM

    def test_disambiguation_scales_with_matching_rows(self):
        """Figure 11 counts bit-vector generations: a load issuing against
        matching SAQ rows performs more disambiguation work than one with
        no matches."""
        lsu = self.unit()
        lsu.begin_region()
        for sid in range(3):
            lsu.issue_store(
                make_entry(
                    srv_id=sid, is_store=True, addr=0x100 + 4 * sid, size=4,
                    elem=4, data=bytes(4),
                )
            )
        before = lsu.counters.horizontal_disambiguations
        lsu.issue_load(make_entry(srv_id=9, addr=0x100, size=4, elem=4))
        with_matches = lsu.counters.horizontal_disambiguations - before
        # same-base rows: 3 matches + 1 activation
        assert with_matches == 4
        before = lsu.counters.horizontal_disambiguations
        lsu.issue_load(make_entry(srv_id=10, addr=0x9000, size=4, elem=4))
        assert lsu.counters.horizontal_disambiguations - before == 1

    def test_disambiguation_match_work_capped_by_sdq_ports(self):
        lsu = self.unit()
        lsu.begin_region()
        for sid in range(10):
            lsu.issue_store(
                make_entry(
                    srv_id=sid, is_store=True, addr=0x100 + 4 * sid, size=4,
                    elem=4, data=bytes(4),
                )
            )
        before = lsu.counters.horizontal_disambiguations
        lsu.issue_load(make_entry(srv_id=20, addr=0x100, size=4, elem=4))
        cap = lsu.config.ports.sdq_reads
        assert lsu.counters.horizontal_disambiguations - before == 1 + cap

    def test_figure5_end_to_end(self):
        lsu = self.unit()
        lsu.begin_region()
        lsu.issue_load(make_entry(srv_id=0, addr=0xFF00, size=64, elem=4))
        pattern = []
        for base in range(0, 16, 4):
            pattern += [base + 3, base + 0, base + 1, base + 2]
        for lane, target in enumerate(pattern):
            lsu.issue_store(
                make_entry(
                    srv_id=1, is_store=True, access=AccessType.GATHER_SCATTER,
                    addr=0xFF00 + 4 * target, size=4, elem=4, lane=lane,
                    lanes_covered=1, data=bytes(4),
                )
            )
        lanes = lsu.end_region()
        assert lanes == {3, 7, 11, 15}
        assert lsu.in_region  # replay pending: region still active

    def test_end_region_commit_clears(self):
        lsu = self.unit()
        lsu.begin_region()
        store = make_entry(
            srv_id=0, is_store=True, addr=0x100, size=64, elem=4, data=bytes(64)
        )
        lsu.issue_store(store)
        assert store.speculative
        assert lsu.end_region() == set()
        assert not lsu.in_region
        assert lsu.entries_used() == 0

    def test_war_suppression_counted(self):
        lsu = self.unit()
        lsu.begin_region()
        lsu.issue_store(
            make_entry(
                srv_id=0, is_store=True, addr=0xAB10, size=16, elem=1,
                data=bytes(16),
            )
        )
        result = lsu.issue_load(make_entry(srv_id=1, addr=0xAB18, size=16, elem=1))
        assert result.war_suppressed
        assert lsu.counters.war_suppressions == 1

    def test_waw_detected(self):
        lsu = self.unit()
        lsu.begin_region()
        lsu.issue_store(
            make_entry(
                srv_id=0, is_store=True, access=AccessType.GATHER_SCATTER,
                addr=0x120, size=4, elem=4, lane=9, lanes_covered=1, data=bytes(4),
            )
        )
        result = lsu.issue_store(
            make_entry(
                srv_id=1, is_store=True, access=AccessType.GATHER_SCATTER,
                addr=0x120, size=4, elem=4, lane=2, lanes_covered=1, data=bytes(4),
            )
        )
        assert result.waw
        assert lsu.counters.waw_resolutions == 1

    def test_overflow_in_region_raises(self):
        lsu = self.unit(lsu_entries=2)
        lsu.begin_region()
        lsu.issue_load(make_entry(srv_id=0, addr=0x100, size=4, elem=4))
        lsu.issue_load(make_entry(srv_id=1, addr=0x200, size=4, elem=4))
        with pytest.raises(LsuOverflowError):
            lsu.issue_load(make_entry(srv_id=2, addr=0x300, size=4, elem=4))

    def test_overflow_outside_region_evicts_oldest(self):
        """Baseline entries belong to committed accesses and drain; the
        oldest is evicted instead of overflowing."""
        lsu = self.unit(lsu_entries=2)
        lsu.issue_load(make_entry(srv_id=0, addr=0x100, size=4, elem=4))
        lsu.issue_load(make_entry(srv_id=1, addr=0x200, size=4, elem=4))
        lsu.issue_load(make_entry(srv_id=2, addr=0x300, size=4, elem=4))
        assert lsu.entries_used() == 2
        assert (0, 0) not in lsu.lq  # the oldest entry was evicted
        assert (2, 0) in lsu.lq

    def test_srv_id_reuse_no_overflow(self):
        """Replays update entries in place (section III-C)."""
        lsu = self.unit(lsu_entries=1)
        lsu.begin_region()
        lsu.issue_load(make_entry(srv_id=0, addr=0x100, size=4, elem=4))
        # Re-issue of the same SRV-id and lane must not allocate.
        lsu.issue_load(make_entry(srv_id=0, addr=0x100, size=4, elem=4))
        assert lsu.entries_used() == 1

    def test_vertical_squash_outside_region(self):
        lsu = self.unit()
        # A program-order-younger load issued first (OoO reordering) ...
        lsu.issue_load(make_entry(srv_id=5, addr=0x100, size=4, elem=4))
        # ... then the older store to the same address issues: squash.
        result = lsu.issue_store(
            make_entry(
                srv_id=1, is_store=True, addr=0x100, size=4, elem=4, data=bytes(4)
            )
        )
        assert result.vertical_squash

    def test_committed_store_order_last_writer_wins(self):
        lsu = self.unit()
        lsu.begin_region()
        for lane in (9, 2):
            lsu.issue_store(
                make_entry(
                    srv_id=lane, is_store=True, access=AccessType.GATHER_SCATTER,
                    addr=0x120, size=4, elem=4, lane=lane, lanes_covered=1,
                    data=bytes([lane] * 4),
                )
            )
        ordered = lsu.committed_store_data()
        assert [e.lane for e in ordered] == [2, 9]

    def test_abort_region_discards(self):
        lsu = self.unit()
        lsu.begin_region()
        lsu.issue_load(make_entry(srv_id=0, addr=0x100, size=4, elem=4))
        lsu.abort_region()
        assert lsu.entries_used() == 0
        assert not lsu.in_region
