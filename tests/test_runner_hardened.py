"""Hardened experiment runner: memo keying, checkpoint/resume, timeout,
retry-with-reseed, and the typed oracle mismatch error."""

import os
import pickle

import pytest

from repro.common.config import TABLE_I
from repro.common.errors import (
    LsuOverflowError,
    OracleMismatchError,
    RunTimeoutError,
)
from repro.compiler import Strategy
from repro.experiments import runner
from repro.parallel.cache import result_cache
from repro.workloads import by_name


@pytest.fixture(autouse=True)
def _fresh_runner_state():
    runner.clear_cache()
    runner.disable_checkpoint()
    runner.disable_disk_cache()
    yield
    runner.clear_cache()
    runner.disable_checkpoint()
    runner.disable_disk_cache()


def _spec(workload="gcc", index=0):
    return by_name(workload).loops[index]


class TestMemoisation:
    def test_cache_keys_on_config_value_not_identity(self, monkeypatch):
        """Two equal-but-distinct config objects must share a cache entry."""
        spec = _spec()
        config_a = TABLE_I.with_overrides(lsu_entries=TABLE_I.lsu_entries)
        config_b = TABLE_I.with_overrides(lsu_entries=TABLE_I.lsu_entries)
        assert config_a is not config_b and config_a == config_b

        run_a = runner.run_loop(spec, Strategy.SRV, config=config_a,
                                n_override=64)
        calls = []
        monkeypatch.setattr(
            runner, "_execute",
            lambda *a, **k: calls.append(1) or (_ for _ in ()).throw(
                AssertionError("re-executed an equal config")),
        )
        run_b = runner.run_loop(spec, Strategy.SRV, config=config_b,
                                n_override=64)
        assert not calls
        assert run_b.correct == run_a.correct
        assert run_b.pipe.cycles == run_a.pipe.cycles
        assert run_b.emu.dynamic_instructions == run_a.emu.dynamic_instructions

    def test_different_config_values_do_not_alias(self):
        spec = _spec()
        run_big = runner.run_loop(spec, Strategy.SRV, n_override=64)
        small = TABLE_I.with_overrides(vector_lanes=4)
        run_small = runner.run_loop(spec, Strategy.SRV, config=small,
                                    n_override=64)
        assert run_small.pipe.cycles != run_big.pipe.cycles
        assert len(result_cache()) == 2

    def test_cache_is_lru_bounded(self, monkeypatch):
        monkeypatch.setattr(result_cache(), "max_memory", 4)
        spec = _spec()
        for seed in range(8):
            runner.run_loop(spec, Strategy.SCALAR, seed=seed, n_override=16,
                            timing=False)
        assert len(result_cache()) == 4
        # oldest seeds were evicted, newest survive
        seeds_cached = {key[2] for key in result_cache()._memory}
        assert seeds_cached == {4, 5, 6, 7}


class TestCheckpoint:
    def test_resume_skips_execution(self, tmp_path, monkeypatch):
        path = str(tmp_path / "runs.ckpt")
        spec = _spec()
        assert runner.enable_checkpoint(path) == 0
        first = runner.run_loop(spec, Strategy.SRV, n_override=64)
        assert os.path.exists(path)

        # simulate a fresh process: drop in-memory state, re-load the file
        runner.clear_cache()
        runner.disable_checkpoint()
        resumed_count = runner.enable_checkpoint(path)
        assert resumed_count == 1

        def _boom(*args, **kwargs):
            raise AssertionError("resumed run must not re-execute")

        monkeypatch.setattr(runner, "_execute", _boom)
        second = runner.run_loop(spec, Strategy.SRV, n_override=64)
        assert second.correct == first.correct
        assert second.pipe.cycles == first.pipe.cycles
        assert second.emu.dynamic_instructions \
            == first.emu.dynamic_instructions

    @pytest.mark.parametrize(
        "junk", [b"not a pickle", b"garbage not pickle\n", b""]
    )
    def test_corrupt_checkpoint_is_ignored(self, tmp_path, junk):
        path = tmp_path / "runs.ckpt"
        path.write_bytes(junk)
        assert runner.enable_checkpoint(str(path)) == 0
        run = runner.run_loop(_spec(), Strategy.SCALAR, n_override=16,
                              timing=False)
        assert run.correct

    def test_checkpoint_payload_is_spec_free(self, tmp_path):
        """The file must not pickle LoopSpec (it carries callables)."""
        path = str(tmp_path / "runs.ckpt")
        runner.enable_checkpoint(path)
        runner.run_loop(_spec(), Strategy.SCALAR, n_override=16,
                        timing=False)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        assert payload  # round-trips through plain pickle without the spec


class TestHardenedRunner:
    def test_timeout_raises_after_retries(self, monkeypatch):
        spec = _spec()

        def slow_execute(*args, **kwargs):
            raise RunTimeoutError("run exceeded 0.0s wall clock")

        monkeypatch.setattr(runner, "_execute", slow_execute)
        with pytest.raises(RunTimeoutError):
            runner.run_loop_hardened(spec, Strategy.SRV, max_retries=1,
                                     n_override=16)

    def test_retry_with_reseed_recovers(self, monkeypatch):
        """First attempt fails, reseeded retry succeeds; failure recorded."""
        spec = _spec()
        real_execute = runner._execute
        attempts = []

        def flaky_execute(spec, strategy, seed, *args, **kwargs):
            attempts.append(seed)
            if len(attempts) == 1:
                raise LsuOverflowError("transient pathology")
            return real_execute(spec, strategy, seed, *args, **kwargs)

        monkeypatch.setattr(runner, "_execute", flaky_execute)
        run = runner.run_loop_hardened(
            spec, Strategy.SRV, seed=3, max_retries=2, reseed_stride=100,
            n_override=64, degrade_lsu_overflow=False,
        )
        assert attempts == [3, 103]
        assert run.correct
        assert len(run.failures) == 1
        assert run.failures[0].attempt == 0
        assert run.failures[0].seed == 3
        assert run.failures[0].error == "LsuOverflowError"

    def test_failures_do_not_mutate_cached_run(self, monkeypatch):
        spec = _spec()
        clean = runner.run_loop(spec, Strategy.SRV, seed=100, n_override=64)
        assert clean.failures == ()

        calls = {"n": 0}
        real_run_loop = runner.run_loop

        def failing_first(spec, strategy, seed, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RunTimeoutError("synthetic")
            return real_run_loop(spec, strategy, seed, *args, **kwargs)

        monkeypatch.setattr(runner, "run_loop", failing_first)
        hardened = runner.run_loop_hardened(
            spec, Strategy.SRV, seed=0, max_retries=1, reseed_stride=100,
            n_override=64,
        )
        assert hardened.failures  # retry recorded on the returned run
        assert clean.failures == ()  # cached run untouched


class TestOracleMismatch:
    def test_typed_error_carries_context(self, monkeypatch):
        spec = _spec()
        real_execute = runner._execute
        monkeypatch.setattr(
            runner, "_execute",
            lambda *a, **k: (*real_execute(*a, **k)[:2], False, "c"),
        )
        with pytest.raises(OracleMismatchError) as excinfo:
            runner.loop_speedup(spec, n_override=16)
        err = excinfo.value
        assert err.loop == spec.name
        assert err.array == "c"
        assert err.strategy in {s.value for s in Strategy}
        assert "scalar reference oracle" in str(err)


class TestDeadlineFallback:
    """The wall-clock budget must work where SIGALRM cannot arm."""

    def _busy_wait(self, seconds: float = 5.0) -> None:
        # pure-Python spin: the watchdog's async exception is delivered
        # at bytecode boundaries, so (unlike time.sleep) this is
        # guaranteed interruptible
        import time

        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            pass
        raise AssertionError("deadline never fired")

    def test_timer_fallback_interrupts_busy_loop(self, monkeypatch):
        monkeypatch.setattr(runner, "_alarm_usable", lambda: False)
        with pytest.raises(RunTimeoutError, match="wall clock"):
            with runner._deadline(0.05):
                self._busy_wait()

    def test_timer_fallback_quiet_on_fast_block(self, monkeypatch):
        import time

        monkeypatch.setattr(runner, "_alarm_usable", lambda: False)
        with runner._deadline(30.0):
            total = sum(range(1000))
        assert total == 499500
        time.sleep(0.01)  # a leaked timer would assert in _busy_wait below

    def test_deadline_in_non_main_thread(self):
        # no monkeypatching: _alarm_usable itself must detect the thread
        import threading

        outcome: dict = {}

        def worker() -> None:
            assert not runner._alarm_usable()
            try:
                with runner._deadline(0.05):
                    self._busy_wait()
            except RunTimeoutError as exc:
                outcome["error"] = str(exc)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert "wall clock" in outcome.get("error", "")

    def test_unbounded_when_no_mechanism(self, monkeypatch):
        monkeypatch.setattr(runner, "_alarm_usable", lambda: False)
        monkeypatch.setattr(runner, "_async_exc_usable", lambda: False)
        with runner._deadline(0.001):
            total = sum(range(100_000))  # outlives the budget; must not raise
        assert total == 4999950000
