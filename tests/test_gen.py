"""Tests for the seeded kernel generator and differential fuzzer.

Pins the determinism contract (same seed => byte-identical kernel),
knob-boundary behaviour, shrinker minimality on a planted bug, and a
50-kernel differential smoke campaign.
"""

import json

import pytest

from repro.common.config import TABLE_I
from repro.compiler import Strategy
from repro.compiler.ir import Affine, Indirect, Select
from repro.experiments.runner import run_loop
from repro.gen import (
    GENERATOR_VERSION,
    KNOB_SPACE,
    FuzzConfig,
    Knobs,
    check_kernel,
    default_knobs,
    generate_kernel,
    generated_workload,
    is_generated_name,
    kernel_seed,
    load_reproducer,
    run_fuzz,
    sample_knobs,
    shrink_spec,
    validate_knobs,
    workload_from_name,
    workload_name,
)
from repro.gen.emitter import _LSU_BUDGET, LANES, loop_to_obj, lsu_demand, obj_to_loop
from repro.workloads import by_name


def _spec_fingerprint(spec):
    """Everything observable about a generated spec, as one structure."""
    return (loop_to_obj(spec.loop), spec.n, dict(spec.params),
            {k: list(v) for k, v in spec.arrays(0).items()})


class TestDeterminism:
    def test_same_seed_identical_kernel(self):
        for seed in (0, 7, 991):
            a = generate_kernel(seed)
            b = generate_kernel(seed)
            assert a.name == b.name
            assert a.knobs == b.knobs
            assert _spec_fingerprint(a.spec) == _spec_fingerprint(b.spec)

    def test_name_encodes_version_seed_knobs(self):
        k = generate_kernel(42)
        assert k.name.startswith(f"gen_v{GENERATOR_VERSION}_s42_")
        assert k.spec.name == k.name

    def test_different_seeds_different_kernels(self):
        assert generate_kernel(0).name != generate_kernel(1).name

    def test_sampler_covers_declared_space(self):
        for seed in range(50):
            validate_knobs(sample_knobs(seed))

    def test_loop_json_round_trip(self):
        for seed in range(10):
            loop = generate_kernel(seed).spec.loop
            assert obj_to_loop(loop_to_obj(loop)) == loop

    def test_fuzz_report_deterministic(self):
        cfg = FuzzConfig(count=5, seed=13, use_cache=False)
        a, b = run_fuzz(cfg).to_obj(), run_fuzz(cfg).to_obj()
        for report in (a, b):
            report.pop("elapsed_s")
            for outcome in report["kernels"]:
                outcome.pop("elapsed_s")
        assert a == b


def _has_select(loop):
    return any(isinstance(stmt.value, Select) for stmt in loop.body)


class TestKnobBoundaries:
    def test_predication_boundaries(self):
        never = default_knobs().with_overrides(predication_rate=0.0)
        always = default_knobs().with_overrides(predication_rate=1.0,
                                                statements=2)
        assert not _has_select(generate_kernel(3, never).spec.loop)
        assert _has_select(generate_kernel(3, always).spec.loop)

    def test_scatter_boundary(self):
        scatter = generate_kernel(5, default_knobs()).spec.loop
        assert isinstance(scatter.body[0].index, Indirect)
        contiguous = default_knobs().with_overrides(scatter=False)
        loop = generate_kernel(5, contiguous).spec.loop
        assert isinstance(loop.body[0].index, Affine)

    def test_direction_down_steps_backwards(self):
        knobs = default_knobs().with_overrides(direction="down")
        assert generate_kernel(5, knobs).spec.loop.step == -1
        assert generate_kernel(5, default_knobs()).spec.loop.step == 1

    def test_out_of_range_knobs_rejected(self):
        with pytest.raises(ValueError):
            validate_knobs(default_knobs().with_overrides(dep_distance=16))
        with pytest.raises(ValueError):
            validate_knobs(default_knobs().with_overrides(dep_density=1.5))
        with pytest.raises(ValueError):
            validate_knobs(default_knobs().with_overrides(direction="left"))

    @pytest.mark.parametrize("overrides", [
        {"dep_density": 1.0, "dep_distance": 15},           # worst-case mask
        {"dep_density": 0.5, "dep_distance": 1},            # adjacent lanes
        {"dep_density": 0.5, "dep_distance": 15, "direction": "down"},
        {"gather_ratio": 1.0, "scatter": False},            # pure gather
        {"gather_ratio": 0.0, "predication_rate": 1.0},
        {"elem_size": 8, "statements": 3, "reads_per_stmt": 4},
        {"region_len": 24, "dep_density": 0.0},             # fallback path
    ])
    def test_boundary_kernels_run_correct(self, overrides):
        knobs = default_knobs().with_overrides(n=64, **overrides)
        spec = generate_kernel(11, knobs).spec
        run = run_loop(spec, Strategy.SRV, seed=0, config=TABLE_I,
                       timing=False, validate_lsu=True, check_oracle=True,
                       use_cache=False)
        assert run.correct, run.bad_array

    def test_planted_dependences_actually_violate(self):
        for direction in ("up", "down"):
            knobs = default_knobs().with_overrides(
                n=128, dep_density=1.0, dep_distance=4, direction=direction)
            spec = generate_kernel(2, knobs).spec
            run = run_loop(spec, Strategy.SRV, seed=0, config=TABLE_I,
                           timing=False, validate_lsu=True, check_oracle=True,
                           use_cache=False)
            assert run.correct
            assert run.emu.srv.raw_violations > 0, direction


class TestLsuBudget:
    def test_demand_matches_lowering_rules(self):
        loop = generate_kernel(0, default_knobs()).spec.loop
        gathers = sum(isinstance(stmt.index, Indirect) for stmt in loop.body)
        gathers += sum(isinstance(read.index, Indirect)
                       for read in loop.reads())
        assert lsu_demand(loop) >= gathers * LANES

    def test_speculative_kernels_fit_the_budget(self):
        # kernels that must speculate stay under the emulator's static
        # 64-entry capacity (never the sequential fallback), and UP
        # kernels meet the stricter half-capacity budget so the cycle
        # model's overlapping region passes cannot degrade them either
        # (a DOWN scatter's index table is itself a gather, so DOWN
        # demand is irreducibly higher)
        for seed in range(30):
            kernel = generate_kernel(seed)
            if kernel.knobs.scatter and kernel.knobs.dep_density > 0.0:
                demand = lsu_demand(kernel.spec.loop)
                assert demand <= TABLE_I.lsu_entries
                if kernel.knobs.direction == "up":
                    assert demand <= _LSU_BUDGET


class TestWorkloadNames:
    def test_round_trip(self):
        name = workload_name(7, 4)
        assert is_generated_name(name)
        workload = workload_from_name(name)
        assert workload.name == name
        assert len(workload.loops) == 4
        assert workload.loops[0].name == generate_kernel(kernel_seed(7, 0)).name

    def test_by_name_dispatches_generated(self):
        workload = by_name(workload_name(3, 2))
        assert [s.name for s in workload.loops] == [
            generate_kernel(kernel_seed(3, i)).name for i in range(2)
        ]

    @pytest.mark.parametrize("bad", [
        "gen:bogus",
        "gen:v999:s1:c4",          # version mismatch
        "gen:v1:s1:c0",            # empty workload
        "gen:v1:s1:c99999",        # over MAX_WORKLOAD_KERNELS
    ])
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(KeyError):
            workload_from_name(bad)


class TestShrinker:
    def test_always_failing_spec_shrinks_to_floor(self):
        knobs = default_knobs().with_overrides(n=256, statements=3,
                                               reads_per_stmt=3)
        spec = generate_kernel(17, knobs).spec
        result = shrink_spec(spec, lambda candidate: True)
        assert result.spec.n == 32
        assert len(result.spec.loop.body) == 1
        assert result.steps and not result.exhausted

    def test_rejecting_predicate_changes_nothing(self):
        spec = generate_kernel(17).spec
        result = shrink_spec(spec, lambda candidate: False)
        assert result.spec is spec
        assert list(result.steps) == []

    def test_predicate_exceptions_reject_the_candidate(self):
        def explode(candidate):
            raise RuntimeError("checker crashed")
        result = shrink_spec(generate_kernel(17).spec, explode)
        assert result.spec.loop == generate_kernel(17).spec.loop


class TestCampaign:
    def test_planted_bug_is_caught_shrunk_and_reloadable(self, tmp_path):
        cfg = FuzzConfig(count=2, seed=11, plant="store-skew",
                         out_dir=tmp_path, use_cache=False)
        report = run_fuzz(cfg)
        assert not report.ok and len(report.failures) == 2
        assert json.loads((tmp_path / "report.json").read_text())["failed"] == 2
        for outcome in report.outcomes:
            path = tmp_path / outcome.reproducer
            spec, obj = load_reproducer(path)
            # minimality: the planted off-by-one survives every reduction,
            # so the shrinker must reach the structural floor
            assert spec.n == 32
            assert len(spec.loop.body) == 1
            assert spec.name.endswith("_min")
            assert obj["shrink_steps"]
            # the reloaded minimal spec still fails the same check
            ok, detail = check_kernel(spec, cfg, use_cache=False)
            assert not ok and "diverges" in detail

    def test_reproducer_version_guard(self, tmp_path):
        cfg = FuzzConfig(count=1, seed=11, plant="store-skew",
                         out_dir=tmp_path, use_cache=False)
        run_fuzz(cfg)
        path = tmp_path / "reproducers"
        repro_file = next(path.iterdir())
        obj = json.loads(repro_file.read_text())
        obj["generator_version"] = "0-stale"
        repro_file.write_text(json.dumps(obj))
        with pytest.raises(ValueError):
            load_reproducer(repro_file)

    def test_smoke_campaign_50_kernels_green(self):
        report = run_fuzz(FuzzConfig(count=50, seed=7, n_override=64,
                                     use_cache=False))
        assert report.ok
        assert report.to_obj()["passed"] == 50
        assert {o.status for o in report.outcomes} == {"ok"}


class TestExperimentIntegration:
    def test_fuzz_smoke_experiment_and_sweep_cells_agree(self):
        from repro.experiments.fuzz_smoke import FUZZ_SMOKE_COUNT
        from repro.parallel.plan import cells_for_experiments

        cells = cells_for_experiments(["fuzz_smoke"], seed=1, n_override=64)
        workload = generated_workload(1, FUZZ_SMOKE_COUNT)
        assert len(cells) == 2 * FUZZ_SMOKE_COUNT
        assert {c.workload for c in cells} == {workload.name}
        spec, strategy, config = cells[0].resolve()
        assert spec.name in {s.name for s in workload.loops}
        assert strategy in (Strategy.SRV, Strategy.SVE)
        assert config == TABLE_I

    def test_knob_space_matches_dataclass(self):
        assert {spec.name for spec in KNOB_SPACE} == set(
            Knobs().as_dict().keys()
        )
