"""Tests for the tournament branch predictor (Table I)."""

from repro.common.config import BranchPredictorConfig
from repro.pipeline.branch_pred import ReturnAddressStack, TournamentPredictor


def predictor(**kw):
    return TournamentPredictor(BranchPredictorConfig(**kw)) if kw else TournamentPredictor()


class TestDirectionPrediction:
    def test_learns_always_taken(self):
        # ~10 outcomes are needed to saturate the 10-bit global history
        # register before the global component trains a stable index.
        p = predictor()
        for _ in range(25):
            p.update(0x40, True, 0x10)
        assert p.predict(0x40) is True

    def test_learns_always_not_taken(self):
        p = predictor()
        for _ in range(25):
            p.update(0x40, False)
        assert p.predict(0x40) is False

    def test_loop_branch_low_mispredicts(self):
        """A loop back-edge taken 99 times then not taken: after warmup the
        only mispredicts are the initial learning and the final exit."""
        p = predictor()
        mispredicts = 0
        for _ in range(99):
            mispredicts += p.update(0x80, True, 0x10)
        mispredicts += p.update(0x80, False)
        # warm-up (history saturation) plus the final exit
        assert mispredicts <= 16

    def test_alternating_pattern_learned_by_local_history(self):
        """Local history catches period-2 patterns a 2-bit counter cannot."""
        p = predictor()
        outcomes = [bool(i % 2) for i in range(200)]
        mispredicts = sum(
            p.update(0x44, taken, 0x10 if taken else None) for taken in outcomes
        )
        # after warmup the pattern is fully predictable
        assert mispredicts < 40

    def test_distinct_branches_do_not_interfere_in_local(self):
        p = predictor()
        for _ in range(16):
            p.update(0x100, True, 0x10)
            p.update(0x104, False)
        assert p.predict(0x100) is True
        assert p.predict(0x104) is False


class TestBtb:
    def test_first_taken_is_btb_miss(self):
        p = predictor()
        assert p.update(0x40, True, 0x10) is True
        assert p.stats.btb_misses == 1

    def test_target_remembered(self):
        p = predictor()
        p.update(0x40, True, 0x10)
        assert p.predict_target(0x40) == 0x10

    def test_target_change_detected(self):
        p = predictor()
        for _ in range(4):
            p.update(0x40, True, 0x10)
        before = p.stats.btb_misses
        p.update(0x40, True, 0x20)  # new target: BTB mispredict
        assert p.stats.btb_misses == before + 1

    def test_btb_capacity_eviction(self):
        p = predictor(btb_entries=4)
        for i in range(5):
            p.update(0x100 + 8 * i, True, 0x10)
        assert p.predict_target(0x100) is None  # evicted (FIFO)
        assert p.predict_target(0x120) == 0x10

    def test_not_taken_never_btb_miss(self):
        p = predictor()
        p.update(0x40, False)
        assert p.stats.btb_misses == 0


class TestStats:
    def test_lookup_and_mispredict_counts(self):
        p = predictor()
        for _ in range(30):
            p.update(0x40, True, 0x10)
        assert p.stats.lookups == 30
        assert 0 < p.stats.mispredict_rate < 1


class TestReturnAddressStack:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_empty_pop(self):
        assert ReturnAddressStack(8).pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert len(ras) == 2
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None
