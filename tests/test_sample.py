"""Tests for :mod:`repro.sample` — interval-sampled simulation.

Covers the contracts the sampler's accuracy rests on:

* warm-state reconstruction — timing a whole trace as one segment
  matches :func:`~repro.pipeline.core.simulate`, and a full-history
  warm-up telescopes exactly (measured pieces sum to the exact total);
* fingerprint determinism — vectors are a pure function of the op
  stream and the op-indexed event bins, so a streaming fingerprint pass
  and a fully materialised replay produce identical vectors;
* projection determinism — same ``(seed, interval size, k)`` gives a
  byte-identical report on recomputation;
* accuracy — suite spot checks stay within the standing 5% bound;
* the cache-key contract — ``lane_engine`` is excluded from sample
  keys, exactly like exact-run keys.
"""

import math
from collections import Counter

import pytest

from repro.compiler import Strategy
from repro.observe import events as obs
from repro.observe.events import IntervalCounterSink
from repro.pipeline.core import simulate
from repro.pipeline.stream import time_segment
from repro.sample import (
    FingerprintAccumulator,
    cluster_intervals,
    fingerprint_pass,
    resolve_spec,
    safe_cut,
    sample_loop,
    sample_named,
)
from repro.sample import project as project_mod
from repro.sample.project import _build
from repro.workloads import by_name

SUITE_GEOMETRY = dict(interval_size=256, warmup=1536, max_clusters=4)


def _trace_ops(workload_name, loop_name, strategy, n):
    _, spec = resolve_spec(workload_name, loop_name)
    interp = _build(spec, strategy, 0, n, project_mod.TABLE_I, None)
    return list(interp.iter_trace())


# ---------------------------------------------------------------------------
# warm-state contract: time_segment vs exact simulation
# ---------------------------------------------------------------------------


class TestWarmStateContract:
    def test_whole_trace_segment_matches_simulate(self):
        trace = _trace_ops("hmmer", "viterbi", Strategy.SRV, 128)
        exact = simulate(trace, warm=True)
        timing = time_segment(trace)
        assert timing.cycles == exact.cycles
        assert timing.warm_ops == 0

    def test_full_history_warm_telescopes_exactly(self):
        trace = _trace_ops("hmmer", "viterbi", Strategy.SRV, 128)
        exact = simulate(trace, warm=True)
        # split at a region-safe cut near the middle
        cut = next(
            i for i in range(len(trace) // 2, len(trace))
            if safe_cut(trace[i])
        )
        head = time_segment(trace[:cut])
        tail = time_segment(trace[cut:], warm_ops=trace[:cut])
        assert head.cycles + tail.cycles == exact.cycles


# ---------------------------------------------------------------------------
# fingerprint determinism: streaming pass == materialised replay
# ---------------------------------------------------------------------------


def _materialised_fingerprints(spec, strategy, n, interval_size):
    """Reference vectors from a fully materialised trace + event list."""
    interp = _build(spec, strategy, 0, n, project_mod.TABLE_I, None)
    sink = obs.ListSink()
    saved = obs.ACTIVE
    obs.ACTIVE = obs.EventBus(sink)
    try:
        ops = list(interp.iter_trace())
    finally:
        obs.ACTIVE = saved
    bins: dict[int, Counter] = {}
    for event in sink.events:
        if event.op >= 0:
            bins.setdefault(event.op // interval_size, Counter())[
                event.kind
            ] += 1
    vectors = []
    for start in range(0, len(ops), interval_size):
        acc = FingerprintAccumulator(interp.lanes)
        for op in ops[start:start + interval_size]:
            acc.add(op)
        acc.fold_counters(bins.get(start // interval_size, Counter()))
        vectors.append(acc.vector())
    return vectors


class TestFingerprintDeterminism:
    @pytest.mark.parametrize("loop", [("hmmer", "viterbi"),
                                      ("gobmk", None)])
    def test_stream_pass_matches_materialised_replay(self, loop):
        workload_key, loop_name = loop
        _, spec = resolve_spec(workload_key, loop_name)
        interval = 128
        interp = _build(spec, Strategy.SRV, 0, 96, project_mod.TABLE_I,
                        None)
        run = fingerprint_pass(interp, interval)
        reference = _materialised_fingerprints(
            spec, Strategy.SRV, 96, interval,
        )
        assert [iv.vector for iv in run.intervals] == reference

    def test_interval_counter_sink_flush(self):
        sink = IntervalCounterSink(4)
        kind = obs.EventKind.REGION_BEGIN
        for op in (0, 3, 4, 11, -1):  # -1: not op-scoped, dropped
            sink.accept(obs.Event(kind=kind, domain="emu", op=op, t=0))
        first = sink.drain(before=1)
        assert first == [(0, Counter({kind: 2}))]
        rest = sink.drain()
        assert rest == [(1, Counter({kind: 1})), (2, Counter({kind: 1}))]
        assert sink.drain() == []


# ---------------------------------------------------------------------------
# clustering
# ---------------------------------------------------------------------------


class TestClustering:
    def test_forced_k_is_honoured(self):
        vectors = [(float(i % 3), float(i % 3)) for i in range(12)]
        assert cluster_intervals(vectors, seed=0, k=2).k == 2

    def test_bic_recovers_planted_structure(self):
        vectors = [(0.0, 0.0)] * 10 + [(10.0, 10.0)] * 10
        clustering = cluster_intervals(vectors, seed=0, max_k=4)
        assert clustering.k == 2

    def test_same_seed_same_assignment(self):
        vectors = [(float(i % 5), float(i * 7 % 11)) for i in range(40)]
        a = cluster_intervals(vectors, seed=3, max_k=6)
        b = cluster_intervals(vectors, seed=3, max_k=6)
        assert a == b


# ---------------------------------------------------------------------------
# projection: determinism, head pinning, accuracy spot checks
# ---------------------------------------------------------------------------


class TestProjection:
    def test_report_byte_identical_on_recompute(self):
        reports = [
            sample_named(
                "hmmer", "viterbi", Strategy.SRV,
                use_cache=False, **SUITE_GEOMETRY,
            )
            for _ in range(2)
        ]
        assert reports[0].format_report() == reports[1].format_report()
        assert reports[0].to_obj() == reports[1].to_obj()

    def test_head_is_pinned_not_extrapolated(self):
        report = sample_named(
            "hmmer", "viterbi", Strategy.SRV,
            use_cache=False, **SUITE_GEOMETRY,
        )
        expected_head = min(
            math.ceil(SUITE_GEOMETRY["warmup"]
                      / SUITE_GEOMETRY["interval_size"]),
            report.intervals,
        )
        assert report.head_intervals == expected_head
        assert report.head_ops > 0
        # head intervals never appear among a cluster's projected members
        head = set(range(report.head_intervals))
        for cluster in report.clusters:
            assert report.head_cycles > 0
            assert not head.intersection(cluster.samples) or (
                # a cluster whose members are ALL pinned may fall back
                cluster.ops == 0
            )

    @pytest.mark.parametrize("loop,strategy", [
        (("hmmer", "viterbi"), Strategy.SRV),
        (("gcc", "regalloc"), Strategy.SVE),
    ])
    def test_suite_spot_accuracy_within_bound(self, loop, strategy):
        from repro.experiments.runner import run_loop

        workload_key, loop_name = loop
        workload, spec = resolve_spec(workload_key, loop_name)
        exact = run_loop(spec, strategy)
        report = sample_loop(
            spec, strategy, workload_key=workload.name,
            use_cache=False, **SUITE_GEOMETRY,
        ).with_exact(exact.cycles)
        assert abs(report.error_pct) <= 5.0
        assert report.projected_cycles > 0

    def test_validation_errors(self):
        _, spec = resolve_spec("hmmer", "viterbi")
        with pytest.raises(ValueError, match="interval size"):
            sample_loop(spec, Strategy.SRV, interval_size=0)
        with pytest.raises(ValueError, match="samples per cluster"):
            sample_loop(spec, Strategy.SRV, samples=0)
        with pytest.raises(ValueError, match="core model"):
            sample_loop(spec, Strategy.SRV, core="quantum")


# ---------------------------------------------------------------------------
# by_name-style resolution and the generated :n suffix
# ---------------------------------------------------------------------------


class TestResolution:
    def test_resolve_spec_loop_optional_for_single_loop(self):
        workload, spec = resolve_spec("gobmk")
        assert spec in workload.loops

    def test_resolve_spec_substring_and_errors(self):
        _, spec = resolve_spec("hmmer", "vit")
        assert "viterbi" in spec.name
        with pytest.raises(KeyError):
            resolve_spec("hmmer", "no_such_loop")

    def test_generated_n_suffix_round_trips_through_by_name(self):
        from repro.gen.emitter import workload_name

        name = workload_name(1, 1, n=4096)
        assert ":n4096" in name
        workload = by_name(name)
        assert workload.name == name
        assert all(spec.n == 4096 for spec in workload.loops)


# ---------------------------------------------------------------------------
# cache-key contract
# ---------------------------------------------------------------------------


def test_lane_engine_excluded_from_sample_cache_key(monkeypatch):
    """A projection cached under one engine satisfies the other engine.

    Mirrors the exact-runner contract: lane engines are bit-identical,
    so ``lane_engine`` must not participate in the sample cache key.
    """
    from repro.experiments.runner import clear_cache

    _, spec = resolve_spec("hmmer", "viterbi")
    clear_cache()
    try:
        first = sample_loop(
            spec, Strategy.SRV, lane_engine="python", **SUITE_GEOMETRY,
        )

        def no_sample(*args, **kwargs):
            raise AssertionError(
                "sample_loop re-executed: lane_engine leaked into the "
                "sample cache key"
            )

        monkeypatch.setattr(project_mod, "_sample_once", no_sample)
        second = sample_loop(
            spec, Strategy.SRV, lane_engine="numpy", **SUITE_GEOMETRY,
        )
    finally:
        clear_cache()
    assert second == first


def test_unknown_lane_engine_fails_before_cache():
    _, spec = resolve_spec("hmmer", "viterbi")
    with pytest.raises(ValueError, match="unknown lane engine"):
        sample_loop(spec, Strategy.SRV, lane_engine="fortran")
