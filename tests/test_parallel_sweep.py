"""Parallel sweep engine (repro.parallel): determinism + checkpointing.

The engine's contract is that a ``--jobs N`` sweep produces tables that
are **byte-identical** to a sequential run: workers only warm the result
cache, and the harnesses replay sequentially in the parent.  These tests
exercise that contract end to end for representative figures, plus the
satellite requirement that a checkpoint written by a *sequential* run is
honoured by a parallel one.
"""

import pytest

from repro.compiler import Strategy
from repro.experiments import ALL_EXPERIMENTS, runner
from repro.parallel import (
    SweepCell,
    cells_for_experiments,
    plan_summary,
    run_sweep,
    warm_cells,
)
from repro.parallel.cache import result_cache
from repro.workloads import by_name

#: Small but representative: violations (SRV replay behaviour), FlexVec
#: (strategy comparison incl. dynamic instruction counts), and the limit
#: study (untimed emulator-only cells).
FIGURES = ("figure9", "figure13", "limit_study")
N = 32


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path):
    runner.clear_cache()
    runner.disable_checkpoint()
    runner.disable_disk_cache()
    yield
    runner.clear_cache()
    runner.disable_checkpoint()
    runner.disable_disk_cache()


def _sequential_tables() -> dict[str, str]:
    tables = {}
    for name in FIGURES:
        runner.clear_cache()
        tables[name] = ALL_EXPERIMENTS[name](n_override=N).format_table()
    return tables


class TestPlan:
    def test_cells_are_deduplicated(self):
        cells = cells_for_experiments(["figure6", "figure7"], n_override=N)
        assert len(cells) == len(set(cells))
        # figure7 reuses figure6's runs: same cell matrix, no doubling
        only6 = cells_for_experiments(["figure6"], n_override=N)
        assert set(cells) == set(only6)

    def test_unknown_experiment_rejected_by_sweep(self):
        # the plan layer tolerates unknown names (the replay phase covers
        # derived experiments); run_sweep is where validation happens
        assert cells_for_experiments(["figure99"]) == []
        with pytest.raises(KeyError):
            run_sweep(["figure99"], jobs=1)

    def test_cell_resolves_to_spec_and_config(self):
        cell = SweepCell(
            workload="gcc", loop=by_name("gcc").loops[0].name,
            strategy=Strategy.SRV.value,
        )
        spec, strategy, config = cell.resolve()
        assert spec.name == cell.loop
        assert strategy is Strategy.SRV
        assert config.vector_lanes > 0

    def test_plan_summary_mentions_counts(self):
        summary = plan_summary(cells_for_experiments(["figure13"], n_override=N))
        assert "cells" in summary


class TestDeterminism:
    def test_parallel_tables_byte_identical(self, tmp_path):
        expected = _sequential_tables()

        runner.clear_cache()
        outcome = run_sweep(
            list(FIGURES), jobs=4, n_override=N,
            cache_dir=str(tmp_path / "cache"),
        )
        for name in FIGURES:
            assert outcome.results[name].format_table() == expected[name], name
        assert not outcome.failed_experiments
        assert outcome.report.planned_cells > 0

    def test_second_sweep_is_all_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(["figure13"], jobs=2, n_override=N,
                          cache_dir=cache_dir)
        assert sum(s.executed for s in first.report.shards) > 0

        runner.clear_cache()
        second = run_sweep(["figure13"], jobs=2, n_override=N,
                           cache_dir=cache_dir)
        assert sum(s.executed for s in second.report.shards) == 0
        assert second.report.skipped_cache == second.report.planned_cells
        assert (second.results["figure13"].format_table()
                == first.results["figure13"].format_table())

    def test_warm_cells_inline_matches_pool(self, tmp_path):
        cells = cells_for_experiments(["figure13"], n_override=N)
        inline_dir = str(tmp_path / "inline")
        pool_dir = str(tmp_path / "pool")

        runner.clear_cache()
        runner.disable_disk_cache()
        inline_reports = warm_cells(cells, jobs=1, cache_dir=inline_dir)
        runner.clear_cache()
        runner.disable_disk_cache()
        pool_reports = warm_cells(cells, jobs=2, cache_dir=pool_dir)

        assert sum(r.executed for r in inline_reports) == len(cells)
        assert sum(r.executed for r in pool_reports) == len(cells)
        assert not any(r.failures for r in inline_reports + pool_reports)


class TestCheckpointAgreement:
    def test_sequential_checkpoint_honoured_by_parallel_run(self, tmp_path):
        """Satellite: a --jobs N sweep must not redo checkpointed work."""
        ckpt = str(tmp_path / "runs.ckpt")

        # sequential run writes the checkpoint
        runner.enable_checkpoint(ckpt)
        expected = ALL_EXPERIMENTS["figure13"](n_override=N).format_table()
        runner.disable_checkpoint()
        runner.clear_cache()

        # parallel run loads it: every cell is skipped, nothing executes
        outcome = run_sweep(
            ["figure13"], jobs=2, n_override=N,
            cache_dir=str(tmp_path / "cache"), checkpoint=ckpt,
        )
        report = outcome.report
        assert report.skipped_checkpoint == report.planned_cells
        assert sum(s.executed for s in report.shards) == 0
        assert outcome.results["figure13"].format_table() == expected

    def test_parallel_cache_honoured_by_sequential_run(self, tmp_path):
        """The converse composition: warm in parallel, replay sequentially
        through the plain harness entry point."""
        cache_dir = str(tmp_path / "cache")
        cells = cells_for_experiments(["figure13"], n_override=N)
        warm_cells(cells, jobs=2, cache_dir=cache_dir)

        runner.clear_cache()
        runner.enable_disk_cache(cache_dir)
        calls = []
        original = runner._execute

        def _spy(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        runner._execute = _spy
        try:
            result = ALL_EXPERIMENTS["figure13"](n_override=N)
        finally:
            runner._execute = original
        assert result.rows
        assert not calls, "warmed cells must satisfy the sequential harness"
