"""Static decode table: per-static-instruction facts and port accounting."""

import pytest

from repro.common.config import TABLE_I
from repro.common.rng import periodic_conflict_indices
from repro.compiler import Strategy, compile_loop
from repro.emu import Interpreter, run_program
from repro.isa import ProgramBuilder, imm, v, x
from repro.memory import MemoryImage
from repro.pipeline import DecodeTable, PipelineModel, Tracer
from repro.pipeline.decode import PORT_OF, decode_instruction
from repro.pipeline.deps import LATENCY, classify, instruction_regs
from repro.workloads.base import indirect_update

N = 64
LANES = TABLE_I.vector_lanes


def _compiled(strategy=Strategy.SRV, n=N):
    spec_loop = indirect_update()
    arrays = {"a": list(range(n)), "x": periodic_conflict_indices(n, 4)}
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec_loop.arrays[name], init=init)
    program = compile_loop(spec_loop, mem, n, strategy)
    return program, mem


class TestDecodeTable:
    def test_covers_every_static_instruction(self):
        program, _ = _compiled()
        table = DecodeTable.for_program(program)
        assert len(table) == len(
            {id(inst) for inst in program.instructions}
        )

    def test_records_match_deps_layer(self):
        program, _ = _compiled()
        table = DecodeTable.for_program(program)
        for inst in program.instructions:
            rec = table.record_for(inst)
            op_class = classify(inst)
            src, dst = instruction_regs(inst)
            assert rec.op_class is op_class
            assert rec.port_kind == PORT_OF[op_class]
            assert rec.latency == LATENCY[op_class]
            assert rec.src_regs == src
            assert rec.dst_regs == dst
            assert rec.access_kind == getattr(inst, "access_kind", None)
            assert rec.is_gather_scatter == (
                rec.access_kind in ("gather", "scatter")
            )
            assert rec.count_flags == (
                inst.is_vector, inst.is_mem, inst.is_branch,
                rec.is_gather_scatter, inst.is_load,
            )

    def test_record_identity_is_cached(self):
        program, _ = _compiled()
        table = DecodeTable.for_program(program)
        inst = program.instructions[0]
        assert table.record_for(inst) is table.record_for(inst)

    def test_lazy_decode_of_unseen_instruction(self):
        program, _ = _compiled()
        table = DecodeTable()
        inst = program.instructions[0]
        rec = table.record_for(inst)
        assert rec == decode_instruction(inst)
        assert len(table) == 1

    def test_interpreter_shares_one_table(self):
        program, mem = _compiled()
        interp = Interpreter(program, mem)
        assert len(interp.decode) == len(
            {id(inst) for inst in program.instructions}
        )

    def test_trace_ops_carry_decode_records(self):
        program, mem = _compiled()
        tracer = Tracer()
        run_program(program, mem, tracer=tracer)
        assert tracer.ops
        for op in tracer.ops:
            assert op.decode is not None
            assert op.decode.op_class is op.op_class
            assert op.src_regs == op.decode.src_regs
            assert op.dst_regs == op.decode.dst_regs


class TestMicroOpPortCharges:
    """Regression for the formerly duplicated ``access_kind`` probe:
    gather/scatter micro-ops must charge issue ports exactly once per
    lane — one reserve on the primary load/store port plus ``lanes - 1``
    on the micro-op port."""

    def _scatter_program(self, mem):
        a = mem.allocation("a")
        xs = mem.allocation("x")
        b = ProgramBuilder("scatter_charge")
        b.mov(x(1), imm(a.base)).mov(x(2), imm(xs.base))
        b.srv_start()
        b.v_load(v(0), x(1))
        b.v_load(v(1), x(2))
        b.v_gather(v(2), x(1), v(1))
        b.v_add(v(2), v(2), imm(1))
        b.v_scatter(v(2), x(1), v(1))
        b.srv_end()
        b.halt()
        return b.build()

    def test_micro_charges_once_per_lane(self):
        mem = MemoryImage()
        mem.alloc("a", LANES, 4, init=range(LANES))
        # a permutation: every lane accesses a distinct element
        mem.alloc("x", LANES, 4, init=[(i * 5) % LANES for i in range(LANES)])
        tracer = Tracer()
        run_program(self._scatter_program(mem), mem, tracer=tracer)

        expected = {"gather_micro": 0, "scatter_micro": 0, "load": 0, "store": 0}
        for op in tracer.ops:
            rec = op.decode
            if rec is None or not rec.is_mem:
                continue
            expected[rec.port_kind] += 1
            if rec.is_gather_scatter and len(op.mem) > 1:
                micro = (
                    "gather_micro" if rec.access_kind == "gather"
                    else "scatter_micro"
                )
                expected[micro] += len(op.mem) - 1
        assert expected["gather_micro"] >= LANES - 1
        assert expected["scatter_micro"] >= LANES - 1

        model = PipelineModel(TABLE_I)
        model.run(tracer.ops)
        for kind, want in expected.items():
            got = sum(model.ports._used[kind].values())
            assert got == want, (kind, got, want)

    @pytest.mark.parametrize("n", [N])
    def test_micro_charges_full_loop(self, n):
        program, mem = _compiled(n=n)
        tracer = Tracer()
        run_program(program, mem, tracer=tracer)
        expected_micro = sum(
            len(op.mem) - 1
            for op in tracer.ops
            if op.decode is not None
            and op.decode.is_gather_scatter
            and len(op.mem) > 1
        )
        model = PipelineModel(TABLE_I)
        model.run(tracer.ops)
        got = sum(model.ports._used["gather_micro"].values()) + sum(
            model.ports._used["scatter_micro"].values()
        )
        assert got == expected_micro
