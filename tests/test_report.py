"""Formatting coverage for :mod:`repro.experiments.report`.

The report containers back every CLI table (experiments, sweeps, and the
observe counters/attribution views), so their rendering and accessors
are pinned here.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import (
    ExperimentResult,
    ShardReport,
    SweepReport,
    _fmt,
)


def _result(**overrides) -> ExperimentResult:
    kwargs = dict(
        name="figX",
        title="Demo table",
        columns=("loop", "cycles", "speedup"),
        rows=[("alpha", 100, 1.5), ("beta", 250, 2.0)],
        summary={"geomean": 1.732},
    )
    kwargs.update(overrides)
    return ExperimentResult(**kwargs)


class TestExperimentResult:
    def test_fmt_floats_to_three_places(self):
        assert _fmt(1.23456) == "1.235"
        assert _fmt(3) == "3"
        assert _fmt("x") == "x"

    def test_row_for(self):
        result = _result()
        assert result.row_for("beta") == ("beta", 250, 2.0)
        with pytest.raises(KeyError):
            result.row_for("gamma")

    def test_column(self):
        assert _result().column("cycles") == [100, 250]

    def test_as_dict(self):
        assert _result().as_dict() == {
            "alpha": {"cycles": 100, "speedup": 1.5},
            "beta": {"cycles": 250, "speedup": 2.0},
        }

    def test_format_table_layout(self):
        text = _result().format_table()
        lines = text.splitlines()
        assert lines[0] == "Demo table"
        header = lines[2]
        assert header.split() == ["loop", "cycles", "speedup"]
        assert set(lines[3]) == {"-"}
        assert len(lines[3]) == len(header)
        # floats rendered with three decimals, column-aligned
        assert "1.500" in text and "2.000" in text
        assert "geomean: 1.732" in text

    def test_format_table_empty_rows(self):
        result = _result(rows=[], summary={})
        text = result.format_table()
        assert "loop" in text
        assert "alpha" not in text

    def test_format_table_failures_section(self):
        result = _result(failures=["loop gamma timed out"])
        assert not result.clean
        text = result.format_table()
        assert "failures (1):" in text
        assert "loop gamma timed out" in text

    def test_clean_when_no_failures(self):
        assert _result().clean


class TestSweepReports:
    def test_shard_ok(self):
        assert ShardReport(index=0, cells=4).ok
        assert not ShardReport(index=0, cells=4, failures=["x"]).ok

    def test_sweep_aggregates(self):
        report = SweepReport(
            jobs=2,
            planned_cells=10,
            skipped_cache=2,
            shards=[
                ShardReport(index=0, cells=4, executed=3, cached=1,
                            elapsed_s=1.25, pid=11),
                ShardReport(index=1, cells=4, executed=4, elapsed_s=2.5,
                            pid=12, failures=["cell died"]),
            ],
            warm_elapsed_s=3.0,
            replay_elapsed_s=0.5,
            experiment_timings=[("figure9", 0.4)],
        )
        assert report.executed == 7
        assert report.failures == ["cell died"]
        text = report.format_table()
        assert "10 cells, 2 worker(s)" in text
        assert "2 from cache" in text
        assert "warm phase: 3.00s" in text
        assert "figure9=0.4s" in text
        assert "failures (1):" in text
        # one line per shard between the header rule and the phase line
        shard_lines = [
            line for line in text.splitlines()
            if line.strip().startswith(("0 ", "1 "))
        ]
        assert len(shard_lines) == 2
