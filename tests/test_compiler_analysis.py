"""Tests for static dependence analysis."""

from repro.compiler import (
    Affine,
    BinOp,
    Const,
    DepClass,
    Indirect,
    Loop,
    Read,
    Store,
    analyse,
    classify_pair,
    loop_class,
)

VL = 16


class TestClassifyPair:
    def test_same_index_no_cross_iteration_dep(self):
        cls, dist = classify_pair(Affine(), Affine(), VL)
        assert cls is DepClass.NONE
        assert dist == 0

    def test_short_distance_unsafe(self):
        # write a[i], read a[i-1]: distance 1
        cls, dist = classify_pair(Affine(1, 0), Affine(1, -1), VL)
        assert cls is DepClass.PROVABLE_UNSAFE
        assert dist == 1

    def test_distance_at_vl_safe(self):
        cls, dist = classify_pair(Affine(1, 0), Affine(1, -VL), VL)
        assert cls is DepClass.PROVABLE_SAFE
        assert dist == VL

    def test_forward_distance_classified(self):
        cls, dist = classify_pair(Affine(1, 0), Affine(1, 3), VL)
        assert cls is DepClass.PROVABLE_UNSAFE
        assert dist == -3

    def test_stride_mismatch_never_coincides(self):
        # write a[2i], read a[2i+1]: parity differs
        cls, _ = classify_pair(Affine(2, 0), Affine(2, 1), VL)
        assert cls is DepClass.NONE

    def test_different_scales_same_residue_unknown(self):
        cls, _ = classify_pair(Affine(2, 0), Affine(3, 0), VL)
        assert cls is DepClass.UNKNOWN

    def test_different_scales_disjoint_residues_none(self):
        cls, _ = classify_pair(Affine(2, 0), Affine(4, 1), VL)
        assert cls is DepClass.NONE

    def test_indirect_is_unknown(self):
        assert classify_pair(Indirect("x"), Affine(), VL)[0] is DepClass.UNKNOWN
        assert classify_pair(Affine(), Indirect("x"), VL)[0] is DepClass.UNKNOWN

    def test_constant_indices(self):
        cls, dist = classify_pair(Affine(0, 5), Affine(0, 5), VL)
        assert cls is DepClass.PROVABLE_UNSAFE
        cls2, _ = classify_pair(Affine(0, 5), Affine(0, 6), VL)
        assert cls2 is DepClass.NONE


class TestLoopAnalysis:
    def test_elementwise_loop_is_clean(self):
        loop = Loop(
            "axpy", {"a": 4, "b": 4},
            [Store("a", Affine(), BinOp("+", Read("a", Affine()),
                                        Read("b", Affine())))],
        )
        assert loop_class(loop, VL) is DepClass.NONE

    def test_listing1_is_unknown(self):
        loop = Loop(
            "listing1", {"a": 4, "x": 4},
            [Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(2)))],
        )
        assert loop_class(loop, VL) is DepClass.UNKNOWN
        deps = analyse(loop, VL)
        assert any(d.kind == "raw" and d.dep_class is DepClass.UNKNOWN for d in deps)

    def test_recurrence_is_provable_unsafe(self):
        loop = Loop(
            "prefix", {"a": 4},
            [Store("a", Affine(), BinOp("+", Read("a", Affine(1, -1)), Const(1)))],
        )
        assert loop_class(loop, VL) is DepClass.PROVABLE_UNSAFE

    def test_long_distance_is_safe(self):
        loop = Loop(
            "far", {"a": 4},
            [Store("a", Affine(), Read("a", Affine(1, -32)))],
        )
        assert loop_class(loop, VL) is DepClass.PROVABLE_SAFE

    def test_distinct_arrays_no_deps(self):
        loop = Loop(
            "copy", {"a": 4, "b": 4},
            [Store("a", Affine(), Read("b", Affine()))],
        )
        assert analyse(loop, VL) == []

    def test_waw_between_statements(self):
        loop = Loop(
            "waw", {"a": 4, "x": 4},
            [
                Store("a", Affine(), Const(1)),
                Store("a", Indirect("x"), Const(2)),
            ],
        )
        deps = analyse(loop, VL)
        assert any(d.kind == "waw" and d.dep_class is DepClass.UNKNOWN for d in deps)

    def test_read_only_index_table_not_a_dependence(self):
        """The index array x is only read; no dependence on it."""
        loop = Loop(
            "listing1", {"a": 4, "x": 4},
            [Store("a", Indirect("x"), BinOp("+", Read("a", Affine()), Const(2)))],
        )
        assert not any(d.array == "x" for d in analyse(loop, VL))

    def test_vector_length_changes_class(self):
        loop = Loop(
            "dist8", {"a": 4},
            [Store("a", Affine(), Read("a", Affine(1, -8)))],
        )
        assert loop_class(loop, 16) is DepClass.PROVABLE_UNSAFE
        assert loop_class(loop, 8) is DepClass.PROVABLE_SAFE
