"""Seedable fault injection for the SRV simulator.

The simulator's correctness story rests on invariants it normally never
stresses: regions replay at most ``lanes - 1`` times, replay lanes are
exactly the violated lanes, LSU state mirrors the functional speculative
buffer.  This module perturbs microarchitectural state on demand so the
test suite can prove those invariants (and the differential oracle)
actually catch corruption — a sanitizer for the simulator itself.

A :class:`FaultPlan` describes *what* to break and *when*.  Hook points in
:mod:`repro.srv.engine`, :mod:`repro.lsu.unit`, and
:mod:`repro.emu.interpreter` poll the module-level :data:`ACTIVE` plan;
when no plan is armed every hook is a single ``is not None`` check, so
normal runs pay no observable overhead and behave bit-identically.

Fault catalogue (the classes the campaign must prove detectable):

========================  ====================================================
class                     effect
========================  ====================================================
``FLIP_NEEDS_REPLAY``     clear a pending lane bit in the SRV-needs-replay
                          predicate at ``srv_end`` (suppresses a replay)
``FORCE_REPLAY``          set every lane in SRV-needs-replay at ``srv_end``
                          (drives the region past the ``lanes - 1`` bound)
``DROP_REPLAY_LANE``      remove one lane from the replay set handed back to
                          re-execution after a rollback decision
``CORRUPT_STORE_DATA``    flip a bit in a value stored inside an SRV-region
``SKEW_LANE_ADDR``        add a byte delta to one lane's memory address
                          inside an SRV-region
``DROP_LSU_ENTRY``        silently discard a just-allocated LQ/SAQ entry in
                          the load-store unit
========================  ====================================================

This module must stay import-light (stdlib + ``repro.common`` only): the
core simulator modules import it at module scope.
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.bitvec import BitVector


class FaultClass(enum.Enum):
    """Catalogue of injectable corruptions."""

    FLIP_NEEDS_REPLAY = "flip-needs-replay"
    FORCE_REPLAY = "force-replay"
    DROP_REPLAY_LANE = "drop-replay-lane"
    CORRUPT_STORE_DATA = "corrupt-store-data"
    SKEW_LANE_ADDR = "skew-lane-addr"
    DROP_LSU_ENTRY = "drop-lsu-entry"


@dataclass(frozen=True)
class FaultSpec:
    """One planned perturbation.

    ``occurrence`` counts *polls* of the fault's hook site: the fault
    arms once the site has been evaluated that many times.  With
    ``repeat=True`` it keeps firing on every later poll — the way to
    guarantee an injection actually lands regardless of dynamic schedule.
    """

    fault: FaultClass
    occurrence: int = 0
    repeat: bool = False
    lane: int | None = None     # restrict to one lane where meaningful
    delta: int = 4              # byte skew for SKEW_LANE_ADDR
    bit: int = 0                # bit index for CORRUPT_STORE_DATA
    table: str = "lq"           # "lq" or "saq" for DROP_LSU_ENTRY


@dataclass(frozen=True)
class FiredFault:
    """Record of one injection that actually landed."""

    fault: FaultClass
    site: str
    poll: int
    detail: str


class FaultPlan:
    """A set of :class:`FaultSpec` plus the bookkeeping of what fired.

    The plan is seedable so campaigns are reproducible; the RNG is only
    used where a spec leaves a choice open (currently none of the
    built-in perturbations need it, but custom specs may).
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.rng = random.Random(f"faultplan/{seed}")
        self.polls: Counter = Counter()
        self.fired: list[FiredFault] = []

    # -- matching ------------------------------------------------------------

    def _match(self, fault: FaultClass) -> FaultSpec | None:
        """Count one poll of ``fault``'s site; return an armed spec if any."""
        count = self.polls[fault]
        self.polls[fault] += 1
        for spec in self.specs:
            if spec.fault is not fault:
                continue
            if count == spec.occurrence or (
                spec.repeat and count >= spec.occurrence
            ):
                return spec
        return None

    def _record(self, fault: FaultClass, site: str, detail: str) -> None:
        self.fired.append(
            FiredFault(fault, site, self.polls[fault] - 1, detail)
        )

    def fired_classes(self) -> set[FaultClass]:
        return {f.fault for f in self.fired}

    # -- hook: emulator srv_end needs-replay evaluation ----------------------

    def perturb_needs_replay(self, needs_replay: set[int], lanes: int) -> None:
        """Mutate the functional needs-replay set at an ``srv_end``."""
        spec = self._match(FaultClass.FLIP_NEEDS_REPLAY)
        if spec is not None and needs_replay:
            lane = (
                spec.lane
                if spec.lane in needs_replay
                else min(needs_replay)
            )
            needs_replay.discard(lane)
            self._record(
                FaultClass.FLIP_NEEDS_REPLAY,
                "emu.srv_end",
                f"cleared needs-replay lane {lane}",
            )
        spec = self._match(FaultClass.FORCE_REPLAY)
        if spec is not None:
            needs_replay.update(range(lanes))
            self._record(
                FaultClass.FORCE_REPLAY,
                "emu.srv_end",
                f"forced all {lanes} lanes into needs-replay",
            )

    # -- hook: emulator replay-set handoff ----------------------------------

    def perturb_replay_lanes(self, lanes_set: frozenset[int]) -> frozenset[int]:
        spec = self._match(FaultClass.DROP_REPLAY_LANE)
        if spec is not None and lanes_set:
            lane = spec.lane if spec.lane in lanes_set else min(lanes_set)
            self._record(
                FaultClass.DROP_REPLAY_LANE,
                "emu.replay",
                f"dropped replay lane {lane}",
            )
            return lanes_set - {lane}
        return lanes_set

    # -- hook: emulator in-region memory traffic -----------------------------

    def perturb_addr(self, addr: int, lane: int, is_store: bool) -> int:
        spec = self._match(FaultClass.SKEW_LANE_ADDR)
        if spec is not None and (spec.lane is None or spec.lane == lane):
            self._record(
                FaultClass.SKEW_LANE_ADDR,
                "emu.store" if is_store else "emu.load",
                f"skewed lane {lane} address {addr:#x} by {spec.delta:+d}",
            )
            return addr + spec.delta
        return addr

    def perturb_store_value(self, value: int, size: int, lane: int) -> int:
        spec = self._match(FaultClass.CORRUPT_STORE_DATA)
        if spec is not None and (spec.lane is None or spec.lane == lane):
            bit = spec.bit % (size * 8)
            self._record(
                FaultClass.CORRUPT_STORE_DATA,
                "emu.store",
                f"flipped bit {bit} of lane {lane} store data",
            )
            return value ^ (1 << bit)
        return value

    # -- hook: load-store unit allocation ------------------------------------

    def drop_lsu_entry(self, table: str) -> bool:
        spec = self._match(FaultClass.DROP_LSU_ENTRY)
        if spec is not None and spec.table == table:
            self._record(
                FaultClass.DROP_LSU_ENTRY,
                f"lsu.{table}",
                f"dropped just-allocated {table} entry",
            )
            return True
        return False

    # -- hook: SRV engine srv_end pending bits -------------------------------

    def perturb_engine_pending(
        self, pending: "BitVector", lanes: int
    ) -> "BitVector":
        from repro.common.bitvec import BitVector

        spec = self._match(FaultClass.FLIP_NEEDS_REPLAY)
        if spec is not None and pending.any():
            lane = (
                spec.lane
                if spec.lane is not None and pending.test(spec.lane)
                else pending.lowest_set()
            )
            pending = pending.with_bit(lane, False)
            self._record(
                FaultClass.FLIP_NEEDS_REPLAY,
                "srv.end_region",
                f"cleared pending lane {lane}",
            )
        spec = self._match(FaultClass.FORCE_REPLAY)
        if spec is not None:
            pending = BitVector.ones(lanes)
            self._record(
                FaultClass.FORCE_REPLAY,
                "srv.end_region",
                f"forced all {lanes} pending lanes",
            )
        return pending


#: The armed plan; ``None`` means fault injection is disabled and every
#: hook reduces to one pointer comparison.
ACTIVE: FaultPlan | None = None


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block.

    Plans do not nest: arming while another plan is active is a usage
    error (it would make campaign attribution ambiguous).
    """
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a FaultPlan is already armed; plans do not nest")
    ACTIVE = plan
    try:
        yield plan
    finally:
        ACTIVE = None
