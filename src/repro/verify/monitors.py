"""Invariant monitors over dynamic execution traces.

Each monitor re-derives one paper invariant from the trace alone and
reports :class:`Violation` records instead of relying on the simulator's
own inline assertions.  The monitors are deliberately independent of the
emulator's bookkeeping: a corrupted simulator that *mis-reports* its own
state is exactly what they exist to catch.

Invariants checked (paper references in parentheses):

* **replay bound** — a region rolls back at most ``lanes - 1`` times
  (section III-A);
* **region nesting** — ``srv_start`` never occurs inside an active region,
  every region closes with a commit or a complete sequential fallback
  (section III-A);
* **LSU occupancy** — a non-fallback region's entry demand never exceeds
  ``config.lsu_entries``; gathers/scatters cost one entry per lane
  (section III-D7);
* **predicate / bytes-accessed consistency** — a vector memory op touches
  at most ``active_lane_count`` distinct lanes, lane ids are in range,
  and contiguous/broadcast accesses have the address shape their opcode
  promises (figures 3-5);
* **trace well-formedness** — indices are sequential, branch outcomes are
  recorded exactly for branch-class ops, and memory events appear only on
  memory ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.pipeline.trace import OpClass, RegionEvent, TraceOp


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach."""

    monitor: str
    message: str
    op_index: int | None = None

    def __str__(self) -> str:
        where = f" @op{self.op_index}" if self.op_index is not None else ""
        return f"[{self.monitor}{where}] {self.message}"


# ---------------------------------------------------------------------------
# individual monitors
# ---------------------------------------------------------------------------


def check_region_structure(
    trace: list[TraceOp], config: MachineConfig
) -> list[Violation]:
    """Region nesting, closure, and the ``lanes - 1`` replay bound."""
    violations: list[Violation] = []
    lanes = config.vector_lanes
    open_region = False
    replay_ends = 0
    fallback_passes = 0
    in_fallback = False

    for op in trace:
        event = op.region_event
        if event is RegionEvent.START:
            if open_region:
                violations.append(Violation(
                    "region-nesting",
                    "srv_start inside an active SRV-region",
                    op.index,
                ))
            open_region = True
            replay_ends = 0
            fallback_passes = 0
            in_fallback = False
        if op.in_region != open_region:
            violations.append(Violation(
                "region-nesting",
                f"op in_region={op.in_region} disagrees with region "
                f"structure (open={open_region})",
                op.index,
            ))
        if event is RegionEvent.END_REPLAY:
            if not open_region:
                violations.append(Violation(
                    "region-nesting", "replay srv_end outside a region",
                    op.index,
                ))
            replay_ends += 1
            if replay_ends > lanes - 1:
                violations.append(Violation(
                    "replay-bound",
                    f"region rolled back {replay_ends} times "
                    f"(bound is lanes - 1 = {lanes - 1})",
                    op.index,
                ))
        elif event is RegionEvent.END_COMMIT:
            if not open_region:
                violations.append(Violation(
                    "region-nesting", "commit srv_end outside a region",
                    op.index,
                ))
            open_region = False
        elif event is RegionEvent.FALLBACK:
            if not open_region:
                violations.append(Violation(
                    "region-nesting", "fallback srv_end outside a region",
                    op.index,
                ))
            in_fallback = True
            fallback_passes += 1
            if fallback_passes == lanes:
                open_region = False  # last single-lane pass commits
            elif fallback_passes > lanes:
                violations.append(Violation(
                    "region-nesting",
                    f"sequential fallback ran {fallback_passes} passes "
                    f"for {lanes} lanes",
                    op.index,
                ))
    if open_region:
        where = trace[-1].index if trace else None
        kind = "fallback " if in_fallback else ""
        violations.append(Violation(
            "region-nesting", f"trace ends inside an open {kind}SRV-region",
            where,
        ))
    return violations


def check_lsu_occupancy(
    trace: list[TraceOp], config: MachineConfig
) -> list[Violation]:
    """Re-derive each region's LSU entry demand from its first pass.

    Mirrors the section III-D7 sizing rule the emulator applies before
    choosing speculative execution: contiguous / broadcast / scalar
    accesses take one entry, gathers and scatters one per lane.  A
    non-fallback region whose demand exceeds the configured LSU capacity
    means the simulator speculated where the hardware could not.
    """
    violations: list[Violation] = []
    lanes = config.vector_lanes
    demand = 0
    counting = False     # inside the first pass of a region
    fallback = False
    start_index: int | None = None

    for op in trace:
        if op.region_event is RegionEvent.START:
            counting = True
            fallback = False
            demand = 0
            start_index = op.index
            continue
        if op.region_event is RegionEvent.FALLBACK:
            fallback = True
        if op.op_class is OpClass.SRV_END:
            if counting and not fallback and demand > config.lsu_entries:
                violations.append(Violation(
                    "lsu-occupancy",
                    f"region at op {start_index} demands {demand} LSU "
                    f"entries, capacity {config.lsu_entries}, without "
                    "sequential fallback",
                    op.index,
                ))
            counting = False
            continue
        if counting and op.inst.is_mem:
            kind = getattr(op.inst, "access_kind", "scalar")
            demand += lanes if kind in ("gather", "scatter") else 1
    return violations


def check_mem_consistency(
    trace: list[TraceOp], config: MachineConfig
) -> list[Violation]:
    """Predicate / bytes-accessed consistency of per-lane memory events."""
    violations: list[Violation] = []
    lanes = config.vector_lanes

    for op in trace:
        if not op.mem:
            continue
        seen = {access.lane for access in op.mem}
        if len(seen) != len(op.mem):
            violations.append(Violation(
                "mem-consistency", "duplicate lane in memory events",
                op.index,
            ))
        bad = [lane for lane in seen if not 0 <= lane < lanes]
        if bad:
            violations.append(Violation(
                "mem-consistency", f"lane ids {sorted(bad)} out of range",
                op.index,
            ))
        limit = (
            op.active_lane_count
            if op.in_region and op.active_lane_count
            else lanes
        )
        if len(seen) > limit:
            violations.append(Violation(
                "mem-consistency",
                f"{len(seen)} lanes accessed memory but only {limit} "
                "lanes are active in this pass",
                op.index,
            ))
        elem = getattr(op.inst, "elem", None)
        if elem is not None:
            if any(access.size != elem for access in op.mem):
                violations.append(Violation(
                    "mem-consistency",
                    f"access size disagrees with element size {elem}",
                    op.index,
                ))
            kind = getattr(op.inst, "access_kind", None)
            if kind == "contiguous":
                # every lane's address must satisfy addr == base + lane*elem
                bases = {a.addr - a.lane * elem for a in op.mem}
                if len(bases) > 1:
                    violations.append(Violation(
                        "mem-consistency",
                        "contiguous access lanes do not share one base "
                        f"address (bases {sorted(bases)})",
                        op.index,
                    ))
            elif kind == "broadcast":
                if len({a.addr for a in op.mem}) > 1:
                    violations.append(Violation(
                        "mem-consistency",
                        "broadcast access reads more than one address",
                        op.index,
                    ))
    return violations


def check_well_formedness(
    trace: list[TraceOp], config: MachineConfig
) -> list[Violation]:
    """Structural sanity of the trace stream itself."""
    violations: list[Violation] = []
    for position, op in enumerate(trace):
        if op.index != position:
            violations.append(Violation(
                "trace-form",
                f"op index {op.index} at position {position}",
                op.index,
            ))
        if op.op_class is OpClass.BRANCH and op.branch_taken is None:
            violations.append(Violation(
                "trace-form", "branch op without a recorded outcome",
                op.index,
            ))
        if op.branch_taken is not None and op.op_class is not OpClass.BRANCH:
            violations.append(Violation(
                "trace-form",
                f"{op.op_class.value} op carries a branch outcome",
                op.index,
            ))
        if op.mem and not op.inst.is_mem:
            violations.append(Violation(
                "trace-form",
                f"{op.op_class.value} op carries memory events",
                op.index,
            ))
        if op.pc < 0:
            violations.append(Violation(
                "trace-form", f"negative pc {op.pc}", op.index
            ))
    return violations


ALL_MONITORS = (
    check_region_structure,
    check_lsu_occupancy,
    check_mem_consistency,
    check_well_formedness,
)


def run_monitors(
    trace: list[TraceOp], config: MachineConfig
) -> list[Violation]:
    """Run every invariant monitor over ``trace``; collect all violations."""
    violations: list[Violation] = []
    for monitor in ALL_MONITORS:
        violations.extend(monitor(trace, config))
    return violations
