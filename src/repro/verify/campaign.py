"""Fault-injection campaign: prove every fault class is detectable.

The campaign arms one :class:`~repro.verify.faults.FaultPlan` at a time,
runs a real figure-6 loop under it, and records which checker caught the
corruption — an invariant monitor, the scalar-reference oracle, the LSU
differential cross-check, or a typed runtime error.  An injection that
fires but goes undetected is a hole in the verification net; the test
suite fails on it.

Loops are chosen so each fault class is guaranteed to matter: the
replay-suppression faults target loops with real run-time violations
(hmmer, is, randacc), while data/address corruptions work anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.verify import faults
from repro.verify.differential import VerifyReport, verify_loop
from repro.verify.faults import FaultClass, FaultPlan, FaultSpec
from repro.workloads import by_name


@dataclass(frozen=True)
class Injection:
    """One campaign entry: a fault spec aimed at one loop run."""

    spec: FaultSpec
    workload: str
    loop: str
    n: int = 64
    seed: int = 0


@dataclass
class InjectionResult:
    injection: Injection
    fired: bool
    detected: bool
    detectors: tuple[str, ...]
    report: VerifyReport

    @property
    def ok(self) -> bool:
        """An injection passes if it fired and something caught it."""
        return self.fired and self.detected


@dataclass
class CampaignResult:
    results: list[InjectionResult] = field(default_factory=list)

    @property
    def all_detected(self) -> bool:
        return all(r.ok for r in self.results)

    def undetected(self) -> list[InjectionResult]:
        return [r for r in self.results if not r.ok]

    def classes_covered(self) -> set[FaultClass]:
        return {r.injection.spec.fault for r in self.results if r.fired}

    def format_table(self) -> str:
        lines = [
            "Fault-injection campaign",
            "",
            f"{'fault':20s}  {'loop':26s}  {'n':>4s}  {'fired':5s}  "
            f"{'detected':8s}  detector",
        ]
        lines.append("-" * len(lines[-1]))
        for r in self.results:
            detector = ", ".join(r.detectors) if r.detectors else "-"
            lines.append(
                f"{r.injection.spec.fault.value:20s}  "
                f"{r.injection.loop:26s}  {r.injection.n:4d}  "
                f"{str(r.fired):5s}  {str(r.detected):8s}  {detector}"
            )
        total = len(self.results)
        caught = sum(1 for r in self.results if r.ok)
        lines.append("")
        lines.append(
            f"{caught}/{total} injections fired and were detected "
            f"({len(self.classes_covered())} fault classes)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the catalogue
# ---------------------------------------------------------------------------

#: Loops with genuine run-time RAW violations at the given trip counts —
#: required by faults that only matter when a replay is pending.
_VIOLATING = (
    ("hmmer", "hmmer_viterbi_row", 64),
    ("hmmer", "hmmer_state_bump", 64),
    ("is", "is_key_rank", 256),
    ("randacc", "randacc_gups", 256),
)

#: Conflict-free loops for data/address corruption faults.
_CLEAN = (
    ("gcc", "gcc_df_propagate", 64),
    ("livermore", "livermore_k1_hydro", 64),
    ("astar", "astar_neighbour_relax", 64),
    ("lc", "lc_intensity_update", 64),
    ("gobmk", "gobmk_influence_decay", 64),
    ("ssca2", "ssca2_edge_relax", 64),
    ("bzip2", "bzip2_mtf_scan", 64),
    ("milc", "milc_field_axpy", 64),
)


def default_catalogue() -> list[Injection]:
    """The standing campaign: >= 20 injections over all 6 fault classes."""
    entries: list[Injection] = []

    for workload, loop, n in _VIOLATING:
        entries.append(Injection(
            FaultSpec(FaultClass.FLIP_NEEDS_REPLAY, repeat=True),
            workload, loop, n,
        ))
    for workload, loop, n in _VIOLATING:
        entries.append(Injection(
            FaultSpec(FaultClass.DROP_REPLAY_LANE, repeat=True),
            workload, loop, n,
        ))
    for workload, loop, n in _VIOLATING[:3]:
        entries.append(Injection(
            FaultSpec(FaultClass.DROP_LSU_ENTRY, repeat=True, table="lq"),
            workload, loop, n,
        ))
    for workload, loop, n in _CLEAN[:4]:
        entries.append(Injection(
            FaultSpec(FaultClass.CORRUPT_STORE_DATA, repeat=True, bit=3),
            workload, loop, n,
        ))
    for workload, loop, n in _CLEAN[4:8]:
        entries.append(Injection(
            FaultSpec(FaultClass.SKEW_LANE_ADDR, repeat=True, delta=4),
            workload, loop, n,
        ))
    for workload, loop, n in (("perlbench", "perlbench_magic_clip", 64),
                              ("milc", "milc_site_gather", 64),
                              ("hmmer", "hmmer_viterbi_row", 64)):
        entries.append(Injection(
            FaultSpec(FaultClass.FORCE_REPLAY, repeat=True),
            workload, loop, n,
        ))
    return entries


def _find_spec(workload_name: str, loop_name: str):
    workload = by_name(workload_name)
    for spec in workload.loops:
        if spec.name == loop_name:
            return spec
    raise KeyError(f"workload {workload_name!r} has no loop {loop_name!r}")


def run_injection(
    injection: Injection, config: MachineConfig = TABLE_I
) -> InjectionResult:
    """Arm one fault plan, run the target loop, judge the outcome."""
    spec = _find_spec(injection.workload, injection.loop)
    plan = FaultPlan([injection.spec], seed=injection.seed)
    with faults.inject(plan):
        report = verify_loop(
            spec, Strategy.SRV, injection.seed, config,
            n_override=injection.n,
        )
    return InjectionResult(
        injection=injection,
        fired=bool(plan.fired),
        detected=bool(report.violations),
        detectors=tuple(sorted(report.detectors())),
        report=report,
    )


def run_campaign(
    catalogue: list[Injection] | None = None,
    config: MachineConfig = TABLE_I,
) -> CampaignResult:
    entries = default_catalogue() if catalogue is None else catalogue
    return CampaignResult([run_injection(e, config) for e in entries])
