"""Verification subsystem: fault injection + invariant checking.

Three layers (see ``docs/ARCHITECTURE.md``, "Verification & fault
injection"):

* :mod:`repro.verify.faults` — seedable :class:`FaultPlan` perturbations
  of microarchitectural state, armed via :func:`faults.inject`;
* :mod:`repro.verify.monitors` — post-hoc invariant monitors over
  dynamic traces (replay bound, region nesting, LSU occupancy,
  predicate/bytes consistency, trace well-formedness);
* :mod:`repro.verify.differential` / :mod:`repro.verify.campaign` — the
  scalar-oracle + LSU differential checkers and the standing
  fault-injection campaign that proves every fault class detectable.

This ``__init__`` stays import-light on purpose: the core simulator
modules (``srv.engine``, ``lsu.unit``, ``emu.interpreter``) import
``repro.verify.faults`` at module scope for their hook points, so the
package must not eagerly pull the emulator back in.  The heavier
submodules load lazily through ``__getattr__``.
"""

from __future__ import annotations

from repro.verify.faults import (
    ACTIVE,
    FaultClass,
    FaultPlan,
    FaultSpec,
    FiredFault,
    inject,
)

_LAZY = {
    "Violation": "repro.verify.monitors",
    "run_monitors": "repro.verify.monitors",
    "ALL_MONITORS": "repro.verify.monitors",
    "VerifyReport": "repro.verify.differential",
    "verify_loop": "repro.verify.differential",
    "verify_workloads": "repro.verify.differential",
    "Injection": "repro.verify.campaign",
    "InjectionResult": "repro.verify.campaign",
    "CampaignResult": "repro.verify.campaign",
    "default_catalogue": "repro.verify.campaign",
    "run_campaign": "repro.verify.campaign",
    "run_injection": "repro.verify.campaign",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ACTIVE",
    "FaultClass",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "inject",
    *sorted(_LAZY),
]
