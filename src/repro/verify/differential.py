"""Differential verification of one loop execution.

Three independent judges cross-examine a run:

1. the **invariant monitors** (:mod:`repro.verify.monitors`) re-derive the
   paper's structural invariants from the dynamic trace;
2. the **scalar-reference oracle** re-executes the loop IR in pure Python
   and compares every output array byte-for-byte;
3. the **LSU cross-check** replays the trace through the cycle model with
   ``validate_lsu=True``, so the hardware load-store unit's replay
   decisions are compared lane-by-lane against the functional emulator's.

Any typed :class:`~repro.common.errors.ReproError` raised mid-run (replay
bound, region nesting, LSU overflow, memory bounds) also counts as a
detection: the simulator's own runtime invariant checkers caught the
corruption before the post-hoc judges could.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import TABLE_I, MachineConfig
from repro.common.errors import ReproError
from repro.compiler import Strategy, compile_loop, scalar_reference
from repro.emu import run_program
from repro.memory import MemoryImage
from repro.pipeline import Tracer, simulate
from repro.verify.monitors import Violation, run_monitors
from repro.workloads.base import LoopSpec


@dataclass
class VerifyReport:
    """Outcome of one verified loop execution."""

    loop: str
    strategy: str
    seed: int
    n: int
    violations: list[Violation] = field(default_factory=list)
    #: exception type name if a typed error aborted the run
    error: str | None = None

    @property
    def clean(self) -> bool:
        return not self.violations

    def detectors(self) -> set[str]:
        return {v.monitor for v in self.violations}

    def format_lines(self) -> list[str]:
        status = "clean" if self.clean else f"{len(self.violations)} violation(s)"
        lines = [f"{self.loop} [{self.strategy}] seed={self.seed} n={self.n}: {status}"]
        lines.extend(f"  {v}" for v in self.violations)
        return lines


def verify_loop(
    spec: LoopSpec,
    strategy: Strategy = Strategy.SRV,
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
    timing: bool = True,
    lane_engine: str | None = None,
) -> VerifyReport:
    """Execute one loop with every checker armed and report violations."""
    n = spec.n if n_override is None else min(n_override, spec.n)
    report = VerifyReport(spec.name, strategy.value, seed, n)

    arrays = spec.arrays(seed)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(spec.loop, mem, n, strategy, params=spec.params)

    tracer = Tracer()
    try:
        run_program(program, mem, config=config, tracer=tracer,
                    lane_engine=lane_engine)
    except ReproError as exc:
        report.error = type(exc).__name__
        report.violations.append(Violation(
            "runtime-invariant", f"{type(exc).__name__}: {exc}"
        ))
        # the trace up to the abort is still checkable
        report.violations.extend(run_monitors(tracer.ops, config))
        return report

    report.violations.extend(run_monitors(tracer.ops, config))

    reference = scalar_reference(spec.loop, arrays, n, params=spec.params)
    for name in arrays:
        got = mem.load_array(mem.allocation(name))
        want = reference[name]
        if got != want:
            index = next(
                i for i, (g, w) in enumerate(zip(got, want)) if g != w
            )
            report.violations.append(Violation(
                "oracle",
                f"array {name!r} diverges from the scalar reference at "
                f"index {index} (got {got[index]}, want {want[index]})",
            ))

    if timing:
        try:
            simulate(tracer.ops, config=config, validate_lsu=True, warm=True)
        except ReproError as exc:
            report.violations.append(Violation(
                "lsu-differential", f"{type(exc).__name__}: {exc}"
            ))
    return report


def verify_workloads(
    workloads,
    strategy: Strategy = Strategy.SRV,
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
    timing: bool = True,
) -> list[VerifyReport]:
    """Verify every loop of every workload; returns one report per loop.

    ``workloads`` may mix workload objects and workload names.
    """
    from repro.workloads import by_name

    resolved = [
        by_name(w) if isinstance(w, str) else w for w in workloads
    ]
    return [
        verify_loop(
            spec, strategy, seed, config,
            n_override=n_override, timing=timing,
        )
        for workload in resolved
        for spec in workload.loops
    ]
