"""Memory substrate: flat memory image and cache timing hierarchy."""

from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import CacheHierarchy, HierarchyStats
from repro.memory.image import Allocation, MemoryImage, to_signed, to_unsigned

__all__ = [
    "Cache",
    "CacheStats",
    "CacheHierarchy",
    "HierarchyStats",
    "Allocation",
    "MemoryImage",
    "to_signed",
    "to_unsigned",
]
