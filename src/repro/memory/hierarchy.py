"""Two-level cache hierarchy with the paper's Table I latencies.

``access`` returns the latency in cycles for a (naturally small) memory
access and updates per-level statistics.  A vector contiguous access that
spans two cache lines is charged for both lines; gathers/scatters access
the hierarchy once per lane (the pipeline cracks them into micro-ops
before reaching here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MemoryConfig
from repro.memory.cache import Cache


@dataclass
class HierarchyStats:
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0

    def reset(self) -> None:
        self.l1_hits = 0
        self.l1_misses = 0
        self.l2_hits = 0
        self.l2_misses = 0


class CacheHierarchy:
    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        self.l1 = Cache(self.config.l1, "L1D")
        self.l2 = Cache(self.config.l2, "L2")
        self.stats = HierarchyStats()

    def _access_line(self, line_addr: int, is_write: bool) -> int:
        l1_hit, _ = self.l1.access(line_addr, is_write)
        if l1_hit:
            self.stats.l1_hits += 1
            return self.config.l1.hit_latency
        self.stats.l1_misses += 1
        l2_hit, _ = self.l2.access(line_addr, is_write)
        if l2_hit:
            self.stats.l2_hits += 1
            return self.config.l1.hit_latency + self.config.l2.hit_latency
        self.stats.l2_misses += 1
        return (
            self.config.l1.hit_latency
            + self.config.l2.hit_latency
            + self.config.dram_latency
        )

    def access(self, addr: int, size: int, is_write: bool) -> int:
        """Latency in cycles for an access of ``size`` bytes at ``addr``.

        Accesses that straddle cache lines pay the worst line's latency
        (the lines are fetched in parallel on separate ports).
        """
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        line = self.config.l1.line_bytes
        first = addr // line
        last = (addr + size - 1) // line
        return max(
            self._access_line(line_no * line, is_write)
            for line_no in range(first, last + 1)
        )

    def warm(self, addr: int, size: int) -> None:
        """Install lines without recording statistics (test setup helper)."""
        import copy

        saved = (
            copy.copy(self.stats),
            copy.copy(self.l1.stats),
            copy.copy(self.l2.stats),
        )
        self.access(addr, size, is_write=False)
        self.stats, self.l1.stats, self.l2.stats = saved

    def reset_stats(self) -> None:
        self.stats.reset()
        self.l1.stats.reset()
        self.l2.stats.reset()
