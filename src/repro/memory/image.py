"""Flat byte-addressable memory image.

Workloads allocate arrays into a :class:`MemoryImage`, run a program
against it, and read the arrays back to check results.  Values are stored
little-endian, unsigned; signed views are provided for convenience since
the ISA's arithmetic is two's-complement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.errors import MemoryAccessError

try:  # optional: enables the vectorised bulk paths below
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None  # type: ignore[assignment]


def to_unsigned(value: int, size: int) -> int:
    """Wrap a Python int into ``size``-byte two's-complement storage."""
    return value & ((1 << (size * 8)) - 1)


def to_signed(value: int, size: int) -> int:
    """Interpret ``size``-byte storage as a signed integer."""
    bits = size * 8
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


#: element sizes the vectorised helpers handle (dtype-representable)
_NP_ELEMS = (1, 2, 4, 8)

if _np is not None:
    _NP_MASKS = {s: _np.uint64((1 << (8 * s)) - 1) for s in _NP_ELEMS}
    _NP_SIGNS = {s: _np.uint64(1 << (8 * s - 1)) for s in (1, 2, 4)}
    _NP_DTYPES = {s: _np.dtype(f"<u{s}") for s in _NP_ELEMS}
    _NP_BYTE_SHIFTS = {
        s: _np.arange(s, dtype=_np.uint64) * _np.uint64(8) for s in _NP_ELEMS
    }

    def to_unsigned_array(values: "_np.ndarray", size: int) -> "_np.ndarray":
        """Vectorised :func:`to_unsigned`: lanes → ``size``-byte storage.

        Accepts int64/uint64/bool lanes; returns uint64 lanes holding the
        wrapped (element-size-masked) unsigned value of each input lane.
        """
        if values.dtype == _np.bool_:
            values = values.astype(_np.uint64)
        elif values.dtype != _np.uint64:
            values = values.view(_np.uint64)
        if size == 8:
            return values
        return values & _NP_MASKS[size]

    def to_signed_array(values: "_np.ndarray", size: int) -> "_np.ndarray":
        """Vectorised :func:`to_signed`: uint64 storage lanes → int64.

        Sign extension is the usual xor/subtract trick on the unsigned
        values, exact for every stored pattern.
        """
        if size == 8:
            return values.view(_np.int64)
        sign = _NP_SIGNS[size]
        return ((values ^ sign) - sign).view(_np.int64)

else:  # pragma: no cover - exercised only on minimal installs
    to_unsigned_array = None  # type: ignore[assignment]
    to_signed_array = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Allocation:
    """A named array inside a memory image."""

    name: str
    base: int
    elem: int
    count: int

    @property
    def size_bytes(self) -> int:
        return self.elem * self.count

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def addr(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise MemoryAccessError(
                f"index {index} out of range for allocation {self.name!r} "
                f"of {self.count} elements"
            )
        return self.base + index * self.elem


class MemoryImage:
    """A contiguous span of bytes with a bump allocator for named arrays."""

    def __init__(self, size: int = 1 << 22, base: int = 0x1000) -> None:
        if size <= 0:
            raise MemoryAccessError(f"memory size must be positive, got {size}")
        self._base = base
        self._data = bytearray(size)
        self._next = base
        self._allocations: dict[str, Allocation] = {}

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def base(self) -> int:
        return self._base

    # -- raw access ----------------------------------------------------------

    def _span(self, addr: int, size: int) -> slice:
        off = addr - self._base
        if off < 0 or off + size > len(self._data):
            raise MemoryAccessError(
                f"access [{addr:#x}, {addr + size:#x}) outside memory "
                f"[{self._base:#x}, {self._base + len(self._data):#x})"
            )
        return slice(off, off + size)

    def read_bytes(self, addr: int, size: int) -> bytes:
        return bytes(self._data[self._span(addr, size)])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._data[self._span(addr, len(data))] = data

    def read_int(self, addr: int, size: int, signed: bool = False) -> int:
        raw = int.from_bytes(self.read_bytes(addr, size), "little")
        return to_signed(raw, size) if signed else raw

    def write_int(self, addr: int, value: int, size: int) -> None:
        self.write_bytes(addr, to_unsigned(value, size).to_bytes(size, "little"))

    # -- lane-batched access (numpy engine fast paths) -----------------------
    #
    # These helpers serve the lane-batched emulator engine: one call covers
    # all lanes of a contiguous or gathered vector access.  They raise the
    # same MemoryAccessError (same message, same offending span) as the
    # per-lane path would, by re-checking lane-by-lane on failure.

    def _check_lane_spans(self, addr: int, elem: int, lanes: int) -> int:
        off = addr - self._base
        if off < 0 or off + elem * lanes > len(self._data):
            for lane in range(lanes):
                self._span(addr + lane * elem, elem)
        return off

    def read_lanes(self, addr: int, elem: int, lanes: int) -> "_np.ndarray":
        """All lanes of a contiguous unit-stride load, as a uint64 array."""
        off = self._check_lane_spans(addr, elem, lanes)
        view = _np.frombuffer(self._data, _NP_DTYPES[elem], count=lanes, offset=off)
        return view.astype(_np.uint64)

    def write_lanes(self, addr: int, elem: int, values: "_np.ndarray") -> None:
        """Contiguous unit-stride store of elem-wrapped uint64 lanes."""
        lanes = len(values)
        off = self._check_lane_spans(addr, elem, lanes)
        view = _np.frombuffer(self._data, _NP_DTYPES[elem], count=lanes, offset=off)
        view[:] = values

    def gather_lanes(self, addrs: "_np.ndarray", elem: int) -> "_np.ndarray":
        """Gathered loads from per-lane int64 addresses, as a uint64 array.

        Bounds are validated for every lane up front; on failure the error
        is raised for the first offending lane in lane order, exactly as
        the sequential path would.
        """
        off = addrs - self._base
        bad = (off < 0) | (off + elem > len(self._data))
        if bad.any():
            self._span(int(addrs[int(_np.flatnonzero(bad)[0])]), elem)
        flat = _np.frombuffer(self._data, _np.uint8)
        chunk = flat[off[:, None] + _np.arange(elem)].astype(_np.uint64)
        return _np.bitwise_or.reduce(chunk << _NP_BYTE_SHIFTS[elem], axis=1)

    # -- allocator -------------------------------------------------------------

    def alloc(self, name: str, count: int, elem: int = 4,
              init: Sequence[int] | None = None, align: int = 64) -> Allocation:
        """Allocate ``count`` elements of ``elem`` bytes, optionally initialised.

        Arrays are 64-byte aligned by default so the address-alignment-base
        arithmetic in worked examples matches the paper's figures.
        """
        if name in self._allocations:
            raise MemoryAccessError(f"allocation {name!r} already exists")
        if count < 0 or elem <= 0:
            raise MemoryAccessError(f"bad allocation shape: count={count} elem={elem}")
        base = (self._next + align - 1) // align * align
        alloc = Allocation(name, base, elem, count)
        # grow the backing store on demand (doubling): large generated
        # kernels allocate multi-megabyte arrays, and growth changes no
        # address — only the out-of-bounds ceiling moves
        need = base + alloc.size_bytes - self._base
        if need > len(self._data):
            new_size = len(self._data)
            while new_size < need:
                new_size *= 2
            self._data.extend(bytes(new_size - len(self._data)))
        self._span(base, alloc.size_bytes)  # bounds check
        self._next = alloc.end
        self._allocations[name] = alloc
        if init is not None:
            self.store_array(alloc, init)
        return alloc

    def allocation(self, name: str) -> Allocation:
        try:
            return self._allocations[name]
        except KeyError:
            raise MemoryAccessError(f"no allocation named {name!r}") from None

    def allocations(self) -> Iterable[Allocation]:
        return self._allocations.values()

    # -- typed array helpers ------------------------------------------------------

    def store_array(self, alloc: Allocation, values: Sequence[int],
                    start: int = 0) -> None:
        if start < 0 or start + len(values) > alloc.count:
            raise MemoryAccessError(
                f"writing {len(values)} values at {start} overflows {alloc.name!r}"
            )
        if _np is not None and alloc.elem in _NP_ELEMS and len(values) > 4:
            try:
                arr = _np.asarray(values, dtype=_np.int64)
            except (OverflowError, TypeError, ValueError):
                arr = None  # values outside int64 (or odd types): scalar path
            if arr is not None:
                off = alloc.addr(start) - self._base
                view = _np.frombuffer(
                    self._data, _NP_DTYPES[alloc.elem],
                    count=len(values), offset=off,
                )
                view[:] = to_unsigned_array(arr, alloc.elem)
                return
        for i, value in enumerate(values):
            self.write_int(alloc.addr(start + i), value, alloc.elem)

    def load_array(self, alloc: Allocation, count: int | None = None,
                   start: int = 0, signed: bool = True) -> list[int]:
        count = alloc.count - start if count is None else count
        if (
            _np is not None
            and alloc.elem in _NP_ELEMS
            and count > 4
            and 0 <= start
            and start + count <= alloc.count
        ):
            off = alloc.addr(start) - self._base
            view = _np.frombuffer(
                self._data, _NP_DTYPES[alloc.elem], count=count, offset=off
            )
            if signed:
                return to_signed_array(view.astype(_np.uint64), alloc.elem).tolist()
            return view.tolist()
        return [
            self.read_int(alloc.addr(start + i), alloc.elem, signed=signed)
            for i in range(count)
        ]

    def snapshot(self) -> bytes:
        """Full memory contents; used by correctness oracles."""
        return bytes(self._data)

    def clone(self) -> "MemoryImage":
        """Deep copy sharing no state; allocations are carried over."""
        other = MemoryImage.__new__(MemoryImage)
        other._base = self._base
        other._data = bytearray(self._data)
        other._next = self._next
        other._allocations = dict(self._allocations)
        return other
