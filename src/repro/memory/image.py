"""Flat byte-addressable memory image.

Workloads allocate arrays into a :class:`MemoryImage`, run a program
against it, and read the arrays back to check results.  Values are stored
little-endian, unsigned; signed views are provided for convenience since
the ISA's arithmetic is two's-complement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.errors import MemoryAccessError


def to_unsigned(value: int, size: int) -> int:
    """Wrap a Python int into ``size``-byte two's-complement storage."""
    return value & ((1 << (size * 8)) - 1)


def to_signed(value: int, size: int) -> int:
    """Interpret ``size``-byte storage as a signed integer."""
    bits = size * 8
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


@dataclass(frozen=True)
class Allocation:
    """A named array inside a memory image."""

    name: str
    base: int
    elem: int
    count: int

    @property
    def size_bytes(self) -> int:
        return self.elem * self.count

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def addr(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise MemoryAccessError(
                f"index {index} out of range for allocation {self.name!r} "
                f"of {self.count} elements"
            )
        return self.base + index * self.elem


class MemoryImage:
    """A contiguous span of bytes with a bump allocator for named arrays."""

    def __init__(self, size: int = 1 << 22, base: int = 0x1000) -> None:
        if size <= 0:
            raise MemoryAccessError(f"memory size must be positive, got {size}")
        self._base = base
        self._data = bytearray(size)
        self._next = base
        self._allocations: dict[str, Allocation] = {}

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def base(self) -> int:
        return self._base

    # -- raw access ----------------------------------------------------------

    def _span(self, addr: int, size: int) -> slice:
        off = addr - self._base
        if off < 0 or off + size > len(self._data):
            raise MemoryAccessError(
                f"access [{addr:#x}, {addr + size:#x}) outside memory "
                f"[{self._base:#x}, {self._base + len(self._data):#x})"
            )
        return slice(off, off + size)

    def read_bytes(self, addr: int, size: int) -> bytes:
        return bytes(self._data[self._span(addr, size)])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._data[self._span(addr, len(data))] = data

    def read_int(self, addr: int, size: int, signed: bool = False) -> int:
        raw = int.from_bytes(self.read_bytes(addr, size), "little")
        return to_signed(raw, size) if signed else raw

    def write_int(self, addr: int, value: int, size: int) -> None:
        self.write_bytes(addr, to_unsigned(value, size).to_bytes(size, "little"))

    # -- allocator -------------------------------------------------------------

    def alloc(self, name: str, count: int, elem: int = 4,
              init: Sequence[int] | None = None, align: int = 64) -> Allocation:
        """Allocate ``count`` elements of ``elem`` bytes, optionally initialised.

        Arrays are 64-byte aligned by default so the address-alignment-base
        arithmetic in worked examples matches the paper's figures.
        """
        if name in self._allocations:
            raise MemoryAccessError(f"allocation {name!r} already exists")
        if count < 0 or elem <= 0:
            raise MemoryAccessError(f"bad allocation shape: count={count} elem={elem}")
        base = (self._next + align - 1) // align * align
        alloc = Allocation(name, base, elem, count)
        self._span(base, alloc.size_bytes)  # bounds check
        self._next = alloc.end
        self._allocations[name] = alloc
        if init is not None:
            self.store_array(alloc, init)
        return alloc

    def allocation(self, name: str) -> Allocation:
        try:
            return self._allocations[name]
        except KeyError:
            raise MemoryAccessError(f"no allocation named {name!r}") from None

    def allocations(self) -> Iterable[Allocation]:
        return self._allocations.values()

    # -- typed array helpers ------------------------------------------------------

    def store_array(self, alloc: Allocation, values: Sequence[int],
                    start: int = 0) -> None:
        if start < 0 or start + len(values) > alloc.count:
            raise MemoryAccessError(
                f"writing {len(values)} values at {start} overflows {alloc.name!r}"
            )
        for i, value in enumerate(values):
            self.write_int(alloc.addr(start + i), value, alloc.elem)

    def load_array(self, alloc: Allocation, count: int | None = None,
                   start: int = 0, signed: bool = True) -> list[int]:
        count = alloc.count - start if count is None else count
        return [
            self.read_int(alloc.addr(start + i), alloc.elem, signed=signed)
            for i in range(count)
        ]

    def snapshot(self) -> bytes:
        """Full memory contents; used by correctness oracles."""
        return bytes(self._data)

    def clone(self) -> "MemoryImage":
        """Deep copy sharing no state; allocations are carried over."""
        other = MemoryImage.__new__(MemoryImage)
        other._base = self._base
        other._data = bytearray(self._data)
        other._next = self._next
        other._allocations = dict(self._allocations)
        return other
