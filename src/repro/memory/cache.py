"""Set-associative cache timing model.

The caches model *timing and occupancy only* — data always lives in the
:class:`~repro.memory.image.MemoryImage`; a cache tracks which lines are
resident to decide hit/miss latency.  This matches the needs of a
cycle-approximate simulator: correctness comes from the memory image,
performance from the hit/miss accounting here.

LRU replacement, write-back with write-allocate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.config import CacheConfig


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0


@dataclass
class _Line:
    tag: int
    dirty: bool = False


class Cache:
    """One level of set-associative cache with LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._sets: list[OrderedDict[int, _Line]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = config.num_sets - 1

    def _locate(self, addr: int) -> tuple[int, int]:
        line_addr = addr >> self._offset_bits
        return line_addr & self._index_mask, line_addr >> (self._index_mask.bit_length())

    def lookup(self, addr: int) -> bool:
        """Non-destructive presence check (does not touch LRU or stats)."""
        index, tag = self._locate(addr)
        return tag in self._sets[index]

    def access(self, addr: int, is_write: bool) -> tuple[bool, bool]:
        """Access one line; returns ``(hit, caused_writeback)``.

        On a miss the line is allocated here (write-allocate); the caller
        is responsible for charging the next level's latency.
        """
        index, tag = self._locate(addr)
        ways = self._sets[index]
        line = ways.get(tag)
        hit = line is not None
        evict_dirty = False
        if hit:
            ways.move_to_end(tag)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            if len(ways) >= self.config.associativity:
                _, evicted = ways.popitem(last=False)
                if evicted.dirty:
                    evict_dirty = True
                    self.stats.writebacks += 1
            line = _Line(tag)
            ways[tag] = line
        if is_write:
            line.dirty = True
        return hit, evict_dirty

    def invalidate_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
