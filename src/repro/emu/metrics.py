"""Execution metrics collected by the functional emulator.

These counters back several of the paper's figures: dynamic instruction
counts (figure 13), violation breakdowns and replay overhead (figure 9),
and the extra-iterations bound discussed in section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SrvMetrics:
    """Per-run SRV activity counters."""

    regions_entered: int = 0
    region_passes: int = 0          # total executions of region bodies
    replays: int = 0                # passes beyond the first
    raw_violations: int = 0         # lanes flagged for replay (horizontal RAW)
    war_events: int = 0             # loads denied forwarding from later lanes
    waw_events: int = 0             # overlapping stores resolved by ordering
    replayed_lane_executions: int = 0
    first_pass_lane_executions: int = 0
    max_replays_in_region: int = 0
    lsu_fallbacks: int = 0          # regions run in sequential fallback mode
    lsu_entries_peak: int = 0
    tm_war_replays: int = 0         # WAR-forced lane replays in TM mode
    interrupts_taken: int = 0       # context switches inside regions

    @property
    def extra_iteration_fraction(self) -> float:
        """Replay overhead as a fraction of vector iterations (figure 9).

        A replay pass re-executes a subset of lanes; the paper reports the
        number of *additional vector iterations* this is equivalent to.
        """
        if self.regions_entered == 0:
            return 0.0
        return self.replays / self.regions_entered

    @property
    def extra_lane_fraction(self) -> float:
        if self.first_pass_lane_executions == 0:
            return 0.0
        return self.replayed_lane_executions / self.first_pass_lane_executions


@dataclass
class EmuMetrics:
    """Dynamic execution statistics."""

    dynamic_instructions: int = 0
    scalar_instructions: int = 0
    vector_instructions: int = 0
    vector_mem_instructions: int = 0
    gather_scatter_instructions: int = 0
    gather_load_instructions: int = 0
    load_instructions: int = 0
    scalar_mem_instructions: int = 0
    branch_instructions: int = 0
    loads_forwarded: int = 0
    srv: SrvMetrics = field(default_factory=SrvMetrics)

    def count(self, is_vector: bool, is_mem: bool, is_branch: bool,
              is_gather_scatter: bool = False, is_load: bool = False) -> None:
        self.dynamic_instructions += 1
        if is_load:
            self.load_instructions += 1
            if is_gather_scatter:
                self.gather_load_instructions += 1
        if is_vector:
            self.vector_instructions += 1
            if is_mem:
                self.vector_mem_instructions += 1
                if is_gather_scatter:
                    self.gather_scatter_instructions += 1
        else:
            self.scalar_instructions += 1
            if is_mem:
                self.scalar_mem_instructions += 1
        if is_branch:
            self.branch_instructions += 1
