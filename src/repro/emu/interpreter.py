"""Functional (instruction-accurate) emulator.

Executes :class:`~repro.isa.program.Program` objects against a
:class:`~repro.memory.image.MemoryImage`.  This is the correctness
reference for the whole reproduction: the cycle-approximate pipeline and
the SRV hardware model must always produce the same architectural results
as this interpreter, and SRV execution of a loop must match scalar
execution of the same loop.

SRV-regions are executed with full selective-replay semantics
(section III): stores are buffered speculatively, horizontal RAW
violations set lanes in the needs-replay set, and at ``srv_end`` only
those lanes are re-executed, bounded by ``lanes - 1`` rollbacks.

The emulator optionally emits a dynamic trace
(:class:`~repro.pipeline.trace.Tracer`) consumed by the cycle-approximate
pipeline — the same methodology as the paper's validated emulator feeding
its gem5 timing model.  It also provides the dynamic instruction counts
used for the FlexVec comparison (figure 13).
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.common.errors import (
    IsaError,
    ReplayBoundExceededError,
    SrvError,
)
from repro.emu import lanes as _lanes
from repro.emu.lanes import NumpyFallback, np as _np, scalar_i64
from repro.emu.metrics import EmuMetrics
from repro.emu.speculative import SpeculativeBuffer
from repro.emu.state import ArchState, make_arch_state
from repro.isa.instructions import (
    Branch,
    BranchCond,
    CmpOpcode,
    Halt,
    Instruction,
    Jump,
    Nop,
    PredCount,
    PredFirstN,
    PredLogic,
    PredRange,
    PredSetAll,
    ScalarALU,
    ScalarLoad,
    ScalarOpcode,
    ScalarStore,
    SrvEnd,
    SrvStart,
    VecALU,
    VecCmp,
    VecExtractLane,
    VecIndex,
    VecLoadBroadcast,
    VecLoadContig,
    VecLoadGather,
    VecReduce,
    VecSplat,
    VecStoreContig,
    VecStoreScatter,
)
from repro.isa.program import Program
from repro.isa.registers import Imm, ScalarReg, VecReg
from repro.memory.image import (
    MemoryImage,
    to_signed,
    to_signed_array,
    to_unsigned,
    to_unsigned_array,
)
from repro.observe import events as _obs
from repro.pipeline.decode import DecodeTable
from repro.pipeline.trace import (
    MemAccess,
    RegionEvent,
    StreamingTracer,
    TraceOp,
    Tracer,
)
from repro.verify import faults as _faults


def _div(a: int, b: int) -> int:
    if b == 0:
        return 0  # SVE-style: division by zero yields zero
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


#: ALU semantics by opcode *name* — both the scalar and vector opcode
#: enums share mnemonics, so the per-member dispatch table below is
#: populated lazily from this one.
_ALU_BY_NAME = {
    "ADD": lambda a, b, c: a + b,
    "SUB": lambda a, b, c: a - b,
    "MUL": lambda a, b, c: a * b,
    "DIV": lambda a, b, c: _div(a, b),
    "MOD": lambda a, b, c: a - b * _div(a, b) if b else 0,
    "AND": lambda a, b, c: a & b,
    "OR": lambda a, b, c: a | b,
    "XOR": lambda a, b, c: a ^ b,
    "SHL": lambda a, b, c: a << (b & 63),
    "SHR": lambda a, b, c: (a & (1 << 64) - 1) >> (b & 63),
    "MOV": lambda a, b, c: a,
    "MIN": lambda a, b, c: min(a, b),
    "MAX": lambda a, b, c: max(a, b),
    "ABS": lambda a, b, c: abs(a),
    "FMA": lambda a, b, c: a * b + c,
    "CMP_LT": lambda a, b, c: int(a < b),
    "CMP_LE": lambda a, b, c: int(a <= b),
    "CMP_EQ": lambda a, b, c: int(a == b),
    "CMP_NE": lambda a, b, c: int(a != b),
}

#: Per-enum-member dispatch, filled on first use (hashing an enum member
#: is cheaper than its ``.name`` string walk through an if-chain).
_ALU_DISPATCH: dict = {}


def _alu(op, a: int, b: int | None, c: int = 0) -> int:
    fn = _ALU_DISPATCH.get(op)
    if fn is None:
        fn = _ALU_BY_NAME.get(op.name)
        if fn is None:
            raise IsaError(f"unhandled ALU opcode {op}")
        _ALU_DISPATCH[op] = fn
    return fn(a, b, c)


_COMPARE = {
    CmpOpcode.LT: lambda a, b: a < b,
    CmpOpcode.LE: lambda a, b: a <= b,
    CmpOpcode.EQ: lambda a, b: a == b,
    CmpOpcode.NE: lambda a, b: a != b,
    CmpOpcode.GT: lambda a, b: a > b,
    CmpOpcode.GE: lambda a, b: a >= b,
}


def _compare(op: CmpOpcode, a: int, b: int) -> bool:
    return _COMPARE[op](a, b)


_BRANCH_TAKEN = {
    BranchCond.EQ: lambda a, b: a == b,
    BranchCond.NE: lambda a, b: a != b,
    BranchCond.LT: lambda a, b: a < b,
    BranchCond.LE: lambda a, b: a <= b,
    BranchCond.GT: lambda a, b: a > b,
    BranchCond.GE: lambda a, b: a >= b,
}


def _branch_taken(cond: BranchCond, a: int, b: int) -> bool:
    return _BRANCH_TAKEN[cond](a, b)


class Interpreter:
    """Instruction-accurate executor with functional SRV semantics."""

    def __init__(
        self,
        program: Program,
        memory: MemoryImage,
        config: MachineConfig = TABLE_I,
        max_steps: int = 50_000_000,
        tracer: Tracer | None = None,
        interrupt_at_step: int | None = None,
        lane_engine: str | None = None,
    ) -> None:
        program.validate()
        self.program = program
        self.memory = memory
        self.config = config
        self.lanes = config.vector_lanes
        #: lane engine: "python" executes vector ops as per-lane loops,
        #: "numpy" (the default when numpy is available) batches all lanes
        #: of an op through the kernels in repro.emu.lanes — bit-identical
        self.lane_engine = _lanes.resolve_engine(lane_engine)
        self.state = make_arch_state(self.lanes, self.lane_engine)
        if self.lane_engine == "numpy":
            self._handlers = _NP_HANDLERS
            self._iota = _np.arange(self.lanes, dtype=_np.int64)
            self._extra_cache: tuple | None = None
        else:
            self._handlers = _HANDLERS
        self.metrics = EmuMetrics()
        self.max_steps = max_steps
        self.tracer = tracer
        #: inject a context switch at this dynamic step (section III-D2
        #: semantics apply if it lands inside an SRV-region)
        self.interrupt_at_step = interrupt_at_step
        self._interrupt_pending = False
        self._steps = 0
        self._mem_events: list[MemAccess] = []
        self._branch_taken: bool | None = None
        #: per-program static decode table: op class, register sets,
        #: access kind, latency and metric flags computed once per static
        #: instruction (replaces the former per-purpose ``id()`` caches)
        self.decode = DecodeTable.for_program(program)

    # ------------------------------------------------------------------ run

    def run(self) -> EmuMetrics:
        """Execute until ``halt`` or falling off the end of the program."""
        state = self.state
        n = len(self.program.instructions)
        while not state.halted and 0 <= state.pc < n:
            self._step_outer()
        return self.metrics

    def _step_outer(self) -> None:
        """Execute one top-level instruction (a whole region for srv_start)."""
        state = self.state
        inst = self.program.instructions[state.pc]
        if isinstance(inst, SrvStart):
            self._exec_srv_region(state.pc, inst)
        else:
            state.pc = self._exec(inst, state.pc)
        self._bump()
        if self._interrupt_pending:
            # a context switch outside an SRV-region needs no special
            # handling — architectural state is already precise
            self._interrupt_pending = False

    def iter_trace(self):
        """Execute while *yielding* finalized :class:`TraceOp` records.

        The generator replaces ``run()`` for consumers that want the
        dynamic trace without materialising it: at most one top-level
        step's worth of ops (one SRV region in the worst case — bounded
        by the static program size times the replay bound, never by
        trace length) is buffered between yields.  ``self.metrics`` and
        the architectural state are complete once the generator is
        exhausted.
        """
        buffer: list[TraceOp] = []
        self.tracer = StreamingTracer(buffer.append)
        state = self.state
        n = len(self.program.instructions)
        while not state.halted and 0 <= state.pc < n:
            self._step_outer()
            if buffer:
                yield from buffer
                buffer.clear()
        self.tracer.close()
        yield from buffer

    def boundary_digest(self) -> tuple[int, int, int, int]:
        """Cheap architectural checkpoint for interval-boundary integrity.

        Returns ``(steps, pc, traced ops, scalar-register digest)`` — a
        pure function of execution position.  The sampling layer records
        it at each interval boundary of the fingerprint pass and compares
        against the re-simulation pass: the two passes emulate the same
        program from the same initial image, so any divergence means the
        sampled stream is not the stream that was fingerprinted.  Only
        meaningful within one process (the register digest uses ``hash``).
        """
        count = self.tracer.count if self.tracer is not None else 0
        return (
            self._steps,
            self.state.pc,
            count,
            hash(tuple(self.state.scalar)),
        )

    def _bump(self) -> None:
        self._steps += 1
        if self._steps == self.interrupt_at_step:
            self._interrupt_pending = True
        if self._steps > self.max_steps:
            raise SrvError(
                f"execution exceeded {self.max_steps} steps; "
                "probable infinite loop in workload program"
            )

    # ------------------------------------------------------- bookkeeping

    def _trace(self, pc: int, inst: Instruction, rec) -> None:
        if self.tracer is None:
            return
        self.tracer.record(
            pc,
            inst,
            rec,
            self._mem_events,
            self._branch_taken,
        )

    # ------------------------------------------------------------ memory

    def _read_mem(
        self,
        addr: int,
        size: int,
        lane: int,
        buffer: SpeculativeBuffer | None,
        region_offset: int,
    ) -> int:
        if _faults.ACTIVE is not None and buffer is not None:
            addr = _faults.ACTIVE.perturb_addr(addr, lane, is_store=False)
        if self.tracer is not None:
            self._mem_events.append(MemAccess(addr, size, False, lane))
        if buffer is not None:
            raw, forwarded = buffer.load(addr, size, lane, region_offset)
            if forwarded:
                self._forwarded = True
            return raw
        return self.memory.read_int(addr, size)

    def _write_mem(
        self,
        addr: int,
        size: int,
        value: int,
        lane: int,
        buffer: SpeculativeBuffer | None,
        region_offset: int,
    ) -> None:
        if _faults.ACTIVE is not None and buffer is not None:
            addr = _faults.ACTIVE.perturb_addr(addr, lane, is_store=True)
            value = _faults.ACTIVE.perturb_store_value(value, size, lane)
        if self.tracer is not None:
            self._mem_events.append(MemAccess(addr, size, True, lane))
        if buffer is not None:
            buffer.store(addr, size, value, lane, region_offset)
        else:
            self.memory.write_int(addr, value, size)

    # ------------------------------------------------------- single instr

    def _exec(
        self,
        inst: Instruction,
        pc: int,
        extra_mask: list[bool] | None = None,
        buffer: SpeculativeBuffer | None = None,
        region_offset: int = 0,
    ) -> int:
        """Execute one instruction; returns the next pc.

        ``extra_mask`` ANDs into every vector predicate (the SRV-replay
        register); ``buffer`` redirects memory traffic through the
        speculative buffer when inside an SRV-region.
        """
        rec = self.decode.record_for(inst)
        self.metrics.count(*rec.count_flags)
        if self.tracer is not None:
            # fresh list per op: the tracer stores it by reference
            self._mem_events = []
        self._branch_taken = None
        self._forwarded = False
        next_pc = self._dispatch(inst, pc, extra_mask, buffer, region_offset)
        if self._forwarded:
            self.metrics.loads_forwarded += 1
        self._trace(pc, inst, rec)
        return next_pc

    def _dispatch(
        self,
        inst: Instruction,
        pc: int,
        extra_mask: list[bool] | None,
        buffer: SpeculativeBuffer | None,
        region_offset: int,
    ) -> int:
        handlers = self._handlers
        handler = handlers.get(type(inst))
        if handler is None:
            # subclasses of known instruction types still dispatch; cache
            # the resolution so the scan happens once per type
            for klass, fn in list(handlers.items()):
                if isinstance(inst, klass):
                    handlers[type(inst)] = fn
                    handler = fn
                    break
            else:
                if isinstance(inst, SrvEnd):
                    raise SrvError("srv_end reached outside an SRV-region")
                raise IsaError(f"unhandled instruction {inst!r}")
        return handler(self, inst, pc, extra_mask, buffer, region_offset)

    # -- per-type handlers (wired into _HANDLERS after the class body) ----

    def _op_scalar_alu(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        a = state.read_operand(inst.src1)
        b = None if inst.src2 is None else state.read_operand(inst.src2)
        state.write_scalar(inst.dst, _alu(inst.op, a, b))
        return pc + 1

    def _op_scalar_load(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        addr = state.read_scalar(inst.base) + inst.offset
        raw = self._read_mem(addr, inst.elem, 0, buffer, region_offset)
        state.write_scalar(inst.dst, to_signed(raw, inst.elem))
        return pc + 1

    def _op_scalar_store(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        addr = state.read_scalar(inst.base) + inst.offset
        value = to_unsigned(state.read_scalar(inst.src), inst.elem)
        self._write_mem(addr, inst.elem, value, 0, buffer, region_offset)
        return pc + 1

    def _op_branch(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        a = state.read_scalar(inst.src1)
        b = state.read_operand(inst.src2)
        taken = _branch_taken(inst.cond, a, b)
        self._branch_taken = taken
        if taken:
            return self.program.label_target(inst.target)
        return pc + 1

    def _op_jump(self, inst, pc, extra_mask, buffer, region_offset):
        self._branch_taken = True
        return self.program.label_target(inst.target)

    def _op_halt(self, inst, pc, extra_mask, buffer, region_offset):
        self.state.halted = True
        return pc + 1

    def _op_nop(self, inst, pc, extra_mask, buffer, region_offset):
        return pc + 1

    # ---- vector --------------------------------------------------------

    def _op_vec_alu(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        elem = inst.elem
        out = [0] * self.lanes
        for lane in range(self.lanes):
            if not mask[lane]:
                continue
            a = state.read_lane(inst.src1, lane, elem)
            b = (
                self._vec_operand(inst.src2, lane, elem)
                if inst.src2 is not None
                else None
            )
            c = (
                state.read_lane(inst.src3, lane, elem)
                if inst.src3 is not None
                else 0
            )
            out[lane] = _alu(inst.op, a, b, c)
        state.write_vector_masked(inst.dst, out, mask, elem)
        return pc + 1

    def _op_vec_splat(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        value = state.read_operand(inst.src)
        state.write_vector_masked(
            inst.dst, [value] * self.lanes, mask, inst.elem
        )
        return pc + 1

    def _op_vec_index(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(None, extra_mask)  # VecIndex is unpredicated
        start = state.read_operand(inst.start)
        step = state.read_operand(inst.step)
        values = [start + lane * step for lane in range(self.lanes)]
        state.write_vector_masked(inst.dst, values, mask, inst.elem)
        return pc + 1

    def _op_vec_extract(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        if inst.lane >= self.lanes:
            raise IsaError(f"lane {inst.lane} out of range")
        state.write_scalar(
            inst.dst, state.read_lane(inst.src, inst.lane, inst.elem)
        )
        return pc + 1

    def _op_vec_reduce(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        values = [
            state.read_lane(inst.src, lane, inst.elem)
            for lane in range(self.lanes)
            if mask[lane]
        ]
        if inst.op == "add":
            result = sum(values)
        elif inst.op == "min":
            result = min(values) if values else 0
        elif inst.op == "max":
            result = max(values) if values else 0
        else:  # "or"
            result = 0
            for value in values:
                result |= to_unsigned(value, inst.elem)
        state.write_scalar(inst.dst, result)
        return pc + 1

    def _op_vec_cmp(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        out = [False] * self.lanes
        for lane in range(self.lanes):
            if not mask[lane]:
                continue
            a = state.read_lane(inst.src1, lane, inst.elem)
            b = self._vec_operand(inst.src2, lane, inst.elem)
            out[lane] = _compare(inst.op, a, b)
        state.write_pred(inst.dst, out)
        return pc + 1

    def _op_pred_set_all(self, inst, pc, extra_mask, buffer, region_offset):
        self.state.write_pred(inst.dst, [inst.value] * self.lanes)
        return pc + 1

    def _op_pred_count(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        state.write_scalar(inst.dst, sum(state.read_pred(inst.src)))
        return pc + 1

    def _op_pred_first_n(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        n = max(0, min(self.lanes, state.read_scalar(inst.count)))
        state.write_pred(inst.dst, [lane < n for lane in range(self.lanes)])
        return pc + 1

    def _op_pred_range(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        lo = state.read_scalar(inst.lo)
        hi = state.read_scalar(inst.hi)
        state.write_pred(
            inst.dst, [lo <= lane < hi for lane in range(self.lanes)]
        )
        return pc + 1

    def _op_pred_logic(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        a = state.read_pred(inst.src1)
        if inst.op == "not":
            out = [not bit for bit in a]
        else:
            b = state.read_pred(inst.src2)
            if inst.op == "and":
                out = [i and j for i, j in zip(a, b)]
            elif inst.op == "or":
                out = [i or j for i, j in zip(a, b)]
            elif inst.op == "xor":
                out = [i != j for i, j in zip(a, b)]
            else:  # andnot
                out = [i and not j for i, j in zip(a, b)]
        state.write_pred(inst.dst, out)
        return pc + 1

    # ---- vector memory --------------------------------------------------

    def _op_vec_load_contig(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        base = state.read_scalar(inst.base) + inst.offset
        elem = inst.elem
        broadcast = isinstance(inst, VecLoadBroadcast)
        out = [0] * self.lanes
        for lane in range(self.lanes):
            if not mask[lane]:
                continue
            addr = base if broadcast else base + lane * elem
            raw = self._read_mem(addr, elem, lane, buffer, region_offset)
            out[lane] = to_signed(raw, elem)
        state.write_vector_masked(inst.dst, out, mask, elem)
        return pc + 1

    def _op_vec_load_gather(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        base = state.read_scalar(inst.base)
        scale = inst.effective_scale
        out = [0] * self.lanes
        for lane in range(self.lanes):
            if not mask[lane]:
                continue
            index = state.read_lane(inst.index, lane, inst.index_elem)
            addr = base + index * scale
            raw = self._read_mem(addr, inst.elem, lane, buffer, region_offset)
            out[lane] = to_signed(raw, inst.elem)
        state.write_vector_masked(inst.dst, out, mask, inst.elem)
        return pc + 1

    def _op_vec_store_contig(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        base = state.read_scalar(inst.base) + inst.offset
        elem = inst.elem
        for lane in range(self.lanes):
            if not mask[lane]:
                continue
            value = state.read_lane(inst.src, lane, elem, signed=False)
            self._write_mem(
                base + lane * elem, elem, value, lane, buffer, region_offset,
            )
        return pc + 1

    def _op_vec_store_scatter(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask(inst.pred, extra_mask)
        base = state.read_scalar(inst.base)
        scale = inst.effective_scale
        for lane in range(self.lanes):
            if not mask[lane]:
                continue
            index = state.read_lane(inst.index, lane, inst.index_elem)
            value = state.read_lane(inst.src, lane, inst.elem, signed=False)
            self._write_mem(
                base + index * scale, inst.elem, value, lane,
                buffer, region_offset,
            )
        return pc + 1

    def _mask(self, pred, extra_mask: list[bool] | None) -> list[bool]:
        mask = self.state.effective_mask(pred)
        if extra_mask is not None:
            mask = [a and b for a, b in zip(mask, extra_mask)]
        return mask

    def _vec_operand(self, operand, lane: int, elem: int) -> int:
        if isinstance(operand, VecReg):
            return self.state.read_lane(operand, lane, elem)
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, ScalarReg):
            return self.state.read_scalar(operand)
        raise IsaError(f"bad vector operand {operand!r}")

    # ---- lane-batched (numpy) handlers ----------------------------------
    #
    # Installed via _NP_HANDLERS when lane_engine == "numpy".  Each batches
    # all lanes of an op through the kernels in repro.emu.lanes; results
    # are bit-identical to the per-lane handlers above (see the module
    # docstring of repro.emu.lanes for the congruence argument).  Anything
    # the kernels cannot represent — an immediate outside signed 64-bit,
    # a gather index that would overflow int64 address arithmetic — raises
    # NumpyFallback *before any state is mutated* and the op re-executes
    # through the scalar Python handler, which accepts NumpyArchState via
    # its ArchState-compatible API.
    #
    # Irreducibly sequential parts stay element-wise by design:
    # speculative-buffer traffic (SRV conflict witnessing must observe
    # loads/stores in lane order), traced runs (MemAccess event order is
    # part of the canonical trace), and scatter commits (overlapping
    # lanes resolve by lane order).

    def _extra_np(self, extra_mask: list[bool]):
        """Bool-array view of the SRV replay mask, cached by identity.

        The region executor allocates a fresh ``active`` list per pass and
        never mutates one in place, so object identity is a sound cache
        key; the tuple holds a strong reference to keep the id stable.
        """
        cached = self._extra_cache
        if cached is not None and cached[0] is extra_mask:
            return cached[1]
        arr = _np.asarray(extra_mask, dtype=_np.bool_)
        self._extra_cache = (extra_mask, arr)
        return arr

    def _mask_np(self, pred, extra_mask: list[bool] | None):
        mask = self.state.mask_np(pred)
        if extra_mask is not None:
            mask = mask & self._extra_np(extra_mask)
        return mask

    def _np_vec_operand(self, operand, elem: int):
        if isinstance(operand, VecReg):
            return self.state.vec_signed(operand, elem)
        if isinstance(operand, Imm):
            return scalar_i64(operand.value)
        if isinstance(operand, ScalarReg):
            return self.state.read_scalar(operand)
        raise IsaError(f"bad vector operand {operand!r}")

    def _np_vec_alu(self, inst, pc, extra_mask, buffer, region_offset):
        op = inst.op
        fn = _NP_ALU_DISPATCH.get(op)
        if fn is None:
            fn = _lanes.NP_ALU_BY_NAME.get(op.name)
            if fn is None:
                raise IsaError(f"unhandled ALU opcode {op}")
            _NP_ALU_DISPATCH[op] = fn
        state = self.state
        elem = inst.elem
        try:
            a = state.vec_signed(inst.src1, elem)
            b = (
                self._np_vec_operand(inst.src2, elem)
                if inst.src2 is not None
                else None
            )
            c = (
                state.vec_signed(inst.src3, elem)
                if inst.src3 is not None
                else 0
            )
        except NumpyFallback:
            return self._op_vec_alu(inst, pc, extra_mask, buffer, region_offset)
        mask = self._mask_np(inst.pred, extra_mask)
        state.write_masked_np(inst.dst, fn(a, b, c), mask, elem)
        return pc + 1

    def _np_vec_splat(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask_np(inst.pred, extra_mask)
        # wrap in exact Python arithmetic: splat immediates may exceed int64
        wrapped = to_unsigned(state.read_operand(inst.src), inst.elem)
        _np.copyto(state.vec_raw(inst.dst), _np.uint64(wrapped), where=mask)
        return pc + 1

    def _np_vec_index(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        try:
            start = scalar_i64(state.read_operand(inst.start))
            step = scalar_i64(state.read_operand(inst.step))
        except NumpyFallback:
            return self._op_vec_index(inst, pc, extra_mask, buffer, region_offset)
        mask = self._mask_np(None, extra_mask)  # VecIndex is unpredicated
        values = self._iota * step + start
        state.write_masked_np(inst.dst, values, mask, inst.elem)
        return pc + 1

    def _np_vec_reduce(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask_np(inst.pred, extra_mask)
        if inst.op == "or":
            raw = to_unsigned_array(state.vec_raw(inst.src), inst.elem)[mask]
            result = int(_np.bitwise_or.reduce(raw)) if raw.size else 0
        else:
            values = state.vec_signed(inst.src, inst.elem)[mask]
            if inst.op == "add":
                result = int(values.sum())  # int64 wrap ≡ Python sum mod 2**64
            elif inst.op == "min":
                result = int(values.min()) if values.size else 0
            else:  # "max"
                result = int(values.max()) if values.size else 0
        state.write_scalar(inst.dst, result)
        return pc + 1

    def _np_vec_cmp(self, inst, pc, extra_mask, buffer, region_offset):
        op = inst.op
        fn = _NP_COMPARE_DISPATCH.get(op)
        if fn is None:
            fn = _lanes.NP_COMPARE_BY_NAME[op.name]
            _NP_COMPARE_DISPATCH[op] = fn
        state = self.state
        try:
            a = state.vec_signed(inst.src1, inst.elem)
            b = self._np_vec_operand(inst.src2, inst.elem)
        except NumpyFallback:
            return self._op_vec_cmp(inst, pc, extra_mask, buffer, region_offset)
        mask = self._mask_np(inst.pred, extra_mask)
        state.pred[inst.dst.index] = fn(a, b) & mask
        return pc + 1

    def _np_pred_set_all(self, inst, pc, extra_mask, buffer, region_offset):
        self.state.pred[inst.dst.index].fill(inst.value)
        return pc + 1

    def _np_pred_count(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        state.write_scalar(inst.dst, int(state.pred[inst.src.index].sum()))
        return pc + 1

    def _np_pred_first_n(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        n = max(0, min(self.lanes, state.read_scalar(inst.count)))
        state.pred[inst.dst.index] = self._iota < n
        return pc + 1

    def _np_pred_range(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        lo = state.read_scalar(inst.lo)
        hi = state.read_scalar(inst.hi)
        iota = self._iota
        state.pred[inst.dst.index] = (lo <= iota) & (iota < hi)
        return pc + 1

    def _np_pred_logic(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        a = state.pred[inst.src1.index]
        if inst.op == "not":
            out = ~a
        else:
            b = state.pred[inst.src2.index]
            if inst.op == "and":
                out = a & b
            elif inst.op == "or":
                out = a | b
            elif inst.op == "xor":
                out = a ^ b
            else:  # andnot
                out = a & ~b
        state.pred[inst.dst.index] = out
        return pc + 1

    # ---- lane-batched vector memory -------------------------------------

    def _np_vec_load_contig(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask_np(inst.pred, extra_mask)
        base = state.read_scalar(inst.base) + inst.offset
        elem = inst.elem
        broadcast = isinstance(inst, VecLoadBroadcast)
        row = state.vec_raw(inst.dst)
        if buffer is None and self.tracer is None:
            # bulk path: untraced, non-speculative — touch order is
            # unobservable, so one batched read covers all lanes
            if not mask.any():
                return pc + 1
            if broadcast:
                raw = self.memory.read_int(base, elem)
                _np.copyto(row, _np.uint64(raw), where=mask)
                return pc + 1
            if bool(mask.all()):
                row[:] = self.memory.read_lanes(base, elem, self.lanes)
                return pc + 1
            if -(1 << 62) <= base <= (1 << 62):  # int64 address math safe
                idx = _np.flatnonzero(mask)
                addrs = (base + idx * elem).astype(_np.int64)
                row[idx] = self.memory.gather_lanes(addrs, elem)
                return pc + 1
        # sequential path: speculative-buffer touch order / trace events
        out = [0] * self.lanes
        mlist = mask.tolist()
        for lane in range(self.lanes):
            if not mlist[lane]:
                continue
            addr = base if broadcast else base + lane * elem
            out[lane] = self._read_mem(addr, elem, lane, buffer, region_offset)
        _np.copyto(row, _np.asarray(out, dtype=_np.uint64), where=mask)
        return pc + 1

    def _np_vec_load_gather(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask_np(inst.pred, extra_mask)
        base = state.read_scalar(inst.base)
        try:
            scale = scalar_i64(inst.effective_scale)
            idx_vals = state.vec_signed(inst.index, inst.index_elem)
            self._guard_addr_math(base, idx_vals, scale, inst.index_elem)
        except NumpyFallback:
            return self._op_vec_load_gather(
                inst, pc, extra_mask, buffer, region_offset
            )
        elem = inst.elem
        row = state.vec_raw(inst.dst)
        if buffer is None and self.tracer is None:
            if not mask.any():
                return pc + 1
            idx = _np.flatnonzero(mask)
            addrs = base + idx_vals[idx] * scale
            row[idx] = self.memory.gather_lanes(addrs, elem)
            return pc + 1
        addrs = (base + idx_vals * scale).tolist()
        out = [0] * self.lanes
        mlist = mask.tolist()
        for lane in range(self.lanes):
            if not mlist[lane]:
                continue
            out[lane] = self._read_mem(
                addrs[lane], elem, lane, buffer, region_offset
            )
        _np.copyto(row, _np.asarray(out, dtype=_np.uint64), where=mask)
        return pc + 1

    def _np_vec_store_contig(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask_np(inst.pred, extra_mask)
        base = state.read_scalar(inst.base) + inst.offset
        elem = inst.elem
        values = to_unsigned_array(state.vec_raw(inst.src), elem)
        if buffer is None and self.tracer is None and bool(mask.all()):
            self.memory.write_lanes(base, elem, values)
            return pc + 1
        vlist = values.tolist()
        mlist = mask.tolist()
        for lane in range(self.lanes):
            if mlist[lane]:
                self._write_mem(
                    base + lane * elem, elem, vlist[lane], lane,
                    buffer, region_offset,
                )
        return pc + 1

    def _np_vec_store_scatter(self, inst, pc, extra_mask, buffer, region_offset):
        state = self.state
        mask = self._mask_np(inst.pred, extra_mask)
        base = state.read_scalar(inst.base)
        try:
            scale = scalar_i64(inst.effective_scale)
            idx_vals = state.vec_signed(inst.index, inst.index_elem)
            self._guard_addr_math(base, idx_vals, scale, inst.index_elem)
        except NumpyFallback:
            return self._op_vec_store_scatter(
                inst, pc, extra_mask, buffer, region_offset
            )
        elem = inst.elem
        # overlapping scatter lanes must commit in lane order, so stores
        # stay element-wise; only the address/value computation is batched
        addrs = (base + idx_vals * scale).tolist()
        vlist = to_unsigned_array(state.vec_raw(inst.src), elem).tolist()
        mlist = mask.tolist()
        for lane in range(self.lanes):
            if mlist[lane]:
                self._write_mem(
                    addrs[lane], elem, vlist[lane], lane, buffer, region_offset
                )
        return pc + 1

    @staticmethod
    def _guard_addr_math(base: int, idx_vals, scale: int, index_elem: int) -> None:
        """Reject gather/scatter geometry that could wrap int64 addresses.

        With ``|base| <= 2**62``, ``|index| <= 2**40`` and
        ``|scale| <= 2**20`` the per-lane ``base + index * scale`` sums
        stay strictly inside int64.  Anything larger is far outside the
        memory image anyway — the Python handler re-executes it with
        arbitrary-precision addresses and raises the exact per-lane
        MemoryAccessError.
        """
        if not -(1 << 62) <= base <= (1 << 62):
            raise NumpyFallback(f"base address {base} outside batched range")
        if not -(1 << 20) <= scale <= (1 << 20):
            raise NumpyFallback(f"gather scale {scale} too large")
        if index_elem == 8:
            if int(idx_vals.min()) < -(1 << 40) or int(idx_vals.max()) > 1 << 40:
                raise NumpyFallback("gather index outside batched address range")

    # ------------------------------------------------------------- SRV region

    def _region_span(self, start_pc: int) -> tuple[int, int]:
        """Indices of the region body: ``(first_body_pc, srv_end_pc)``."""
        for idx in range(start_pc + 1, len(self.program.instructions)):
            inst = self.program.instructions[idx]
            if isinstance(inst, SrvEnd):
                return start_pc + 1, idx
            if isinstance(inst, SrvStart):
                raise SrvError(f"nested srv_start at {idx}")
        raise SrvError(f"srv_start at {start_pc} has no matching srv_end")

    def _region_lsu_demand(self, body: list[Instruction]) -> int:
        """LSU entries the region needs (section III-D7 sizing rule).

        Contiguous and broadcast accesses take one entry; gathers and
        scatters take one per lane.
        """
        demand = 0
        for inst in body:
            if not inst.is_mem:
                continue
            rec = self.decode.record_for(inst)
            demand += self.lanes if rec.is_gather_scatter else 1
        return demand

    def _exec_region_op(
        self, inst: Instruction, pc: int, extra_mask, buffer, region_offset
    ) -> None:
        self._exec(inst, pc, extra_mask, buffer, region_offset)
        self._bump()

    def _record_marker(self, pc: int, inst: Instruction) -> None:
        """Count and trace an ``srv_start`` / ``srv_end`` marker."""
        rec = self.decode.record_for(inst)
        self.metrics.count(*rec.count_flags)
        self._mem_events = []
        self._branch_taken = None
        self._trace(pc, inst, rec)

    def _op_index(self) -> int:
        """Dynamic op index for emu-domain events.

        Derived from the tracer's record count so it is identical under
        ``--trace-mode stream`` and ``list`` (both tracer kinds count
        every recorded op); falls back to the step counter when running
        untraced.
        """
        if self.tracer is not None:
            return self.tracer.count - 1
        return self._steps

    def _exec_srv_region(self, start_pc: int, start_inst: SrvStart) -> None:
        body_pc, end_pc = self._region_span(start_pc)
        body = self.program.instructions[body_pc:end_pc]
        srv = self.metrics.srv
        srv.regions_entered += 1
        if self.tracer is not None:
            self.tracer.region_start(start_inst.direction)
        self._record_marker(start_pc, start_inst)
        if self.tracer is not None:
            self.tracer.mark_region_event(RegionEvent.START)
        obs = _obs.ACTIVE
        region_no = srv.regions_entered - 1
        if obs is not None:
            obs.emit(
                _obs.EventKind.REGION_BEGIN, "emu", self._op_index(),
                self._steps, 0, start_pc, -1, (("region", region_no),),
            )

        demand = self._region_lsu_demand(body)
        srv.lsu_entries_peak = max(srv.lsu_entries_peak, demand)
        if (demand > self.config.lsu_entries
                or self.config.srv_force_sequential
                or start_inst.sequential):
            self._exec_region_sequential(body, body_pc, end_pc)
            return

        buffer = SpeculativeBuffer(
            self.memory, srv, tm_mode=self.config.srv_tm_mode
        )
        active = [True] * self.lanes
        rollbacks = 0
        resume_replay: set[int] = set()
        while True:
            srv.region_passes += 1
            if self.tracer is not None:
                self.tracer.region_pass(rollbacks, sum(active))
            if rollbacks == 0:
                srv.first_pass_lane_executions += sum(active)
            else:
                srv.replayed_lane_executions += sum(active)
            for offset, inst in enumerate(body):
                self._exec_region_op(
                    inst, body_pc + offset, active, buffer, offset
                )
                if self._interrupt_pending:
                    # Context switch inside the region (section III-D2):
                    # write back the non-speculative prefix, discard the
                    # speculative content, and resume with only the oldest
                    # active lane; all younger lanes re-execute the whole
                    # region after the next srv_end.
                    self._interrupt_pending = False
                    srv.interrupts_taken += 1
                    oldest = min(
                        lane for lane in range(self.lanes) if active[lane]
                    )
                    buffer.commit_prefix(oldest, offset)
                    active = [lane == oldest for lane in range(self.lanes)]
                    resume_replay = set(range(oldest + 1, self.lanes))
            self._record_marker(end_pc, self.program.instructions[end_pc])
            if obs is not None:
                obs.emit(
                    _obs.EventKind.REGION_PASS, "emu", self._op_index(),
                    self._steps, 0, end_pc, -1,
                    (
                        ("pass", rollbacks),
                        ("active", sum(active)),
                        ("region", region_no),
                    ),
                )
            if resume_replay:
                buffer.needs_replay |= resume_replay
                resume_replay = set()
            if _faults.ACTIVE is not None:
                _faults.ACTIVE.perturb_needs_replay(
                    buffer.needs_replay, self.lanes
                )
            if not buffer.needs_replay:
                if self.tracer is not None:
                    self.tracer.region_end(committed=True)
                if obs is not None:
                    obs.emit(
                        _obs.EventKind.REGION_END, "emu", self._op_index(),
                        self._steps, 0, end_pc, -1,
                        (
                            ("region", region_no),
                            ("passes", rollbacks + 1),
                            ("fallback", False),
                        ),
                    )
                break
            rollbacks += 1
            srv.replays += 1
            srv.max_replays_in_region = max(srv.max_replays_in_region, rollbacks)
            if self.config.srv_max_replays_check and rollbacks > self.lanes - 1:
                raise ReplayBoundExceededError(
                    f"region at pc {start_pc} rolled back {rollbacks} times "
                    f"(> lanes-1 = {self.lanes - 1})"
                )
            replay_set = frozenset(buffer.needs_replay)
            if _faults.ACTIVE is not None:
                replay_set = _faults.ACTIVE.perturb_replay_lanes(replay_set)
            if self.tracer is not None:
                self.tracer.region_end(committed=False, replay_lanes=replay_set)
            if obs is not None:
                for lane in sorted(replay_set):
                    obs.emit(
                        _obs.EventKind.LANE_REPLAY, "emu", self._op_index(),
                        self._steps, 0, end_pc, lane,
                        (("region", region_no),),
                    )
            active = [lane in replay_set for lane in range(self.lanes)]
            buffer.needs_replay.clear()
        buffer.commit()
        self.state.pc = end_pc + 1

    def _exec_region_sequential(
        self, body: list[Instruction], body_pc: int, end_pc: int
    ) -> None:
        """LSU-overflow fallback (section III-D7).

        The region is repeated once per lane with only that lane active;
        stores go straight to memory since single-lane execution is
        non-speculative (the single active lane is always the oldest).
        """
        srv = self.metrics.srv
        srv.lsu_fallbacks += 1
        if self.tracer is not None:
            # the region's START marker (the last recorded op) and every
            # op of the sequential passes are flagged as fallback
            self.tracer.region_fallback_begin()
        obs = _obs.ACTIVE
        region_no = srv.regions_entered - 1
        if obs is not None:
            obs.emit(
                _obs.EventKind.SEQ_FALLBACK, "emu", self._op_index(),
                self._steps, 0, body_pc - 1, -1,
                (("region", region_no),),
            )
        for lane in range(self.lanes):
            mask = [i == lane for i in range(self.lanes)]
            srv.region_passes += 1
            if self.tracer is not None:
                self.tracer.region_pass(lane, 1)
            for offset, inst in enumerate(body):
                self._exec_region_op(inst, body_pc + offset, mask, None, offset)
                # sequential fallback is non-speculative: a context switch
                # needs no SRV handling
                self._interrupt_pending = False
            self._record_marker(end_pc, self.program.instructions[end_pc])
            if obs is not None:
                obs.emit(
                    _obs.EventKind.REGION_PASS, "emu", self._op_index(),
                    self._steps, 0, end_pc, -1,
                    (
                        ("pass", lane),
                        ("active", 1),
                        ("region", region_no),
                        ("fallback", True),
                    ),
                )
            if self.tracer is not None:
                if lane == self.lanes - 1:
                    self.tracer.region_end(committed=True)
                    self.tracer.region_fallback()
                else:
                    self.tracer.region_end(
                        committed=False,
                        replay_lanes=frozenset(range(lane + 1, self.lanes)),
                    )
                    self.tracer.mark_region_event(RegionEvent.FALLBACK)
            if obs is not None and lane == self.lanes - 1:
                obs.emit(
                    _obs.EventKind.REGION_END, "emu", self._op_index(),
                    self._steps, 0, end_pc, -1,
                    (
                        ("region", region_no),
                        ("passes", self.lanes),
                        ("fallback", True),
                    ),
                )
        self.state.pc = end_pc + 1


#: Exact-type dispatch table for :meth:`Interpreter._dispatch`.  One dict
#: lookup replaces the former 20-step ``isinstance`` chain on the hottest
#: path of the emulator; subclasses resolve through the fallback scan in
#: ``_dispatch`` and are cached here.
_HANDLERS: dict[type, object] = {
    ScalarALU: Interpreter._op_scalar_alu,
    ScalarLoad: Interpreter._op_scalar_load,
    ScalarStore: Interpreter._op_scalar_store,
    Branch: Interpreter._op_branch,
    Jump: Interpreter._op_jump,
    Halt: Interpreter._op_halt,
    Nop: Interpreter._op_nop,
    VecALU: Interpreter._op_vec_alu,
    VecSplat: Interpreter._op_vec_splat,
    VecIndex: Interpreter._op_vec_index,
    VecExtractLane: Interpreter._op_vec_extract,
    VecReduce: Interpreter._op_vec_reduce,
    VecCmp: Interpreter._op_vec_cmp,
    PredSetAll: Interpreter._op_pred_set_all,
    PredCount: Interpreter._op_pred_count,
    PredFirstN: Interpreter._op_pred_first_n,
    PredRange: Interpreter._op_pred_range,
    PredLogic: Interpreter._op_pred_logic,
    VecLoadContig: Interpreter._op_vec_load_contig,
    VecLoadBroadcast: Interpreter._op_vec_load_contig,
    VecLoadGather: Interpreter._op_vec_load_gather,
    VecStoreContig: Interpreter._op_vec_store_contig,
    VecStoreScatter: Interpreter._op_vec_store_scatter,
}

#: Dispatch table for the lane-batched engine: scalar/control ops share
#: the Python handlers (they are not lane-parallel); vector and predicate
#: ops route through the numpy kernels.
_NP_HANDLERS: dict[type, object] = dict(_HANDLERS)
_NP_HANDLERS.update(
    {
        VecALU: Interpreter._np_vec_alu,
        VecSplat: Interpreter._np_vec_splat,
        VecIndex: Interpreter._np_vec_index,
        VecReduce: Interpreter._np_vec_reduce,
        VecCmp: Interpreter._np_vec_cmp,
        PredSetAll: Interpreter._np_pred_set_all,
        PredCount: Interpreter._np_pred_count,
        PredFirstN: Interpreter._np_pred_first_n,
        PredRange: Interpreter._np_pred_range,
        PredLogic: Interpreter._np_pred_logic,
        VecLoadContig: Interpreter._np_vec_load_contig,
        VecLoadBroadcast: Interpreter._np_vec_load_contig,
        VecLoadGather: Interpreter._np_vec_load_gather,
        VecStoreContig: Interpreter._np_vec_store_contig,
        VecStoreScatter: Interpreter._np_vec_store_scatter,
    }
)

#: per-enum-member caches for the numpy ALU / compare kernel lookup
_NP_ALU_DISPATCH: dict = {}
_NP_COMPARE_DISPATCH: dict = {}


def run_program(
    program: Program,
    memory: MemoryImage,
    config: MachineConfig = TABLE_I,
    max_steps: int = 50_000_000,
    tracer: Tracer | None = None,
    lane_engine: str | None = None,
) -> tuple[EmuMetrics, ArchState]:
    """Convenience wrapper: run ``program`` to completion."""
    interp = Interpreter(
        program, memory, config, max_steps, tracer, lane_engine=lane_engine
    )
    metrics = interp.run()
    return metrics, interp.state
