"""Speculative memory buffer implementing functional SRV semantics.

During an SRV-region, stores are buffered rather than written to memory
(section III-A: "stored data from speculative lanes cannot leave the core
until they become non-speculative").  This module implements, at functional
fidelity, the three dependence resolutions of section III-B3:

* **WAR** — a load never consumes data stored by a *sequentially later*
  access (a later lane); such bytes are read from memory (or from
  sequentially older buffered stores) instead.
* **WAW** — commit applies buffered stores in sequential order, so the
  latest version (in program order) of each byte reaches memory.
* **RAW** — a store that issues after a sequentially-later load has already
  executed flags that load's lane in the *SRV-needs-replay* set.

Sequential order of a region access is the lexicographic order of
``(lane, instruction_offset)``: the original scalar loop runs iteration
(=lane) 0 to completion before iteration 1 starts.

Buffered stores are keyed by ``(instruction_offset, lane)`` — the paper's
*SRV-id* — so replays update entries in place instead of allocating new
ones (section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.emu.metrics import SrvMetrics
from repro.memory.image import MemoryImage


@dataclass
class _StoreRecord:
    addr: int
    size: int
    data: bytes
    lane: int
    instr: int

    def overlaps(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.addr + self.size


@dataclass
class _LoadRecord:
    addr: int
    size: int
    lane: int
    instr: int
    tick: int


@dataclass
class SpeculativeBuffer:
    """Store/load tracking for one SRV-region instance.

    ``tm_mode`` emulates the section III-E transactional-memory variant:
    without per-line versioning, a WAR conflict (a load denied forwarding
    because a *later* lane already wrote the bytes) must also re-execute
    the writing lane, not just suppress forwarding.
    """

    memory: MemoryImage
    metrics: SrvMetrics
    tm_mode: bool = False
    _stores: dict[tuple[int, int], _StoreRecord] = field(default_factory=dict)
    _loads: dict[tuple[int, int], _LoadRecord] = field(default_factory=dict)
    needs_replay: set[int] = field(default_factory=set)
    _tick: int = 0
    # Conservative address bounds over all buffered stores / recorded loads.
    # They only ever grow within a region instance (replay passes replace
    # records in place, so a shrunk record leaves stale — safe — bounds);
    # an access wholly outside them provably overlaps nothing, which is the
    # overwhelmingly common case and skips the record scans entirely.
    _smin: int = 1 << 62
    _smax: int = -(1 << 62)
    _lmin: int = 1 << 62
    _lmax: int = -(1 << 62)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _precedes(pos_a: tuple[int, int], pos_b: tuple[int, int]) -> bool:
        """True if access at ``pos_a`` is sequentially older than ``pos_b``.

        Positions are ``(lane, instruction_offset)``; lane-major order.
        """
        return pos_a < pos_b

    def lsu_entries_used(self) -> int:
        return len(self._stores) + len(self._loads)

    # -- load ----------------------------------------------------------------

    def load(self, addr: int, size: int, lane: int, instr: int) -> tuple[int, bool]:
        """Read ``size`` bytes at ``addr`` for region access ``(instr, lane)``.

        Bytes come from the sequentially-latest older buffered store that
        wrote them, falling back to memory — the paper's partial
        store-to-load forwarding combined with WAR suppression.  Returns
        ``(value, any_byte_forwarded)``.
        """
        self._tick += 1
        self._loads[(instr, lane)] = _LoadRecord(addr, size, lane, instr, self._tick)
        end = addr + size
        if addr < self._lmin:
            self._lmin = addr
        if end > self._lmax:
            self._lmax = end
        if addr >= self._smax or end <= self._smin:
            # no buffered store can overlap: plain memory read
            return self.memory.read_int(addr, size), False

        my_pos = (lane, instr)
        war_seen = False
        overlapping: list[_StoreRecord] | None = None
        for record in self._stores.values():
            if record.addr >= end or addr >= record.addr + record.size:
                continue
            if (record.lane, record.instr) < my_pos:
                if overlapping is None:
                    overlapping = [record]
                else:
                    overlapping.append(record)
            else:
                # A sequentially *later* store already wrote these bytes:
                # WAR — forwarding suppressed, bytes must come from elsewhere.
                war_seen = True
                if self.tm_mode and record.lane > lane:
                    # TM without line versions: the writing (younger)
                    # lane's transaction aborts and re-executes.
                    self.needs_replay.add(record.lane)
                    self.metrics.tm_war_replays += 1
        if war_seen:
            self.metrics.war_events += 1
        if overlapping is None:
            return self.memory.read_int(addr, size), False

        # Per-byte: pick the store with the greatest sequential position that
        # is still older than this load.
        result = bytearray(self.memory.read_bytes(addr, size))
        forwarded = False
        best_pos: list[tuple[int, int] | None] = [None] * size
        for record in overlapping:
            rec_pos = (record.lane, record.instr)
            lo = max(addr, record.addr)
            hi = min(end, record.addr + record.size)
            for byte_addr in range(lo, hi):
                idx = byte_addr - addr
                if best_pos[idx] is None or best_pos[idx] < rec_pos:
                    best_pos[idx] = rec_pos
                    result[idx] = record.data[byte_addr - record.addr]
                    forwarded = True
        return int.from_bytes(result, "little"), forwarded

    # -- store ----------------------------------------------------------------

    def store(self, addr: int, size: int, value: int, lane: int, instr: int) -> None:
        self._tick += 1
        data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        end = addr + size

        # WAW: an overlapping buffered store in a *later* lane already
        # executed; ordered commit will keep the latest program-order data.
        if addr < self._smax and end > self._smin:
            for record in self._stores.values():
                if record.lane > lane and record.overlaps(addr, size):
                    self.metrics.waw_events += 1
                    break

        # Horizontal RAW: any load in a sequentially later position that
        # already executed (machine time) read stale bytes — flag its lane.
        if addr < self._lmax and end > self._lmin:
            tick = self._tick
            for load in self._loads.values():
                if load.lane <= lane:
                    continue
                if load.tick >= tick:
                    continue
                if load.addr < end and addr < load.addr + load.size:
                    self.needs_replay.add(load.lane)
                    self.metrics.raw_violations += 1

        self._stores[(instr, lane)] = _StoreRecord(addr, size, data, lane, instr)
        if addr < self._smin:
            self._smin = addr
        if end > self._smax:
            self._smax = end

    # -- commit -----------------------------------------------------------------

    def commit(self) -> None:
        """Write buffered stores to memory in sequential order.

        Sorting by ``(lane, instruction_offset)`` makes the program-order
        last writer win — the paper's selective memory update for WAW.
        """
        for record in sorted(
            self._stores.values(), key=lambda r: (r.lane, r.instr)
        ):
            self.memory.write_bytes(record.addr, record.data)

    def _reset_bounds(self) -> None:
        self._smin = self._lmin = 1 << 62
        self._smax = self._lmax = -(1 << 62)

    def discard(self) -> None:
        self._stores.clear()
        self._loads.clear()
        self.needs_replay.clear()
        self._reset_bounds()

    def commit_prefix(self, oldest_lane: int, offset: int) -> None:
        """Context-switch writeback (section III-D2).

        Writes back the non-speculative data — everything from lanes older
        than ``oldest_lane`` plus ``oldest_lane``'s own stores up to the
        current instruction ``offset`` — and discards all remaining
        speculative content.  Load records are dropped; younger lanes will
        re-execute the entire region on resumption.
        """
        keep_committed = [
            record
            for record in self._stores.values()
            if record.lane < oldest_lane
            or (record.lane == oldest_lane and record.instr <= offset)
        ]
        for record in sorted(keep_committed, key=lambda r: (r.lane, r.instr)):
            self.memory.write_bytes(record.addr, record.data)
        self._stores.clear()
        self._loads.clear()
        self.needs_replay.clear()
        self._reset_bounds()
