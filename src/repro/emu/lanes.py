"""Lane-batched numpy kernels for the functional emulator.

The paper's evaluation fixes the vector length at 16 lanes, and the
emulator's original hot path executed every vector op as a Python-level
``for lane in range(lanes)`` loop.  This module provides the numpy
("lane-batched") execution engine: per-opclass kernels that evaluate all
lanes of a vector ALU / compare / iota operation with a handful of numpy
array operations instead of hundreds of interpreter bytecodes.

Semantics contract — the kernels are **bit-identical** to the scalar
Python path:

* vector registers store the element-size-wrapped *unsigned* value of
  each lane (exactly what :class:`~repro.emu.state.ArchState` keeps
  after ``to_unsigned``), held in a ``uint64`` array;
* operands are sign-extended from the instruction's element size into
  ``int64`` lanes (:func:`sign_extend_array`), mirroring
  ``ArchState.read_lane(..., signed=True)``;
* results are wrapped back to the element size by vectorised masking
  (:func:`wrap_to_elem`), mirroring ``to_unsigned`` on write.

All arithmetic is congruent mod 2**64 to Python's arbitrary-precision
arithmetic, and every result is reduced mod 2**(8*elem) on write — so
wrap-around in ``int64``/``uint64`` intermediates never changes the
stored value.  Operations whose *value* (not residue) matters — DIV,
MOD, MIN/MAX, compares — are computed on the exact sign-extended
``int64`` operands, which always fit because elements are at most 8
bytes.  The one case numpy cannot represent, an immediate outside the
signed 64-bit range, raises :class:`NumpyFallback` and the interpreter
re-executes that single op through the scalar Python handler (the two
paths agree wherever both are defined).

The engine selection knob (``--lane-engine {python,numpy}``) lives here:
:func:`resolve_engine` maps ``None`` to the process default, which is
``numpy`` whenever numpy is importable.
"""

from __future__ import annotations

try:  # numpy ships with the test environment, but never hard-require it
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

ENGINES = ("python", "numpy")

DEFAULT_ENGINE = "numpy" if HAVE_NUMPY else "python"


class NumpyFallback(Exception):
    """An operand is outside what the numpy kernels can represent.

    Raised by operand conversion (e.g. an immediate beyond signed 64-bit);
    the interpreter catches it and re-executes the op via the scalar
    Python handler, which is defined for arbitrary-precision values.
    """


def resolve_engine(engine: str | None) -> str:
    """Validate and default an engine name.

    ``None`` resolves to :data:`DEFAULT_ENGINE`.  Requesting ``numpy``
    without numpy installed is an error rather than a silent downgrade —
    a benchmark run must never quietly measure the wrong engine.
    """
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown lane engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "numpy" and not HAVE_NUMPY:
        raise ValueError("lane engine 'numpy' requested but numpy is not installed")
    return engine


_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def scalar_i64(value: int) -> int:
    """Guard a Python scalar for use inside ``int64`` kernels."""
    if _I64_MIN <= value <= _I64_MAX:
        return value
    raise NumpyFallback(f"operand {value} outside signed 64-bit range")


if HAVE_NUMPY:
    U64 = np.uint64
    I64 = np.int64

    # The element-size wrap / sign-extension primitives live next to their
    # scalar counterparts in memory/image.py; re-export under engine names.
    from repro.memory.image import to_signed_array as sign_extend_array
    from repro.memory.image import to_unsigned_array as wrap_to_elem

    # -- ALU kernels --------------------------------------------------------
    #
    # Each kernel receives sign-extended int64 arrays ``a`` (and ``c`` for
    # FMA) and ``b`` as either an int64 array or a guarded Python int, and
    # returns an int64/uint64/bool array whose elem-wrapped value equals
    # the scalar path's ``to_unsigned(op(a, b, c), elem)``.

    def _shift_amount(b):
        s = b & 63
        if isinstance(s, int):
            return np.uint64(s)
        return s.view(U64)

    def _as_i64_array(b, like: "np.ndarray") -> "np.ndarray":
        if isinstance(b, np.ndarray):
            return b
        return np.full_like(like, b)

    def _k_div(a, b, c):
        # Exact truncating division with div-by-zero → 0 (SVE-style),
        # computed in uint64 so |int64 min| does not overflow.
        b = _as_i64_array(b, a)
        b_zero = b == 0
        ua = np.abs(a).view(U64)
        ub = np.abs(b).view(U64)
        safe = np.where(b_zero, np.uint64(1), ub)
        q = ua // safe
        negative = (a < 0) != (b < 0)
        q = np.where(negative, np.uint64(0) - q, q)
        return np.where(b_zero, np.uint64(0), q)

    def _k_mod(a, b, c):
        # a - b * div(a, b); congruent mod 2**64 to the Python result.
        b = _as_i64_array(b, a)
        q = _k_div(a, b, c)
        res = a.view(U64) - b.view(U64) * q
        return np.where(b == 0, np.uint64(0), res)

    #: numpy ALU semantics by opcode *name* (mirrors the interpreter's
    #: scalar ``_ALU_BY_NAME`` table, which both opcode enums share).
    NP_ALU_BY_NAME = {
        "ADD": lambda a, b, c: a + b,
        "SUB": lambda a, b, c: a - b,
        "MUL": lambda a, b, c: a * b,
        "DIV": _k_div,
        "MOD": _k_mod,
        "AND": lambda a, b, c: a & b,
        "OR": lambda a, b, c: a | b,
        "XOR": lambda a, b, c: a ^ b,
        "SHL": lambda a, b, c: a.view(U64) << _shift_amount(b),
        "SHR": lambda a, b, c: a.view(U64) >> _shift_amount(b),
        "MOV": lambda a, b, c: a,
        "MIN": lambda a, b, c: np.minimum(a, b),
        "MAX": lambda a, b, c: np.maximum(a, b),
        "ABS": lambda a, b, c: np.abs(a),
        "FMA": lambda a, b, c: a * b + c,
        "CMP_LT": lambda a, b, c: a < b,
        "CMP_LE": lambda a, b, c: a <= b,
        "CMP_EQ": lambda a, b, c: a == b,
        "CMP_NE": lambda a, b, c: a != b,
    }

    #: numpy compare semantics by :class:`CmpOpcode` name
    NP_COMPARE_BY_NAME = {
        "LT": lambda a, b: a < b,
        "LE": lambda a, b: a <= b,
        "EQ": lambda a, b: a == b,
        "NE": lambda a, b: a != b,
        "GT": lambda a, b: a > b,
        "GE": lambda a, b: a >= b,
    }
else:  # pragma: no cover - exercised only on minimal installs
    NP_ALU_BY_NAME = {}
    NP_COMPARE_BY_NAME = {}
