"""Functional emulator with SRV selective-replay semantics."""

from repro.emu.interpreter import Interpreter, run_program
from repro.emu.metrics import EmuMetrics, SrvMetrics
from repro.emu.speculative import SpeculativeBuffer
from repro.emu.state import ArchState

__all__ = [
    "Interpreter",
    "run_program",
    "EmuMetrics",
    "SrvMetrics",
    "SpeculativeBuffer",
    "ArchState",
]
