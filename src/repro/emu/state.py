"""Architectural state for the functional emulator.

Vector registers are modelled as 16 integer lanes (element-size agnostic,
matching the paper's evaluation where the vector length is fixed at 16
elements regardless of element size); values are wrapped to the element
size of each writing instruction.  Predicate registers are per-lane
booleans.  Scalar registers are 64-bit two's complement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.registers import (
    NUM_PRED_REGS,
    NUM_SCALAR_REGS,
    NUM_VECTOR_REGS,
    Imm,
    PredReg,
    ScalarOperand,
    ScalarReg,
    VecReg,
)
from repro.memory.image import (
    to_signed,
    to_signed_array,
    to_unsigned,
    to_unsigned_array,
)

SCALAR_BYTES = 8

try:  # numpy backs the lane-batched engine; the scalar engine never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None  # type: ignore[assignment]


@dataclass
class ArchState:
    lanes: int = 16
    pc: int = 0
    halted: bool = False
    scalar: list[int] = field(default_factory=list)
    vector: list[list[int]] = field(default_factory=list)
    pred: list[list[bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.scalar:
            self.scalar = [0] * NUM_SCALAR_REGS
        if not self.vector:
            self.vector = [[0] * self.lanes for _ in range(NUM_VECTOR_REGS)]
        if not self.pred:
            self.pred = [[False] * self.lanes for _ in range(NUM_PRED_REGS)]

    # -- scalar ------------------------------------------------------------

    def read_scalar(self, reg: ScalarReg) -> int:
        return to_signed(self.scalar[reg.index], SCALAR_BYTES)

    def write_scalar(self, reg: ScalarReg, value: int) -> None:
        self.scalar[reg.index] = to_unsigned(value, SCALAR_BYTES)

    def read_operand(self, operand: ScalarOperand) -> int:
        if isinstance(operand, Imm):
            return operand.value
        return self.read_scalar(operand)

    # -- vector ------------------------------------------------------------

    def read_vector(self, reg: VecReg) -> list[int]:
        return list(self.vector[reg.index])

    def read_lane(self, reg: VecReg, lane: int, elem: int, signed: bool = True) -> int:
        raw = to_unsigned(self.vector[reg.index][lane], elem)
        return to_signed(raw, elem) if signed else raw

    def write_lane(self, reg: VecReg, lane: int, value: int, elem: int) -> None:
        self.vector[reg.index][lane] = to_unsigned(value, elem)

    def write_vector_masked(
        self, reg: VecReg, values: list[int], mask: list[bool], elem: int
    ) -> None:
        """Merging write: inactive lanes keep their previous contents.

        This is the paper's merging predication (section III-D5) — on
        re-execution the old destination value is read as an extra source
        and combined with the new lanes.
        """
        dest = self.vector[reg.index]
        for lane, active in enumerate(mask):
            if active:
                dest[lane] = to_unsigned(values[lane], elem)

    # -- predicates -----------------------------------------------------------

    def read_pred(self, reg: PredReg) -> list[bool]:
        return list(self.pred[reg.index])

    def write_pred(self, reg: PredReg, mask: list[bool]) -> None:
        if len(mask) != self.lanes:
            raise ValueError(f"predicate width {len(mask)} != lanes {self.lanes}")
        self.pred[reg.index] = list(mask)

    def effective_mask(self, pred: PredReg | None) -> list[bool]:
        if pred is None:
            return [True] * self.lanes
        return self.read_pred(pred)

    # -- snapshots ------------------------------------------------------------

    def registers_snapshot(self) -> tuple:
        return (
            tuple(self.scalar),
            tuple(tuple(lane_vals) for lane_vals in self.vector),
            tuple(tuple(mask) for mask in self.pred),
        )


class NumpyArchState:
    """Architectural state backed by numpy arrays for the lane-batched engine.

    Register *contents* are identical to :class:`ArchState`: each vector
    lane stores the element-size-wrapped unsigned value of the writing
    instruction (held in a ``uint64`` row per register), and predicates
    are per-lane booleans.  Scalar registers stay Python ints — scalar
    ops are not lane-parallel and Python arithmetic is faster there.

    The full :class:`ArchState` API is provided (so per-lane handlers,
    the SRV sequential fallback, and tracer paths run unmodified), plus
    numpy-native accessors (:meth:`vec_signed`, :meth:`vec_raw`,
    :meth:`write_masked_np`, :meth:`mask_np`) used by the batched
    kernels in :mod:`repro.emu.lanes`.
    """

    __slots__ = ("lanes", "pc", "halted", "scalar", "vector", "pred", "_ones")

    def __init__(self, lanes: int = 16) -> None:
        if _np is None:  # pragma: no cover - guarded by lanes.resolve_engine
            raise RuntimeError("NumpyArchState requires numpy")
        self.lanes = lanes
        self.pc = 0
        self.halted = False
        self.scalar = [0] * NUM_SCALAR_REGS
        self.vector = _np.zeros((NUM_VECTOR_REGS, lanes), dtype=_np.uint64)
        self.pred = _np.zeros((NUM_PRED_REGS, lanes), dtype=_np.bool_)
        self._ones = _np.ones(lanes, dtype=_np.bool_)

    # -- scalar (identical to ArchState) ------------------------------------

    def read_scalar(self, reg: ScalarReg) -> int:
        return to_signed(self.scalar[reg.index], SCALAR_BYTES)

    def write_scalar(self, reg: ScalarReg, value: int) -> None:
        self.scalar[reg.index] = to_unsigned(value, SCALAR_BYTES)

    def read_operand(self, operand: ScalarOperand) -> int:
        if isinstance(operand, Imm):
            return operand.value
        return self.read_scalar(operand)

    # -- vector: ArchState-compatible API ------------------------------------

    def read_vector(self, reg: VecReg) -> list[int]:
        return self.vector[reg.index].tolist()

    def read_lane(self, reg: VecReg, lane: int, elem: int, signed: bool = True) -> int:
        raw = to_unsigned(int(self.vector[reg.index][lane]), elem)
        return to_signed(raw, elem) if signed else raw

    def write_lane(self, reg: VecReg, lane: int, value: int, elem: int) -> None:
        self.vector[reg.index][lane] = to_unsigned(value, elem)

    def write_vector_masked(
        self, reg: VecReg, values: list[int], mask: list[bool], elem: int
    ) -> None:
        """Merging write (III-D5), Python-list flavour for compat callers."""
        dest = self.vector[reg.index]
        for lane, active in enumerate(mask):
            if active:
                dest[lane] = to_unsigned(values[lane], elem)

    # -- vector: numpy-native API --------------------------------------------

    def vec_raw(self, reg: VecReg) -> "_np.ndarray":
        """The stored uint64 lanes (a view — do not mutate)."""
        return self.vector[reg.index]

    def vec_signed(self, reg: VecReg, elem: int) -> "_np.ndarray":
        """Sign-extended int64 lanes at the given element size."""
        return to_signed_array(self.vector[reg.index], elem)

    def write_masked_np(
        self, reg: VecReg, values: "_np.ndarray", mask: "_np.ndarray", elem: int
    ) -> None:
        """Merging write (III-D5): active lanes take the wrapped values."""
        _np.copyto(self.vector[reg.index], to_unsigned_array(values, elem), where=mask)

    def mask_np(self, pred: PredReg | None) -> "_np.ndarray":
        """Effective mask as a bool array (a view / shared — do not mutate)."""
        if pred is None:
            return self._ones
        return self.pred[pred.index]

    # -- predicates -----------------------------------------------------------

    def read_pred(self, reg: PredReg) -> list[bool]:
        return self.pred[reg.index].tolist()

    def write_pred(self, reg: PredReg, mask) -> None:
        if len(mask) != self.lanes:
            raise ValueError(f"predicate width {len(mask)} != lanes {self.lanes}")
        self.pred[reg.index] = mask

    def effective_mask(self, pred: PredReg | None) -> list[bool]:
        if pred is None:
            return [True] * self.lanes
        return self.read_pred(pred)

    # -- snapshots ------------------------------------------------------------

    def registers_snapshot(self) -> tuple:
        return (
            tuple(self.scalar),
            tuple(tuple(row.tolist()) for row in self.vector),
            tuple(tuple(row.tolist()) for row in self.pred),
        )


def make_arch_state(lanes: int, engine: str):
    """Build the architectural state for a resolved lane engine."""
    if engine == "numpy":
        return NumpyArchState(lanes)
    return ArchState(lanes)
