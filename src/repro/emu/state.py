"""Architectural state for the functional emulator.

Vector registers are modelled as 16 integer lanes (element-size agnostic,
matching the paper's evaluation where the vector length is fixed at 16
elements regardless of element size); values are wrapped to the element
size of each writing instruction.  Predicate registers are per-lane
booleans.  Scalar registers are 64-bit two's complement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.registers import (
    NUM_PRED_REGS,
    NUM_SCALAR_REGS,
    NUM_VECTOR_REGS,
    Imm,
    PredReg,
    ScalarOperand,
    ScalarReg,
    VecReg,
)
from repro.memory.image import to_signed, to_unsigned

SCALAR_BYTES = 8


@dataclass
class ArchState:
    lanes: int = 16
    pc: int = 0
    halted: bool = False
    scalar: list[int] = field(default_factory=list)
    vector: list[list[int]] = field(default_factory=list)
    pred: list[list[bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.scalar:
            self.scalar = [0] * NUM_SCALAR_REGS
        if not self.vector:
            self.vector = [[0] * self.lanes for _ in range(NUM_VECTOR_REGS)]
        if not self.pred:
            self.pred = [[False] * self.lanes for _ in range(NUM_PRED_REGS)]

    # -- scalar ------------------------------------------------------------

    def read_scalar(self, reg: ScalarReg) -> int:
        return to_signed(self.scalar[reg.index], SCALAR_BYTES)

    def write_scalar(self, reg: ScalarReg, value: int) -> None:
        self.scalar[reg.index] = to_unsigned(value, SCALAR_BYTES)

    def read_operand(self, operand: ScalarOperand) -> int:
        if isinstance(operand, Imm):
            return operand.value
        return self.read_scalar(operand)

    # -- vector ------------------------------------------------------------

    def read_vector(self, reg: VecReg) -> list[int]:
        return list(self.vector[reg.index])

    def read_lane(self, reg: VecReg, lane: int, elem: int, signed: bool = True) -> int:
        raw = to_unsigned(self.vector[reg.index][lane], elem)
        return to_signed(raw, elem) if signed else raw

    def write_lane(self, reg: VecReg, lane: int, value: int, elem: int) -> None:
        self.vector[reg.index][lane] = to_unsigned(value, elem)

    def write_vector_masked(
        self, reg: VecReg, values: list[int], mask: list[bool], elem: int
    ) -> None:
        """Merging write: inactive lanes keep their previous contents.

        This is the paper's merging predication (section III-D5) — on
        re-execution the old destination value is read as an extra source
        and combined with the new lanes.
        """
        dest = self.vector[reg.index]
        for lane, active in enumerate(mask):
            if active:
                dest[lane] = to_unsigned(values[lane], elem)

    # -- predicates -----------------------------------------------------------

    def read_pred(self, reg: PredReg) -> list[bool]:
        return list(self.pred[reg.index])

    def write_pred(self, reg: PredReg, mask: list[bool]) -> None:
        if len(mask) != self.lanes:
            raise ValueError(f"predicate width {len(mask)} != lanes {self.lanes}")
        self.pred[reg.index] = list(mask)

    def effective_mask(self, pred: PredReg | None) -> list[bool]:
        if pred is None:
            return [True] * self.lanes
        return self.read_pred(pred)

    # -- snapshots ------------------------------------------------------------

    def registers_snapshot(self) -> tuple:
        return (
            tuple(self.scalar),
            tuple(tuple(lane_vals) for lane_vals in self.vector),
            tuple(tuple(mask) for mask in self.pred),
        )
