"""Code generation: loop IR → ISA programs.

Four strategies, matching the paper's compiled binaries (section V):

* ``SCALAR`` — the -O3 baseline without vectorisation.
* ``SVE`` — state-of-the-art auto-vectorisation: loops whose dependences
  are provably safe are vectorised with predicated SVE-style code; loops
  with statically-unknown (or provably short-distance) dependences **fall
  back to scalar code**, exactly like the paper's SVE binaries, for which
  SRV-vectorisable loops remain scalar.
* ``SRV`` — bypasses the memory-safety check (the paper's OpenMP-hint
  mechanism) and vectorises regardless, bracketing the vector body in
  ``srv_start``/``srv_end``.  Induction-variable updates and address
  computation stay outside the region (section III-A).
* ``FLEXVEC`` — implemented in :mod:`repro.compiler.flexvec`.

The vector code generator unifies main loop and epilogue with a
``whilelt``-style predicate (``pfirstn``), so every vector operation is
guarded by the remaining-iterations mask.
"""

from __future__ import annotations

import enum

from repro.common.errors import CompilerError
from repro.compiler.analysis import DepClass, loop_class
from repro.compiler.ir import (
    Affine,
    BinOp,
    Const,
    Expr,
    IndexExpr,
    Indirect,
    Loop,
    LoopIndex,
    Param,
    Read,
    Reduce,
    Select,
    Store,
)
from repro.isa import ProgramBuilder, SrvDirection, imm, p, v, x
from repro.isa.instructions import CmpOpcode, VecOpcode
from repro.isa.registers import PredReg, ScalarReg, VecReg
from repro.memory.image import MemoryImage

_CMP = {
    "<": CmpOpcode.LT,
    "<=": CmpOpcode.LE,
    "==": CmpOpcode.EQ,
    "!=": CmpOpcode.NE,
    ">": CmpOpcode.GT,
    ">=": CmpOpcode.GE,
}

_VEC_BINOP = {
    "+": "v_add",
    "-": "v_sub",
    "*": "v_mul",
    "/": "v_div",
    "&": "v_and",
    "|": "v_or",
    "^": "v_xor",
    "<<": "v_shl",
    ">>": "v_shr",
    "min": "v_min",
    "max": "v_max",
}

_SCALAR_BINOP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and_",
    "|": "or_",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
    "min": "min_",
    "max": "max_",
}

# register conventions
REG_I = x(1)
REG_N = x(2)
REG_REM = x(3)
FIRST_BASE_REG = 4
FIRST_TEMP_REG = 16
PRED_LOOP = p(1)
FIRST_TEMP_PRED = 2


class Strategy(enum.Enum):
    SCALAR = "scalar"
    SVE = "sve"
    SRV = "srv"
    #: SRV with analysis-guided region placement: proven-safe statement
    #: spans are emitted without ``srv_start``/``srv_end`` and
    #: proven-dense regions carry the sequential hint (repro.analyze)
    SRV_GUIDED = "srv_guided"
    FLEXVEC = "flexvec"


class _RegPool:
    """Stack-disciplined temp allocator, reset per statement.

    ``release`` frees the most recent allocation(s); expression lowering
    pops operand temps as soon as they are consumed, bounding pressure by
    tree depth rather than tree size.
    """

    def __init__(self, first: int, limit: int, make, what: str) -> None:
        self._first = first
        self._next = first
        self._limit = limit
        self._make = make
        self._what = what

    def take(self):
        if self._next >= self._limit:
            raise CompilerError(f"out of {self._what} registers")
        reg = self._make(self._next)
        self._next += 1
        return reg

    def release(self, reg) -> None:
        """Pop ``reg`` if it is the top of the stack; no-op otherwise."""
        if self.owns(reg) and reg.index == self._next - 1:
            self._next -= 1

    def owns(self, reg) -> bool:
        return self._first <= getattr(reg, "index", -1) < self._limit

    def reset(self) -> None:
        self._next = self._first


class LoopCodeGenerator:
    """Generates one strategy's program for one loop."""

    def __init__(
        self,
        loop: Loop,
        memory: MemoryImage,
        n: int,
        params: dict[str, int] | None = None,
        vector_length: int = 16,
    ) -> None:
        self.loop = loop
        self.memory = memory
        self.n = n
        self.params = params or {}
        self.vl = vector_length
        self.bases: dict[str, ScalarReg] = {}
        for k, name in enumerate(sorted(loop.arrays)):
            if FIRST_BASE_REG + k >= FIRST_TEMP_REG:
                raise CompilerError("too many arrays for base-register file")
            self.bases[name] = x(FIRST_BASE_REG + k)
        self._elem_shift = {
            name: (size.bit_length() - 1) for name, size in loop.arrays.items()
        }

    # -- shared scaffolding ------------------------------------------------

    def _prologue(self, b: ProgramBuilder) -> None:
        for name, reg in self.bases.items():
            b.mov(reg, imm(self.memory.allocation(name).base))
        b.mov(REG_N, imm(self.n))
        if self.loop.step == 1:
            b.mov(REG_I, imm(0))
        else:
            b.mov(REG_I, imm(self.n - 1))

    def elem(self, array: str) -> int:
        return self.loop.arrays[array]

    # ======================================================================
    # scalar code generation
    # ======================================================================

    def scalar_program(self) -> "Program":
        b = ProgramBuilder(f"{self.loop.name}:scalar")
        temps = _RegPool(FIRST_TEMP_REG, 32, x, "scalar temp")
        self._prologue(b)
        b.label("top")
        for stmt in self.loop.body:
            temps.reset()
            value = self._scalar_expr(b, stmt.value, temps)
            if isinstance(stmt, Reduce):
                elem = self.elem(stmt.array)
                acc = temps.take()
                b.load(acc, self.bases[stmt.array], stmt.offset * elem, elem=elem)
                op = {"+": "add", "min": "min_", "max": "max_"}[stmt.op]
                getattr(b, op)(acc, acc, value)
                b.store(acc, self.bases[stmt.array], stmt.offset * elem, elem=elem)
                continue
            addr = self._scalar_addr(b, stmt.array, stmt.index, temps)
            b.store(value, addr, 0, elem=self.elem(stmt.array))
        if self.loop.step == 1:
            b.add(REG_I, REG_I, imm(1))
            b.blt(REG_I, REG_N, "top")
        else:
            b.sub(REG_I, REG_I, imm(1))
            b.bge(REG_I, imm(0), "top")
        b.halt()
        return b.build()

    def _scalar_index(self, b, index: IndexExpr, temps) -> ScalarReg:
        if isinstance(index, Affine):
            reg = temps.take()
            if index.scale == 1:
                b.add(reg, REG_I, imm(index.offset))
            else:
                b.mul(reg, REG_I, imm(index.scale))
                if index.offset:
                    b.add(reg, reg, imm(index.offset))
            return reg
        # indirect: reuse the inner-index register for address and result
        reg = self._scalar_index(b, index.inner, temps)
        shift = self._elem_shift[index.array]
        b.shl(reg, reg, imm(shift))
        b.add(reg, reg, self.bases[index.array])
        b.load(reg, reg, 0, elem=self.elem(index.array))
        return reg

    def _scalar_addr(self, b, array: str, index: IndexExpr, temps) -> ScalarReg:
        # the index register is reused as the address register
        reg = self._scalar_index(b, index, temps)
        b.shl(reg, reg, imm(self._elem_shift[array]))
        b.add(reg, reg, self.bases[array])
        return reg

    def _scalar_expr(self, b, expr: Expr, temps) -> ScalarReg:
        if isinstance(expr, Const):
            reg = temps.take()
            b.mov(reg, imm(expr.value))
            return reg
        if isinstance(expr, LoopIndex):
            return REG_I
        if isinstance(expr, Param):
            reg = temps.take()
            b.mov(reg, imm(self.params[expr.name]))
            return reg
        if isinstance(expr, Read):
            # the address register becomes the value register
            reg = self._scalar_addr(b, expr.array, expr.index, temps)
            if not temps.owns(reg):
                reg = temps.take()
            b.load(reg, reg, 0, elem=self.elem(expr.array))
            return reg
        if isinstance(expr, BinOp):
            lhs = self._scalar_expr(b, expr.lhs, temps)
            rhs = self._scalar_expr(b, expr.rhs, temps)
            dst = lhs if temps.owns(lhs) else temps.take()
            getattr(b, _SCALAR_BINOP[expr.op])(dst, lhs, rhs)
            temps.release(rhs)
            return dst
        if isinstance(expr, Select):
            a = self._scalar_expr(b, expr.cmp_lhs, temps)
            c = self._scalar_expr(b, expr.cmp_rhs, temps)
            then_v = self._scalar_expr(b, expr.then_value, temps)
            else_v = self._scalar_expr(b, expr.else_value, temps)
            # branchless select: result = else + cond * (then - else)
            cond = temps.take()
            from repro.isa.instructions import ScalarALU, ScalarOpcode

            swap = expr.cmp in (">", ">=")
            lhs, rhs = (c, a) if swap else (a, c)
            op = {
                "<": ScalarOpcode.CMP_LT,
                "<=": ScalarOpcode.CMP_LE,
                "==": ScalarOpcode.CMP_EQ,
                "!=": ScalarOpcode.CMP_NE,
                ">": ScalarOpcode.CMP_LT,
                ">=": ScalarOpcode.CMP_LE,
            }[expr.cmp]
            b.emit(ScalarALU(op, cond, lhs, rhs))
            diff = then_v if temps.owns(then_v) else temps.take()
            b.sub(diff, then_v, else_v)
            b.mul(diff, diff, cond)
            out = else_v if temps.owns(else_v) else temps.take()
            b.add(out, else_v, diff)
            # free everything above `out` on the stack
            temps.release(cond)
            if diff is not out:
                temps.release(diff)
            return out
        raise CompilerError(f"unhandled expression {expr!r}")

    # ======================================================================
    # vector code generation (shared by SVE and SRV)
    # ======================================================================

    def _contiguous_arrays(self) -> list[str]:
        """Arrays accessed contiguously (data or index tables), in order."""
        if self.loop.step != 1:
            return []
        names: list[str] = []

        def note(index: IndexExpr) -> None:
            if isinstance(index, Affine) and index.scale == 1:
                return
            if isinstance(index, Indirect) and index.array not in names:
                names.append(index.array)

        for read in self.loop.reads():
            if self._is_contiguous(read.index) and read.array not in names:
                names.append(read.array)
            note(read.index)
        for store in self.loop.writes():
            if self._is_contiguous(store.index) and store.array not in names:
                names.append(store.array)
            note(store.index)
        return names

    def vector_program(self, srv: bool, plan=None) -> "Program":
        """Vector code, optionally bracketed in SRV-regions.

        ``plan`` (a :class:`repro.analyze.regions.RegionPlan`, only
        meaningful with ``srv=True``) splits the body into speculative
        and plain segments; without it the whole body forms one
        speculative region — the baseline SRV shape.
        """
        if srv and self.loop.reductions():
            raise CompilerError(
                "reductions cannot live inside an SRV-region: the "
                "accumulator update is not idempotent under selective "
                "replay (section III-A keeps such state outside regions)"
            )
        tag = "srv" if srv else "sve"
        b = ProgramBuilder(f"{self.loop.name}:{tag}")
        self._prologue(b)
        # per-reduction vector accumulators, initialised to the identity
        self._acc: dict[int, "VecReg"] = {}
        for k, stmt in enumerate(self.loop.reductions()):
            if k >= 4:
                raise CompilerError("at most 4 reductions per loop")
            acc = v(27 + k)
            self._acc[id(stmt)] = acc
            elem = self.elem(stmt.array)
            identity = {
                "+": 0,
                "min": (1 << (8 * elem - 1)) - 1,
                "max": -(1 << (8 * elem - 1)),
            }[stmt.op]
            b.v_splat(acc, imm(identity), elem=elem)
        # Current-iteration pointer registers: hoisted ahead of the region
        # so the SRV-region body contains only vector instructions (III-A).
        self._cur = {}
        for k, name in enumerate(self._contiguous_arrays()):
            if FIRST_TEMP_REG + k >= 28:
                raise CompilerError("too many contiguous arrays for pointers")
            self._cur[name] = x(FIRST_TEMP_REG + k)
        b.label("top")
        # remaining-iterations predicate (whilelt)
        if self.loop.step == 1:
            b.sub(REG_REM, REG_N, REG_I)
        else:
            b.add(REG_REM, REG_I, imm(1))
        b.pfirstn(PRED_LOOP, REG_REM)
        for name, reg in self._cur.items():
            b.shl(x(15), REG_I, imm(self._elem_shift[name]))
            b.add(reg, self.bases[name], x(15))
        direction = SrvDirection.UP if self.loop.step == 1 else SrvDirection.DOWN
        if srv and plan is not None:
            if plan.statement_count != len(self.loop.body):
                raise CompilerError(
                    f"region plan covers {plan.statement_count} statements, "
                    f"loop body has {len(self.loop.body)}"
                )
            segments = [
                (r.speculative, list(r.statements), r.sequential)
                for r in plan.regions
            ]
        else:
            segments = [(srv, list(range(len(self.loop.body))), False)]
        vtemps = _RegPool(1, 27, v, "vector temp")
        ptemps = _RegPool(FIRST_TEMP_PRED, 16, p, "predicate temp")
        for speculative, statements, sequential in segments:
            if speculative:
                b.srv_start(direction, sequential=sequential)
            for s in statements:
                stmt = self.loop.body[s]
                if isinstance(stmt, Reduce):
                    self._vector_reduce_step(b, stmt, vtemps, ptemps)
                else:
                    self._vector_statement(b, stmt, vtemps, ptemps)
            if speculative:
                b.srv_end()
        if self.loop.step == 1:
            b.add(REG_I, REG_I, imm(self.vl))
            b.blt(REG_I, REG_N, "top")
        else:
            b.sub(REG_I, REG_I, imm(self.vl))
            b.bge(REG_I, imm(0), "top")
        # reduction epilogue: horizontal combine into the memory cell
        for stmt in self.loop.reductions():
            elem = self.elem(stmt.array)
            acc = self._acc[id(stmt)]
            op = {"+": "add", "min": "min", "max": "max"}[stmt.op]
            b.v_reduce(op, x(14), acc, elem=elem)
            b.load(x(15), self.bases[stmt.array], stmt.offset * elem, elem=elem)
            scalar_op = {"+": "add", "min": "min_", "max": "max_"}[stmt.op]
            getattr(b, scalar_op)(x(15), x(15), x(14))
            b.store(x(15), self.bases[stmt.array], stmt.offset * elem, elem=elem)
        b.halt()
        return b.build()

    def _vector_reduce_step(self, b, stmt: Reduce, vtemps, ptemps) -> None:
        vtemps.reset()
        ptemps.reset()
        elem = self.elem(stmt.array)
        value = self._vector_expr(b, stmt.value, vtemps, ptemps, PRED_LOOP, elem)
        acc = self._acc[id(stmt)]
        op = {"+": "v_add", "min": "v_min", "max": "v_max"}[stmt.op]
        getattr(b, op)(acc, acc, value, pred=PRED_LOOP, elem=elem)

    def _lane_step(self) -> int:
        return 1 if self.loop.step == 1 else -1

    def _vector_statement(
        self, b, stmt: Store, vtemps, ptemps, pred: PredReg = PRED_LOOP
    ) -> None:
        # Keep register pressure bounded: temps reset per statement but a
        # statement's own evaluation allocates linearly.  Arithmetic runs
        # at the destination array's element width.
        vtemps.reset()
        ptemps.reset()
        elem = self.elem(stmt.array)
        value = self._vector_expr(b, stmt.value, vtemps, ptemps, pred, elem)
        self._vector_store(b, stmt, value, vtemps, pred)

    def _index_vector(
        self, b, index: IndexExpr, vtemps, pred: PredReg = PRED_LOOP
    ) -> VecReg:
        """Materialise the per-lane element indices of ``index``."""
        if isinstance(index, Affine):
            reg = vtemps.take()
            step = index.scale * self._lane_step()
            # lane l index = scale*(i + step_l) + offset
            tmp = x(15)
            b.mul(tmp, REG_I, imm(index.scale))
            if index.offset:
                b.add(tmp, tmp, imm(index.offset))
            b.v_index(reg, tmp, imm(step))
            return reg
        if index.inner.scale != 1 or not isinstance(index.inner, Affine):
            raise CompilerError("indirect index tables must be scale-1 affine")
        table_elem = self.elem(index.array)
        reg = vtemps.take()
        if self.loop.step == 1:
            # contiguous load of the index vector via the hoisted pointer
            b.v_load(
                reg,
                self._cur[index.array],
                offset=index.inner.offset * table_elem,
                elem=table_elem,
                pred=pred,
            )
        else:
            lanes = vtemps.take()
            tmp = x(15)
            b.add(tmp, REG_I, imm(index.inner.offset))
            b.v_index(lanes, tmp, imm(-1))
            b.v_gather(reg, self.bases[index.array], lanes,
                       elem=table_elem, pred=pred)
        return reg

    def _is_contiguous(self, index: IndexExpr) -> bool:
        return (
            isinstance(index, Affine)
            and index.scale == 1
            and self.loop.step == 1
        )

    def _vector_load(self, b, read: Read, vtemps, pred: PredReg) -> VecReg:
        elem = self.elem(read.array)
        dst = vtemps.take()
        if isinstance(read.index, Affine) and read.index.scale == 0:
            # loop-invariant element: a broadcast load (every lane reads
            # the same address)
            b.v_bcast(
                dst, self.bases[read.array], offset=read.index.offset * elem,
                elem=elem, pred=pred,
            )
        elif self._is_contiguous(read.index):
            b.v_load(
                dst, self._cur[read.array], offset=read.index.offset * elem,
                elem=elem, pred=pred,
            )
        else:
            idx = self._index_vector(b, read.index, vtemps, pred)
            index_elem = (
                self.elem(read.index.array)
                if isinstance(read.index, Indirect)
                else 4
            )
            b.v_gather(dst, self.bases[read.array], idx, elem=elem,
                       index_elem=index_elem, pred=pred)
            vtemps.release(idx)
        return dst

    def _vector_store(
        self, b, stmt: Store, value: VecReg, vtemps, pred: PredReg = PRED_LOOP
    ) -> None:
        elem = self.elem(stmt.array)
        if self._is_contiguous(stmt.index):
            b.v_store(
                value, self._cur[stmt.array], offset=stmt.index.offset * elem,
                elem=elem, pred=pred,
            )
        else:
            idx = self._index_vector(b, stmt.index, vtemps, pred)
            index_elem = (
                self.elem(stmt.index.array)
                if isinstance(stmt.index, Indirect)
                else 4
            )
            b.v_scatter(value, self.bases[stmt.array], idx, elem=elem,
                        index_elem=index_elem, pred=pred)

    def _vector_expr(
        self, b, expr: Expr, vtemps, ptemps, pred: PredReg, elem: int = 4
    ) -> VecReg:
        if isinstance(expr, Const):
            reg = vtemps.take()
            b.v_splat(reg, imm(expr.value), elem=elem)
            return reg
        if isinstance(expr, LoopIndex):
            reg = vtemps.take()
            b.v_index(reg, REG_I, imm(self._lane_step()), elem=elem)
            return reg
        if isinstance(expr, Param):
            reg = vtemps.take()
            b.v_splat(reg, imm(self.params[expr.name]), elem=elem)
            return reg
        if isinstance(expr, Read):
            return self._vector_load(b, expr, vtemps, pred)
        if isinstance(expr, BinOp):
            lhs = self._vector_expr(b, expr.lhs, vtemps, ptemps, pred, elem)
            rhs = self._vector_expr(b, expr.rhs, vtemps, ptemps, pred, elem)
            if expr.op == "%":
                # a % b = a - b * (a / b)
                q = vtemps.take()
                b.v_div(q, lhs, rhs, pred=pred, elem=elem)
                b.v_mul(q, q, rhs, pred=pred, elem=elem)
                out = lhs if vtemps.owns(lhs) else vtemps.take()
                b.v_sub(out, lhs, q, pred=pred, elem=elem)
                vtemps.release(q)
                vtemps.release(rhs)
                return out
            # reuse the lhs register for the result; pop the rhs temp
            out = lhs if vtemps.owns(lhs) else vtemps.take()
            getattr(b, _VEC_BINOP[expr.op])(out, lhs, rhs, pred=pred, elem=elem)
            vtemps.release(rhs)
            return out
        if isinstance(expr, Select):
            # if-conversion (section III-C)
            a = self._vector_expr(b, expr.cmp_lhs, vtemps, ptemps, pred, elem)
            c = self._vector_expr(b, expr.cmp_rhs, vtemps, ptemps, pred, elem)
            then_v = self._vector_expr(b, expr.then_value, vtemps, ptemps, pred, elem)
            else_v = self._vector_expr(b, expr.else_value, vtemps, ptemps, pred, elem)
            cond = ptemps.take()
            b.v_cmp(_CMP[expr.cmp], cond, a, c, pred=pred, elem=elem)
            both = ptemps.take()
            b.p_and(both, pred, cond)
            out = vtemps.take()
            b.v_mov(out, else_v, pred=pred, elem=elem)
            b.v_mov(out, then_v, pred=both, elem=elem)
            return out
        raise CompilerError(f"unhandled expression {expr!r}")

    # ======================================================================
    # strategy dispatch
    # ======================================================================

    def generate(self, strategy: Strategy) -> "Program":
        if strategy is Strategy.SCALAR:
            return self.scalar_program()
        if strategy is Strategy.SVE:
            if loop_class(self.loop, self.vl) in (DepClass.NONE, DepClass.PROVABLE_SAFE):
                return self.vector_program(srv=False)
            # state-of-the-art compiler cannot prove safety: scalar fallback
            return self.scalar_program()
        if strategy in (Strategy.SRV, Strategy.SRV_GUIDED):
            if self.loop.reductions():
                # reductions are incompatible with selective replay; when
                # the loop is otherwise clean, vectorise without a region,
                # else run scalar — SRV's coverage boundary (section VI).
                if loop_class(self.loop, self.vl) in (
                    DepClass.NONE, DepClass.PROVABLE_SAFE,
                ):
                    return self.vector_program(srv=False)
                return self.scalar_program()
            if strategy is Strategy.SRV_GUIDED:
                # consult the value-aware analysis over the arrays already
                # materialised in memory (their compile-time contents are
                # the initial contents); proven-safe spans lose their
                # brackets, proven-dense ones gain the sequential hint
                from repro.analyze.facts import facts_from_memory
                from repro.analyze.report import guided_plan

                facts = facts_from_memory(self.loop, self.memory)
                plan = guided_plan(self.loop, facts, self.n, self.vl)
                if not plan.speculative:
                    return self.vector_program(srv=False)
                return self.vector_program(srv=True, plan=plan)
            return self.vector_program(srv=True)
        if strategy is Strategy.FLEXVEC:
            from repro.compiler.flexvec import flexvec_program

            try:
                return flexvec_program(self)
            except CompilerError:
                # FlexVec "does not attempt to vectorise" loops outside its
                # checkable shapes: scalar fallback, like the original.
                return self.scalar_program()
        raise CompilerError(f"unknown strategy {strategy!r}")


def compile_loop(
    loop: Loop,
    memory: MemoryImage,
    n: int,
    strategy: Strategy,
    params: dict[str, int] | None = None,
    vector_length: int = 16,
) -> "Program":
    """Compile ``loop`` over arrays already allocated in ``memory``."""
    return LoopCodeGenerator(loop, memory, n, params, vector_length).generate(strategy)
