"""Mini vectorising compiler: loop IR, dependence analysis, codegen."""

from repro.compiler.analysis import (
    DepClass,
    Dependence,
    analyse,
    analyse_statements,
    classify_pair,
    loop_class,
    region_class,
)
from repro.compiler.codegen import LoopCodeGenerator, Strategy, compile_loop
from repro.compiler.ir import (
    Affine,
    BinOp,
    Const,
    Indirect,
    Loop,
    LoopIndex,
    Param,
    Read,
    Reduce,
    Select,
    Store,
    expr_reads,
    scalar_reference,
)

__all__ = [
    "DepClass",
    "Dependence",
    "analyse",
    "analyse_statements",
    "classify_pair",
    "loop_class",
    "region_class",
    "expr_reads",
    "LoopCodeGenerator",
    "Strategy",
    "compile_loop",
    "Affine",
    "BinOp",
    "Const",
    "Indirect",
    "Loop",
    "LoopIndex",
    "Param",
    "Read",
    "Reduce",
    "Select",
    "Store",
    "scalar_reference",
]
