"""Mini vectorising compiler: loop IR, dependence analysis, codegen."""

from repro.compiler.analysis import DepClass, Dependence, analyse, classify_pair, loop_class
from repro.compiler.codegen import LoopCodeGenerator, Strategy, compile_loop
from repro.compiler.ir import (
    Affine,
    BinOp,
    Const,
    Indirect,
    Loop,
    LoopIndex,
    Param,
    Read,
    Reduce,
    Select,
    Store,
    scalar_reference,
)

__all__ = [
    "DepClass",
    "Dependence",
    "analyse",
    "classify_pair",
    "loop_class",
    "LoopCodeGenerator",
    "Strategy",
    "compile_loop",
    "Affine",
    "BinOp",
    "Const",
    "Indirect",
    "Loop",
    "LoopIndex",
    "Param",
    "Read",
    "Reduce",
    "Select",
    "Store",
    "scalar_reference",
]
