"""Loop intermediate representation.

The compiler consumes inner loops in a small IR that captures exactly the
features the paper's evaluation relies on: affine array references,
indirect (gather/scatter) references through index arrays, if-converted
conditionals, and integer arithmetic.  A loop in this IR looks like::

    # for i in range(N): a[x[i]] = a[i] + 2      (the paper's listing 1)
    loop = Loop(
        name="listing1",
        arrays={"a": 4, "x": 4},
        body=[
            Store(
                "a",
                Indirect("x"),
                BinOp("+", Read("a", Affine()), Const(2)),
            )
        ],
    )

Index expressions are either :class:`Affine` (``scale * i + offset``) or
:class:`Indirect` (``index_array[scale * i + offset]``), which is exactly
the distinction that decides between contiguous and gather/scatter code
and between provable and statically-unknown dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.common.errors import CompilerError

VALID_BINOPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "min", "max")
VALID_CMPS = ("<", "<=", "==", "!=", ">", ">=")


# ---------------------------------------------------------------------------
# index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """Index ``scale * i + offset`` into an array."""

    scale: int = 1
    offset: int = 0

    def at(self, i: int) -> int:
        return self.scale * i + self.offset


@dataclass(frozen=True)
class Indirect:
    """Index ``index_array[scale * i + offset]``."""

    array: str
    inner: Affine = field(default_factory=Affine)


IndexExpr = Union[Affine, Indirect]


# ---------------------------------------------------------------------------
# value expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    value: int


@dataclass(frozen=True)
class LoopIndex:
    """The loop induction variable ``i`` as a value."""


@dataclass(frozen=True)
class Param:
    """A loop-invariant scalar parameter, bound at run time."""

    name: str


@dataclass(frozen=True)
class Read:
    """Array element read ``array[index]``."""

    array: str
    index: IndexExpr


@dataclass(frozen=True)
class BinOp:
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in VALID_BINOPS:
            raise CompilerError(f"invalid binary operator {self.op!r}")


@dataclass(frozen=True)
class Select:
    """If-converted conditional value: ``then_value if cond else else_value``.

    ``cond`` is a comparison between two expressions; the code generators
    lower it to a predicate (section III-C: forward control flow inside an
    SRV-region is handled through if-conversion).
    """

    cmp: str
    cmp_lhs: "Expr"
    cmp_rhs: "Expr"
    then_value: "Expr"
    else_value: "Expr"

    def __post_init__(self) -> None:
        if self.cmp not in VALID_CMPS:
            raise CompilerError(f"invalid comparison {self.cmp!r}")


Expr = Union[Const, LoopIndex, Param, Read, BinOp, Select]


# ---------------------------------------------------------------------------
# statements & loop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Store:
    """Array element write ``array[index] = value``."""

    array: str
    index: IndexExpr
    value: Expr


@dataclass(frozen=True)
class Reduce:
    """Reduction ``array[offset] = array[offset] op value`` per iteration.

    ``op`` is one of ``+``, ``min``, ``max``.  Reductions are vectorisable
    by the standard transform (per-lane partial accumulators, horizontal
    combine after the loop) — but **not inside an SRV-region**: the
    accumulator update is not idempotent, so a selective replay would
    double-count the replayed lanes.  This is the architectural reason the
    paper keeps state-changing scalar operations outside regions
    (section III-A); the code generator enforces it.
    """

    array: str
    op: str
    value: Expr
    offset: int = 0

    def __post_init__(self) -> None:
        if self.op not in ("+", "min", "max"):
            raise CompilerError(f"invalid reduction op {self.op!r}")


Statement = Union[Store, Reduce]


def expr_reads(expr: Expr) -> list[Read]:
    """Array reads of ``expr`` in evaluation order.

    The order matches the vector code generator's expression lowering
    (``BinOp`` left before right; ``Select`` condition operands before
    the two values), which the region-granular analyzer relies on when
    it predicts which cross-lane conflicts trigger a replay.
    """
    out: list[Read] = []

    def walk(e: Expr) -> None:
        if isinstance(e, Read):
            out.append(e)
        elif isinstance(e, BinOp):
            walk(e.lhs)
            walk(e.rhs)
        elif isinstance(e, Select):
            walk(e.cmp_lhs)
            walk(e.cmp_rhs)
            walk(e.then_value)
            walk(e.else_value)

    walk(expr)
    return out


@dataclass(frozen=True)
class Loop:
    """An inner loop ``for i in range(n): body`` over named arrays.

    ``arrays`` maps array names to element sizes in bytes.  ``step`` is
    +1 (increasing induction variable → SRV UP attribute) or -1
    (decreasing → DOWN).
    """

    name: str
    arrays: dict[str, int]
    body: tuple[Statement, ...]
    step: int = 1

    def __init__(self, name: str, arrays: dict[str, int], body, step: int = 1):
        if step not in (1, -1):
            raise CompilerError(f"loop step must be +1 or -1, got {step}")
        if not body:
            raise CompilerError("loop body must not be empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arrays", dict(arrays))
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "step", step)
        for stmt in self.body:
            self._check_statement(stmt)

    def _check_array(self, name: str) -> None:
        if name not in self.arrays:
            raise CompilerError(f"loop {self.name!r} references unknown array {name!r}")

    def _check_index(self, index: IndexExpr) -> None:
        if isinstance(index, Indirect):
            self._check_array(index.array)
        elif not isinstance(index, Affine):
            raise CompilerError(f"bad index expression {index!r}")

    def _check_expr(self, expr: Expr) -> None:
        if isinstance(expr, Read):
            self._check_array(expr.array)
            self._check_index(expr.index)
        elif isinstance(expr, BinOp):
            self._check_expr(expr.lhs)
            self._check_expr(expr.rhs)
        elif isinstance(expr, Select):
            for sub in (expr.cmp_lhs, expr.cmp_rhs, expr.then_value, expr.else_value):
                self._check_expr(sub)
        elif not isinstance(expr, (Const, LoopIndex, Param)):
            raise CompilerError(f"bad expression {expr!r}")

    def _check_statement(self, stmt: Statement) -> None:
        if isinstance(stmt, Reduce):
            self._check_array(stmt.array)
            self._check_expr(stmt.value)
            return
        if not isinstance(stmt, Store):
            raise CompilerError(f"bad statement {stmt!r}")
        self._check_array(stmt.array)
        self._check_index(stmt.index)
        self._check_expr(stmt.value)

    # -- reference enumeration (used by dependence analysis & codegen) -----

    def reads(self) -> list[Read]:
        out: list[Read] = []
        for stmt in self.body:
            out.extend(expr_reads(stmt.value))
        return out

    def writes(self) -> list[Store]:
        return [stmt for stmt in self.body if isinstance(stmt, Store)]

    def reductions(self) -> list["Reduce"]:
        return [stmt for stmt in self.body if isinstance(stmt, Reduce)]

    def index_arrays(self) -> set[str]:
        """Arrays used as indirection tables."""
        tables: set[str] = set()
        for read in self.reads():
            if isinstance(read.index, Indirect):
                tables.add(read.index.array)
        for store in self.writes():
            if isinstance(store.index, Indirect):
                tables.add(store.index.array)
        return tables

    def memory_reference_count(self) -> int:
        """Static memory references, counting index-table loads."""
        count = len(self.reads()) + len(self.writes())
        count += 2 * len(self.reductions())  # accumulator load + store
        count += sum(
            1
            for ref in self.reads() + [s for s in self.writes()]
            if isinstance(getattr(ref, "index", None), Indirect)
        )
        return count

    def gather_scatter_count(self) -> int:
        n = sum(
            1
            for read in self.reads()
            if isinstance(read.index, Indirect) or abs(read.index.scale) != 1
        )
        n += sum(
            1
            for store in self.writes()
            if isinstance(store.index, Indirect) or abs(store.index.scale) != 1
        )
        return n


def scalar_reference(loop: Loop, arrays: dict[str, list[int]], n: int, params: dict[str, int] | None = None) -> dict[str, list[int]]:
    """Execute the loop sequentially in pure Python (the semantic oracle)."""
    from repro.memory.image import to_signed, to_unsigned

    params = params or {}
    # normalise initial values through the arrays' element storage, exactly
    # as MemoryImage.store_array would
    data = {
        name: [to_signed(to_unsigned(v, loop.arrays[name]), loop.arrays[name])
               for v in values]
        for name, values in arrays.items()
    }

    def index_of(index: IndexExpr, i: int) -> int:
        if isinstance(index, Affine):
            return index.at(i)
        return data[index.array][index.inner.at(i)]

    def evaluate(expr: Expr, i: int) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, LoopIndex):
            return i
        if isinstance(expr, Param):
            return params[expr.name]
        if isinstance(expr, Read):
            return data[expr.array][index_of(expr.index, i)]
        if isinstance(expr, BinOp):
            a, b = evaluate(expr.lhs, i), evaluate(expr.rhs, i)
            if expr.op == "+":
                return a + b
            if expr.op == "-":
                return a - b
            if expr.op == "*":
                return a * b
            if expr.op == "/":
                if b == 0:
                    return 0
                q = abs(a) // abs(b)
                return q if (a >= 0) == (b >= 0) else -q
            if expr.op == "%":
                if b == 0:
                    return 0
                return a - b * evaluate(BinOp("/", Const(a), Const(b)), i)
            if expr.op == "&":
                return a & b
            if expr.op == "|":
                return a | b
            if expr.op == "^":
                return a ^ b
            if expr.op == "<<":
                return a << (b & 63)
            if expr.op == ">>":
                return (a & (1 << 64) - 1) >> (b & 63)
            if expr.op == "min":
                return min(a, b)
            if expr.op == "max":
                return max(a, b)
            raise CompilerError(f"unhandled op {expr.op}")
        if isinstance(expr, Select):
            a = evaluate(expr.cmp_lhs, i)
            b = evaluate(expr.cmp_rhs, i)
            taken = {
                "<": a < b, "<=": a <= b, "==": a == b,
                "!=": a != b, ">": a > b, ">=": a >= b,
            }[expr.cmp]
            return evaluate(expr.then_value if taken else expr.else_value, i)
        raise CompilerError(f"unhandled expr {expr!r}")

    iterations = range(n) if loop.step == 1 else range(n - 1, -1, -1)
    for i in iterations:
        for stmt in loop.body:
            elem = loop.arrays[stmt.array]
            value = evaluate(stmt.value, i)
            if isinstance(stmt, Reduce):
                current = data[stmt.array][stmt.offset]
                if stmt.op == "+":
                    combined = current + value
                elif stmt.op == "min":
                    combined = min(current, value)
                else:
                    combined = max(current, value)
                data[stmt.array][stmt.offset] = to_signed(
                    to_unsigned(combined, elem), elem
                )
            else:
                data[stmt.array][index_of(stmt.index, i)] = to_signed(
                    to_unsigned(value, elem), elem
                )
    return data
