"""Static dependence analysis (Banerjee-style) over the loop IR.

For every (write, read) and (write, write) pair on the same array the
analyser classifies the potential cross-iteration dependence:

* ``NONE`` — provably no cross-iteration dependence (distinct arrays, or
  affine indices that never coincide across iterations within any vector
  group);
* ``PROVABLE_SAFE`` — a dependence exists but its distance is at least
  the vector length, so vectorising with that VL cannot violate it;
* ``PROVABLE_UNSAFE`` — a dependence with a known short distance; naive
  vectorisation *would* break semantics every group;
* ``UNKNOWN`` — at least one side of the pair is indirect: the compiler
  cannot disambiguate statically.  This is the class of loop the paper
  targets ("loops that have statically unknown memory dependencies").

The classification of a whole loop is the worst class over its pairs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import gcd
from typing import Iterable

from repro.compiler.ir import Affine, Indirect, Loop


class DepClass(enum.IntEnum):
    """Ordered by how restrictive the class is for the vectoriser."""

    NONE = 0
    PROVABLE_SAFE = 1
    PROVABLE_UNSAFE = 2
    UNKNOWN = 3


@dataclass(frozen=True)
class Dependence:
    array: str
    kind: str          # "raw", "war", or "waw" potential
    dep_class: DepClass
    distance: int | None = None   # iterations, when provable


def _affine_pair_class(a: Affine, b: Affine, vector_length: int) -> tuple[DepClass, int | None]:
    """Classify two affine references to the same array.

    Solves ``a.scale * i + a.offset == b.scale * j + b.offset`` for
    iteration distance ``j - i`` where possible.
    """
    if a.scale == b.scale:
        if a.scale == 0:
            # both constant indices
            same = a.offset == b.offset
            return (DepClass.PROVABLE_UNSAFE if same else DepClass.NONE), (
                0 if same else None
            )
        delta = b.offset - a.offset
        if delta % a.scale:
            return DepClass.NONE, None   # indices never coincide
        distance = -delta // a.scale
        if distance == 0:
            return DepClass.NONE, 0      # same-iteration only: vector safe
        if abs(distance) >= vector_length:
            return DepClass.PROVABLE_SAFE, distance
        return DepClass.PROVABLE_UNSAFE, distance
    # Different scales: coincidence pattern exists unless offsets are in
    # different residue classes modulo gcd of the scales.
    g = gcd(a.scale, b.scale)
    if g and (b.offset - a.offset) % g:
        return DepClass.NONE, None
    return DepClass.UNKNOWN, None


def classify_pair(a, b, vector_length: int) -> tuple[DepClass, int | None]:
    """Classify two index expressions on the same array."""
    if isinstance(a, Indirect) or isinstance(b, Indirect):
        return DepClass.UNKNOWN, None
    return _affine_pair_class(a, b, vector_length)


def analyse_statements(
    loop: Loop,
    statements: "Iterable[int] | None" = None,
    vector_length: int = 16,
) -> list[Dependence]:
    """Potential cross-iteration dependences among a statement subset.

    ``statements`` selects body statement indices (``None`` = the whole
    body).  This is the region-granular entry point: the guided code
    generator asks about each candidate region separately instead of
    collapsing the loop to one verdict.
    """
    from repro.compiler.ir import Store, expr_reads

    selected = (range(len(loop.body)) if statements is None
                else sorted(set(statements)))
    writes = []
    reads = []
    for s in selected:
        stmt = loop.body[s]
        for read in expr_reads(stmt.value):
            reads.append((read.array, read.index))
        if isinstance(stmt, Store):
            writes.append((stmt.array, stmt.index))

    deps: list[Dependence] = []
    for w_array, w_index in writes:
        for r_array, r_index in reads:
            if w_array != r_array:
                continue
            dep_class, distance = classify_pair(w_index, r_index, vector_length)
            if dep_class is not DepClass.NONE:
                deps.append(Dependence(w_array, "raw", dep_class, distance))
        for w2_array, w2_index in writes:
            if w_array != w2_array or w_index is w2_index:
                continue
            dep_class, distance = classify_pair(w_index, w2_index, vector_length)
            if dep_class is not DepClass.NONE:
                deps.append(Dependence(w_array, "waw", dep_class, distance))
    return deps


def region_class(
    loop: Loop,
    statements: "Iterable[int] | None" = None,
    vector_length: int = 16,
) -> DepClass:
    """The worst dependence class among a statement subset of the loop."""
    deps = analyse_statements(loop, statements, vector_length)
    if not deps:
        return DepClass.NONE
    return max(dep.dep_class for dep in deps)


def analyse(loop: Loop, vector_length: int = 16) -> list[Dependence]:
    """All potential cross-iteration dependences in the loop.

    Deprecated alias for :func:`analyse_statements` over the whole body:
    loop-granular verdicts over-serialise multi-statement bodies (one
    indirect pair taints every statement).  New callers should pass the
    statement subset they actually care about, or use
    :mod:`repro.analyze` for value-aware region verdicts.
    """
    return analyse_statements(loop, None, vector_length)


def loop_class(loop: Loop, vector_length: int = 16) -> DepClass:
    """The worst dependence class across the loop.

    Deprecated alias for :func:`region_class` over the whole body — kept
    because the SVE/FlexVec strategies genuinely vectorise all-or-
    nothing; region-aware callers should use :func:`region_class`.
    """
    return region_class(loop, None, vector_length)
