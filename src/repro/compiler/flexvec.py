"""FlexVec code generation (Baghsorkhi et al., PLDI 2016).

FlexVec is the paper's software baseline (section VI-D): compiler-
generated *run-time checks* detect cross-lane dependences within each
vector group, and the group is then **partially vectorised** — executed as
a sequence of maximal conflict-free lane partitions, each under a partial
predicate.  Lanes after the first violating lane of a partition wait for
the next partition; unlike SRV, no lane ever consumes stale data, so no
replay hardware is needed — but the checks and the partition loop execute
as real instructions every group.

Following the paper's methodology, the VPCONFLICTM-style check is cracked
into per-element instruction sequences ("we broke the VCONFLICTM
instruction into several instructions, with each one comparing one element
of a source vector with all enabled previous elements of a target
vector").  Three pair shapes are handled:

* indirect store vs affine (scale-1) read — the listing 1 shape: lane
  ``l`` writing element ``t`` conflicts with the later lane ``t - i -
  offset`` that reads it;
* indirect (gather) read vs affine (scale-1) store — lane ``m`` reading
  element ``t`` conflicts when an earlier lane ``t - i - offset`` writes
  it;
* indirect vs indirect — the full quadratic compare.

Partition boundaries are the marked lanes; the partition loop scans the
conflict bitmask with scalar code and executes the loop body under a
``prange`` predicate per partition.  Loops FlexVec cannot handle
(provably-unsafe affine dependences, downward loops) fall back to scalar
code, as the original compiler would.
"""

from __future__ import annotations

from repro.common.errors import CompilerError
from repro.compiler.analysis import DepClass, classify_pair
from repro.compiler.ir import Affine, Indirect, Loop
from repro.isa import ProgramBuilder, imm, p, v, x
from repro.isa.instructions import CmpOpcode
from repro.isa.registers import ScalarReg, VecReg

# scalar register conventions private to FlexVec codegen
REG_MASK = x(24)     # conflict-lane bitmask
REG_LO = x(25)       # current partition start lane
REG_NEXT = x(26)     # next partition boundary
REG_T = x(27)        # extracted element index
REG_REL = x(28)      # relative lane
REG_BIT = x(29)      # scratch for bit manipulation
REG_CLAMP = x(30)    # min(next, remaining)
PRED_PART = p(14)    # partition predicate
PRED_CHECK = p(15)   # check-loop predicate


def _check_pairs(loop: Loop, vl: int):
    """(write_ref, read_ref) pairs needing run-time checks.

    Returns triples ``(kind, write_index, read_index)`` where kind is
    ``"w_indirect"``, ``"r_indirect"`` or ``"both"``.
    """
    pairs = []
    for store in loop.writes():
        for read in loop.reads():
            if store.array != read.array:
                continue
            dep_class, _ = classify_pair(store.index, read.index, vl)
            if dep_class is not DepClass.UNKNOWN:
                if dep_class is DepClass.PROVABLE_UNSAFE:
                    raise CompilerError(
                        "FlexVec cannot vectorise provably-unsafe affine "
                        f"dependences in loop {loop.name!r}"
                    )
                continue
            w_ind = isinstance(store.index, Indirect)
            r_ind = isinstance(read.index, Indirect)
            if w_ind and r_ind:
                pairs.append(("both", store.index, read.index))
            elif w_ind:
                if read.index.scale != 1:
                    raise CompilerError("FlexVec checks need scale-1 affine reads")
                pairs.append(("w_indirect", store.index, read.index))
            else:
                if store.index.scale != 1:
                    raise CompilerError("FlexVec checks need scale-1 affine stores")
                pairs.append(("r_indirect", store.index, read.index))
    return pairs


def flexvec_program(gen) -> "Program":
    """Generate the FlexVec binary for ``gen``'s loop.

    ``gen`` is a :class:`~repro.compiler.codegen.LoopCodeGenerator`.
    """
    from repro.compiler.codegen import (
        PRED_LOOP,
        REG_I,
        REG_N,
        REG_REM,
        FIRST_TEMP_REG,
        _RegPool,
    )

    loop = gen.loop
    vl = gen.vl
    if loop.step != 1:
        raise CompilerError("FlexVec codegen supports increasing loops only")
    if loop.reductions():
        raise CompilerError("FlexVec codegen does not support reductions")
    pairs = _check_pairs(loop, vl)

    b = ProgramBuilder(f"{loop.name}:flexvec")
    gen._prologue(b)
    gen._cur = {}
    for k, name in enumerate(gen._contiguous_arrays()):
        gen._cur[name] = x(FIRST_TEMP_REG + k)

    b.label("top")
    b.sub(REG_REM, REG_N, REG_I)
    b.pfirstn(PRED_LOOP, REG_REM)
    for name, reg in gen._cur.items():
        b.shl(x(15), REG_I, imm(gen._elem_shift[name]))
        b.add(reg, gen.bases[name], x(15))

    # ---- run-time dependence checks ("a separate loop", section II) ------
    vtemps = _RegPool(20, 31, v, "vector temp")
    b.mov(REG_MASK, imm(0))
    for kind, w_index, r_index in pairs:
        vtemps.reset()
        if kind == "w_indirect":
            idx_w = gen._index_vector(b, w_index, vtemps, PRED_LOOP)
            _emit_indirect_vs_affine_check(
                b, idx_w, r_index.offset, vl, reader_conflicts=True
            )
        elif kind == "r_indirect":
            idx_r = gen._index_vector(b, r_index, vtemps, PRED_LOOP)
            _emit_indirect_vs_affine_check(
                b, idx_r, w_index.offset, vl, reader_conflicts=False
            )
        else:
            idx_w = gen._index_vector(b, w_index, vtemps, PRED_LOOP)
            idx_r = gen._index_vector(b, r_index, vtemps, PRED_LOOP)
            _emit_indirect_vs_indirect_check(b, idx_w, idx_r, vl)

    # ---- partition loop ---------------------------------------------------
    body_vtemps = _RegPool(1, 20, v, "vector temp")
    body_ptemps = _RegPool(2, 14, p, "predicate temp")
    b.mov(REG_LO, imm(0))
    b.label("partition")
    # find the next marked lane above REG_LO (or VL)
    b.add(REG_NEXT, REG_LO, imm(1))
    b.label("scan")
    b.bge(REG_NEXT, imm(vl), "scan_done")
    b.shr(REG_BIT, REG_MASK, REG_NEXT)
    b.and_(REG_BIT, REG_BIT, imm(1))
    b.bne(REG_BIT, imm(0), "scan_done")
    b.add(REG_NEXT, REG_NEXT, imm(1))
    b.jump("scan")
    b.label("scan_done")
    # clamp the partition to the remaining iterations
    b.min_(REG_CLAMP, REG_NEXT, REG_REM)
    b.prange(PRED_PART, REG_LO, REG_CLAMP)
    for stmt in loop.body:
        gen._vector_statement(b, stmt, body_vtemps, body_ptemps, PRED_PART)
    b.mov(REG_LO, REG_NEXT)
    b.blt(REG_LO, REG_REM, "partition_check")
    b.jump("group_done")
    b.label("partition_check")
    b.blt(REG_LO, imm(vl), "partition")
    b.label("group_done")

    b.add(REG_I, REG_I, imm(vl))
    b.blt(REG_I, REG_N, "top")
    b.halt()
    return b.build()


def _emit_indirect_vs_affine_check(
    b: ProgramBuilder,
    idx: VecReg,
    affine_offset: int,
    vl: int,
    reader_conflicts: bool,
) -> None:
    """Mark conflict lanes for an indirect-vs-affine(scale 1) pair.

    ``reader_conflicts=True``: indirect *store* lanes ``l`` write element
    ``t``; the affine *read* of lane ``m = t - i - offset`` conflicts when
    ``m > l`` — mark ``m`` (the lane that must start a new partition).

    ``reader_conflicts=False``: indirect *gather* lane ``m`` reads element
    ``t`` written by affine store lane ``l = t - i - offset``; conflict
    when ``0 <= l < m`` — mark ``m``.

    The per-lane sequence is the cracked VPCONFLICTM of section VI-D.
    """
    from repro.compiler.codegen import REG_I

    one = x(31)
    b.mov(one, imm(1))
    tag = len(b)
    for lane in range(vl):
        label = f"nochk_{tag}_{lane}"
        b.v_extract(REG_T, idx, lane)
        b.sub(REG_REL, REG_T, REG_I)
        if affine_offset:
            b.sub(REG_REL, REG_REL, imm(affine_offset))
        if reader_conflicts:
            # mark lane REG_REL when lane > written... conflict if rel > lane
            b.ble(REG_REL, imm(lane), label)
            b.bge(REG_REL, imm(vl), label)
            b.shl(REG_BIT, one, REG_REL)
            b.or_(REG_MASK, REG_MASK, REG_BIT)
        else:
            if lane == 0:
                continue  # lane 0 has no earlier writers
            # conflict if 0 <= rel < lane: mark THIS lane
            b.blt(REG_REL, imm(0), label)
            b.bge(REG_REL, imm(lane), label)
            b.shl(REG_BIT, one, imm(lane))
            b.or_(REG_MASK, REG_MASK, REG_BIT)
        b.label(label)


def _emit_indirect_vs_indirect_check(
    b: ProgramBuilder, idx_w: VecReg, idx_r: VecReg, vl: int
) -> None:
    """Quadratic cracked-VPCONFLICTM: lane ``m``'s read index compared with
    all earlier lanes' write indices."""
    count = x(31)
    hits = x(23)
    tag = len(b)
    for lane in range(1, vl):
        label = f"noconf_{tag}_{lane}"
        b.v_extract(REG_T, idx_r, lane)
        b.mov(count, imm(lane))
        b.pfirstn(PRED_CHECK, count)
        b.v_splat(v(31), REG_T, pred=PRED_CHECK)
        b.v_cmp(CmpOpcode.EQ, PRED_CHECK, idx_w, v(31), pred=PRED_CHECK)
        b.pcount(hits, PRED_CHECK)
        b.beq(hits, imm(0), label)
        b.mov(REG_BIT, imm(1 << lane))
        b.or_(REG_MASK, REG_MASK, REG_BIT)
        b.label(label)