"""Reproduction of *Speculative Vectorisation with Selective Replay* (ISCA 2021).

Public API layers:

* :mod:`repro.isa` — the SVE-like vector ISA with ``srv_start``/``srv_end``.
* :mod:`repro.emu` — functional (instruction-accurate) emulator with SRV
  semantics; the correctness reference.
* :mod:`repro.lsu` / :mod:`repro.srv` — the memory-disambiguation
  microarchitecture and SRV engine (section IV of the paper).
* :mod:`repro.pipeline` — cycle-approximate out-of-order core (Table I).
* :mod:`repro.compiler` — loop DSL, dependence analysis, and scalar / SVE /
  SRV / FlexVec code generation.
* :mod:`repro.workloads` — synthetic kernels modelled on the paper's
  benchmark suites.
* :mod:`repro.experiments` — one harness per paper figure/table.
"""

__version__ = "1.0.0"

from repro.common.config import TABLE_I, MachineConfig

__all__ = ["TABLE_I", "MachineConfig", "__version__"]
