"""Per-interval fingerprints over the dynamic op stream.

Each interval is summarised by a fixed-order vector of rates — the
memory-access-vector idea: op-class mix from the static
:class:`~repro.pipeline.decode.DecodeRecord` of every op, memory shape
(gather/scatter and broadcast fractions, mask/predicate density, a
coarse stride signature over successive same-pc addresses), SRV region
structure (entries, replayed lanes, fallback coverage), and the
emulator-side observe counters folded in per interval
(:class:`~repro.observe.events.IntervalCounterSink`).  Everything is a
fraction or a per-op rate, so intervals of different phases are
comparable and the tail interval (shorter than the rest) needs no
special casing.

Determinism: the vector is a pure function of the interval's ops and
events — both are identical between ``stream`` and ``list`` trace modes
(events are binned by the op index they are stamped with, not by
arrival order), which is pinned by ``tests/test_sample.py``.
"""

from __future__ import annotations

from collections import Counter

from repro.observe.events import EventKind
from repro.pipeline.trace import OpClass, RegionEvent, TraceOp

#: OpClass members in declaration order — the head of every vector.
_OP_CLASSES: tuple[OpClass, ...] = tuple(OpClass)

#: Observe counters folded into the vector (emu-domain region structure).
_COUNTER_KINDS: tuple[EventKind, ...] = (
    EventKind.REGION_BEGIN,
    EventKind.REGION_PASS,
    EventKind.LANE_REPLAY,
    EventKind.SEQ_FALLBACK,
)

#: Stride-signature bucket upper bounds in bytes (log-spaced); the last
#: bucket is unbounded.  Buckets: zero, <=64, <=4096, >4096.
_STRIDE_SMALL = 64
_STRIDE_MEDIUM = 4096

#: Feature names in vector order (documentation + report output).
FEATURE_NAMES: tuple[str, ...] = tuple(
    f"class:{c.value}" for c in _OP_CLASSES
) + (
    "mem:lanes_per_op",
    "mem:gather_scatter_frac",
    "mem:broadcast_frac",
    "mem:mask_density",
    "mem:stride_zero",
    "mem:stride_small",
    "mem:stride_medium",
    "mem:stride_large",
    "region:op_frac",
    "region:fallback_frac",
    "region:replay_lanes_per_op",
    "region:entries_per_op",
    # ambient-hierarchy miss rates: a function of access *order* only
    # (no timing), so the functional pass computes them exactly — and
    # they are the one signal that separates intervals with identical
    # instruction mix but different locality (and therefore different
    # cycles-per-op)
    "cache:l1_miss_per_op",
    "cache:l2_miss_per_op",
) + tuple(f"event:{k.value}" for k in _COUNTER_KINDS)


class FingerprintAccumulator:
    """Streaming accumulator for one interval's feature vector."""

    __slots__ = (
        "_lanes", "_ops", "_class_counts", "_mem_lane_accesses",
        "_gs_lane_accesses", "_broadcast_ops", "_vec_mem_ops",
        "_mask_lane_sum", "_region_ops", "_fallback_ops",
        "_replay_lanes", "_region_entries", "_stride_buckets",
        "_last_addr", "_stride_samples", "_counters",
        "_l1_misses", "_l2_misses",
    )

    def __init__(self, lanes: int) -> None:
        self._lanes = max(1, lanes)
        self._ops = 0
        self._class_counts: Counter = Counter()
        self._mem_lane_accesses = 0
        self._gs_lane_accesses = 0
        self._broadcast_ops = 0
        self._vec_mem_ops = 0
        self._mask_lane_sum = 0
        self._region_ops = 0
        self._fallback_ops = 0
        self._replay_lanes = 0
        self._region_entries = 0
        self._stride_buckets = [0, 0, 0, 0]
        self._last_addr: dict[int, int] = {}
        self._stride_samples = 0
        self._counters: Counter = Counter()
        self._l1_misses = 0
        self._l2_misses = 0

    def add(self, op: TraceOp) -> None:
        self._ops += 1
        rec = op.decode
        cls = rec.op_class if rec is not None else op.op_class
        self._class_counts[cls] += 1
        if op.in_region:
            self._region_ops += 1
            if op.in_fallback:
                self._fallback_ops += 1
            if op.region_event is RegionEvent.START:
                self._region_entries += 1
        self._replay_lanes += len(op.replay_lanes)
        mem = op.mem
        if mem:
            n_access = len(mem)
            self._mem_lane_accesses += n_access
            if rec is not None:
                if rec.is_gather_scatter:
                    self._gs_lane_accesses += n_access
                if rec.is_vector and rec.is_mem:
                    self._vec_mem_ops += 1
                    self._mask_lane_sum += n_access
                    if rec.is_broadcast:
                        self._broadcast_ops += 1
            # stride signature: first-lane address delta per static pc
            addr = mem[0].addr
            last = self._last_addr.get(op.pc)
            self._last_addr[op.pc] = addr
            if last is not None:
                delta = abs(addr - last)
                self._stride_samples += 1
                if delta == 0:
                    self._stride_buckets[0] += 1
                elif delta <= _STRIDE_SMALL:
                    self._stride_buckets[1] += 1
                elif delta <= _STRIDE_MEDIUM:
                    self._stride_buckets[2] += 1
                else:
                    self._stride_buckets[3] += 1

    def fold_counters(self, counts: Counter) -> None:
        """Fold one interval bin of observe-counter tallies."""
        self._counters.update(counts)

    def fold_cache_misses(self, l1: int, l2: int) -> None:
        """Fold the interval's ambient-hierarchy miss deltas."""
        self._l1_misses += l1
        self._l2_misses += l2

    def vector(self) -> tuple[float, ...]:
        ops = max(1, self._ops)
        lane_acc = max(1, self._mem_lane_accesses)
        strides = max(1, self._stride_samples)
        vec_mem = max(1, self._vec_mem_ops)
        out = [self._class_counts[c] / ops for c in _OP_CLASSES]
        out.extend((
            self._mem_lane_accesses / ops,
            self._gs_lane_accesses / lane_acc,
            self._broadcast_ops / vec_mem,
            self._mask_lane_sum / (vec_mem * self._lanes),
            self._stride_buckets[0] / strides,
            self._stride_buckets[1] / strides,
            self._stride_buckets[2] / strides,
            self._stride_buckets[3] / strides,
            self._region_ops / ops,
            self._fallback_ops / ops,
            self._replay_lanes / ops,
            self._region_entries / ops,
            self._l1_misses / ops,
            self._l2_misses / ops,
        ))
        out.extend(self._counters[k] / ops for k in _COUNTER_KINDS)
        return tuple(out)
