"""Whole-program cycle projection from sampled representative intervals.

:func:`sample_loop` is the sampling counterpart of
:func:`repro.experiments.runner.run_loop`:

1. **fingerprint pass** — one functional emulation (numpy lane engine by
   default) slices the stream into ``interval_size``-op intervals and
   fingerprints each (:mod:`repro.sample.fingerprint`), while also
   warming an *ambient* cache hierarchy with the full access stream
   (the sampled analogue of the exact path's warm pre-pass);
2. **clustering** — seeded k-means over the standardized fingerprints,
   k by BIC or forced via ``clusters`` (:mod:`repro.sample.cluster`);
   per cluster the sampler elects the centroid representative plus up
   to ``samples - 1`` further members spread uniformly by stream
   position;
3. **collection pass** — a second functional emulation materialises only
   the elected segments, each with a region-safe warm-up window and a
   clone of the ambient cache state at its start; interval boundary
   digests are compared against pass 1, so the two passes are *proven*
   to have sampled the same stream;
4. **projection** — each segment is timed through the existing streaming
   pipeline via :func:`repro.pipeline.stream.time_segment`; per cluster
   the cycles-per-op is *pooled* (total cycles over total ops) across
   its sampled members and multiplied by the cluster's op count, with
   an error bar from the cpo spread across those members and per-region
   attribution scaled the same way.  The leading ``ceil(warmup /
   interval_size)`` intervals (the cold-start transient) are always
   measured directly and never extrapolated.

Reports are cached through the shared result cache under a
``("sample", SAMPLE_VERSION, ...)`` key.  Like ``run_loop``, the
``lane_engine`` (and trace mode — the sampler is streaming by
construction) is excluded from the key: engines are bit-identical.
``repro.sample`` is deliberately *not* in the cache's ``CORE_MODULES``
(editing the sampler must not invalidate exact-run entries), so
SAMPLE_VERSION must be bumped whenever projection semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.common.config import TABLE_I, MachineConfig
from repro.common.errors import LsuOverflowError, SampleError
from repro.compiler import Strategy, compile_loop
from repro.memory import MemoryImage
from repro.memory.hierarchy import CacheHierarchy
from repro.parallel.cache import result_cache
from repro.pipeline.stream import time_segment
from repro.sample.cluster import cluster_intervals, representatives
from repro.sample.intervals import (
    FingerprintRun,
    collect_segments,
    fingerprint_pass,
)

if TYPE_CHECKING:
    from repro.workloads.base import LoopSpec, Workload

#: Bumped whenever the sampling algorithm changes meaning: the sample
#: package is outside the cache's CORE_MODULES hash, so this constant is
#: the only thing separating old cached projections from new semantics.
SAMPLE_VERSION = 1

#: Error bound (percent) the validation suite and CI smoke assert.
DEFAULT_ERROR_BOUND_PCT = 5.0

#: Members detail-simulated per cluster (the centroid representative
#: plus up to this many uniform-by-position strata).  The cluster's
#: cycles-per-op is *pooled* over all of them — a centroid-only estimate
#: systematically misses skew when functionally-identical intervals
#: differ microarchitecturally (cold predictors, drifting locality).
SAMPLES_PER_CLUSTER = 3


@dataclass(frozen=True)
class ClusterStat:
    """Projection contribution of one cluster."""

    cluster: int
    intervals: int           #: member interval count (tail members only)
    ops: int                 #: dynamic ops projected from this cluster
    rep: int                 #: centroid-representative interval index
    samples: tuple[int, ...]  #: detail-simulated member interval indices
    sampled_ops: int         #: total measured ops across samples
    sampled_cycles: int      #: total measured cycles across samples
    cpo: float               #: pooled cycles-per-op over the samples
    projected_cycles: float  #: cpo * ops
    error_cycles: float      #: cpo half-spread across samples * ops
    #: projected SRV-region cycles.  Segment-local residency scaled to
    #: cluster ops — NOT comparable to the exact model's raw
    #: ``stats.region_cycles`` on long backend-bound runs, whose
    #: fetch→commit spans inflate with accumulated frontend/backend
    #: skew (the idealised fetch clock never backpressures).
    region_cycles: float


@dataclass(frozen=True)
class SampleReport:
    """Whole-program projection from sampled intervals."""

    workload: str            #: by_name-resolvable workload key
    loop: str
    strategy: str            #: Strategy value ("srv"/"sve"/...)
    core: str
    seed: int
    n: int                   #: trip count actually simulated
    interval_size: int
    warmup: int
    requested_clusters: int | None   #: None = BIC-selected
    k: int
    total_ops: int
    intervals: int
    head_intervals: int      #: leading intervals measured directly (the
                             #: cold-start transient is never extrapolated)
    head_ops: int
    head_cycles: int
    detailed_ops: int        #: ops through the detailed timing model
    projected_cycles: int
    projected_region_cycles: int
    clusters: tuple[ClusterStat, ...]
    degraded: bool = False   #: LSU overflow forced the sequential fallback
    exact_cycles: int | None = None
    error_pct: float | None = None

    @property
    def reduction(self) -> float:
        """Detailed-simulation reduction factor vs exact streaming."""
        return self.total_ops / max(1, self.detailed_ops)

    def with_exact(self, exact_cycles: int) -> "SampleReport":
        error = 100.0 * (self.projected_cycles - exact_cycles) / exact_cycles
        return replace(self, exact_cycles=exact_cycles, error_pct=error)

    def format_report(self) -> str:
        lines = [
            f"sample {self.workload}/{self.loop} strategy={self.strategy} "
            f"core={self.core} seed={self.seed} n={self.n}",
            f"  stream: {self.total_ops} ops in {self.intervals} intervals "
            f"of {self.interval_size}",
            f"  head: {self.head_intervals} intervals / {self.head_ops} ops "
            f"measured directly ({self.head_cycles} cycles)",
            f"  clusters: k={self.k} "
            f"({'forced' if self.requested_clusters else 'bic'}) "
            f"warmup={self.warmup}"
            + (" [degraded: sequential fallback]" if self.degraded else ""),
            "  cluster intervals        ops   rep      cpo"
            "   projected     +/-err  samples",
        ]
        for c in self.clusters:
            samples = ",".join(str(s) for s in c.samples)
            lines.append(
                f"  {c.cluster:7d} {c.intervals:9d} {c.ops:10d} "
                f"{c.rep:5d} {c.cpo:8.4f} "
                f"{c.projected_cycles:11.1f} {c.error_cycles:10.1f}"
                f"  [{samples}]"
            )
        lines.append(
            f"  projected cycles: {self.projected_cycles} "
            f"(region {self.projected_region_cycles}, "
            f"error bar +/-{sum(c.error_cycles for c in self.clusters):.1f})"
        )
        lines.append(
            f"  detailed ops: {self.detailed_ops} of {self.total_ops} "
            f"({self.reduction:.1f}x reduction)"
        )
        if self.exact_cycles is not None:
            lines.append(
                f"  exact cycles: {self.exact_cycles}   "
                f"error: {self.error_pct:+.2f}%"
            )
        return "\n".join(lines) + "\n"

    def to_obj(self) -> dict:
        return {
            "workload": self.workload,
            "loop": self.loop,
            "strategy": self.strategy,
            "core": self.core,
            "seed": self.seed,
            "n": self.n,
            "interval_size": self.interval_size,
            "warmup": self.warmup,
            "requested_clusters": self.requested_clusters,
            "k": self.k,
            "total_ops": self.total_ops,
            "intervals": self.intervals,
            "head_intervals": self.head_intervals,
            "head_ops": self.head_ops,
            "head_cycles": self.head_cycles,
            "detailed_ops": self.detailed_ops,
            "reduction": round(self.reduction, 3),
            "projected_cycles": self.projected_cycles,
            "projected_region_cycles": self.projected_region_cycles,
            "degraded": self.degraded,
            "exact_cycles": self.exact_cycles,
            "error_pct": (
                round(self.error_pct, 4) if self.error_pct is not None
                else None
            ),
            "clusters": [
                {
                    "cluster": c.cluster,
                    "intervals": c.intervals,
                    "ops": c.ops,
                    "rep": c.rep,
                    "samples": list(c.samples),
                    "sampled_ops": c.sampled_ops,
                    "sampled_cycles": c.sampled_cycles,
                    "cpo": round(c.cpo, 6),
                    "projected_cycles": round(c.projected_cycles, 2),
                    "error_cycles": round(c.error_cycles, 2),
                    "region_cycles": round(c.region_cycles, 2),
                }
                for c in self.clusters
            ],
        }


# ---------------------------------------------------------------------------
# spec resolution (by_name-style keys, shared with CLI and sweep cells)
# ---------------------------------------------------------------------------


def resolve_spec(workload_name: str, loop_name: str | None = None):
    """``(workload, spec)`` for a by_name workload key and loop name.

    ``loop_name`` may be an exact loop name or a unique substring; with
    a single-loop workload it may be omitted.  Everything a sweep worker
    needs to regenerate the sampled program is the two strings.
    """
    from repro.workloads import by_name

    workload = by_name(workload_name)
    specs = list(workload.loops)
    if loop_name is None:
        if len(specs) == 1:
            return workload, specs[0]
        raise KeyError(
            f"workload {workload_name!r} has {len(specs)} loops; "
            "a loop name is required"
        )
    for spec in specs:
        if spec.name == loop_name:
            return workload, spec
    matches = [spec for spec in specs if loop_name in spec.name]
    if len(matches) == 1:
        return workload, matches[0]
    names = ", ".join(spec.name for spec in specs)
    raise KeyError(
        f"loop {loop_name!r} is {'ambiguous' if matches else 'unknown'} "
        f"in workload {workload_name!r} (loops: {names})"
    )


# ---------------------------------------------------------------------------
# sampling driver
# ---------------------------------------------------------------------------


def _build(spec: "LoopSpec", strategy: Strategy, seed: int, n: int,
           config: MachineConfig, lane_engine: str | None):
    """Fresh interpreter over fresh memory — one pass's worth."""
    from repro.emu.interpreter import Interpreter

    arrays = spec.arrays(seed)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(spec.loop, mem, n, strategy, params=spec.params)
    return Interpreter(program, mem, config, lane_engine=lane_engine)


def _checked_stream(interp, interval_size: int, digests: tuple):
    """Yield pass-2 ops while verifying pass-1 boundary digests."""
    count = 0
    closed = 0
    for op in interp.iter_trace():
        yield op
        count += 1
        if count % interval_size == 0:
            if closed < len(digests) \
                    and interp.boundary_digest() != digests[closed]:
                raise SampleError(
                    f"re-simulation diverged from the fingerprint pass at "
                    f"interval {closed} (op {count})"
                )
            closed += 1


def _sample_once(
    spec: "LoopSpec",
    strategy: Strategy,
    seed: int,
    n: int,
    config: MachineConfig,
    core: str,
    interval_size: int,
    warmup: int,
    clusters: int | None,
    max_clusters: int,
    samples: int,
    lane_engine: str | None,
    workload_key: str,
) -> SampleReport:
    # pass 1: fingerprints + ambient cache warm base
    ambient = CacheHierarchy(config.memory)
    interp = _build(spec, strategy, seed, n, config, lane_engine)
    run: FingerprintRun = fingerprint_pass(
        interp, interval_size, feed_caches=ambient,
    )
    if run.total_ops == 0:
        raise SampleError(
            f"{spec.name}/{strategy.value}: program produced no trace ops"
        )

    # clustering over standardized fingerprints
    vectors = [iv.vector for iv in run.intervals]
    clustering = cluster_intervals(
        vectors, seed, k=clusters, max_k=max_clusters,
    )

    # The first ~warmup ops of a program have *short microarchitectural
    # history*: their segments replay the complete prefix as warm-up, so
    # measuring them is exact — while extrapolating a steady-state
    # representative's cycles-per-op onto them (or theirs onto the
    # steady tail) is wrong in either direction.  Pin this head: measure
    # its intervals directly, project only the steady tail via clusters,
    # and keep head intervals out of sample election.
    head_count = min(
        -(-warmup // interval_size) if warmup else 1, len(run.intervals),
    )
    pinned = {run.intervals[i].index for i in range(head_count)}
    reps = representatives(
        vectors, clustering, exclude=frozenset(range(head_count)),
    )

    # per-cluster sample election: the centroid representative plus
    # uniform-by-position strata across the (tail) members.  Uniform
    # picks are what de-biases the estimate — the centroid member is the
    # *functionally* most typical interval, but microarchitectural cost
    # varies within a functional cluster (predictor state, locality
    # drift), and pooling over position-spread members averages it out.
    elected: dict[int, list[int]] = {}
    for cluster_id, (rep_pos, _probe) in sorted(reps.items()):
        members = [
            i for i, a in enumerate(clustering.assignments)
            if a == cluster_id and run.intervals[i].index not in pinned
        ]
        if not members:
            elected[cluster_id] = [rep_pos]
            continue
        m = len(members)
        picks = {
            members[round(i * (m - 1) / max(1, samples - 1))]
            for i in range(min(samples, m))
        }
        picks.add(rep_pos)
        elected[cluster_id] = sorted(picks)

    targets: set[int] = set(pinned)
    for positions in elected.values():
        targets.update(run.intervals[p].index for p in positions)

    # pass 2: collect representative segments with ambient cache clones
    interp2 = _build(spec, strategy, seed, n, config, lane_engine)
    timings: dict[int, object] = {}
    for segment in collect_segments(
        _checked_stream(interp2, interval_size, run.digests),
        targets, interval_size, warmup, ambient=ambient,
    ):
        if not segment.ops:
            continue
        timings[segment.interval] = time_segment(
            segment.ops, config, core=core,
            warm_ops=segment.warm, caches=segment.caches,
        )

    # projection: measured head + per-cluster extrapolated tail
    head_cycles = 0
    head_ops = 0
    head_region = 0
    for idx in sorted(pinned):
        timing = timings.get(idx)
        if timing is None:
            raise SampleError(
                f"head interval {idx} produced no timed segment"
            )
        head_cycles += timing.cycles
        head_ops += timing.ops
        head_region += timing.region_cycles

    stats: list[ClusterStat] = []
    for cluster_id, positions in elected.items():
        rep_idx = run.intervals[reps[cluster_id][0]].index
        members = [
            run.intervals[i]
            for i, a in enumerate(clustering.assignments)
            if a == cluster_id and run.intervals[i].index not in pinned
        ]
        cluster_ops = sum(iv.length for iv in members)
        sampled = []
        for pos in positions:
            idx = run.intervals[pos].index
            timing = timings.get(idx)
            if timing is None:
                raise SampleError(
                    f"sampled interval {idx} produced no timed segment"
                )
            sampled.append((idx, timing))
        pooled_ops = sum(t.ops for _, t in sampled)
        pooled_cycles = sum(t.cycles for _, t in sampled)
        pooled_region = sum(t.region_cycles for _, t in sampled)
        cpo = pooled_cycles / max(1, pooled_ops)
        # error bar: half the cycles-per-op spread across the sampled
        # members, scaled to the cluster's ops.  Tiny snapped fragments
        # (a segment can shrink to a handful of ops when region cuts
        # land badly) are excluded from the spread — their per-op cost
        # is dominated by quantisation, not phase behaviour.
        spread_cpos = [
            t.cycles / t.ops for _, t in sampled
            if t.ops >= interval_size // 4
        ]
        half_spread = (
            (max(spread_cpos) - min(spread_cpos)) / 2.0
            if len(spread_cpos) > 1 else 0.0
        )
        stats.append(ClusterStat(
            cluster=cluster_id,
            intervals=len(members),
            ops=cluster_ops,
            rep=rep_idx,
            samples=tuple(idx for idx, _ in sampled),
            sampled_ops=pooled_ops,
            sampled_cycles=pooled_cycles,
            cpo=cpo,
            projected_cycles=cpo * cluster_ops,
            error_cycles=half_spread * cluster_ops,
            region_cycles=pooled_region / max(1, pooled_ops) * cluster_ops,
        ))

    detailed = sum(t.ops + t.warm_ops for t in timings.values())

    return SampleReport(
        workload=workload_key,
        loop=spec.name,
        strategy=strategy.value,
        core=core,
        seed=seed,
        n=n,
        interval_size=interval_size,
        warmup=warmup,
        requested_clusters=clusters,
        k=clustering.k,
        total_ops=run.total_ops,
        intervals=len(run.intervals),
        head_intervals=head_count,
        head_ops=head_ops,
        head_cycles=head_cycles,
        detailed_ops=detailed,
        projected_cycles=head_cycles + round(
            sum(c.projected_cycles for c in stats)
        ),
        projected_region_cycles=head_region + round(
            sum(c.region_cycles for c in stats)
        ),
        clusters=tuple(stats),
    )


def sample_loop(
    spec: "LoopSpec",
    strategy: Strategy,
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    *,
    core: str = "ooo",
    interval_size: int = 2048,
    warmup: int = 1024,
    clusters: int | None = None,
    max_clusters: int = 8,
    samples: int = SAMPLES_PER_CLUSTER,
    n_override: int | None = None,
    lane_engine: str | None = None,
    use_cache: bool = True,
    workload_key: str = "",
) -> SampleReport:
    """Project whole-program cycles for one loop from sampled intervals.

    Mirrors :func:`~repro.experiments.runner.run_loop` argument
    conventions.  ``workload_key`` names the by_name-resolvable workload
    the spec came from; it travels in the report so any sweep worker can
    regenerate the sampled program from strings alone.  An
    :class:`LsuOverflowError` from a representative's timing degrades to
    the forced sequential fallback, exactly like the exact runner.
    """
    if core not in ("ooo", "inorder"):
        raise ValueError(f"unknown core model {core!r}")
    if interval_size <= 0:
        raise ValueError(f"interval size must be positive, got {interval_size}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    if samples < 1:
        raise ValueError(f"samples per cluster must be >= 1, got {samples}")
    if lane_engine is not None:
        from repro.emu.lanes import resolve_engine

        resolve_engine(lane_engine)  # fail fast, before cache lookup
    n = spec.n if n_override is None else min(n_override, spec.n)
    key = (
        "sample", SAMPLE_VERSION, spec.loop.name, strategy, seed, config,
        core, interval_size, warmup, clusters, max_clusters, samples, n,
    )
    cache = result_cache()
    if use_cache:
        payload = cache.get(key)
        if payload is not None:
            return payload["report"]

    try:
        report = _sample_once(
            spec, strategy, seed, n, config, core, interval_size, warmup,
            clusters, max_clusters, samples, lane_engine, workload_key,
        )
    except LsuOverflowError:
        seq_config = config.with_overrides(srv_force_sequential=True)
        report = _sample_once(
            spec, strategy, seed, n, seq_config, core, interval_size,
            warmup, clusters, max_clusters, samples, lane_engine,
            workload_key,
        )
        report = replace(report, degraded=True)

    if use_cache:
        cache.put(key, {"report": report})
    return report


def sample_named(
    workload_name: str,
    loop_name: str | None = None,
    strategy: Strategy = Strategy.SRV,
    **kwargs,
) -> SampleReport:
    """:func:`sample_loop` addressed by by_name-style workload/loop keys."""
    workload, spec = resolve_spec(workload_name, loop_name)
    return sample_loop(
        spec, strategy, workload_key=workload.name, **kwargs
    )
