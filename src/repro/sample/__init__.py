"""repro.sample — interval-sampled simulation with cycle projection.

Slices a program's dynamic op stream into fixed-size intervals,
fingerprints each with a memory-access/op-class feature vector, clusters
the fingerprints (seeded k-means, k by BIC), re-simulates one
representative per cluster in detail through the streaming pipeline with
a warm-up window and ambient-cache checkpointing, and projects
whole-program cycles with per-cluster error bars.  See
``docs/ARCHITECTURE.md`` §12 for the dataflow and the warm-state
contract.
"""

from repro.sample.cluster import (
    Clustering,
    cluster_intervals,
    kmeans,
    representatives,
)
from repro.sample.fingerprint import FEATURE_NAMES, FingerprintAccumulator
from repro.sample.intervals import (
    FingerprintRun,
    IntervalRecord,
    Segment,
    collect_segments,
    fingerprint_pass,
    safe_cut,
)
from repro.sample.project import (
    DEFAULT_ERROR_BOUND_PCT,
    SAMPLE_VERSION,
    SAMPLES_PER_CLUSTER,
    ClusterStat,
    SampleReport,
    resolve_spec,
    sample_loop,
    sample_named,
)

__all__ = [
    "Clustering",
    "cluster_intervals",
    "kmeans",
    "representatives",
    "FEATURE_NAMES",
    "FingerprintAccumulator",
    "FingerprintRun",
    "IntervalRecord",
    "Segment",
    "collect_segments",
    "fingerprint_pass",
    "safe_cut",
    "DEFAULT_ERROR_BOUND_PCT",
    "SAMPLE_VERSION",
    "SAMPLES_PER_CLUSTER",
    "ClusterStat",
    "SampleReport",
    "resolve_spec",
    "sample_loop",
    "sample_named",
]
