"""Interval slicing over the dynamic op stream.

Two passes share the interval geometry defined here:

* the **fingerprint pass** (:func:`fingerprint_pass`) runs the program
  once functionally, slicing the stream into fixed-size bins of
  ``interval_size`` dynamic ops and building one feature vector per bin
  (:mod:`repro.sample.fingerprint`).  No ops are retained — memory is
  O(intervals), never O(trace).
* the **collection pass** (:func:`collect_segments`) re-emulates the
  identical stream and materialises only the representative intervals
  chosen by clustering, each with a trailing warm-up window and
  (optionally) a clone of the ambient cache state at its start.

Fingerprint bins are cut strictly by op index.  Timed segments are not:
an SRV region executes atomically (its LSU ``begin_region``/
``end_region`` pairing, speculative buffer and replay decisions are only
coherent across whole regions), so segment boundaries snap to the next
*region-safe cut* — an op outside any region, or a region's own
``srv_start`` marker.  The per-op cost normalisation in
:mod:`repro.sample.project` absorbs the resulting few-op jitter.

Both passes record the emulator's :meth:`boundary_digest
<repro.emu.interpreter.Interpreter.boundary_digest>` at every interval
close; :mod:`repro.sample.project` compares them so a divergence between
the fingerprinted stream and the re-simulated stream is an error, never
a silent mis-projection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.observe.events import IntervalCounterSink
from repro.observe import events as _obs
from repro.pipeline.trace import RegionEvent, TraceOp
from repro.sample.fingerprint import FingerprintAccumulator

if TYPE_CHECKING:
    from repro.emu.interpreter import Interpreter
    from repro.emu.metrics import EmuMetrics
    from repro.memory.hierarchy import CacheHierarchy


def safe_cut(op: TraceOp) -> bool:
    """True when a segment may begin *at* ``op``.

    Cut points are ops outside any SRV region, or a region's own
    ``srv_start`` marker (the marker is recorded with ``in_region`` set,
    but nothing of the region precedes it).
    """
    return (not op.in_region) or op.region_event is RegionEvent.START


@dataclass(frozen=True)
class IntervalRecord:
    """One fingerprinted interval of the dynamic stream."""

    index: int                  #: interval number (op ``i`` is in ``i // size``)
    start: int                  #: first dynamic op index
    length: int                 #: ops in the interval (the tail may be short)
    vector: tuple[float, ...]   #: fingerprint feature vector


@dataclass(frozen=True)
class FingerprintRun:
    """Result of the fingerprint pass."""

    interval_size: int
    intervals: tuple[IntervalRecord, ...]
    total_ops: int
    digests: tuple[tuple, ...]  #: boundary digest per closed interval
    metrics: "EmuMetrics"


def fingerprint_pass(
    interp: "Interpreter",
    interval_size: int,
    *,
    feed_caches: "CacheHierarchy | None" = None,
) -> FingerprintRun:
    """Run ``interp`` to completion, fingerprinting every interval.

    The interpreter must be fresh.  A private
    :class:`~repro.observe.events.IntervalCounterSink` is installed for
    the duration (any caller-installed bus is parked, exactly like the
    streaming warm pre-pass) so the emulator's region/replay/fallback
    events contribute counter features deterministically in either trace
    mode.  ``feed_caches`` optionally receives every memory access in
    stream order — the sampler uses this to warm the ambient cache
    hierarchy for the collection pass without a third emulation.
    """
    if interval_size <= 0:
        raise ValueError(f"interval size must be positive, got {interval_size}")
    lanes = interp.lanes
    sink = IntervalCounterSink(interval_size)
    saved_bus = _obs.ACTIVE
    _obs.ACTIVE = _obs.EventBus(sink)

    intervals: list[IntervalRecord] = []
    digests: list[tuple] = []
    acc = FingerprintAccumulator(lanes)
    cache_access = feed_caches.access if feed_caches is not None else None
    start = 0
    count = 0

    def close() -> None:
        if cache_access is not None:
            stats = feed_caches.stats
            acc.fold_cache_misses(
                stats.l1_misses - close.l1, stats.l2_misses - close.l2,
            )
            close.l1, close.l2 = stats.l1_misses, stats.l2_misses
        _close(intervals, digests, acc, sink, interp,
               start, count, interval_size)

    close.l1 = close.l2 = 0
    try:
        for op in interp.iter_trace():
            acc.add(op)
            if cache_access is not None:
                for a in op.mem:
                    cache_access(a.addr, a.size, a.is_store)
            count += 1
            if count - start == interval_size:
                close()
                acc = FingerprintAccumulator(lanes)
                start = count
    finally:
        _obs.ACTIVE = saved_bus
    if count > start:
        close()
    return FingerprintRun(
        interval_size=interval_size,
        intervals=tuple(intervals),
        total_ops=count,
        digests=tuple(digests),
        metrics=interp.metrics,
    )


def _close(intervals, digests, acc, sink, interp, start, count, size) -> None:
    """Finalize the interval covering ops ``[start, count)``."""
    idx = start // size
    # every event for ops < count has been emitted by the time op
    # count-1 is yielded (emission happens at recording, recording
    # precedes yielding), so bins <= idx are complete
    for _, counts in sink.drain(before=idx + 1):
        acc.fold_counters(counts)
    intervals.append(IntervalRecord(
        index=idx, start=start, length=count - start, vector=acc.vector(),
    ))
    digests.append(interp.boundary_digest())


# ---------------------------------------------------------------------------
# collection pass
# ---------------------------------------------------------------------------


@dataclass
class Segment:
    """One materialised representative interval, ready to time."""

    interval: int               #: interval index this segment measures
    warm: list[TraceOp] = field(default_factory=list)
    ops: list[TraceOp] = field(default_factory=list)
    #: ambient cache state cloned at the segment's first op (None when
    #: the caller did not maintain an ambient hierarchy)
    caches: "CacheHierarchy | None" = None


def collect_segments(
    ops: Iterable[TraceOp],
    targets: Iterable[int],
    interval_size: int,
    warmup: int,
    *,
    ambient: "CacheHierarchy | None" = None,
) -> Iterator[Segment]:
    """Stream ``ops`` once, yielding a :class:`Segment` per target interval.

    ``targets`` are interval indices (ascending order is enforced here).
    Each segment starts at the first region-safe cut at or after its
    nominal start and ends at the first region-safe cut at or after its
    nominal end, so whole SRV regions are never split.  The warm-up
    window is the trailing ops before the segment start — at least
    ``warmup`` of them when available, extended left as needed so the
    window itself starts at a safe cut.

    When ``ambient`` is given, every op's accesses are fed to it in
    stream order and each segment captures a deep copy of its state at
    the segment's first op — the cache contents an exact run would have
    at that point (up to timing-model access interleaving).
    """
    import copy

    pending = deque(sorted(set(targets)))
    tail: deque[TraceOp] = deque()
    tail_start = 0        #: absolute op index of tail[0]
    cuts: deque[int] = deque()  #: absolute indices of safe cuts in tail
    current: Segment | None = None
    current_end = 0
    feed = ambient.access if ambient is not None else None

    for op in ops:
        cut = safe_cut(op)
        if current is not None and op.index >= current_end and cut:
            yield current
            current = None
            if not pending:
                return  # nothing left to collect: stop consuming (and
                # therefore emulating) the rest of the stream
        if current is None and pending and cut \
                and op.index >= pending[0] * interval_size:
            j = pending.popleft()
            current = Segment(
                interval=j,
                warm=list(tail),
                caches=copy.deepcopy(ambient) if ambient is not None else None,
            )
            current_end = (j + 1) * interval_size
        if feed is not None:
            for a in op.mem:
                feed(a.addr, a.size, a.is_store)
        if not tail:
            tail_start = op.index
        tail.append(op)
        if cut:
            cuts.append(op.index)
        # keep >= warmup ops while never trimming into a region: advance
        # the head cut-to-cut (the first op of any trace is a safe cut,
        # so the head always sits on one) while the remaining window
        # still covers the warm-up budget
        while len(cuts) >= 2 and op.index + 1 - cuts[1] >= warmup:
            for _ in range(cuts[1] - tail_start):
                tail.popleft()
            tail_start = cuts[1]
            cuts.popleft()
        if current is not None:
            current.ops.append(op)
    if current is not None:
        yield current
