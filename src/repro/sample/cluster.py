"""Seeded k-means over interval fingerprints, with BIC model selection.

Pure Python on purpose: interval counts are small (a multi-million-op
program at the default interval size is a few hundred points of ~30
dimensions), and avoiding float-reduction-order differences between
numpy builds keeps the clustering — and therefore the projection
report — byte-identical for a given ``(seed, interval_size, k)``.

Determinism: initial centroids come from a private
:func:`~repro.common.rng.make_rng` stream (k-means++ D² seeding),
Lloyd iteration runs to an assignment fixpoint with ties broken toward
the lower cluster id, and an emptied cluster is deterministically
re-seeded with the point farthest from its centroid.  ``choose_k``
scores k = 1..kmax with the spherical-Gaussian BIC (the X-means
formulation) and keeps the smallest k within the best score.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.common.rng import make_rng

Vector = Sequence[float]

_MAX_ITERS = 64
_VAR_FLOOR = 1e-12


def standardize(vectors: Sequence[Vector]) -> list[tuple[float, ...]]:
    """Per-dimension z-score (population std); constant dims map to 0."""
    if not vectors:
        return []
    dims = len(vectors[0])
    n = len(vectors)
    means = [sum(v[d] for v in vectors) / n for d in range(dims)]
    stds = []
    for d in range(dims):
        var = sum((v[d] - means[d]) ** 2 for v in vectors) / n
        stds.append(math.sqrt(var))
    return [
        tuple(
            (v[d] - means[d]) / stds[d] if stds[d] > 0.0 else 0.0
            for d in range(dims)
        )
        for v in vectors
    ]


def _dist2(a: Vector, b: Vector) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _mean(points: list[Vector], dims: int) -> tuple[float, ...]:
    n = len(points)
    return tuple(sum(p[d] for p in points) / n for d in range(dims))


@dataclass(frozen=True)
class Clustering:
    """One k-means solution."""

    k: int
    assignments: tuple[int, ...]       #: cluster id per input vector
    centroids: tuple[tuple[float, ...], ...]
    inertia: float                     #: sum of squared distances
    bic: float


def kmeans(
    vectors: Sequence[Vector], k: int, seed: int = 0
) -> tuple[tuple[int, ...], tuple[tuple[float, ...], ...], float]:
    """Deterministic k-means: ``(assignments, centroids, inertia)``."""
    n = len(vectors)
    if not 1 <= k <= n:
        raise ValueError(f"k must be within [1, {n}], got {k}")
    dims = len(vectors[0])
    rng = make_rng(seed, "sample/kmeans")

    # k-means++ D² seeding
    centroids: list[Vector] = [vectors[rng.randrange(n)]]
    d2 = [_dist2(v, centroids[0]) for v in vectors]
    while len(centroids) < k:
        total = sum(d2)
        if total <= 0.0:
            # all remaining points coincide with a centroid: spread the
            # seeds over distinct indices so k clusters still form
            for v in vectors:
                if all(_dist2(v, c) > 0.0 for c in centroids):
                    break
            else:
                v = vectors[len(centroids) % n]
            centroids.append(v)
        else:
            pick = rng.random() * total
            acc = 0.0
            idx = n - 1
            for i, w in enumerate(d2):
                acc += w
                if acc >= pick:
                    idx = i
                    break
            centroids.append(vectors[idx])
        d2 = [min(a, _dist2(v, centroids[-1])) for a, v in zip(d2, vectors)]

    assignments = [0] * n
    for _ in range(_MAX_ITERS):
        changed = False
        for i, v in enumerate(vectors):
            best, best_d = 0, _dist2(v, centroids[0])
            for c in range(1, k):
                d = _dist2(v, centroids[c])
                if d < best_d:
                    best, best_d = c, d
            if assignments[i] != best:
                assignments[i] = best
                changed = True
        members: list[list[Vector]] = [[] for _ in range(k)]
        for i, v in enumerate(vectors):
            members[assignments[i]].append(v)
        for c in range(k):
            if members[c]:
                centroids[c] = _mean(members[c], dims)
            else:
                # re-seed an emptied cluster with the globally farthest
                # point from its current assignment's centroid
                far_i = max(
                    range(n),
                    key=lambda i: _dist2(vectors[i],
                                         centroids[assignments[i]]),
                )
                centroids[c] = vectors[far_i]
                assignments[far_i] = c
                changed = True
        if not changed:
            break
    inertia = sum(
        _dist2(v, centroids[assignments[i]]) for i, v in enumerate(vectors)
    )
    return tuple(assignments), tuple(tuple(c) for c in centroids), inertia


def bic_score(
    vectors: Sequence[Vector], assignments: Sequence[int], k: int,
    inertia: float,
) -> float:
    """Spherical-Gaussian BIC of a clustering (higher is better)."""
    n = len(vectors)
    dims = len(vectors[0])
    variance = max(inertia / max(1, n - k), _VAR_FLOOR)
    sizes = [0] * k
    for a in assignments:
        sizes[a] += 1
    llh = 0.0
    for size in sizes:
        if size <= 0:
            continue
        llh += (
            size * math.log(size)
            - size * math.log(n)
            - size * dims / 2.0 * math.log(2.0 * math.pi * variance)
            - (size - 1) / 2.0
        )
    params = k - 1 + k * dims + 1
    return llh - params / 2.0 * math.log(n)


def cluster_intervals(
    vectors: Sequence[Vector],
    seed: int = 0,
    *,
    k: int | None = None,
    max_k: int = 8,
) -> Clustering:
    """Cluster fingerprint vectors; pick k by BIC unless forced.

    Vectors are standardized internally.  With ``k=None`` every
    k = 1..min(max_k, n) is scored and the smallest k within the best
    BIC wins (ties favour fewer detailed simulations).
    """
    n = len(vectors)
    if n == 0:
        raise ValueError("cannot cluster zero intervals")
    z = standardize(vectors)
    if k is not None:
        kk = min(k, n)
        assignments, centroids, inertia = kmeans(z, kk, seed)
        return Clustering(
            k=kk, assignments=assignments, centroids=centroids,
            inertia=inertia,
            bic=bic_score(z, assignments, kk, inertia),
        )
    best: Clustering | None = None
    for kk in range(1, min(max_k, n) + 1):
        assignments, centroids, inertia = kmeans(z, kk, seed)
        score = bic_score(z, assignments, kk, inertia)
        candidate = Clustering(
            k=kk, assignments=assignments, centroids=centroids,
            inertia=inertia, bic=score,
        )
        if best is None or score > best.bic:
            best = candidate
    assert best is not None
    return best


def representatives(
    vectors: Sequence[Vector],
    clustering: Clustering,
    exclude: frozenset[int] | set[int] = frozenset(),
) -> dict[int, tuple[int, int | None]]:
    """Per cluster: ``(representative, probe)`` interval positions.

    The representative is the member closest to the centroid (ties to
    the lowest index); the probe — used for the per-cluster error bar —
    is the member *farthest* from the centroid, or ``None`` for
    singleton clusters.  Positions index into ``vectors``.

    ``exclude`` lists positions to avoid when choosing (the sampler
    passes the cold-start head: fingerprints are functional, so a
    cold-transient interval can sit in the same cluster as steady-state
    ones, and electing it would extrapolate transient cycles-per-op to
    the whole cluster).  A cluster whose members are all excluded falls
    back to choosing among them.
    """
    z = standardize(vectors)
    out: dict[int, tuple[int, int | None]] = {}
    for c in range(clustering.k):
        members = [
            i for i, a in enumerate(clustering.assignments) if a == c
        ]
        if not members:
            continue
        eligible = [i for i in members if i not in exclude]
        if eligible:
            members = eligible
        centroid = clustering.centroids[c]
        rep = min(members, key=lambda i: (_dist2(z[i], centroid), i))
        probe: int | None = None
        if len(members) > 1:
            probe = max(members, key=lambda i: (_dist2(z[i], centroid), -i))
            if probe == rep:
                probe = None
        out[c] = (rep, probe)
    return out
