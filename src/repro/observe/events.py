"""Typed event bus for simulator observability.

Instrumentation *sites* throughout the emulator
(:mod:`repro.emu.interpreter`), both timing models
(:mod:`repro.pipeline.core`, :mod:`repro.pipeline.inorder`), the SRV LSU
(:mod:`repro.lsu.unit`) and the region engine (:mod:`repro.srv.engine`)
poll the module-level :data:`ACTIVE` bus — the same pattern as
:data:`repro.verify.faults.ACTIVE` — so the disabled path costs a single
``is not None`` check per site and the simulators stay bit-identical on
cycles whether or not anyone is listening.

Three layers:

* :class:`Event` — one immutable record: kind, source domain, dynamic
  op index, timestamp (cycles for ``pipe``/``lsu`` events, emulator
  steps for ``emu``/``srv`` events), optional duration/pc/lane and a
  small ``data`` tuple of key/value pairs;
* sinks — :class:`ListSink` (materialise everything),
  :class:`RingBufferSink` (bounded, for streaming runs: keeps the last
  ``capacity`` events and counts drops), :class:`CounterSink` (per-kind
  tallies only) and :class:`NullSink` (swallow — the "enabled but
  observing nothing" configuration used by the overhead guard test);
* :class:`EventBus` — routes ``emit`` calls to the sink.  A bus wrapping
  a :class:`NullSink` rebinds ``emit`` to a module-level no-op so the
  per-event cost is one dead function call, never an :class:`Event`
  allocation.

Canonical ordering
------------------

The fused streaming pipeline (:func:`repro.pipeline.stream.simulate_streaming`)
interleaves emulator and timing-model work, while the materialised path
runs them back to back, so raw emission order differs between
``--trace-mode stream`` and ``list``.  :func:`canonical_order` re-sorts
by ``(op, domain rank)`` with a stable sort: per-domain relative order is
identical on both paths, so the sorted sequences are equal event-for-event
(pinned by ``tests/test_observe.py``).
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from contextlib import contextmanager
from dataclasses import dataclass

from repro.common.errors import ObserveError


class EventKind(enum.Enum):
    """Event taxonomy (see docs/ARCHITECTURE.md section 9)."""

    # per-op pipeline lifecycle
    FETCH = "fetch"
    ISSUE = "issue"
    COMMIT = "commit"
    # SRV region structure
    REGION_BEGIN = "region_begin"
    REGION_PASS = "region_pass"
    REGION_END = "region_end"
    LANE_REPLAY = "lane_replay"
    SEQ_FALLBACK = "seq_fallback"
    BARRIER_STALL = "barrier_stall"
    # memory disambiguation
    H_VIOLATION = "horizontal_violation"
    V_VIOLATION = "vertical_violation"
    STORE_SET_CONFLICT = "store_set_conflict"
    WAR_SUPPRESS = "war_suppress"
    WAW_RESOLVE = "waw_resolve"
    STL_FORWARD = "store_to_load_forward"
    # memory hierarchy
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    # sweep-service job lifecycle (domain "serve"; t is ms since service
    # start, op is -1 — jobs are not trace-op scoped)
    JOB_ACCEPT = "job_accept"
    JOB_START = "job_start"
    JOB_RETRY = "job_retry"
    JOB_DONE = "job_done"
    JOB_FAIL = "job_fail"
    JOB_REJECT = "job_reject"


#: Source domains and their rank in the canonical order.  ``emu`` and
#: ``srv`` timestamps are emulator steps; ``pipe`` and ``lsu``
#: timestamps are simulated cycles.
DOMAIN_RANK: dict[str, int] = {
    "emu": 0, "pipe": 1, "lsu": 2, "srv": 3, "serve": 4,
}

#: Domains whose ``t`` field is a pipeline cycle number.
CYCLE_DOMAINS = frozenset(("pipe", "lsu"))


@dataclass(frozen=True, slots=True)
class Event:
    """One observation: immutable, hashable, cheap to compare."""

    kind: EventKind
    domain: str
    op: int           # dynamic trace-op index (-1: not op-scoped)
    t: int            # cycles (pipe/lsu) or emulator steps (emu/srv)
    dur: int = 0
    pc: int = -1
    lane: int = -1
    #: sorted (key, value) pairs; values are ints, strs or tuples
    data: tuple = ()

    def get(self, key: str, default=None):
        for k, v in self.data:
            if k == key:
                return v
        return default

    @property
    def end(self) -> int:
        return self.t + self.dur


def canonical_order(events) -> tuple[Event, ...]:
    """Stable-sort events into the trace-mode-independent order."""
    rank = DOMAIN_RANK
    return tuple(
        sorted(events, key=lambda e: (e.op, rank.get(e.domain, 9)))
    )


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


class NullSink:
    """Swallows everything: the zero-overhead 'observe nothing' sink."""

    __slots__ = ()

    def accept(self, event: Event) -> None:  # pragma: no cover - rebound away
        pass

    def finalized(self) -> tuple[Event, ...]:
        return ()


class ListSink:
    """Materialises every event (the default for ``repro trace``)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def accept(self, event: Event) -> None:
        self.events.append(event)

    def finalized(self) -> tuple[Event, ...]:
        return canonical_order(self.events)


class RingBufferSink:
    """Bounded sink for streaming runs: keeps the newest ``capacity``
    events and counts what it had to drop."""

    __slots__ = ("events", "capacity", "dropped")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ObserveError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque[Event] = deque(maxlen=capacity)
        self.dropped = 0

    def accept(self, event: Event) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    def finalized(self) -> tuple[Event, ...]:
        return canonical_order(self.events)


class CounterSink:
    """Per-kind tallies only — cheap always-on counters."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def accept(self, event: Event) -> None:
        self.counts[event.kind] += 1

    def flush(self) -> Counter:
        """Return the tallies accumulated so far and reset to zero.

        The deterministic interval-flush path used by the sampling layer:
        callers flush at fixed points in the *op stream* (not wall-clock),
        so successive flushes partition the run identically regardless of
        trace mode.
        """
        out = self.counts
        self.counts = Counter()
        return out

    def finalized(self) -> tuple[Event, ...]:
        return ()


class IntervalCounterSink:
    """Per-kind tallies binned by fixed-size dynamic-op windows.

    Events are assigned to bin ``event.op // interval_size`` — a pure
    function of the op index each event is already stamped with — so the
    binned counts are identical between ``stream`` and ``list`` trace
    modes even though raw arrival order differs (the fused pipeline
    interleaves domains; the materialised path runs them back to back).
    Events that are not op-scoped (``op == -1``, e.g. serve-domain job
    events) are dropped.  :meth:`drain` is the flush path: it hands the
    finished bins to the caller and frees them.
    """

    __slots__ = ("interval_size", "_bins")

    def __init__(self, interval_size: int) -> None:
        if interval_size <= 0:
            raise ObserveError(
                f"interval size must be positive, got {interval_size}"
            )
        self.interval_size = interval_size
        self._bins: dict[int, Counter] = {}

    def accept(self, event: Event) -> None:
        if event.op < 0:
            return
        idx = event.op // self.interval_size
        bin_ = self._bins.get(idx)
        if bin_ is None:
            bin_ = self._bins[idx] = Counter()
        bin_[event.kind] += 1

    def drain(self, before: int | None = None) -> list[tuple[int, Counter]]:
        """Flush bins with index < ``before`` (all bins when ``None``),
        returned in ascending bin order and removed from the sink."""
        if before is None:
            out = sorted(self._bins.items())
            self._bins = {}
            return out
        out = sorted(
            (idx, c) for idx, c in self._bins.items() if idx < before
        )
        for idx, _ in out:
            del self._bins[idx]
        return out

    def finalized(self) -> tuple[Event, ...]:
        return ()


# ---------------------------------------------------------------------------
# bus
# ---------------------------------------------------------------------------


def _swallow(*_args, **_kwargs) -> None:
    pass


class EventBus:
    """Routes instrumentation-site emissions to one sink.

    ``op`` and ``cycle`` are *context* attributes: the timing models set
    them per memory op so context-free sites (the LSU, which has neither
    an op index nor a clock of its own) can stamp their events via
    :meth:`emit_lsu`.
    """

    __slots__ = ("sink", "op", "cycle", "emit")

    def __init__(self, sink) -> None:
        self.sink = sink
        self.op = -1
        self.cycle = -1
        # a null bus never allocates an Event: emit degrades to a no-op
        self.emit = _swallow if isinstance(sink, NullSink) else self._emit

    def _emit(
        self,
        kind: EventKind,
        domain: str,
        op: int,
        t: int,
        dur: int = 0,
        pc: int = -1,
        lane: int = -1,
        data: tuple = (),
    ) -> None:
        self.sink.accept(Event(kind, domain, op, t, dur, pc, lane, data))

    def emit_lsu(
        self, kind: EventKind, lane: int = -1, data: tuple = ()
    ) -> None:
        """Emit from the LSU using the bus's op/cycle context."""
        self.emit(kind, "lsu", self.op, self.cycle, 0, -1, lane, data)


#: The installed bus, or ``None`` (the common case).  Instrumentation
#: sites read this exactly once per scope and skip all work when unset.
ACTIVE: EventBus | None = None


def install(sink) -> EventBus:
    """Install ``sink`` behind a fresh bus; error if one is installed."""
    global ACTIVE
    if ACTIVE is not None:
        raise ObserveError("an observe event bus is already installed")
    bus = EventBus(sink)
    ACTIVE = bus
    return bus


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def capture(sink=None):
    """Context manager: install ``sink`` (default a fresh
    :class:`ListSink`), yield it, always uninstall."""
    sink = ListSink() if sink is None else sink
    install(sink)
    try:
        yield sink
    finally:
        uninstall()
