"""Exporters for observed runs: Perfetto JSON, ASCII timelines, tables.

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome Trace
  Format (the JSON array flavour Perfetto and ``chrome://tracing``
  accept): per-op execute slices, region/pass spans, stall spans, and
  instant markers for replays, violations and fallbacks.  Timestamps are
  simulated cycles reported as microseconds (1 cycle = 1 us), which
  Perfetto renders with sensible zoom behaviour.
* :func:`ascii_timeline` — a terminal rendering of the per-region
  structure plus the cycle-attribution summary.
* :func:`counters_table` / :func:`attribution_table` — tabular views
  built on :class:`repro.experiments.report.ExperimentResult` so the
  CLI prints them with the same formatting as the paper tables.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.experiments.report import ExperimentResult
from repro.observe.attrib import BUCKETS, RunAttribution
from repro.observe.events import CYCLE_DOMAINS, Event, EventKind

#: Perfetto thread ids (lanes in the UI) for pipe-domain slices.
_TID_OPS = 1
_TID_REGIONS = 2
_TID_PASSES = 3
_TID_STALLS = 4
_TID_MARKS = 5

_THREAD_NAMES = {
    _TID_OPS: "ops (issue→complete)",
    _TID_REGIONS: "SRV regions",
    _TID_PASSES: "region passes",
    _TID_STALLS: "stalls (barrier/miss/squash)",
    _TID_MARKS: "violations & replays",
}

#: pid 1 = the cycle-domain timeline; pid 2 = functional-emulator steps.
_PID_CYCLES = 1
_PID_EMU = 2


def _slice(name: str, ts: int, dur: int, tid: int, pid: int, args: dict):
    return {
        "name": name, "ph": "X", "ts": ts, "dur": max(dur, 0),
        "pid": pid, "tid": tid, "args": args,
    }


def _instant(name: str, ts: int, tid: int, pid: int, args: dict):
    return {
        "name": name, "ph": "i", "ts": ts, "s": "t",
        "pid": pid, "tid": tid, "args": args,
    }


def _args(event: Event) -> dict:
    args = {k: list(v) if isinstance(v, tuple) else v for k, v in event.data}
    if event.op >= 0:
        args["op"] = event.op
    if event.pc >= 0:
        args["pc"] = event.pc
    if event.lane >= 0:
        args["lane"] = event.lane
    return args


def to_chrome_trace(events, label: str = "repro") -> dict:
    """Chrome Trace Format / Perfetto JSON object for an event stream."""
    trace: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": _PID_CYCLES,
         "args": {"name": f"{label}: timing model (cycles)"}},
        {"name": "process_name", "ph": "M", "pid": _PID_EMU,
         "args": {"name": f"{label}: functional emulator (steps)"}},
    ]
    for tid, name in _THREAD_NAMES.items():
        trace.append({
            "name": "thread_name", "ph": "M", "pid": _PID_CYCLES,
            "tid": tid, "args": {"name": name},
        })
    trace.append({
        "name": "thread_name", "ph": "M", "pid": _PID_EMU,
        "tid": 1, "args": {"name": "SRV region structure"},
    })

    for event in events:
        kind = event.kind
        if event.domain not in CYCLE_DOMAINS:
            # emulator/srv-engine events live on their own step timeline
            trace.append(_instant(
                kind.value, event.t, 1, _PID_EMU, _args(event)
            ))
            continue
        if kind is EventKind.ISSUE:
            name = event.get("cls", "op")
            trace.append(_slice(
                f"{name}@{event.pc}", event.t, event.dur,
                _TID_OPS, _PID_CYCLES, _args(event),
            ))
        elif kind is EventKind.REGION_END:
            trace.append(_slice(
                f"region {event.get('region', '?')}", event.t, event.dur,
                _TID_REGIONS, _PID_CYCLES, _args(event),
            ))
        elif kind is EventKind.REGION_PASS:
            trace.append(_slice(
                f"pass {event.get('pass', '?')}", event.t, event.dur,
                _TID_PASSES, _PID_CYCLES, _args(event),
            ))
        elif kind in (
            EventKind.BARRIER_STALL,
            EventKind.CACHE_MISS,
            EventKind.STORE_SET_CONFLICT,
        ):
            trace.append(_slice(
                kind.value, event.t, event.dur,
                _TID_STALLS, _PID_CYCLES, _args(event),
            ))
        elif kind in (EventKind.FETCH, EventKind.COMMIT, EventKind.CACHE_HIT):
            # high-volume lifecycle events would swamp the UI; they stay
            # available in the counters table and the raw stream
            continue
        else:
            trace.append(_instant(
                kind.value, event.t, _TID_MARKS, _PID_CYCLES, _args(event),
            ))
    return {"traceEvents": trace, "displayTimeUnit": "ns"}


def write_chrome_trace(path: str, events, label: str = "repro") -> int:
    """Write the Perfetto JSON to ``path``; returns the event count."""
    payload = to_chrome_trace(events, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------


def counters_table(events, name: str = "trace") -> ExperimentResult:
    """Per-kind event counts split by source domain."""
    counts: Counter = Counter()
    for event in events:
        counts[(event.kind, event.domain)] += 1
    rows = [
        (kind.value, domain, count)
        for (kind, domain), count in sorted(
            counts.items(), key=lambda item: (item[0][0].value, item[0][1])
        )
    ]
    return ExperimentResult(
        name=name,
        title="Event counters",
        columns=("event", "domain", "count"),
        rows=rows,
        summary={"total_events": sum(counts.values())},
    )


def attribution_table(
    rows: list[tuple[str, RunAttribution]],
    name: str = "attrib",
    total_row: bool = False,
) -> ExperimentResult:
    """Cycle-attribution table: one row per run plus a rollup summary.

    With ``total_row`` a ``TOTAL`` row is appended (the suite rollup);
    it is derived from the per-run rows and excluded from the summary
    statistics, which always aggregate the runs exactly once.
    """
    table_rows = []
    totals = {bucket: 0 for bucket in BUCKETS}
    total_cycles = 0
    for label, attribution in rows:
        attribution.check()
        table_rows.append(
            (label, attribution.total)
            + tuple(attribution.buckets[bucket] for bucket in BUCKETS)
        )
        total_cycles += attribution.total
        for bucket in BUCKETS:
            totals[bucket] += attribution.buckets[bucket]
    if total_row:
        table_rows.append(
            ("TOTAL", total_cycles)
            + tuple(totals[bucket] for bucket in BUCKETS)
        )
    summary: dict = {"runs": len(rows), "total_cycles": total_cycles}
    if total_cycles:
        for bucket in BUCKETS:
            summary[f"{bucket}_fraction"] = totals[bucket] / total_cycles
    return ExperimentResult(
        name=name,
        title="Cycle attribution (buckets sum exactly to cycles)",
        columns=("run", "cycles") + BUCKETS,
        rows=table_rows,
        summary=summary,
    )


# ---------------------------------------------------------------------------
# ASCII timeline
# ---------------------------------------------------------------------------


def ascii_timeline(attribution: RunAttribution, width: int = 60) -> str:
    """Terminal rendering: bucket summary + one bar per SRV region."""
    total = max(attribution.total, 1)
    lines = [
        "cycles {:d} | {}".format(
            attribution.total,
            "  ".join(
                f"{bucket}={attribution.buckets[bucket]}"
                for bucket in BUCKETS
            ),
        )
    ]
    if not attribution.regions:
        lines.append("(no SRV regions in this run)")
        return "\n".join(lines)
    scale = width / total
    for region in attribution.regions:
        lo = min(int(region.start * scale), width - 1)
        hi = max(min(int(region.end * scale), width), lo + 1)
        bar = " " * lo + "█" * (hi - lo) + " " * (width - hi)
        flag = " FALLBACK" if region.fallback else ""
        replay = (
            f" replay={region.replay_cycles}c"
            if region.replay_cycles else ""
        )
        lines.append(
            f"region {region.index:3d} |{bar}| "
            f"[{region.start:6d}..{region.end:6d}] "
            f"passes={region.passes}{replay}{flag}"
        )
    return "\n".join(lines)
