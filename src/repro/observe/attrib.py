"""Cycle attribution: where did every simulated cycle go?

Consumes a canonical event stream (:mod:`repro.observe.events`) from one
timed run and buckets every cycle of the run into

``{compute, memory, replay, barrier, fallback, other}``

— the quantities the paper analyses in figures 8–11 but which a bare
cycle count hides.  The buckets are *exact by construction*: each bucket
is the measure of its interval set minus everything already claimed by a
higher-priority bucket, and ``other`` is the unclaimed remainder, so

    sum(buckets.values()) == total cycles

always holds (pinned by ``tests/test_observe.py``).

Priority order (highest first) and interval sources:

* ``barrier``  — ``BARRIER_STALL`` events: issue-stage idle windows
  created by the ``srv_end`` serialisation point (figure 8);
* ``fallback`` — ``REGION_END`` spans of regions executed via the
  section III-D7 sequential fallback;
* ``replay``   — ``REGION_PASS`` spans with pass number ≥ 1 (selective
  re-execution of violating lanes);
* ``memory``   — ``CACHE_MISS`` stall spans (completion beyond the L1
  hit latency) plus ``STORE_SET_CONFLICT`` squash penalties;
* ``compute``  — ``ISSUE`` spans (an op occupying execute resources);
* ``other``    — the remainder: front-end refill, mispredict redirects,
  drain, and issue-width gaps.

All intervals come from ``pipe``-domain events, so attribution is
identical under ``--trace-mode stream`` and ``list``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observe.events import Event, EventKind

#: Bucket names in report order.
BUCKETS: tuple[str, ...] = (
    "compute", "memory", "replay", "barrier", "fallback", "other",
)

#: Priority order for interval claiming (highest first).
_PRIORITY: tuple[str, ...] = (
    "barrier", "fallback", "replay", "memory", "compute",
)


def _merge(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge possibly-overlapping (start, end) intervals."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def _measure(merged: list[tuple[int, int]]) -> int:
    return sum(end - start for start, end in merged)


@dataclass(frozen=True)
class RegionSlice:
    """Timing summary of one SRV region instance (``pipe`` domain)."""

    index: int
    start: int
    end: int
    passes: int
    replay_cycles: int
    fallback: bool

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass
class RunAttribution:
    """Exact cycle buckets plus per-region slices for one run."""

    total: int
    buckets: dict[str, int]
    regions: tuple[RegionSlice, ...] = ()

    def check(self) -> None:
        """Raise if the buckets do not sum exactly to ``total``."""
        got = sum(self.buckets.values())
        if got != self.total:
            raise AssertionError(
                f"cycle buckets sum to {got}, expected {self.total}: "
                f"{self.buckets}"
            )

    def fraction(self, bucket: str) -> float:
        return self.buckets[bucket] / self.total if self.total else 0.0


def _interval_sources(
    events: tuple[Event, ...], total: int
) -> dict[str, list[tuple[int, int]]]:
    """Clipped candidate intervals per bucket from pipe-domain events."""
    by_bucket: dict[str, list[tuple[int, int]]] = {
        name: [] for name in _PRIORITY
    }

    def clip(t: int, dur: int) -> tuple[int, int] | None:
        start = max(0, t)
        end = min(total, t + dur)
        return (start, end) if end > start else None

    for event in events:
        if event.domain != "pipe":
            continue
        kind = event.kind
        if kind is EventKind.BARRIER_STALL:
            bucket = "barrier"
        elif kind is EventKind.REGION_END and event.get("fallback"):
            bucket = "fallback"
        elif kind is EventKind.REGION_PASS:
            if event.get("fallback") or not event.get("pass"):
                continue
            bucket = "replay"
        elif kind in (EventKind.CACHE_MISS, EventKind.STORE_SET_CONFLICT):
            bucket = "memory"
        elif kind is EventKind.ISSUE:
            bucket = "compute"
        else:
            continue
        span = clip(event.t, event.dur)
        if span is not None:
            by_bucket[bucket].append(span)
    return by_bucket


def region_slices(events: tuple[Event, ...]) -> tuple[RegionSlice, ...]:
    """Per-region timing rows from the pipe-domain region events."""
    passes: dict[int, int] = {}
    replay_cycles: dict[int, int] = {}
    slices: list[RegionSlice] = []
    for event in events:
        if event.domain != "pipe":
            continue
        if event.kind is EventKind.REGION_PASS:
            region = event.get("region", -1)
            passes[region] = passes.get(region, 0) + 1
            if event.get("pass") and not event.get("fallback"):
                replay_cycles[region] = (
                    replay_cycles.get(region, 0) + event.dur
                )
        elif event.kind is EventKind.REGION_END:
            region = event.get("region", -1)
            slices.append(RegionSlice(
                index=region,
                start=event.t,
                end=event.end,
                passes=passes.get(region, 0),
                replay_cycles=replay_cycles.get(region, 0),
                fallback=bool(event.get("fallback")),
            ))
    slices.sort(key=lambda s: s.index)
    return tuple(slices)


def attribute_run(
    events: tuple[Event, ...], total_cycles: int
) -> RunAttribution:
    """Bucket every cycle of a timed run; exact by construction."""
    sources = _interval_sources(events, total_cycles)
    buckets = {name: 0 for name in BUCKETS}
    covered: list[tuple[int, int]] = []
    covered_measure = 0
    for name in _PRIORITY:
        candidate = _merge(sources[name])
        if not candidate:
            continue
        union = _merge(covered + candidate)
        union_measure = _measure(union)
        buckets[name] = union_measure - covered_measure
        covered = union
        covered_measure = union_measure
    buckets["other"] = total_cycles - covered_measure
    attribution = RunAttribution(
        total=total_cycles,
        buckets=buckets,
        regions=region_slices(events),
    )
    attribution.check()
    return attribution


def rollup(attributions) -> RunAttribution:
    """Suite-level rollup: sum totals and buckets across runs."""
    buckets = {name: 0 for name in BUCKETS}
    total = 0
    for attribution in attributions:
        total += attribution.total
        for name, value in attribution.buckets.items():
            buckets[name] += value
    combined = RunAttribution(total=total, buckets=buckets)
    combined.check()
    return combined
