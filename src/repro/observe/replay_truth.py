"""Observed replay ground truth per *static* SRV-region.

The soundness side of ``repro.analyze``: static verdicts claim what a
region *can* do, the event stream records what it *did*.  This module
folds a run's ``LANE_REPLAY`` / ``REGION_END`` events back onto the
program's static regions so the two can be compared — the confusion
matrix of the analyze-guided experiment and the oracle of ``repro fuzz
--analyze-diff`` are both built on it.

The emulator numbers dynamic region entries globally
(``srv.regions_entered - 1``); the vector loop enters its static
regions in program order every iteration group, so dynamic entry ``k``
belongs to static region ``k % num_regions``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observe.events import Event, EventKind


@dataclass(frozen=True)
class RegionTruth:
    """What one static speculative region actually did at run time."""

    index: int           #: static region index, program order
    entries: int         #: dynamic entries (one per iteration group)
    replayed_lanes: int  #: ``LANE_REPLAY`` events attributed to it
    fallbacks: int       #: entries run via the sequential fallback

    @property
    def replayed(self) -> bool:
        return self.replayed_lanes > 0


@dataclass(frozen=True)
class ReplayTruth:
    """Per-static-region replay ground truth for one observed run."""

    regions: tuple[RegionTruth, ...]
    #: the whole run was degraded to ``srv_force_sequential`` (an LSU
    #: overflow): zero replays are structural, not evidence of safety
    degraded: bool = False

    @property
    def replayed_lanes(self) -> int:
        return sum(r.replayed_lanes for r in self.regions)

    @property
    def any_fallback(self) -> bool:
        return self.degraded or any(r.fallbacks for r in self.regions)


def replay_truth(
    events: "tuple[Event, ...] | list[Event]",
    num_regions: int,
    degraded: bool = False,
) -> ReplayTruth:
    """Fold an event stream onto ``num_regions`` static regions.

    ``num_regions`` is the static speculative region count of the
    executed program — ``len(program.region_spans())``, or equivalently
    ``len(plan.speculative)`` for a guided plan (1 for baseline SRV).
    """
    if num_regions <= 0:
        return ReplayTruth(regions=(), degraded=degraded)
    entries = [0] * num_regions
    replays = [0] * num_regions
    fallbacks = [0] * num_regions

    def region_of(event: Event) -> int:
        data = dict(event.data)
        return data["region"] % num_regions

    for event in events:
        if event.domain != "emu":
            continue
        if event.kind is EventKind.REGION_BEGIN:
            entries[region_of(event)] += 1
        elif event.kind is EventKind.LANE_REPLAY:
            replays[region_of(event)] += 1
        elif event.kind is EventKind.SEQ_FALLBACK:
            fallbacks[region_of(event)] += 1
    return ReplayTruth(
        regions=tuple(
            RegionTruth(i, entries[i], replays[i], fallbacks[i])
            for i in range(num_regions)
        ),
        degraded=degraded,
    )


def confusion_cell(verdict: str, truth: ReplayTruth) -> str:
    """Classify one (static verdict, observed behaviour) pair.

    Cells: ``proven_safe_clean`` (the soundness-critical one — its
    converse, ``false_safe``, is the bug class the differential fuzzer
    hunts), ``predicted_replay_hit`` / ``predicted_replay_miss`` for
    ``must_conflict``, and ``unknown_clean`` / ``unknown_replayed`` for
    ``may_conflict`` (the precision gap inherited from the Banerjee
    pass).  Runs that fell back to sequential execution cannot witness
    replays and classify as ``fallback``.
    """
    replayed = truth.replayed_lanes > 0
    if verdict == "no_conflict":
        return "false_safe" if replayed else "proven_safe_clean"
    if truth.any_fallback and not replayed:
        return "fallback"
    if verdict == "must_conflict":
        return ("predicted_replay_hit" if replayed
                else "predicted_replay_miss")
    return "unknown_replayed" if replayed else "unknown_clean"
