"""Observation harness: run one loop with the event bus armed.

``repro trace`` and ``repro attrib`` need a run that (a) always executes
fresh — events are side effects, so the memoised
:func:`repro.experiments.runner.run_loop` path must not be consulted —
and (b) pairs the event stream with the exact :class:`PipelineStats` it
was recorded against.  :func:`observe_loop` is that run: compile, arm
the bus, emulate + time (either trace mode, either core), finalize the
events into canonical order, and attribute the cycles.

Like the hardened runner, an :class:`LsuOverflowError` from the timing
model degrades to the section III-D7 sequential fallback instead of
failing: the overflowing attempt's events are discarded and the run is
repeated on a fresh sink with ``srv_force_sequential`` — the fallback
entry then shows up in the trace as ``SEQ_FALLBACK`` events and a
``fallback`` cycle bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import TABLE_I, MachineConfig
from repro.common.errors import LsuOverflowError
from repro.compiler import Strategy, compile_loop
from repro.emu.metrics import EmuMetrics
from repro.memory import MemoryImage
from repro.observe import events as _ev
from repro.observe.attrib import RunAttribution, attribute_run
from repro.pipeline import PipelineStats, Tracer, simulate, simulate_streaming
from repro.workloads.base import LoopSpec


@dataclass
class ObservedRun:
    """One observed execution: metrics, stats, events, attribution."""

    spec: LoopSpec
    strategy: Strategy
    core: str
    trace_mode: str
    emu: EmuMetrics
    pipe: PipelineStats
    events: tuple[_ev.Event, ...]
    attribution: RunAttribution
    degraded: bool = False

    @property
    def cycles(self) -> int:
        return self.pipe.cycles


def _observed_execute(
    spec: LoopSpec,
    strategy: Strategy,
    seed: int,
    config: MachineConfig,
    n: int,
    core: str,
    trace_mode: str,
    sink,
) -> tuple[EmuMetrics, PipelineStats]:
    arrays = spec.arrays(seed)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(spec.loop, mem, n, strategy, params=spec.params)

    with _ev.capture(sink):
        if trace_mode == "stream":
            emu, pipe, _ = simulate_streaming(
                program, mem, config, core=core, warm=True
            )
        else:
            tracer = Tracer()
            from repro.emu.interpreter import run_program

            emu, _ = run_program(program, mem, config=config, tracer=tracer)
            if core == "inorder":
                from repro.pipeline.inorder import InOrderModel

                pipe = InOrderModel(config).run(tracer.ops, warm=True)
            else:
                pipe = simulate(tracer.ops, config=config, warm=True)
    return emu, pipe


def observe_loop(
    spec: LoopSpec,
    strategy: Strategy,
    *,
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    core: str = "ooo",
    trace_mode: str = "stream",
    n_override: int | None = None,
    sink_factory=_ev.ListSink,
) -> ObservedRun:
    """Execute one loop with the event bus armed; always a fresh run.

    ``sink_factory`` builds the sink (called again if the run degrades);
    pass ``lambda: RingBufferSink(cap)`` to bound retention.
    """
    if core not in ("ooo", "inorder"):
        raise ValueError(f"unknown core model {core!r}")
    if trace_mode not in ("stream", "list"):
        raise ValueError(f"unknown trace mode {trace_mode!r}")
    n = spec.n if n_override is None else min(n_override, spec.n)

    degraded = False
    sink = sink_factory()
    try:
        emu, pipe = _observed_execute(
            spec, strategy, seed, config, n, core, trace_mode, sink
        )
    except LsuOverflowError:
        degraded = True
        sink = sink_factory()  # drop the partial event stream
        seq_config = config.with_overrides(srv_force_sequential=True)
        emu, pipe = _observed_execute(
            spec, strategy, seed, seq_config, n, core, trace_mode, sink
        )

    events = sink.finalized()
    return ObservedRun(
        spec=spec,
        strategy=strategy,
        core=core,
        trace_mode=trace_mode,
        emu=emu,
        pipe=pipe,
        events=events,
        attribution=attribute_run(events, pipe.cycles),
        degraded=degraded,
    )
