"""Observability layer: event tracing, cycle attribution, exporters.

Submodules:

* :mod:`repro.observe.events` — the typed event bus (sinks, the
  module-level ``ACTIVE`` hook polled by instrumentation sites, the
  canonical trace-mode-independent ordering);
* :mod:`repro.observe.attrib` — exact cycle attribution into
  ``{compute, memory, replay, barrier, fallback, other}`` buckets;
* :mod:`repro.observe.export` — Chrome Trace Format / Perfetto JSON,
  ASCII timelines, and counter/attribution tables;
* :mod:`repro.observe.harness` — ``observe_loop``, the fresh-run
  driver behind ``repro trace`` and ``repro attrib``;
* :mod:`repro.observe.replay_truth` — per-static-region replay ground
  truth folded from the event stream (the dynamic side of the
  ``repro.analyze`` confusion matrix and soundness fuzzing).

Only the event/attribution layers are imported eagerly: instrumentation
sites deep in the simulator (``lsu``, ``pipeline``, ``emu``) import this
package, so pulling in the harness (compiler, workloads) here would be
circular.  ``export`` and ``harness`` symbols resolve lazily.
"""

from __future__ import annotations

from repro.observe.attrib import (
    BUCKETS,
    RegionSlice,
    RunAttribution,
    attribute_run,
    region_slices,
    rollup,
)
from repro.observe.events import (
    CounterSink,
    Event,
    EventBus,
    EventKind,
    IntervalCounterSink,
    ListSink,
    NullSink,
    RingBufferSink,
    canonical_order,
    capture,
    install,
    uninstall,
)
from repro.observe.replay_truth import (
    RegionTruth,
    ReplayTruth,
    confusion_cell,
    replay_truth,
)

_LAZY = {
    "to_chrome_trace": "repro.observe.export",
    "write_chrome_trace": "repro.observe.export",
    "counters_table": "repro.observe.export",
    "attribution_table": "repro.observe.export",
    "ascii_timeline": "repro.observe.export",
    "ObservedRun": "repro.observe.harness",
    "observe_loop": "repro.observe.harness",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "BUCKETS",
    "RegionSlice",
    "RunAttribution",
    "attribute_run",
    "region_slices",
    "rollup",
    "CounterSink",
    "Event",
    "EventBus",
    "EventKind",
    "IntervalCounterSink",
    "ListSink",
    "NullSink",
    "RingBufferSink",
    "canonical_order",
    "capture",
    "install",
    "uninstall",
    "RegionTruth",
    "ReplayTruth",
    "confusion_cell",
    "replay_truth",
    "to_chrome_trace",
    "write_chrome_trace",
    "counters_table",
    "attribution_table",
    "ascii_timeline",
    "ObservedRun",
    "observe_loop",
]
