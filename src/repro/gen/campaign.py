"""Differential fuzz campaigns: generate → check → shrink → report.

A campaign generates ``count`` kernels from a campaign seed, runs each
through the scalar-oracle + LSU differential checks (streaming trace
mode by default — :func:`repro.pipeline.simulate_streaming` already
falls back to the materialised path on its own when a
:mod:`repro.verify.faults` plan is armed), shrinks any failing kernel
to a 1-minimal reproducer, and writes a machine-readable report.

Clean kernels are checked through :func:`repro.experiments.runner.run_loop`,
so campaign results land in the content-addressed result cache and a
warm re-run of the same campaign is nearly free.  Shrink candidates and
*planted* runs bypass the cache entirely: they execute a loop body that
differs from the one the cache key names.

Planted bugs (:data:`PLANTS`) are check-time mutations — the executed
program is compiled from a mutated loop while the oracle evaluates the
original — used to prove end-to-end that the campaign machinery detects
a miscompile and that the shrinker drives it to the floor.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from repro.common.config import TABLE_I, MachineConfig
from repro.common.errors import LsuOverflowError, ReproError
from repro.compiler import Strategy, compile_loop, scalar_reference
from repro.compiler.ir import BinOp, Const, Loop, Store
from repro.experiments.runner import run_loop
from repro.gen.emitter import (
    GeneratedKernel,
    generate_kernel,
    kernel_seed,
    loop_to_obj,
    obj_to_loop,
)
from repro.gen.knobs import GENERATOR_VERSION, Knobs
from repro.gen.shrinker import ShrinkResult, shrink_spec
from repro.memory import MemoryImage
from repro.pipeline import simulate_streaming
from repro.workloads.base import LoopSpec

#: current reproducer file schema
REPRODUCER_FORMAT = 1

LoopMutation = Callable[[Loop], Loop]


def _plant_store_skew(loop: Loop) -> Loop:
    """Miscompile: the last store writes ``value + 1``.

    The *last* statement's stores are never overwritten by a later
    statement, so the skew always survives to final memory and the
    oracle comparison is guaranteed to diverge.
    """
    last = loop.body[-1]
    body = list(loop.body[:-1]) + [
        Store(last.array, last.index, BinOp("+", last.value, Const(1)))
    ]
    return Loop(loop.name, loop.arrays, body, step=loop.step)


#: named check-time miscompilations for self-tests and docs walkthroughs
PLANTS: dict[str, LoopMutation] = {
    "store-skew": _plant_store_skew,
}


@dataclass(frozen=True)
class FuzzConfig:
    """One campaign's parameters."""

    count: int = 50
    seed: int = 0
    strategy: Strategy = Strategy.SRV
    config: MachineConfig = TABLE_I
    n_override: int | None = None
    trace_mode: str = "stream"
    #: emulator lane engine ("python" / "numpy"); ``None`` = process default
    lane_engine: str | None = None
    #: two-engine differential mode: run every kernel through *both* lane
    #: engines and demand identical memory, metrics, registers, and
    #: monitor verdicts.  Executes outside the result cache by
    #: construction (both runs happen here), so a warm cache can never
    #: make the comparison vacuous.
    lane_engine_diff: bool = False
    shrink: bool = True
    use_cache: bool = True
    out_dir: Path | None = None
    #: name of a :data:`PLANTS` mutation to inject into every kernel, or
    #: the special ``"elide-regions"`` self-test (``analyze_diff`` only)
    plant: str | None = None
    #: soundness differential for :mod:`repro.analyze`: fail any kernel
    #: where a region the analysis declared ``NO_CONFLICT`` dynamically
    #: replays, or where the analysis-guided program diverges from the
    #: scalar oracle.  Always executes outside the result cache.
    analyze_diff: bool = False


@dataclass
class CheckOutcome:
    """Result of checking one generated kernel."""

    index: int
    kernel_seed: int
    name: str
    status: str                    # "ok" | "fail" | "error"
    knobs: dict
    detail: str | None = None
    shrink_steps: tuple[str, ...] = ()
    shrink_attempts: int = 0
    reproducer: str | None = None  # path, relative to the report
    elapsed_s: float = 0.0

    def to_obj(self) -> dict:
        return {
            "index": self.index,
            "kernel_seed": self.kernel_seed,
            "name": self.name,
            "status": self.status,
            "knobs": self.knobs,
            "detail": self.detail,
            "shrink_steps": list(self.shrink_steps),
            "shrink_attempts": self.shrink_attempts,
            "reproducer": self.reproducer,
            "elapsed_s": round(self.elapsed_s, 6),
        }


@dataclass
class FuzzReport:
    """Machine-readable campaign outcome.

    ``to_obj()`` is deterministic for a given ``(generator version,
    campaign seed, count, strategy)`` apart from the ``elapsed_s``
    fields — two runs of the same campaign produce identical reports
    modulo timings.
    """

    seed: int
    count: int
    strategy: str
    plant: str | None = None
    analyze_diff: bool = False
    outcomes: list[CheckOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def failures(self) -> list[CheckOutcome]:
        return [o for o in self.outcomes if o.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_obj(self) -> dict:
        return {
            "generator_version": GENERATOR_VERSION,
            "campaign_seed": self.seed,
            "count": self.count,
            "strategy": self.strategy,
            "plant": self.plant,
            "analyze_diff": self.analyze_diff,
            "passed": sum(1 for o in self.outcomes if o.status == "ok"),
            "failed": sum(1 for o in self.outcomes if o.status == "fail"),
            "errors": sum(1 for o in self.outcomes if o.status == "error"),
            "kernels": [o.to_obj() for o in self.outcomes],
            "elapsed_s": round(self.elapsed_s, 6),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_obj(), indent=2) + "\n"


# ---------------------------------------------------------------------------
# differential checks
# ---------------------------------------------------------------------------


def _describe_mismatch(name: str, got: list[int], want: list[int]) -> str:
    index = next(i for i, (g, w) in enumerate(zip(got, want)) if g != w)
    return (f"oracle: array {name!r} diverges from the scalar reference at "
            f"index {index} (got {got[index]}, want {want[index]})")


def _mutated_check(
    spec: LoopSpec,
    mutate: LoopMutation,
    strategy: Strategy,
    seed: int,
    config: MachineConfig,
    n: int,
) -> tuple[bool, str | None]:
    """Execute ``mutate(spec.loop)`` but judge it against ``spec.loop``.

    Never touches the result cache: the executed body is not the one the
    cache key would name.
    """
    arrays = spec.arrays(seed)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(mutate(spec.loop), mem, n, strategy,
                           params=spec.params)
    try:
        try:
            simulate_streaming(program, mem, config,
                               validate_lsu=True, warm=True)
        except LsuOverflowError:
            seq = config.with_overrides(srv_force_sequential=True)
            mem = MemoryImage()
            for name, init in arrays.items():
                mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
            program = compile_loop(mutate(spec.loop), mem, n, strategy,
                                   params=spec.params)
            simulate_streaming(program, mem, seq,
                               validate_lsu=True, warm=True)
    except ReproError as exc:
        return False, f"{type(exc).__name__}: {exc}"
    reference = scalar_reference(spec.loop, arrays, n, params=spec.params)
    for name in arrays:
        got = mem.load_array(mem.allocation(name))
        if got != reference[name]:
            return False, _describe_mismatch(name, got, reference[name])
    return True, None


def _lane_engine_diff_check(
    spec: LoopSpec, cfg: FuzzConfig, n: int
) -> tuple[bool, str | None]:
    """Run one kernel through both lane engines and demand identity.

    Both executions happen right here on fresh memory — never through
    the result cache — so the comparison is real even when a prior
    campaign already populated the cache for this kernel.  Compared per
    engine: emulator metrics, final register file, final memory image,
    and the invariant-monitor verdicts over the dynamic trace.
    """
    from repro.emu import run_program
    from repro.emu.lanes import ENGINES, resolve_engine
    from repro.pipeline import Tracer
    from repro.verify.monitors import run_monitors

    resolve_engine("numpy")  # fail fast when the numpy engine is absent
    results: dict[str, tuple] = {}
    arrays: dict = {}
    for engine in ENGINES:
        arrays = spec.arrays(cfg.seed)
        mem = MemoryImage()
        for name, init in arrays.items():
            mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
        program = compile_loop(spec.loop, mem, n, cfg.strategy,
                               params=spec.params)
        tracer = Tracer()
        try:
            metrics, state = run_program(
                program, mem, config=cfg.config, tracer=tracer,
                lane_engine=engine,
            )
        except ReproError as exc:
            results[engine] = ("error", f"{type(exc).__name__}: {exc}")
            continue
        verdicts = tuple(str(v) for v in run_monitors(tracer.ops, cfg.config))
        results[engine] = ("ok", (
            metrics, state.registers_snapshot(), mem.snapshot(), verdicts,
        ))
    python, numpy = results["python"], results["numpy"]
    if python != numpy:
        for label, idx in (("metrics", 0), ("registers", 1),
                           ("memory", 2), ("monitor verdicts", 3)):
            if (python[0] == numpy[0] == "ok"
                    and python[1][idx] != numpy[1][idx]):
                return False, f"lane-engine: {label} diverge between engines"
        return False, (f"lane-engine: outcome diverges "
                       f"(python={python[0]}, numpy={numpy[0]})")
    if python[0] == "error":
        return False, python[1]
    reference = scalar_reference(spec.loop, arrays, n, params=spec.params)
    for name in arrays:
        mem_vals = results["numpy"][1]
        # oracle judged on the (identical) final images via a fresh load
        got = _snapshot_array(mem_vals[2], spec, name, arrays)
        if got != reference[name]:
            return False, _describe_mismatch(name, got, reference[name])
    return True, None


def _alloc_arrays(spec: LoopSpec, arrays: dict) -> MemoryImage:
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    return mem


def _elide_regions_check(
    spec: LoopSpec, cfg: FuzzConfig, n: int
) -> tuple[bool, str | None]:
    """Planted self-test: compile with *every* SRV bracket omitted.

    Applies :meth:`RegionPlan.all_plain` regardless of verdicts — the
    vector program runs bare, so any dynamically-conflicting kernel
    diverges from the scalar oracle.  A campaign over conflicting
    kernels must therefore fail (and shrink); this proves end to end
    that the analyze-diff machinery would catch an unsound
    ``NO_CONFLICT`` verdict that led codegen to drop a needed bracket.
    """
    from repro.analyze.regions import RegionPlan
    from repro.compiler.codegen import LoopCodeGenerator

    arrays = spec.arrays(cfg.seed)
    mem = _alloc_arrays(spec, arrays)
    gen = LoopCodeGenerator(spec.loop, mem, n, spec.params)
    if spec.loop.reductions():
        # reduction loops never carry regions; nothing to elide
        program = gen.vector_program(srv=False)
    else:
        program = gen.vector_program(
            srv=True, plan=RegionPlan.all_plain(spec.loop)
        )
    try:
        simulate_streaming(program, mem, cfg.config,
                           validate_lsu=True, warm=True)
    except ReproError as exc:
        return False, f"{type(exc).__name__}: {exc}"
    reference = scalar_reference(spec.loop, arrays, n, params=spec.params)
    for name in arrays:
        got = mem.load_array(mem.allocation(name))
        if got != reference[name]:
            return False, _describe_mismatch(name, got, reference[name])
    return True, None


def _analyze_diff_check(
    spec: LoopSpec, cfg: FuzzConfig, n: int
) -> tuple[bool, str | None]:
    """Soundness differential: static verdicts vs dynamic replay truth.

    Two executions, both cache-cold:

    * a **probe** program with the guided plan's boundaries but *every*
      region speculative — each ``NO_CONFLICT`` claim is dynamically
      testable there: a ``LANE_REPLAY`` event attributed to a
      proven-safe region is a false-safe verdict and fails the kernel;
    * the **guided** program itself (brackets actually omitted), judged
      against the scalar oracle — the end-to-end omission check.

    Regions that run via the sequential fallback cannot witness replays
    and are skipped (recorded as vacuous, not passed).
    """
    from repro.analyze import RegionVerdict, analyse_conflicts, gather_facts
    from repro.analyze.dependence import analyse_region
    from repro.analyze.regions import Region, RegionPlan
    from repro.analyze.report import guided_plan
    from repro.compiler.codegen import LoopCodeGenerator
    from repro.observe import events as _ev
    from repro.observe.replay_truth import replay_truth

    if spec.loop.reductions():
        # no regions exist for reduction loops: degrade to the plain
        # oracle check (identity mutation keeps the cache cold)
        return _mutated_check(spec, lambda loop: loop, cfg.strategy,
                              cfg.seed, cfg.config, n)

    arrays = spec.arrays(cfg.seed)
    loop = spec.loop
    facts = gather_facts(loop, arrays)
    conflicts = analyse_conflicts(loop, facts, n)
    plan = guided_plan(loop, facts, n)
    verdicts = [analyse_region(conflicts, region).verdict
                for region in plan.regions]

    # -- probe: every region speculative, claims dynamically testable ---
    probe_plan = RegionPlan(tuple(
        Region(r.start, r.stop, speculative=True) for r in plan.regions
    ))
    mem = _alloc_arrays(spec, arrays)
    program = LoopCodeGenerator(loop, mem, n, spec.params).vector_program(
        srv=True, plan=probe_plan
    )
    sink = _ev.ListSink()
    degraded = False
    try:
        with _ev.capture(sink):
            simulate_streaming(program, mem, cfg.config,
                               validate_lsu=True, warm=True)
    except LsuOverflowError:
        degraded = True
        sink = _ev.ListSink()
        mem = _alloc_arrays(spec, arrays)
        seq = cfg.config.with_overrides(srv_force_sequential=True)
        try:
            with _ev.capture(sink):
                simulate_streaming(program, mem, seq,
                                   validate_lsu=True, warm=True)
        except ReproError as exc:
            return False, f"probe: {type(exc).__name__}: {exc}"
    except ReproError as exc:
        return False, f"probe: {type(exc).__name__}: {exc}"
    reference = scalar_reference(loop, arrays, n, params=spec.params)
    for name in arrays:
        got = mem.load_array(mem.allocation(name))
        if got != reference[name]:
            return False, "probe " + _describe_mismatch(
                name, got, reference[name]
            )
    truth = replay_truth(sink.finalized(), len(probe_plan.regions),
                         degraded=degraded)
    for i, (verdict, region_truth) in enumerate(
        zip(verdicts, truth.regions)
    ):
        if verdict is not RegionVerdict.NO_CONFLICT:
            continue
        if degraded or region_truth.fallbacks:
            continue  # vacuous: the fallback cannot witness replays
        if region_truth.replayed_lanes:
            region = plan.regions[i]
            return False, (
                f"false-safe: region [{region.start}, {region.stop}) was "
                f"declared no_conflict but replayed "
                f"{region_truth.replayed_lanes} lane(s) dynamically"
            )

    # -- guided program: brackets actually omitted, oracle-judged -------
    return _mutated_check(spec, lambda loop: loop, Strategy.SRV_GUIDED,
                          cfg.seed, cfg.config, n)


def _snapshot_array(snapshot: bytes, spec: LoopSpec, name: str,
                    arrays: dict) -> list[int]:
    """Re-read one named array out of a raw memory snapshot."""
    mem = MemoryImage()
    for alloc_name, init in arrays.items():
        mem.alloc(alloc_name, len(init), spec.loop.arrays[alloc_name],
                  init=init)
    mem._data[:] = snapshot
    return mem.load_array(mem.allocation(name))


def check_kernel(
    spec: LoopSpec,
    cfg: FuzzConfig,
    *,
    use_cache: bool,
) -> tuple[bool, str | None]:
    """Scalar-oracle + LSU differential check of one spec under ``cfg``."""
    n = spec.n if cfg.n_override is None else min(cfg.n_override, spec.n)
    if cfg.analyze_diff:
        if cfg.plant == "elide-regions":
            return _elide_regions_check(spec, cfg, n)
        if cfg.plant is not None:
            raise ValueError(
                f"plant {cfg.plant!r} is incompatible with analyze_diff "
                f"(only 'elide-regions' applies)"
            )
        return _analyze_diff_check(spec, cfg, n)
    if cfg.plant == "elide-regions":
        raise ValueError("plant 'elide-regions' requires analyze_diff")
    if cfg.plant is not None:
        return _mutated_check(spec, PLANTS[cfg.plant], cfg.strategy,
                              cfg.seed, cfg.config, n)
    if cfg.lane_engine_diff:
        return _lane_engine_diff_check(spec, cfg, n)
    try:
        run = run_loop(
            spec, cfg.strategy, seed=cfg.seed, config=cfg.config,
            validate_lsu=True, check_oracle=True, n_override=cfg.n_override,
            trace_mode=cfg.trace_mode, lane_engine=cfg.lane_engine,
            use_cache=use_cache,
        )
    except ReproError as exc:
        return False, f"{type(exc).__name__}: {exc}"
    if not run.correct:
        return False, (f"oracle: array {run.bad_array!r} diverges from the "
                       f"scalar reference")
    return True, None


# ---------------------------------------------------------------------------
# reproducers
# ---------------------------------------------------------------------------


def write_reproducer(
    path: Path,
    kernel: GeneratedKernel,
    shrunk: ShrinkResult,
    cfg: FuzzConfig,
    detail: str | None,
) -> None:
    """Persist a shrunk failing kernel as a self-contained JSON file."""
    minimal = replace(
        shrunk.spec,
        loop=replace(shrunk.spec.loop, name=f"{kernel.name}_min"),
    )
    obj = {
        "format": REPRODUCER_FORMAT,
        "generator_version": GENERATOR_VERSION,
        "kernel_seed": kernel.seed,
        "knobs": kernel.knobs.as_dict(),
        "run_seed": cfg.seed,
        "strategy": cfg.strategy.value,
        "plant": cfg.plant,
        "analyze_diff": cfg.analyze_diff,
        "detail": detail,
        "n": minimal.n,
        "params": dict(minimal.params),
        "loop": loop_to_obj(minimal.loop),
        "shrink_steps": list(shrunk.steps),
        "shrink_attempts": shrunk.attempts,
        "shrink_exhausted": shrunk.exhausted,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(obj, indent=2) + "\n")


def load_reproducer(path: Path) -> tuple[LoopSpec, dict]:
    """Rebuild the runnable :class:`LoopSpec` from a reproducer file.

    The input arrays come from regenerating the *original* kernel (same
    generator version, seed and knobs), so the minimal loop executes on
    exactly the data that exposed the failure.
    """
    obj = json.loads(Path(path).read_text())
    if obj.get("format") != REPRODUCER_FORMAT:
        raise ValueError(f"unknown reproducer format {obj.get('format')!r}")
    if obj["generator_version"] != GENERATOR_VERSION:
        raise ValueError(
            f"reproducer was produced by generator "
            f"v{obj['generator_version']}; this tree is v{GENERATOR_VERSION}"
        )
    original = generate_kernel(obj["kernel_seed"], Knobs(**obj["knobs"]))
    spec = replace(
        original.spec,
        loop=obj_to_loop(obj["loop"]),
        n=obj["n"],
        params=obj["params"],
    )
    return spec, obj


# ---------------------------------------------------------------------------
# the campaign driver
# ---------------------------------------------------------------------------


def run_fuzz(cfg: FuzzConfig) -> FuzzReport:
    """Run one fuzz campaign and (optionally) write report + reproducers."""
    report = FuzzReport(seed=cfg.seed, count=cfg.count,
                        strategy=cfg.strategy.value, plant=cfg.plant,
                        analyze_diff=cfg.analyze_diff)
    started = time.perf_counter()
    for i in range(cfg.count):
        kseed = kernel_seed(cfg.seed, i)
        t0 = time.perf_counter()
        try:
            kernel = generate_kernel(kseed)
        except Exception as exc:  # generator bug: report, keep fuzzing
            report.outcomes.append(CheckOutcome(
                index=i, kernel_seed=kseed, name=f"gen_seed_{kseed}",
                status="error", knobs={},
                detail=f"generate: {type(exc).__name__}: {exc}",
                elapsed_s=time.perf_counter() - t0,
            ))
            continue
        outcome = CheckOutcome(
            index=i, kernel_seed=kseed, name=kernel.name,
            status="ok", knobs=kernel.knobs.as_dict(),
        )
        try:
            ok, detail = check_kernel(kernel.spec, cfg,
                                      use_cache=cfg.use_cache)
        except Exception as exc:  # untyped crash: harness error, not a fail
            ok, detail = None, f"{type(exc).__name__}: {exc}"
        if ok is None:
            outcome.status = "error"
            outcome.detail = detail
        elif not ok:
            outcome.status = "fail"
            outcome.detail = detail
            if cfg.shrink:
                _shrink_failure(kernel, cfg, outcome)
        outcome.elapsed_s = time.perf_counter() - t0
        report.outcomes.append(outcome)
    report.elapsed_s = time.perf_counter() - started

    if cfg.out_dir is not None:
        out = Path(cfg.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "report.json").write_text(report.to_json())
    return report


def _shrink_failure(kernel: GeneratedKernel, cfg: FuzzConfig,
                    outcome: CheckOutcome) -> None:
    """Shrink one failing kernel and attach the reproducer to ``outcome``."""

    def still_fails(candidate: LoopSpec) -> bool:
        # cache must stay cold: every candidate shares the original
        # loop's name but carries a different body
        ok, _ = check_kernel(candidate, cfg, use_cache=False)
        return not ok

    shrunk = shrink_spec(kernel.spec, still_fails)
    outcome.shrink_steps = shrunk.steps
    outcome.shrink_attempts = shrunk.attempts
    if cfg.out_dir is not None:
        rel = Path("reproducers") / f"{kernel.name}.json"
        write_reproducer(Path(cfg.out_dir) / rel, kernel, shrunk, cfg,
                         outcome.detail)
        outcome.reproducer = str(rel)
