"""Seeded kernel emitter: ``(seed, knobs)`` → a :class:`LoopSpec`.

Generated kernels flow through the exact objects the hand-written suite
uses — a :class:`~repro.compiler.ir.Loop` in the IR plus a seeded input
builder wrapped in a :class:`~repro.workloads.base.LoopSpec` — so the
compiler, both timing models, the differential checkers, the sweep
engine and the result cache treat them identically to the 28 curated
loops.

Determinism: everything is drawn from private
:func:`~repro.common.rng.make_rng` streams keyed by
``(GENERATOR_VERSION, seed)``; the same ``(seed, knobs)`` pair produces
a byte-identical loop and byte-identical inputs on any host.  The
kernel *name* embeds the generator version, the seed and a digest of
the knob set, and the loop name is part of the result-cache key — so a
generator change can never alias a cached result from an older version.

Value-range discipline: the emulator wraps intermediate values at the
destination register width while the scalar oracle wraps only at
stores, so the two agree exactly as long as intermediates stay inside
the 32-bit signed range.  The emitter enforces this structurally:
multiplications take at most one *bounded* operand (a read-only source
array value, a small constant or a parameter — never two evolving
destination-array values), shift post-ops use small constants, and
every stored value is masked to 16 bits, which also keeps
self-referencing kernels (``a[x[i]] = f(a[..])`` iterated) from growing
without bound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.common.config import TABLE_I
from repro.common.rng import (
    conflict_free_permutation,
    forward_alias_indices,
    make_rng,
    planted_conflict_indices,
    uniform_indices,
    values,
)
from repro.compiler.ir import (
    Affine,
    BinOp,
    Const,
    Expr,
    IndexExpr,
    Indirect,
    Loop,
    LoopIndex,
    Param,
    Read,
    Select,
    Store,
    VALID_CMPS,
)
from repro.gen.knobs import (
    GENERATOR_VERSION,
    KNOBS_BY_NAME,
    Knobs,
    knob_digest,
    sample_knobs,
    validate_knobs,
)
from repro.workloads.base import LoopSpec, Workload

LANES = 16

#: combining operators per palette; ``*`` is handled separately so a
#: product never multiplies two evolving destination-array values
_COMBINE_OPS = {
    "arith": ("+", "-"),
    "logic": ("&", "|", "^"),
    "mixed": ("+", "-", "&", "|", "^", "min", "max"),
}

#: every stored value is masked to this, bounding self-referencing growth
_VALUE_MASK = 0xFFFF

#: Per-pass demand target for kernels that must speculate.  The emulator
#: falls back only above the full 64-entry capacity, but the cycle model
#: keeps entries live until commit, so two overlapping region passes
#: coexist in the out-of-order window — half the capacity per pass keeps
#: the timing model from degrading the run to the sequential fallback.
_LSU_BUDGET = TABLE_I.lsu_entries // 2


def lsu_demand(loop: Loop, n_lanes: int = LANES) -> int:
    """LSU entries one region pass of ``loop`` needs (III-D7 sizing rule).

    Mirrors the emulator: contiguous and broadcast accesses take one
    entry, gathers and scatters one per lane; an indirect access also
    loads its index table — contiguously for an UP loop, as a gather
    for DOWN.  A loop whose demand exceeds the 64-entry capacity runs
    every region through the sequential fallback and never speculates.
    """
    def ref_cost(index: IndexExpr) -> int:
        if isinstance(index, Affine):
            if index.scale == 0:
                return 1
            if index.scale == 1 and loop.step == 1:
                return 1
            return n_lanes
        table = 1 if loop.step == 1 else n_lanes
        return n_lanes + table

    return sum(ref_cost(r.index) for r in loop.reads()) + \
        sum(ref_cost(s.index) for s in loop.writes())


@dataclass(frozen=True)
class GeneratedKernel:
    """One generated kernel: its identity, knobs, and runnable spec."""

    seed: int
    knobs: Knobs
    spec: LoopSpec

    @property
    def name(self) -> str:
        return self.spec.name


def kernel_name(seed: int, knobs: Knobs) -> str:
    return f"gen_v{GENERATOR_VERSION}_s{seed}_{knob_digest(knobs)}"


def _is_bounded(expr: Expr) -> bool:
    """True if ``expr`` is safe as a multiplication operand: a value that
    cannot itself have grown through the destination array."""
    if isinstance(expr, (Const, Param, LoopIndex)):
        return True
    return isinstance(expr, Read) and expr.array != "a"


def _build_reads(rng, knobs: Knobs, stmt_index: int,
                 force_dest_gather: bool) -> list[Read]:
    reads: list[Read] = []
    for j in range(knobs.reads_per_stmt):
        if force_dest_gather and j == 0:
            reads.append(Read("a", Indirect("z")))
            continue
        if rng.random() < knobs.gather_ratio:
            if rng.random() < 0.3:
                reads.append(Read("a", Indirect("z")))
            else:
                reads.append(Read("b", Indirect("y")))
        elif rng.random() < knobs.broadcast_rate:
            reads.append(Read("b", Affine(0, rng.randrange(4))))
        elif rng.random() < 0.4:
            reads.append(Read("a", Affine(1, rng.randrange(3))))
        else:
            scale = knobs.stride if (knobs.stride != 1
                                     and rng.random() < 0.6) else 1
            reads.append(Read("b", Affine(scale, rng.randrange(3))))
    return reads


def _fold_value(rng, knobs: Knobs, reads: list[Read]) -> Expr:
    """Fold the reads into one expression under the palette rules."""
    expr: Expr = reads[0]
    mul_used = False
    ops = _COMBINE_OPS[knobs.op_mix]
    for read in reads[1:]:
        allow_mul = (
            knobs.op_mix in ("arith", "mixed")
            and not mul_used
            and _is_bounded(read)
        )
        if allow_mul and rng.random() < 0.35:
            expr = BinOp("*", expr, read)
            mul_used = True
        else:
            expr = BinOp(rng.choice(ops), expr, read)
    if knobs.op_mix in ("logic", "mixed") and rng.random() < 0.3:
        expr = BinOp(rng.choice(("<<", ">>")), expr,
                     Const(rng.randint(1, 3)))
    if (knobs.op_mix in ("arith", "mixed") and not mul_used
            and rng.random() < 0.25):
        expr = BinOp("*", expr, Param("k"))
    return BinOp("&", expr, Const(_VALUE_MASK))


def _maybe_predicate(rng, knobs: Knobs, value: Expr) -> Expr:
    if rng.random() >= knobs.predication_rate:
        return value
    return Select(
        rng.choice(VALID_CMPS),
        Read("a", Affine(1, 0)),
        Param("t"),
        value,
        Read("a", Affine(1, 0)),
    )


def _replace_first_read(expr: Expr, pred, replacement: Read):
    """``(new_expr, replaced)`` with the first Read matching ``pred``
    swapped for ``replacement``."""
    if isinstance(expr, Read):
        if pred(expr):
            return replacement, True
        return expr, False
    if isinstance(expr, BinOp):
        lhs, done = _replace_first_read(expr.lhs, pred, replacement)
        if done:
            return BinOp(expr.op, lhs, expr.rhs), True
        rhs, done = _replace_first_read(expr.rhs, pred, replacement)
        return BinOp(expr.op, expr.lhs, rhs), done
    if isinstance(expr, Select):
        for name in ("cmp_lhs", "cmp_rhs", "then_value", "else_value"):
            sub, done = _replace_first_read(getattr(expr, name), pred,
                                            replacement)
            if done:
                return replace(expr, **{name: sub}), True
        return expr, False
    return expr, False


def _is_witness(read: Read) -> bool:
    """The destination-at-own-position read that observes a planted
    conflict (``a[i]``)."""
    return (read.array == "a" and isinstance(read.index, Affine)
            and read.index.scale == 1 and read.index.offset == 0)


def _reduce_one_read(loop: Loop, pred) -> Loop | None:
    """Replace the first value-expression read matching ``pred`` with a
    1-entry broadcast; None if nothing matched."""
    for i, stmt in enumerate(loop.body):
        value, done = _replace_first_read(stmt.value, pred,
                                          Read("b", Affine(0, 0)))
        if done:
            body = list(loop.body)
            body[i] = Store(stmt.array, stmt.index, value)
            return Loop(loop.name, loop.arrays, body, step=loop.step)
    return None


def _fit_lsu_budget(loop: Loop) -> Loop:
    """Shrink per-pass LSU demand until the loop can actually speculate.

    Kernels carrying planted dependences must run the speculative path —
    a region over the 64-entry budget silently takes the sequential
    fallback and the ``dep_density``/``dep_distance`` knobs would test
    nothing.  Value-expression reads are demoted to broadcast loads
    (gathers first, then non-witness strided/contiguous reads, then
    duplicate witness reads), preserving the scatter store and one
    ``a[i]`` witness read that make the conflict observable.
    """
    while lsu_demand(loop) > _LSU_BUDGET:
        reduced = _reduce_one_read(
            loop, lambda r: isinstance(r.index, Indirect))
        if reduced is None:
            reduced = _reduce_one_read(
                loop, lambda r: isinstance(r.index, Affine)
                and r.index.scale != 0 and not _is_witness(r))
        if reduced is None:
            witnesses = sum(1 for r in loop.reads() if _is_witness(r))
            if witnesses > 1:
                reduced = _reduce_one_read(loop, _is_witness)
        if reduced is None:
            break  # nothing left to demote; stores alone exceed budget
        loop = reduced
    return loop


def generate_loop(seed: int, knobs: Knobs) -> Loop:
    """Build the IR loop for ``(seed, knobs)`` — deterministic."""
    rng = make_rng(seed, f"gen/v{GENERATOR_VERSION}/emit")
    # a kernel with planted conflicts must speculate for the plant to
    # replay, so its shape is held inside the LSU budget (III-D7)
    speculative = knobs.scatter and knobs.dep_density > 0.0
    statements = knobs.statements
    if speculative and knobs.direction == "down":
        # DOWN lowers every affine access to a gather (16 entries each):
        # extra contiguous stores alone would exhaust the budget
        statements = 1
    body: list[Store] = []
    for s in range(statements):
        scatter_here = knobs.scatter and s == 0
        # at least one statically-unknown reference: an indirect store,
        # or (contiguous store) a forced gather from the destination
        force_dest_gather = s == 0 and not knobs.scatter
        reads = _build_reads(rng, knobs, s, force_dest_gather)
        if scatter_here and speculative and not any(
            _is_witness(r) for r in reads
        ):
            # a planted scatter conflict is only *observable* (and hence
            # replayed) when some lane also reads the destination at its
            # own position — guarantee that witness read exists
            reads[-1] = Read("a", Affine(1, 0))
        value = _maybe_predicate(rng, knobs, _fold_value(rng, knobs, reads))
        index: IndexExpr = Indirect("x") if scatter_here else Affine(1, 0)
        body.append(Store("a", index, value))

    arrays = {"a": knobs.elem_size, "b": 4}
    step = 1 if knobs.direction == "up" else -1
    loop = Loop(kernel_name(seed, knobs), _with_tables(arrays, body),
                body, step=step)
    if speculative:
        loop = _fit_lsu_budget(loop)

    # pad the last statement with cheap reads until the body carries
    # region_len static memory references (III-D7 / fig 10 coverage);
    # speculative kernels stop at the LSU budget instead of overflowing
    pad = 0
    while loop.memory_reference_count() < knobs.region_len:
        extra = (Read("b", Affine(0, pad % 4))
                 if speculative and knobs.direction == "down"
                 else Read("b", Affine(1, pad)))
        last = loop.body[-1]
        value = BinOp("+", last.value, extra)
        body = list(loop.body[:-1]) + [Store(last.array, last.index, value)]
        candidate = Loop(loop.name, loop.arrays, body, step=loop.step)
        if speculative and lsu_demand(candidate) > _LSU_BUDGET:
            break
        loop = candidate
        pad += 1
    return loop


def _with_tables(arrays: dict[str, int], body: list[Store]) -> dict[str, int]:
    """Add the index tables the body actually references."""
    out = dict(arrays)
    probe = Loop("probe", {**arrays, "x": 4, "y": 4, "z": 4}, body)
    for table in sorted(probe.index_arrays()):
        out[table] = 4
    return out


def required_lengths(loop: Loop, n: int) -> dict[str, int]:
    """Minimum element count per array for trip count ``n``.

    Affine references need ``scale * (n-1) + offset + 1`` elements;
    indirect tables hold values in ``[0, n)`` and are themselves read at
    scale-1, so both the table and its target need at least ``n``.
    """
    need = {name: n for name in loop.arrays}

    def note(array: str, index: IndexExpr) -> None:
        if isinstance(index, Affine):
            req = (index.scale * (n - 1) + index.offset + 1
                   if index.scale > 0 else index.offset + 1)
            need[array] = max(need[array], req)
        else:
            need[index.array] = max(need[index.array], n)

    for read in loop.reads():
        note(read.array, read.index)
    for store in loop.writes():
        note(store.array, store.index)
    return need


def _max_forward_offset(loop: Loop, array: str) -> int:
    """Largest affine forward offset on ``array`` (alias-margin input)."""
    offsets = [0]
    for read in loop.reads():
        if read.array == array and isinstance(read.index, Affine) \
                and read.index.scale == 1:
            offsets.append(read.index.offset)
    return max(offsets)


def _input_builder(loop: Loop, knobs: Knobs, kernel_seed: int):
    """The :class:`LoopSpec` arrays callable for a generated loop.

    Captures only plain values (never RNG state); mixing the kernel seed
    into the run seed keeps different kernels' inputs independent even
    at the same run seed.
    """
    n = knobs.n
    lengths = required_lengths(loop, n)
    margin = _max_forward_offset(loop, "a")

    def build(run_seed: int) -> dict[str, list[int]]:
        s = run_seed * 7919 + kernel_seed
        out: dict[str, list[int]] = {}
        for name in sorted(loop.arrays):
            length = lengths[name]
            if name == "a":
                out[name] = values(length, 0, 255, seed=s + 1)
            elif name == "b":
                out[name] = values(length, 0, 255, seed=s + 2)
            elif name == "x":
                if knobs.dep_density > 0.0:
                    out[name] = planted_conflict_indices(
                        length, LANES, knobs.dep_density,
                        knobs.dep_distance, seed=s + 3,
                        backward=knobs.direction == "down",
                    )
                elif knobs.alias_rate > 0.0:
                    out[name] = forward_alias_indices(
                        length, LANES, knobs.alias_rate,
                        min_dist=LANES + margin,
                        max_dist=LANES + margin + 32,
                        seed=s + 3,
                    )
                else:
                    out[name] = conflict_free_permutation(
                        length, LANES, seed=s + 3
                    )
            elif name == "y":
                out[name] = uniform_indices(length, n, seed=s + 4)
            elif name == "z":
                out[name] = conflict_free_permutation(length, LANES, seed=s + 5)
            else:  # pragma: no cover - no other arrays are emitted
                out[name] = [0] * length
        return out

    return build


def generate_kernel(seed: int, knobs: Knobs | None = None) -> GeneratedKernel:
    """Generate one kernel.  ``knobs=None`` samples them from ``seed``."""
    if knobs is None:
        knobs = sample_knobs(seed)
    validate_knobs(knobs)
    loop = generate_loop(seed, knobs)
    rng = make_rng(seed, f"gen/v{GENERATOR_VERSION}/params")
    params = {"k": rng.randint(2, 5), "t": rng.randint(32, 224)}
    spec = LoopSpec(
        loop=loop,
        n=knobs.n,
        arrays=_input_builder(loop, knobs, seed),
        params=params,
        description=(
            f"generated v{GENERATOR_VERSION} seed={seed} "
            f"dep={knobs.dep_density:g}@{knobs.dep_distance} "
            f"gather={knobs.gather_ratio:g} pred={knobs.predication_rate:g} "
            f"{knobs.direction}"
        ),
    )
    return GeneratedKernel(seed=seed, knobs=knobs, spec=spec)


# ---------------------------------------------------------------------------
# generated workloads (sweep-matrix integration)
# ---------------------------------------------------------------------------

#: derived per-kernel seed stride within a campaign
_KERNEL_SEED_STRIDE = 1_000_003
#: hard cap on kernels per generated workload (sweep-cell sanity bound)
MAX_WORKLOAD_KERNELS = 4096

_WORKLOAD_NAME = re.compile(r"^gen:v(?P<ver>[0-9A-Za-z._-]+)"
                            r":s(?P<seed>-?\d+):c(?P<count>\d+)"
                            r"(?::n(?P<n>\d+))?$")


def kernel_seed(campaign_seed: int, index: int) -> int:
    return campaign_seed * _KERNEL_SEED_STRIDE + index


def workload_name(seed: int, count: int, n: int | None = None) -> str:
    base = f"gen:v{GENERATOR_VERSION}:s{seed}:c{count}"
    return base if n is None else f"{base}:n{n}"


def is_generated_name(name: str) -> bool:
    return name.startswith("gen:")


def generated_workload(seed: int, count: int, n: int | None = None) -> Workload:
    """A synthetic :class:`Workload` of ``count`` generated kernels.

    The workload name encodes ``(generator version, seed, count)`` — and
    the trip-count override when ``n`` is given — so a sweep cell
    carrying it can be resolved in any worker process by regenerating
    the identical kernels: nothing but the name crosses the process
    boundary.

    ``n`` forces every kernel's trip count (the sampler draws from the
    classic short range; long-program emission for the interval-sampling
    validation needs trips in the millions).  The override flows through
    ``Knobs.n``, so the kernel name's knob digest — and with it every
    result-cache key — distinguishes the overridden kernels from their
    short-trip ancestors.
    """
    if not 1 <= count <= MAX_WORKLOAD_KERNELS:
        raise ValueError(
            f"count must be within [1, {MAX_WORKLOAD_KERNELS}], got {count}"
        )
    if n is None:
        loops = tuple(
            generate_kernel(kernel_seed(seed, i)).spec for i in range(count)
        )
    else:
        loops = tuple(
            generate_kernel(
                kernel_seed(seed, i),
                sample_knobs(kernel_seed(seed, i)).with_overrides(n=n),
            ).spec
            for i in range(count)
        )
    return Workload(
        name=workload_name(seed, count, n),
        suite="gen",
        coverage=0.0,
        loops=loops,
        description=f"{count} generated kernels "
                    f"(generator v{GENERATOR_VERSION}, seed {seed}"
                    + (f", n={n}" if n is not None else "") + ")",
    )


def workload_from_name(name: str) -> Workload:
    """Rebuild a generated workload from its encoded name.

    Raises :class:`KeyError` (matching :func:`repro.workloads.by_name`
    semantics) for malformed names or a generator-version mismatch — a
    stale cell from an older generator must never silently resolve to
    different kernels.
    """
    match = _WORKLOAD_NAME.match(name)
    if match is None:
        raise KeyError(f"malformed generated-workload name {name!r}")
    if match.group("ver") != GENERATOR_VERSION:
        raise KeyError(
            f"generated workload {name!r} was produced by generator "
            f"v{match.group('ver')}; this tree is v{GENERATOR_VERSION}"
        )
    count = int(match.group("count"))
    if not 1 <= count <= MAX_WORKLOAD_KERNELS:
        raise KeyError(f"generated workload {name!r} has an invalid count")
    n = match.group("n")
    if n is not None:
        spec = KNOBS_BY_NAME["n"]
        if not spec.lo <= int(n) <= spec.hi:
            raise KeyError(
                f"generated workload {name!r} has trip count {n} outside "
                f"the knob range [{spec.lo:.0f}, {spec.hi:.0f}]"
            )
    return generated_workload(
        int(match.group("seed")), count, int(n) if n is not None else None
    )


# ---------------------------------------------------------------------------
# IR <-> JSON (reproducer files)
# ---------------------------------------------------------------------------


def _index_to_obj(index: IndexExpr) -> dict:
    if isinstance(index, Affine):
        return {"kind": "affine", "scale": index.scale, "offset": index.offset}
    return {
        "kind": "indirect", "array": index.array,
        "scale": index.inner.scale, "offset": index.inner.offset,
    }


def _obj_to_index(obj: dict) -> IndexExpr:
    if obj["kind"] == "affine":
        return Affine(obj["scale"], obj["offset"])
    return Indirect(obj["array"], Affine(obj["scale"], obj["offset"]))


def _expr_to_obj(expr: Expr) -> dict:
    if isinstance(expr, Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, LoopIndex):
        return {"kind": "index"}
    if isinstance(expr, Param):
        return {"kind": "param", "name": expr.name}
    if isinstance(expr, Read):
        return {"kind": "read", "array": expr.array,
                "index": _index_to_obj(expr.index)}
    if isinstance(expr, BinOp):
        return {"kind": "binop", "op": expr.op,
                "lhs": _expr_to_obj(expr.lhs), "rhs": _expr_to_obj(expr.rhs)}
    if isinstance(expr, Select):
        return {
            "kind": "select", "cmp": expr.cmp,
            "cmp_lhs": _expr_to_obj(expr.cmp_lhs),
            "cmp_rhs": _expr_to_obj(expr.cmp_rhs),
            "then": _expr_to_obj(expr.then_value),
            "else": _expr_to_obj(expr.else_value),
        }
    raise TypeError(f"unserialisable expression {expr!r}")


def _obj_to_expr(obj: dict) -> Expr:
    kind = obj["kind"]
    if kind == "const":
        return Const(obj["value"])
    if kind == "index":
        return LoopIndex()
    if kind == "param":
        return Param(obj["name"])
    if kind == "read":
        return Read(obj["array"], _obj_to_index(obj["index"]))
    if kind == "binop":
        return BinOp(obj["op"], _obj_to_expr(obj["lhs"]),
                     _obj_to_expr(obj["rhs"]))
    if kind == "select":
        return Select(obj["cmp"], _obj_to_expr(obj["cmp_lhs"]),
                      _obj_to_expr(obj["cmp_rhs"]),
                      _obj_to_expr(obj["then"]), _obj_to_expr(obj["else"]))
    raise ValueError(f"unknown expression kind {kind!r}")


def loop_to_obj(loop: Loop) -> dict:
    """JSON-serialisable form of a generated loop (``Store`` bodies only)."""
    return {
        "name": loop.name,
        "arrays": dict(loop.arrays),
        "step": loop.step,
        "body": [
            {
                "array": stmt.array,
                "index": _index_to_obj(stmt.index),
                "value": _expr_to_obj(stmt.value),
            }
            for stmt in loop.body
        ],
    }


def obj_to_loop(obj: dict) -> Loop:
    body = [
        Store(stmt["array"], _obj_to_index(stmt["index"]),
              _obj_to_expr(stmt["value"]))
        for stmt in obj["body"]
    ]
    return Loop(obj["name"], obj["arrays"], body, step=obj["step"])
