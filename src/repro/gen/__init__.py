"""Seeded kernel generator + differential scenario fuzzer.

Public surface:

* :mod:`repro.gen.knobs` — the declared knob space and seeded sampler;
* :mod:`repro.gen.emitter` — ``(seed, knobs)`` → :class:`LoopSpec`,
  plus ``gen:``-named workloads for the sweep matrix;
* :mod:`repro.gen.shrinker` — greedy 1-minimal failing-kernel reducer;
* :mod:`repro.gen.campaign` — the ``repro fuzz`` campaign driver.

See ``docs/GENERATOR.md`` for the knob table and the determinism
contract.
"""

from repro.gen.campaign import (
    PLANTS,
    CheckOutcome,
    FuzzConfig,
    FuzzReport,
    check_kernel,
    load_reproducer,
    run_fuzz,
    write_reproducer,
)
from repro.gen.emitter import (
    GeneratedKernel,
    generate_kernel,
    generated_workload,
    is_generated_name,
    kernel_seed,
    workload_from_name,
    workload_name,
)
from repro.gen.knobs import (
    GENERATOR_VERSION,
    KNOB_SPACE,
    KNOBS_BY_NAME,
    Knobs,
    KnobSpec,
    default_knobs,
    knob_digest,
    sample_knobs,
    validate_knobs,
)
from repro.gen.shrinker import ShrinkResult, shrink_spec

__all__ = [
    "GENERATOR_VERSION",
    "KNOB_SPACE",
    "KNOBS_BY_NAME",
    "CheckOutcome",
    "FuzzConfig",
    "FuzzReport",
    "GeneratedKernel",
    "Knobs",
    "KnobSpec",
    "PLANTS",
    "ShrinkResult",
    "check_kernel",
    "default_knobs",
    "generate_kernel",
    "generated_workload",
    "is_generated_name",
    "kernel_seed",
    "knob_digest",
    "load_reproducer",
    "run_fuzz",
    "sample_knobs",
    "shrink_spec",
    "validate_knobs",
    "workload_from_name",
    "workload_name",
    "write_reproducer",
]
