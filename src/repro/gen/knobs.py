"""The generator's knob space: every axis a generated kernel can vary on.

Each knob is declared once, as a :class:`KnobSpec`, with its type, range,
default and the paper section it exercises; the declarations drive

* :func:`sample_knobs` — the seeded sampler the fuzzer uses,
* :func:`validate_knobs` — range checking for hand-built knob sets,
* the documentation gate in ``tools/check_docs.py``, which fails CI when
  a knob declared here is missing from ``docs/GENERATOR.md``.

**Determinism contract.** A kernel is a pure function of
``(GENERATOR_VERSION, seed, knobs)``: the same triple produces a
byte-identical IR loop, program listing and input arrays, on any host.
``GENERATOR_VERSION`` is baked into every generated loop's *name*, and
the loop name is part of the result-cache key, so bumping the version
(or editing any module under ``repro.gen`` — the package is in the
cache's ``CORE_MODULES``) implicitly invalidates every cached run of a
generated kernel.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.common.rng import make_rng

#: Bumped whenever a change to the generator can alter the kernel
#: produced for an existing ``(seed, knobs)`` pair.
GENERATOR_VERSION = "1"


@dataclass(frozen=True)
class KnobSpec:
    """Declaration of one generator knob."""

    name: str
    kind: str                      # "int" | "float" | "bool" | "choice"
    default: object
    lo: float | None = None        # inclusive, int/float kinds
    hi: float | None = None        # inclusive, int/float kinds
    choices: tuple = ()            # choice kind
    section: str = ""              # paper section the knob exercises
    doc: str = ""


#: The full knob space.  ``tools/check_docs.py`` requires every name
#: here to be documented in ``docs/GENERATOR.md``.
KNOB_SPACE: tuple[KnobSpec, ...] = (
    KnobSpec(
        name="n", kind="int", default=256, lo=64, hi=4_194_304,
        section="V / fig 8",
        doc="trip count; short counts raise the barrier fraction, and "
            "counts in the millions drive multi-million-op dynamic "
            "streams for the interval-sampling validation (the sampler "
            "draws from the classic short range; long-program runs "
            "override n explicitly via the ':n<trip>' workload-name "
            "suffix)",
    ),
    KnobSpec(
        name="statements", kind="int", default=1, lo=1, hi=3,
        section="fig 10",
        doc="store statements per loop body (wide bodies)",
    ),
    KnobSpec(
        name="reads_per_stmt", kind="int", default=2, lo=1, hi=4,
        section="fig 10",
        doc="array reads feeding each store's value expression",
    ),
    KnobSpec(
        name="region_len", kind="int", default=6, lo=2, hi=24,
        section="III-D7 / fig 10",
        doc="target static memory references inside the srv-region; the "
            "emitter pads with extra contiguous reads to reach it, and "
            "high values overflow the 64-entry LSU into the sequential "
            "fallback",
    ),
    KnobSpec(
        name="dep_density", kind="float", default=0.05, lo=0.0, hi=1.0,
        section="fig 9",
        doc="fraction of vector groups whose scatter table contains a "
            "planted intra-group conflict (run-time violation rate)",
    ),
    KnobSpec(
        name="dep_distance", kind="int", default=4, lo=1, hi=15,
        section="IV-C",
        doc="lane distance of each planted conflict (1 = adjacent lanes, "
            "15 = worst-case replay mask)",
    ),
    KnobSpec(
        name="alias_rate", kind="float", default=0.0, lo=0.0, hi=1.0,
        section="fig 11",
        doc="forward cross-group alias rate used when dep_density is 0: "
            "no SRV replays, but real store-to-load hazards for the "
            "scalar baseline's store sets",
    ),
    KnobSpec(
        name="gather_ratio", kind="float", default=0.5, lo=0.0, hi=1.0,
        section="V / fig 6",
        doc="fraction of reads that are indirect gathers rather than "
            "contiguous/strided loads",
    ),
    KnobSpec(
        name="scatter", kind="bool", default=True,
        section="III-A",
        doc="store through an index table (scatter) instead of "
            "contiguously; when false, a gather from the destination "
            "array keeps the dependence statically unknown",
    ),
    KnobSpec(
        name="stride", kind="choice", default=1, choices=(1, 2, 4),
        section="IV-C",
        doc="affine read stride; strides above 1 lower to gathers with "
            "provably disjoint (but statically unknown) footprints",
    ),
    KnobSpec(
        name="broadcast_rate", kind="float", default=0.0, lo=0.0, hi=1.0,
        section="IV-C4",
        doc="fraction of affine reads turned into scale-0 broadcast "
            "loads (every lane reads one loop-invariant address)",
    ),
    KnobSpec(
        name="predication_rate", kind="float", default=0.0, lo=0.0, hi=1.0,
        section="III-C",
        doc="probability each statement's value is if-converted through "
            "a Select (merging predication under replay)",
    ),
    KnobSpec(
        name="direction", kind="choice", default="up", choices=("up", "down"),
        section="III-B",
        doc="induction direction: up = step +1 (SRV UP comparison), "
            "down = step -1 (DOWN)",
    ),
    KnobSpec(
        name="elem_size", kind="choice", default=4, choices=(4, 8),
        section="IV-A",
        doc="destination array element width in bytes",
    ),
    KnobSpec(
        name="op_mix", kind="choice", default="mixed",
        choices=("arith", "logic", "mixed"),
        section="V",
        doc="operator palette for value expressions: arith (+,-,*), "
            "logic (&,|,^ plus shift post-ops), or both with min/max",
    ),
)

KNOBS_BY_NAME: dict[str, KnobSpec] = {spec.name: spec for spec in KNOB_SPACE}


@dataclass(frozen=True)
class Knobs:
    """One point in the knob space.  Fields mirror :data:`KNOB_SPACE`."""

    n: int = 256
    statements: int = 1
    reads_per_stmt: int = 2
    region_len: int = 6
    dep_density: float = 0.05
    dep_distance: int = 4
    alias_rate: float = 0.0
    gather_ratio: float = 0.5
    scatter: bool = True
    stride: int = 1
    broadcast_rate: float = 0.0
    predication_rate: float = 0.0
    direction: str = "up"
    elem_size: int = 4
    op_mix: str = "mixed"

    def as_dict(self) -> dict:
        return asdict(self)

    def with_overrides(self, **kwargs) -> "Knobs":
        return replace(self, **kwargs)


def default_knobs() -> Knobs:
    return Knobs()


def validate_knobs(knobs: Knobs) -> None:
    """Raise :class:`ValueError` if any knob is outside its declared range."""
    for spec in KNOB_SPACE:
        value = getattr(knobs, spec.name)
        if spec.kind == "int":
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"knob {spec.name!r} must be an int")
            if not spec.lo <= value <= spec.hi:
                raise ValueError(
                    f"knob {spec.name!r} = {value} outside "
                    f"[{spec.lo}, {spec.hi}]"
                )
        elif spec.kind == "float":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"knob {spec.name!r} must be a float")
            if not spec.lo <= value <= spec.hi:
                raise ValueError(
                    f"knob {spec.name!r} = {value} outside "
                    f"[{spec.lo}, {spec.hi}]"
                )
        elif spec.kind == "bool":
            if not isinstance(value, bool):
                raise ValueError(f"knob {spec.name!r} must be a bool")
        elif spec.kind == "choice":
            if value not in spec.choices:
                raise ValueError(
                    f"knob {spec.name!r} = {value!r} not one of "
                    f"{spec.choices}"
                )
        else:  # pragma: no cover - declaration error
            raise ValueError(f"unknown knob kind {spec.kind!r}")


def sample_knobs(seed: int) -> Knobs:
    """Draw one knob set from the space, deterministically from ``seed``.

    Rates are sampled with a point mass at their boundary values (a
    quarter of draws land exactly on 0.0, and for ``predication_rate``
    occasionally 1.0) so boundary behaviour is exercised routinely, not
    only when a sweep asks for it.
    """
    rng = make_rng(seed, f"gen/v{GENERATOR_VERSION}/knobs")

    def rate(lo_mass: float = 0.25, hi_mass: float = 0.0, hi: float = 1.0):
        roll = rng.random()
        if roll < lo_mass:
            return 0.0
        if roll < lo_mass + hi_mass:
            return hi
        return round(rng.uniform(0.0, hi), 3)

    return Knobs(
        n=rng.choice((64, 96, 128, 192, 256, 384, 512, 1024, 2048)),
        statements=rng.randint(1, 3),
        reads_per_stmt=rng.randint(1, 4),
        region_len=rng.randint(2, 24),
        dep_density=rate(lo_mass=0.4, hi=0.5),
        dep_distance=rng.randint(1, 15),
        alias_rate=rate(lo_mass=0.5, hi=0.5),
        gather_ratio=rate(lo_mass=0.15, hi_mass=0.15),
        scatter=rng.random() < 0.75,
        stride=rng.choice((1, 1, 1, 2, 4)),
        broadcast_rate=rate(lo_mass=0.6, hi=0.5),
        predication_rate=rate(lo_mass=0.5, hi_mass=0.1),
        direction="down" if rng.random() < 0.2 else "up",
        elem_size=8 if rng.random() < 0.2 else 4,
        op_mix=rng.choice(("arith", "logic", "mixed", "mixed")),
    )


def knob_digest(knobs: Knobs) -> str:
    """Short stable digest of a knob set (part of the kernel name)."""
    canonical = json.dumps(knobs.as_dict(), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:8]
