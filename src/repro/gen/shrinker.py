"""Greedy 1-minimal kernel shrinker.

Given a failing :class:`LoopSpec` and a predicate that re-runs the
differential check, repeatedly try structure-removing transformations —
halving the trip count, dropping whole statements, simplifying value
expressions one node at a time, turning gathers/scatters back into
contiguous accesses — keeping a transformation only if the kernel
*still fails*.  The result is 1-minimal: no single remaining candidate
transformation preserves the failure.

The shrinker never invents structure, so every intermediate kernel is a
sub-kernel of the original and inherits its input arrays unchanged
(shrinking only ever *lowers* the trip count, and array lengths were
sized for the original, so every access stays in bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.compiler.ir import (
    Affine,
    BinOp,
    Expr,
    Indirect,
    Loop,
    Read,
    Select,
    Store,
)
from repro.workloads.base import LoopSpec

#: hard cap on predicate invocations per shrink (each one is a full
#: compile + simulate + compare cycle)
MAX_ATTEMPTS = 400

#: trip counts are halved but never shrunk below one vector group's worth
MIN_N = 32


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    spec: LoopSpec          # the minimal still-failing spec
    steps: tuple[str, ...]  # accepted transformations, in order
    attempts: int           # predicate invocations spent
    exhausted: bool         # True if MAX_ATTEMPTS stopped us early


def _expr_reductions(expr: Expr) -> Iterator[tuple[str, Expr]]:
    """Single-node simplifications of ``expr`` (candidate, description)."""
    if isinstance(expr, BinOp):
        yield f"binop-{expr.op}->lhs", expr.lhs
        yield f"binop-{expr.op}->rhs", expr.rhs
        for desc, sub in _expr_reductions(expr.lhs):
            yield desc, BinOp(expr.op, sub, expr.rhs)
        for desc, sub in _expr_reductions(expr.rhs):
            yield desc, BinOp(expr.op, expr.lhs, sub)
    elif isinstance(expr, Select):
        yield "select->then", expr.then_value
        yield "select->else", expr.else_value
        for desc, sub in _expr_reductions(expr.then_value):
            yield desc, replace(expr, then_value=sub)
        for desc, sub in _expr_reductions(expr.else_value):
            yield desc, replace(expr, else_value=sub)
    elif isinstance(expr, Read) and isinstance(expr.index, Indirect):
        yield f"ungather-{expr.array}", Read(expr.array, Affine(1, 0))


def _loop_candidates(loop: Loop) -> Iterator[tuple[str, Loop]]:
    """All single-step structural reductions of ``loop``."""
    body = list(loop.body)
    if len(body) > 1:
        for i in range(len(body)):
            yield (
                f"drop-stmt-{i}",
                Loop(loop.name, loop.arrays, body[:i] + body[i + 1:],
                     step=loop.step),
            )
    for i, stmt in enumerate(body):
        if not isinstance(stmt, Store):  # pragma: no cover - gen emits Stores
            continue
        if isinstance(stmt.index, Indirect):
            new = body.copy()
            new[i] = Store(stmt.array, Affine(1, 0), stmt.value)
            yield f"unscatter-stmt-{i}", Loop(loop.name, loop.arrays, new,
                                              step=loop.step)
        for desc, value in _expr_reductions(stmt.value):
            new = body.copy()
            new[i] = Store(stmt.array, stmt.index, value)
            yield f"stmt-{i}:{desc}", Loop(loop.name, loop.arrays, new,
                                           step=loop.step)


def _spec_candidates(spec: LoopSpec,
                     min_n: int) -> Iterator[tuple[str, LoopSpec]]:
    if spec.n // 2 >= min_n:
        yield f"halve-n:{spec.n}->{spec.n // 2}", replace(spec, n=spec.n // 2)
    for desc, loop in _loop_candidates(spec.loop):
        yield desc, replace(spec, loop=loop)


def shrink_spec(
    spec: LoopSpec,
    still_fails: Callable[[LoopSpec], bool],
    *,
    min_n: int = MIN_N,
    max_attempts: int = MAX_ATTEMPTS,
) -> ShrinkResult:
    """Greedily minimise ``spec`` while ``still_fails`` holds.

    ``still_fails`` must return True when the given candidate reproduces
    the original failure and False for anything else — including a
    candidate that errors in some *new* way; returning False simply
    rejects the candidate, so a conservative predicate is always safe.
    """
    current = spec
    steps: list[str] = []
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for desc, candidate in _spec_candidates(current, min_n):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                current = candidate
                steps.append(desc)
                progress = True
                break  # restart candidate enumeration from the new spec
    return ShrinkResult(
        spec=current,
        steps=tuple(steps),
        attempts=attempts,
        exhausted=attempts >= max_attempts,
    )
