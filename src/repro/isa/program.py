"""Program container: an instruction sequence with labels.

A :class:`Program` is the unit of execution for both back-ends (the
functional emulator and the cycle-approximate pipeline).  Labels map names
to instruction indices; branches refer to labels so programs can be built
and composed without manual address bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.common.errors import IsaError
from repro.isa.instructions import (
    Branch,
    Instruction,
    Jump,
    SrvEnd,
    SrvStart,
)


@dataclass
class Program:
    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "<anonymous>"

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def label_target(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise IsaError(f"undefined label {label!r} in program {self.name!r}") from None

    def validate(self) -> None:
        """Check structural invariants before execution.

        * every branch target resolves,
        * labels point inside the program,
        * SRV-regions are properly bracketed and never nested (III-A),
        * SRV-regions contain no branches (control flow inside a region
          must be if-converted, section III-C).
        """
        for label, target in self.labels.items():
            if not 0 <= target <= len(self.instructions):
                raise IsaError(f"label {label!r} targets {target}, outside program")
        in_region = False
        for idx, inst in enumerate(self.instructions):
            if isinstance(inst, (Branch, Jump)):
                self.label_target(inst.target)
                if in_region:
                    raise IsaError(
                        f"branch at {idx} inside SRV-region: regions support "
                        "only if-converted forward control flow"
                    )
            if isinstance(inst, SrvStart):
                if in_region:
                    raise IsaError(f"nested srv_start at index {idx}")
                in_region = True
            elif isinstance(inst, SrvEnd):
                if not in_region:
                    raise IsaError(f"srv_end without srv_start at index {idx}")
                in_region = False
        if in_region:
            raise IsaError("program ends inside an SRV-region")

    def region_spans(self) -> list[tuple[int, int]]:
        """``(srv_start_index, srv_end_index)`` pairs, in program order."""
        spans: list[tuple[int, int]] = []
        start: int | None = None
        for idx, inst in enumerate(self.instructions):
            if isinstance(inst, SrvStart):
                start = idx
            elif isinstance(inst, SrvEnd):
                if start is None:
                    raise IsaError(f"srv_end without srv_start at index {idx}")
                spans.append((start, idx))
                start = None
        return spans

    def listing(self) -> str:
        """Human-readable disassembly with labels inlined."""
        by_index: dict[int, list[str]] = {}
        for label, target in self.labels.items():
            by_index.setdefault(target, []).append(label)
        lines: list[str] = []
        for idx, inst in enumerate(self.instructions):
            for label in sorted(by_index.get(idx, [])):
                lines.append(f"{label}:")
            lines.append(f"  {idx:4d}  {inst!r}")
        for label in sorted(by_index.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def static_counts(self) -> Mapping[str, int]:
        """Static instruction-mix summary (used by figure 10)."""
        counts = {
            "total": len(self.instructions),
            "vector": 0,
            "vector_mem": 0,
            "gather_scatter": 0,
            "scalar_mem": 0,
            "branches": 0,
        }
        for inst in self.instructions:
            if inst.is_vector:
                counts["vector"] += 1
                if inst.is_mem:
                    counts["vector_mem"] += 1
                    if getattr(inst, "access_kind", None) in ("gather", "scatter"):
                        counts["gather_scatter"] += 1
            elif inst.is_mem:
                counts["scalar_mem"] += 1
            if inst.is_branch:
                counts["branches"] += 1
        return counts
