"""Fluent assembler-style builder for :class:`~repro.isa.program.Program`.

Code generators and tests construct programs through this builder rather
than instantiating instruction dataclasses directly; it resolves labels,
keeps listings close to the paper's pseudo-code (listing 2), and validates
the result.

Example — the paper's listing 2::

    b = ProgramBuilder("listing2")
    b.label("Loop")
    b.srv_start()
    b.v_load(v(0), x(1))            # v_load v0, a[i:i+15]
    b.v_add(v(0), v(0), imm(2))     # v_add v0, 2
    b.v_gather_idx(...)             # load x[i:i+15]
    b.v_scatter(v(0), x(1), v(1))   # scatter v0, a[x[i]:x[i+15]]
    b.srv_end()
    b.add(x(2), x(2), imm(16))      # inc i, 16
    b.blt(x(2), x(3), "Loop")       # comp i, N; bne Loop
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from repro.common.errors import IsaError
from repro.isa.instructions import (
    Branch,
    BranchCond,
    CmpOpcode,
    Halt,
    Instruction,
    Jump,
    Nop,
    PredCount,
    PredFirstN,
    PredLogic,
    PredRange,
    PredSetAll,
    ScalarALU,
    ScalarLoad,
    ScalarOpcode,
    ScalarStore,
    SrvDirection,
    SrvEnd,
    SrvStart,
    VecALU,
    VecCmp,
    VecExtractLane,
    VecIndex,
    VecLoadBroadcast,
    VecLoadContig,
    VecLoadGather,
    VecOpcode,
    VecReduce,
    VecSplat,
    VecStoreContig,
    VecStoreScatter,
)
from repro.isa.program import Program
from repro.isa.registers import Imm, PredReg, ScalarOperand, ScalarReg, VecReg


class ProgramBuilder:
    def __init__(self, name: str = "<anonymous>") -> None:
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}

    # -- structure -----------------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise IsaError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def emit(self, inst: Instruction) -> "ProgramBuilder":
        self._instructions.append(inst)
        return self

    def build(self, validate: bool = True) -> Program:
        program = Program(
            instructions=list(self._instructions),
            labels=dict(self._labels),
            name=self._name,
        )
        if validate:
            program.validate()
        return program

    def __len__(self) -> int:
        return len(self._instructions)

    # -- scalar ALU ----------------------------------------------------------

    def _scalar(self, op: ScalarOpcode, dst: ScalarReg,
                a: ScalarOperand, b: ScalarOperand | None = None) -> "ProgramBuilder":
        return self.emit(ScalarALU(op, dst, a, b))

    def add(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.ADD, dst, a, b)

    def sub(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.SUB, dst, a, b)

    def mul(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.MUL, dst, a, b)

    def div(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.DIV, dst, a, b)

    def mod(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.MOD, dst, a, b)

    def and_(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.AND, dst, a, b)

    def or_(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.OR, dst, a, b)

    def xor(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.XOR, dst, a, b)

    def shl(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.SHL, dst, a, b)

    def shr(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.SHR, dst, a, b)

    def min_(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.MIN, dst, a, b)

    def max_(self, dst: ScalarReg, a: ScalarOperand, b: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.MAX, dst, a, b)

    def mov(self, dst: ScalarReg, src: ScalarOperand) -> "ProgramBuilder":
        return self._scalar(ScalarOpcode.MOV, dst, src)

    # -- scalar memory ---------------------------------------------------------

    def load(self, dst: ScalarReg, base: ScalarReg, offset: int = 0,
             elem: int = 8) -> "ProgramBuilder":
        return self.emit(ScalarLoad(dst, base, offset, elem))

    def store(self, src: ScalarReg, base: ScalarReg, offset: int = 0,
              elem: int = 8) -> "ProgramBuilder":
        return self.emit(ScalarStore(src, base, offset, elem))

    # -- control flow -----------------------------------------------------------

    def _branch(self, cond: BranchCond, a: ScalarReg, b: ScalarOperand,
                target: str) -> "ProgramBuilder":
        return self.emit(Branch(cond, a, b, target))

    def beq(self, a: ScalarReg, b: ScalarOperand, target: str) -> "ProgramBuilder":
        return self._branch(BranchCond.EQ, a, b, target)

    def bne(self, a: ScalarReg, b: ScalarOperand, target: str) -> "ProgramBuilder":
        return self._branch(BranchCond.NE, a, b, target)

    def blt(self, a: ScalarReg, b: ScalarOperand, target: str) -> "ProgramBuilder":
        return self._branch(BranchCond.LT, a, b, target)

    def ble(self, a: ScalarReg, b: ScalarOperand, target: str) -> "ProgramBuilder":
        return self._branch(BranchCond.LE, a, b, target)

    def bgt(self, a: ScalarReg, b: ScalarOperand, target: str) -> "ProgramBuilder":
        return self._branch(BranchCond.GT, a, b, target)

    def bge(self, a: ScalarReg, b: ScalarOperand, target: str) -> "ProgramBuilder":
        return self._branch(BranchCond.GE, a, b, target)

    def jump(self, target: str) -> "ProgramBuilder":
        return self.emit(Jump(target))

    def halt(self) -> "ProgramBuilder":
        return self.emit(Halt())

    def nop(self) -> "ProgramBuilder":
        return self.emit(Nop())

    # -- vector ALU ---------------------------------------------------------------

    def _vec(self, op: VecOpcode, dst: VecReg, a: VecReg,
             b: VecReg | Imm | ScalarReg | None = None, *,
             c: VecReg | None = None, pred: PredReg | None = None,
             elem: int = 4) -> "ProgramBuilder":
        return self.emit(VecALU(op, dst, a, b, c, pred, elem))

    def v_add(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.ADD, dst, a, b, pred=pred, elem=elem)

    def v_sub(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.SUB, dst, a, b, pred=pred, elem=elem)

    def v_mul(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.MUL, dst, a, b, pred=pred, elem=elem)

    def v_div(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.DIV, dst, a, b, pred=pred, elem=elem)

    def v_and(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.AND, dst, a, b, pred=pred, elem=elem)

    def v_or(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
             pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.OR, dst, a, b, pred=pred, elem=elem)

    def v_xor(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.XOR, dst, a, b, pred=pred, elem=elem)

    def v_shl(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.SHL, dst, a, b, pred=pred, elem=elem)

    def v_shr(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.SHR, dst, a, b, pred=pred, elem=elem)

    def v_min(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.MIN, dst, a, b, pred=pred, elem=elem)

    def v_max(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.MAX, dst, a, b, pred=pred, elem=elem)

    def v_fma(self, dst: VecReg, a: VecReg, b: VecReg | Imm | ScalarReg,
              c: VecReg, pred: PredReg | None = None, elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.FMA, dst, a, b, c=c, pred=pred, elem=elem)

    def v_mov(self, dst: VecReg, src: VecReg, pred: PredReg | None = None,
              elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.MOV, dst, src, pred=pred, elem=elem)

    def v_abs(self, dst: VecReg, src: VecReg, pred: PredReg | None = None,
              elem: int = 4) -> "ProgramBuilder":
        return self._vec(VecOpcode.ABS, dst, src, pred=pred, elem=elem)

    # -- vector memory -------------------------------------------------------------

    def v_load(self, dst: VecReg, base: ScalarReg, offset: int = 0,
               elem: int = 4, pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecLoadContig(dst, base, offset, elem, pred))

    def v_gather(self, dst: VecReg, base: ScalarReg, index: VecReg,
                 elem: int = 4, index_elem: int = 4, scale: int | None = None,
                 pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecLoadGather(dst, base, index, elem, index_elem, scale, pred))

    def v_bcast(self, dst: VecReg, base: ScalarReg, offset: int = 0,
                elem: int = 4, pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecLoadBroadcast(dst, base, offset, elem, pred))

    def v_store(self, src: VecReg, base: ScalarReg, offset: int = 0,
                elem: int = 4, pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecStoreContig(src, base, offset, elem, pred))

    def v_scatter(self, src: VecReg, base: ScalarReg, index: VecReg,
                  elem: int = 4, index_elem: int = 4, scale: int | None = None,
                  pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecStoreScatter(src, base, index, elem, index_elem, scale, pred))

    # -- predicates and lane utilities ----------------------------------------------

    def ptrue(self, dst: PredReg) -> "ProgramBuilder":
        return self.emit(PredSetAll(dst, True))

    def pfalse(self, dst: PredReg) -> "ProgramBuilder":
        return self.emit(PredSetAll(dst, False))

    def pcount(self, dst: ScalarReg, src: PredReg) -> "ProgramBuilder":
        return self.emit(PredCount(dst, src))

    def pfirstn(self, dst: PredReg, count: ScalarReg) -> "ProgramBuilder":
        return self.emit(PredFirstN(dst, count))

    def prange(self, dst: PredReg, lo: ScalarReg, hi: ScalarReg) -> "ProgramBuilder":
        return self.emit(PredRange(dst, lo, hi))

    def v_cmp(self, op: CmpOpcode, dst: PredReg, a: VecReg,
              b: VecReg | Imm | ScalarReg, elem: int = 4,
              pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecCmp(op, dst, a, b, elem, pred))

    def p_and(self, dst: PredReg, a: PredReg, b: PredReg) -> "ProgramBuilder":
        return self.emit(PredLogic("and", dst, a, b))

    def p_or(self, dst: PredReg, a: PredReg, b: PredReg) -> "ProgramBuilder":
        return self.emit(PredLogic("or", dst, a, b))

    def p_xor(self, dst: PredReg, a: PredReg, b: PredReg) -> "ProgramBuilder":
        return self.emit(PredLogic("xor", dst, a, b))

    def p_andnot(self, dst: PredReg, a: PredReg, b: PredReg) -> "ProgramBuilder":
        return self.emit(PredLogic("andnot", dst, a, b))

    def p_not(self, dst: PredReg, a: PredReg) -> "ProgramBuilder":
        return self.emit(PredLogic("not", dst, a))

    def v_extract(self, dst: ScalarReg, src: VecReg, lane: int,
                  elem: int = 4) -> "ProgramBuilder":
        return self.emit(VecExtractLane(dst, src, lane, elem))

    def v_splat(self, dst: VecReg, src: ScalarOperand, elem: int = 4,
                pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecSplat(dst, src, elem, pred))

    def v_index(self, dst: VecReg, start: ScalarOperand,
                step: ScalarOperand = Imm(1), elem: int = 4) -> "ProgramBuilder":
        return self.emit(VecIndex(dst, start, step, elem))

    def v_reduce(self, op: str, dst: ScalarReg, src: VecReg, elem: int = 4,
                 pred: PredReg | None = None) -> "ProgramBuilder":
        return self.emit(VecReduce(op, dst, src, elem, pred))

    # -- SRV ------------------------------------------------------------------------

    def srv_start(self, direction: SrvDirection = SrvDirection.UP,
                  sequential: bool = False) -> "ProgramBuilder":
        return self.emit(SrvStart(direction, sequential))

    def srv_end(self) -> "ProgramBuilder":
        return self.emit(SrvEnd())
