"""Architectural register names.

The ISA follows the paper's SVE-like baseline: 32 scalar registers
(``x0``–``x31``), 32 vector registers (``v0``–``v31``) of 16 lanes each,
and 16 predicate registers (``p0``–``p15``).  The two SRV predicate
registers (*SRV-replay* and *SRV-needs-replay*) are architectural state of
the SRV engine rather than named ISA registers, matching section III-D2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import IsaError

NUM_SCALAR_REGS = 32
NUM_VECTOR_REGS = 32
NUM_PRED_REGS = 16


@dataclass(frozen=True)
class ScalarReg:
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_SCALAR_REGS:
            raise IsaError(f"scalar register index {self.index} out of range")

    def __repr__(self) -> str:
        return f"x{self.index}"


@dataclass(frozen=True)
class VecReg:
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_VECTOR_REGS:
            raise IsaError(f"vector register index {self.index} out of range")

    def __repr__(self) -> str:
        return f"v{self.index}"


@dataclass(frozen=True)
class PredReg:
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_PRED_REGS:
            raise IsaError(f"predicate register index {self.index} out of range")

    def __repr__(self) -> str:
        return f"p{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand for scalar and vector-scalar operations."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


ScalarOperand = ScalarReg | Imm


def x(index: int) -> ScalarReg:
    return ScalarReg(index)


def v(index: int) -> VecReg:
    return VecReg(index)


def p(index: int) -> PredReg:
    return PredReg(index)


def imm(value: int) -> Imm:
    return Imm(value)
