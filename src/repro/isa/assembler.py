"""Text assembler: parse ``Program.listing()``-style assembly back into
programs.

The dialect is the one :meth:`~repro.isa.program.Program.listing` prints
(and the paper's listings use), e.g.::

    Loop:
        srv_start (up)
        v_load v0, [x5, #0] (4B)
        v_add v0, v0, #2 (p1/m)
        v_scatter v0, [x1, v1] (4B)
        srv_end
        add x3, x3, #16
        blt x3, x4, Loop
        halt

Lines may carry ``;`` comments; labels end with ``:``; leading indices
from a listing (``  12  add …``) are tolerated, so
``parse(program.listing())`` round-trips.
"""

from __future__ import annotations

import re

from repro.common.errors import IsaError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import (
    BranchCond,
    CmpOpcode,
    ScalarOpcode,
    SrvDirection,
    VecOpcode,
)
from repro.isa.program import Program
from repro.isa.registers import Imm, PredReg, ScalarReg, VecReg

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_INDEX_PREFIX_RE = re.compile(r"^\d+\s+")
_MEM_RE = re.compile(r"^\[\s*(x\d+)\s*,\s*(#-?\d+|v\d+)\s*\]$")
_ELEM_RE = re.compile(r"\((\d)B\)")
_PRED_RE = re.compile(r"\((p\d+)/m\)")
_LANE_RE = re.compile(r"^(v\d+)\[(\d+)\]$")

_SCALAR_OPS = {op.value: op for op in ScalarOpcode if not op.value.startswith("cmp")}
_VEC_OPS = {op.value: op for op in VecOpcode}
_BRANCHES = {cond.value: cond for cond in BranchCond}
_CMPS = {f"v_cmp_{op.value}": op for op in CmpOpcode}


def _operand(token: str):
    token = token.strip()
    if token.startswith("#"):
        return Imm(int(token[1:]))
    if token.startswith("x"):
        return ScalarReg(int(token[1:]))
    if token.startswith("v"):
        return VecReg(int(token[1:]))
    if token.startswith("p"):
        return PredReg(int(token[1:]))
    raise IsaError(f"cannot parse operand {token!r}")


def _split_operands(text: str) -> list[str]:
    """Split on commas that are not inside brackets."""
    parts: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


class Assembler:
    def __init__(self, name: str = "<asm>") -> None:
        self._builder = ProgramBuilder(name)

    def parse(self, text: str) -> Program:
        for raw_line in text.splitlines():
            line = raw_line.split(";", 1)[0].split("//", 1)[0].strip()
            if not line:
                continue
            label = _LABEL_RE.match(line)
            if label:
                self._builder.label(label.group(1))
                continue
            line = _INDEX_PREFIX_RE.sub("", line)
            self._instruction(line)
        return self._builder.build()

    # -- helpers -------------------------------------------------------------

    def _extract_annotations(
        self, text: str
    ) -> tuple[str, int | None, PredReg | None]:
        elem: int | None = None
        pred = None
        m = _ELEM_RE.search(text)
        if m:
            elem = int(m.group(1))
            text = _ELEM_RE.sub("", text)
        m = _PRED_RE.search(text)
        if m:
            pred = _operand(m.group(1))
            text = _PRED_RE.sub("", text)
        return text.strip().rstrip(","), elem, pred

    def _mem_operand(self, token: str):
        m = _MEM_RE.match(token.strip())
        if not m:
            raise IsaError(f"cannot parse memory operand {token!r}")
        base = _operand(m.group(1))
        second = m.group(2)
        if second.startswith("#"):
            return base, int(second[1:]), None
        return base, 0, _operand(second)

    # -- instruction dispatch ----------------------------------------------------

    def _instruction(self, line: str) -> None:
        b = self._builder
        mnemonic, _, rest = line.partition(" ")
        rest, explicit_elem, pred = self._extract_annotations(rest)
        # defaults when no "(NB)" annotation: 8 bytes for scalar memory
        # operations, 4 for vector ones
        scalar_mem = mnemonic in ("ldr", "str")
        elem = explicit_elem if explicit_elem is not None else (8 if scalar_mem else 4)
        ops = _split_operands(rest) if rest else []

        if mnemonic == "halt":
            b.halt()
        elif mnemonic == "nop":
            b.nop()
        elif mnemonic == "srv_start":
            direction = SrvDirection.UP
            if ops and "down" in ops[0]:
                direction = SrvDirection.DOWN
            sequential = any("seq" in op for op in ops)
            b.srv_start(direction, sequential)
        elif mnemonic == "srv_end":
            b.srv_end()
        elif mnemonic == "b":
            b.jump(ops[0])
        elif mnemonic in _BRANCHES:
            from repro.isa.instructions import Branch

            b.emit(Branch(_BRANCHES[mnemonic], _operand(ops[0]),
                          _operand(ops[1]), ops[2]))
        elif mnemonic in _SCALAR_OPS:
            from repro.isa.instructions import ScalarALU

            op = _SCALAR_OPS[mnemonic]
            srcs = [_operand(t) for t in ops[1:]]
            if op is ScalarOpcode.MOV:
                b.emit(ScalarALU(op, _operand(ops[0]), srcs[0]))
            else:
                b.emit(ScalarALU(op, _operand(ops[0]), srcs[0], srcs[1]))
        elif mnemonic == "ldr":
            base, offset, _ = self._mem_operand(ops[1])
            b.load(_operand(ops[0]), base, offset, elem=elem)
        elif mnemonic == "str":
            base, offset, _ = self._mem_operand(ops[1])
            b.store(_operand(ops[0]), base, offset, elem=elem)
        elif mnemonic == "v_load":
            base, offset, _ = self._mem_operand(ops[1])
            b.v_load(_operand(ops[0]), base, offset, elem=elem, pred=pred)
        elif mnemonic == "v_bcast":
            base, offset, _ = self._mem_operand(ops[1])
            b.v_bcast(_operand(ops[0]), base, offset, elem=elem, pred=pred)
        elif mnemonic == "v_gather":
            base, _, index = self._mem_operand(ops[1])
            b.v_gather(_operand(ops[0]), base, index, elem=elem, pred=pred)
        elif mnemonic == "v_store":
            base, offset, _ = self._mem_operand(ops[1])
            b.v_store(_operand(ops[0]), base, offset, elem=elem, pred=pred)
        elif mnemonic == "v_scatter":
            base, _, index = self._mem_operand(ops[1])
            b.v_scatter(_operand(ops[0]), base, index, elem=elem, pred=pred)
        elif mnemonic in _CMPS:
            b.v_cmp(_CMPS[mnemonic], _operand(ops[0]), _operand(ops[1]),
                    _operand(ops[2]), elem=elem, pred=pred)
        elif mnemonic == "v_splat":
            b.v_splat(_operand(ops[0]), _operand(ops[1]), elem=elem, pred=pred)
        elif mnemonic == "v_index":
            step = _operand(ops[2]) if len(ops) > 2 else Imm(1)
            b.v_index(_operand(ops[0]), _operand(ops[1]), step, elem=elem)
        elif mnemonic == "v_extract":
            m = _LANE_RE.match(ops[1])
            if not m:
                raise IsaError(f"cannot parse lane operand {ops[1]!r}")
            b.v_extract(_operand(ops[0]), _operand(m.group(1)),
                        int(m.group(2)), elem=elem)
        elif mnemonic.startswith("v_reduce_"):
            b.v_reduce(mnemonic.removeprefix("v_reduce_"), _operand(ops[0]),
                       _operand(ops[1]), elem=elem, pred=pred)
        elif mnemonic in ("ptrue", "pfalse"):
            from repro.isa.instructions import PredSetAll

            b.emit(PredSetAll(_operand(ops[0]), mnemonic == "ptrue"))
        elif mnemonic == "pcount":
            b.pcount(_operand(ops[0]), _operand(ops[1]))
        elif mnemonic == "pfirstn":
            b.pfirstn(_operand(ops[0]), _operand(ops[1]))
        elif mnemonic == "prange":
            b.prange(_operand(ops[0]), _operand(ops[1]), _operand(ops[2]))
        elif mnemonic.startswith("p_"):
            from repro.isa.instructions import PredLogic

            op = mnemonic.removeprefix("p_")
            if op == "not":
                b.emit(PredLogic(op, _operand(ops[0]), _operand(ops[1])))
            else:
                b.emit(PredLogic(op, _operand(ops[0]), _operand(ops[1]),
                                 _operand(ops[2])))
        elif mnemonic in _VEC_OPS:
            op = _VEC_OPS[mnemonic]
            from repro.isa.instructions import VecALU

            dst = _operand(ops[0])
            srcs = [_operand(t) for t in ops[1:]]
            if op in (VecOpcode.MOV, VecOpcode.ABS):
                b.emit(VecALU(op, dst, srcs[0], pred=pred, elem=elem))
            elif op is VecOpcode.FMA:
                b.emit(VecALU(op, dst, srcs[0], srcs[1], srcs[2],
                              pred=pred, elem=elem))
            else:
                b.emit(VecALU(op, dst, srcs[0], srcs[1], pred=pred, elem=elem))
        else:
            raise IsaError(f"unknown mnemonic {mnemonic!r} in {line!r}")


def parse_asm(text: str, name: str = "<asm>") -> Program:
    """Parse assembly text into a validated :class:`Program`."""
    return Assembler(name).parse(text)
