"""Instruction definitions for the SVE-like SRV evaluation ISA.

The set is deliberately small but covers everything the paper's code
shapes need: scalar control/ALU/memory, contiguous / gather / scatter /
broadcast vector memory accesses, predicated element-wise vector ALU
operations, predicate manipulation, and the two new SRV instructions
(``srv_start`` with an UP/DOWN attribute, and ``srv_end``).

All vector memory operations record an element size in bytes; vectors are
16 lanes by default and element-size agnostic, as in the evaluation
(section V).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import IsaError
from repro.isa.registers import Imm, PredReg, ScalarOperand, ScalarReg, VecReg

VALID_ELEM_SIZES = (1, 2, 4, 8)


class ScalarOpcode(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    CMP_LT = "cmp_lt"
    CMP_LE = "cmp_le"
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"
    MIN = "min"
    MAX = "max"
    MOD = "mod"


class VecOpcode(enum.Enum):
    ADD = "v_add"
    SUB = "v_sub"
    MUL = "v_mul"
    DIV = "v_div"
    AND = "v_and"
    OR = "v_or"
    XOR = "v_xor"
    SHL = "v_shl"
    SHR = "v_shr"
    MOV = "v_mov"
    MIN = "v_min"
    MAX = "v_max"
    FMA = "v_fma"
    ABS = "v_abs"


class CmpOpcode(enum.Enum):
    LT = "lt"
    LE = "le"
    EQ = "eq"
    NE = "ne"
    GT = "gt"
    GE = "ge"


class BranchCond(enum.Enum):
    EQ = "beq"
    NE = "bne"
    LT = "blt"
    LE = "ble"
    GT = "bgt"
    GE = "bge"


class SrvDirection(enum.Enum):
    """Iteration-ordering attribute of ``srv_start`` (section III-A).

    UP: lane number increases with increasing memory address (increasing
    induction variable).  DOWN: the opposite; horizontal address
    comparisons are mirrored.
    """

    UP = "up"
    DOWN = "down"


class Instruction:
    """Base class for all instructions."""

    __slots__ = ()

    @property
    def is_vector(self) -> bool:
        return False

    @property
    def is_mem(self) -> bool:
        return False

    @property
    def is_load(self) -> bool:
        return False

    @property
    def is_store(self) -> bool:
        return False

    @property
    def is_branch(self) -> bool:
        return False


def _annotate(elem: int | None = None, pred: "PredReg | None" = None) -> str:
    """Suffix annotations used by listings and understood by the assembler."""
    out = ""
    if elem is not None:
        out += f" ({elem}B)"
    if pred is not None:
        out += f" ({pred}/m)"
    return out


def _check_elem(elem: int) -> None:
    if elem not in VALID_ELEM_SIZES:
        raise IsaError(f"invalid element size {elem}; expected one of {VALID_ELEM_SIZES}")


# ---------------------------------------------------------------------------
# Scalar instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarALU(Instruction):
    op: ScalarOpcode
    dst: ScalarReg
    src1: ScalarOperand
    src2: ScalarOperand | None = None

    def __post_init__(self) -> None:
        unary = {ScalarOpcode.MOV}
        if self.op in unary:
            if self.src2 is not None:
                raise IsaError(f"{self.op.value} takes one source operand")
        elif self.src2 is None:
            raise IsaError(f"{self.op.value} requires two source operands")

    def __repr__(self) -> str:
        if self.src2 is None:
            return f"{self.op.value} {self.dst}, {self.src1}"
        return f"{self.op.value} {self.dst}, {self.src1}, {self.src2}"


@dataclass(frozen=True)
class ScalarLoad(Instruction):
    dst: ScalarReg
    base: ScalarReg
    offset: int = 0
    elem: int = 8

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    @property
    def is_mem(self) -> bool:
        return True

    @property
    def is_load(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ldr {self.dst}, [{self.base}, #{self.offset}] ({self.elem}B)"


@dataclass(frozen=True)
class ScalarStore(Instruction):
    src: ScalarReg
    base: ScalarReg
    offset: int = 0
    elem: int = 8

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    @property
    def is_mem(self) -> bool:
        return True

    @property
    def is_store(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"str {self.src}, [{self.base}, #{self.offset}] ({self.elem}B)"


@dataclass(frozen=True)
class Branch(Instruction):
    cond: BranchCond
    src1: ScalarReg
    src2: ScalarOperand
    target: str

    @property
    def is_branch(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.cond.value} {self.src1}, {self.src2}, {self.target}"


@dataclass(frozen=True)
class Jump(Instruction):
    target: str

    @property
    def is_branch(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"b {self.target}"


@dataclass(frozen=True)
class Halt(Instruction):
    def __repr__(self) -> str:
        return "halt"


@dataclass(frozen=True)
class Nop(Instruction):
    def __repr__(self) -> str:
        return "nop"


# ---------------------------------------------------------------------------
# Vector instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VectorInstruction(Instruction):
    """Common base for vector instructions (predicated, element-sized)."""

    __slots__ = ()

    @property
    def is_vector(self) -> bool:
        return True


@dataclass(frozen=True)
class VecALU(VectorInstruction):
    op: VecOpcode
    dst: VecReg
    src1: VecReg
    src2: VecReg | Imm | ScalarReg | None = None
    src3: VecReg | None = None            # FMA accumulator
    pred: PredReg | None = None
    elem: int = 4

    def __post_init__(self) -> None:
        _check_elem(self.elem)
        unary = {VecOpcode.MOV, VecOpcode.ABS}
        if self.op in unary and self.src2 is not None:
            raise IsaError(f"{self.op.value} takes one source operand")
        if self.op not in unary and self.src2 is None:
            raise IsaError(f"{self.op.value} requires two source operands")
        if self.op is VecOpcode.FMA and self.src3 is None:
            raise IsaError("v_fma requires a third source operand")
        if self.op is not VecOpcode.FMA and self.src3 is not None:
            raise IsaError(f"{self.op.value} does not take a third source operand")

    def __repr__(self) -> str:
        parts = [str(self.src1)]
        if self.src2 is not None:
            parts.append(str(self.src2))
        if self.src3 is not None:
            parts.append(str(self.src3))
        ann = _annotate(self.elem if self.elem != 4 else None, self.pred)
        return f"{self.op.value} {self.dst}, {', '.join(parts)}{ann}"


class VecMemInstruction(VectorInstruction):
    """Base for vector memory operations; exposes the access pattern."""

    __slots__ = ()

    @property
    def is_mem(self) -> bool:
        return True

    @property
    def access_kind(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class VecLoadContig(VecMemInstruction):
    dst: VecReg
    base: ScalarReg
    offset: int = 0
    elem: int = 4
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    @property
    def is_load(self) -> bool:
        return True

    @property
    def access_kind(self) -> str:
        return "contiguous"

    def __repr__(self) -> str:
        return (f"v_load {self.dst}, [{self.base}, #{self.offset}]"
                f"{_annotate(self.elem, self.pred)}")


@dataclass(frozen=True)
class VecLoadGather(VecMemInstruction):
    dst: VecReg
    base: ScalarReg
    index: VecReg
    elem: int = 4
    index_elem: int = 4
    scale: int | None = None   # byte multiplier for indices; defaults to elem
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        _check_elem(self.elem)
        _check_elem(self.index_elem)

    @property
    def is_load(self) -> bool:
        return True

    @property
    def access_kind(self) -> str:
        return "gather"

    @property
    def effective_scale(self) -> int:
        return self.elem if self.scale is None else self.scale

    def __repr__(self) -> str:
        return (f"v_gather {self.dst}, [{self.base}, {self.index}]"
                f"{_annotate(self.elem, self.pred)}")


@dataclass(frozen=True)
class VecLoadBroadcast(VecMemInstruction):
    dst: VecReg
    base: ScalarReg
    offset: int = 0
    elem: int = 4
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    @property
    def is_load(self) -> bool:
        return True

    @property
    def access_kind(self) -> str:
        return "broadcast"

    def __repr__(self) -> str:
        return (f"v_bcast {self.dst}, [{self.base}, #{self.offset}]"
                f"{_annotate(self.elem, self.pred)}")


@dataclass(frozen=True)
class VecStoreContig(VecMemInstruction):
    src: VecReg
    base: ScalarReg
    offset: int = 0
    elem: int = 4
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    @property
    def is_store(self) -> bool:
        return True

    @property
    def access_kind(self) -> str:
        return "contiguous"

    def __repr__(self) -> str:
        return (f"v_store {self.src}, [{self.base}, #{self.offset}]"
                f"{_annotate(self.elem, self.pred)}")


@dataclass(frozen=True)
class VecStoreScatter(VecMemInstruction):
    src: VecReg
    base: ScalarReg
    index: VecReg
    elem: int = 4
    index_elem: int = 4
    scale: int | None = None
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        _check_elem(self.elem)
        _check_elem(self.index_elem)

    @property
    def is_store(self) -> bool:
        return True

    @property
    def access_kind(self) -> str:
        return "scatter"

    @property
    def effective_scale(self) -> int:
        return self.elem if self.scale is None else self.scale

    def __repr__(self) -> str:
        return (f"v_scatter {self.src}, [{self.base}, {self.index}]"
                f"{_annotate(self.elem, self.pred)}")


# ---------------------------------------------------------------------------
# Predicate instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredSetAll(VectorInstruction):
    """``ptrue`` / ``pfalse``: set or clear an entire predicate register."""

    dst: PredReg
    value: bool = True

    def __repr__(self) -> str:
        return f"{'ptrue' if self.value else 'pfalse'} {self.dst}"


@dataclass(frozen=True)
class PredCount(VectorInstruction):
    """Count active lanes of a predicate into a scalar register."""

    dst: ScalarReg
    src: PredReg

    def __repr__(self) -> str:
        return f"pcount {self.dst}, {self.src}"


@dataclass(frozen=True)
class PredFirstN(VectorInstruction):
    """``whilelt``-style predicate: first ``n`` lanes active.

    ``n`` is read from a scalar register, clamped to the lane count; used
    for loop epilogues and FlexVec partial vectorisation.
    """

    dst: PredReg
    count: ScalarReg

    def __repr__(self) -> str:
        return f"pfirstn {self.dst}, {self.count}"


@dataclass(frozen=True)
class PredRange(VectorInstruction):
    """Predicate with lanes in ``[lo, hi)`` active, from scalar registers."""

    dst: PredReg
    lo: ScalarReg
    hi: ScalarReg

    def __repr__(self) -> str:
        return f"prange {self.dst}, {self.lo}, {self.hi}"


@dataclass(frozen=True)
class VecCmp(VectorInstruction):
    """Element-wise compare producing a predicate (for if-conversion)."""

    op: CmpOpcode
    dst: PredReg
    src1: VecReg
    src2: VecReg | Imm | ScalarReg
    elem: int = 4
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    def __repr__(self) -> str:
        return (f"v_cmp_{self.op.value} {self.dst}, {self.src1}, {self.src2}"
                f"{_annotate(self.elem if self.elem != 4 else None, self.pred)}")


@dataclass(frozen=True)
class PredLogic(VectorInstruction):
    op: str  # "and" | "or" | "xor" | "andnot" | "not"
    dst: PredReg
    src1: PredReg
    src2: PredReg | None = None

    def __post_init__(self) -> None:
        if self.op not in ("and", "or", "xor", "andnot", "not"):
            raise IsaError(f"invalid predicate op {self.op!r}")
        if self.op == "not" and self.src2 is not None:
            raise IsaError("predicate not takes one source")
        if self.op != "not" and self.src2 is None:
            raise IsaError(f"predicate {self.op} requires two sources")

    def __repr__(self) -> str:
        if self.src2 is None:
            return f"p_{self.op} {self.dst}, {self.src1}"
        return f"p_{self.op} {self.dst}, {self.src1}, {self.src2}"


@dataclass(frozen=True)
class VecExtractLane(VectorInstruction):
    """Move one lane of a vector register to a scalar register."""

    dst: ScalarReg
    src: VecReg
    lane: int
    elem: int = 4

    def __post_init__(self) -> None:
        _check_elem(self.elem)
        if self.lane < 0:
            raise IsaError(f"negative lane {self.lane}")

    def __repr__(self) -> str:
        return f"v_extract {self.dst}, {self.src}[{self.lane}]"


@dataclass(frozen=True)
class VecSplat(VectorInstruction):
    """Broadcast a scalar register or immediate into all lanes."""

    dst: VecReg
    src: ScalarOperand
    elem: int = 4
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    def __repr__(self) -> str:
        return (f"v_splat {self.dst}, {self.src}"
                f"{_annotate(self.elem if self.elem != 4 else None, self.pred)}")


@dataclass(frozen=True)
class VecIndex(VectorInstruction):
    """SVE ``index``: lane i = start + i * step (both scalar operands)."""

    dst: VecReg
    start: ScalarOperand
    step: ScalarOperand = field(default_factory=lambda: Imm(1))
    elem: int = 4

    def __post_init__(self) -> None:
        _check_elem(self.elem)

    def __repr__(self) -> str:
        return (f"v_index {self.dst}, {self.start}, {self.step}"
                f"{_annotate(self.elem if self.elem != 4 else None)}")


@dataclass(frozen=True)
class VecReduce(VectorInstruction):
    """Horizontal reduction of active lanes into a scalar register."""

    op: str  # "add" | "min" | "max" | "or"
    dst: ScalarReg
    src: VecReg
    elem: int = 4
    pred: PredReg | None = None

    def __post_init__(self) -> None:
        if self.op not in ("add", "min", "max", "or"):
            raise IsaError(f"invalid reduction op {self.op!r}")
        _check_elem(self.elem)

    def __repr__(self) -> str:
        return (f"v_reduce_{self.op} {self.dst}, {self.src}"
                f"{_annotate(self.elem if self.elem != 4 else None, self.pred)}")


# ---------------------------------------------------------------------------
# SRV instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SrvStart(Instruction):
    """Marks the start of an SRV-region (section III-A).

    Records the restart PC, fully sets the SRV-replay register, and arms
    extended (horizontal) memory disambiguation in the LSU.
    """

    direction: SrvDirection = SrvDirection.UP
    #: compiler hint: execute the region one lane at a time (the
    #: section III-D7 fallback) instead of speculating — emitted by the
    #: guided code generator for regions with proven-dense conflicts
    sequential: bool = False

    def __repr__(self) -> str:
        if self.sequential:
            return f"srv_start ({self.direction.value}, seq)"
        return f"srv_start ({self.direction.value})"


@dataclass(frozen=True)
class SrvEnd(Instruction):
    """Marks the end of an SRV-region; a serialisation point (III-D1)."""

    def __repr__(self) -> str:
        return "srv_end"
