"""Shared substrate: bit vectors, machine configuration, errors, RNG."""

from repro.common.bitvec import (
    BitVector,
    lane_mask_below,
    lane_mask_strictly_above,
    lane_mask_up_from,
)
from repro.common.config import (
    TABLE_I,
    BranchPredictorConfig,
    CacheConfig,
    IssueConfig,
    MachineConfig,
    MemoryConfig,
    PortConfig,
)
from repro.common.errors import (
    CompilerError,
    DependenceAnalysisError,
    IsaError,
    LsuOverflowError,
    MemoryAccessError,
    NestedSrvRegionError,
    PipelineError,
    ReplayBoundExceededError,
    ReproError,
    SrvError,
    SrvRegionStateError,
)

__all__ = [
    "BitVector",
    "lane_mask_below",
    "lane_mask_strictly_above",
    "lane_mask_up_from",
    "TABLE_I",
    "BranchPredictorConfig",
    "CacheConfig",
    "IssueConfig",
    "MachineConfig",
    "MemoryConfig",
    "PortConfig",
    "CompilerError",
    "DependenceAnalysisError",
    "IsaError",
    "LsuOverflowError",
    "MemoryAccessError",
    "NestedSrvRegionError",
    "PipelineError",
    "ReplayBoundExceededError",
    "ReproError",
    "SrvError",
    "SrvRegionStateError",
]
