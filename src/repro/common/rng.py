"""Deterministic random-input helpers for workload generators.

Every workload input generator takes an explicit seed so that experiments
are bit-for-bit reproducible; no module-level RNG state exists anywhere in
the library.
"""

from __future__ import annotations

import random
from typing import Sequence


def make_rng(seed: int, stream: str = "") -> random.Random:
    """A private RNG for ``(seed, stream)``.

    Different streams derived from one seed are independent, so a workload
    can draw its index array and its data array without interference.
    """
    return random.Random(f"{seed}/{stream}")


def periodic_conflict_indices(
    n: int, period: int, *, seed: int = 0, jitter: float = 0.0
) -> list[int]:
    """Index array reproducing the paper's listing 1 pattern.

    ``read()`` in the motivating example returns ``{3, 0, 1, 2, 7, 4, 5, 6,
    ...}``: within each group of ``period`` iterations, the first index
    points ``period - 1`` ahead (creating a cross-iteration RAW dependence
    when vectorised with >= ``period`` lanes) and the rest point one behind.
    ``jitter`` randomly breaks a fraction of groups into conflict-free
    identity mappings, thinning the violation rate.
    """
    if period < 2:
        raise ValueError("period must be at least 2")
    rng = make_rng(seed, "periodic")
    out: list[int] = []
    base = 0
    while base < n:
        group = min(period, n - base)
        if jitter > 0.0 and rng.random() < jitter:
            out.extend(range(base, base + group))
        else:
            rotated = [base + (i + 1) % group for i in range(group)]
            # rotate so that element 0 reads the last element of the group,
            # matching {3, 0, 1, 2} for period 4.
            rotated = [base + group - 1] + [base + i for i in range(group - 1)]
            out.extend(rotated[:group])
        base += group
    return out[:n]


def conflict_free_permutation(n: int, lanes: int, *, seed: int = 0) -> list[int]:
    """A permutation with no intra-vector-group conflicts.

    Each group of ``lanes`` indices is a permutation of itself with every
    destination >= its source position inside the group, so no lane reads a
    location a later lane writes.  (The identity satisfies this trivially;
    we shuffle *across* groups of unrelated elements to keep gathers busy.)
    """
    rng = make_rng(seed, "conflict-free")
    out = list(range(n))
    # Swap whole groups around: inter-group reordering cannot create
    # intra-group (cross-lane) dependences for group-local accesses.
    # Only FULL groups are shuffled — including a partial tail group
    # would shift every later group off its 16-lane boundary and break
    # the conflict-freedom guarantee.
    full = n - n % lanes
    groups = [out[i : i + lanes] for i in range(0, full, lanes)]
    rng.shuffle(groups)
    return [i for g in groups for i in g] + out[full:]


def sparse_conflict_indices(
    n: int, lanes: int, conflict_rate: float, *, seed: int = 0
) -> list[int]:
    """Indices mostly equal to the identity, with occasional backward refs.

    A fraction ``conflict_rate`` of vector groups contains exactly one lane
    whose index points at a location written by a *later* lane of the same
    group — a horizontal RAW under SRV, triggering a single-lane replay.
    """
    if not 0.0 <= conflict_rate <= 1.0:
        raise ValueError("conflict_rate must be within [0, 1]")
    rng = make_rng(seed, "sparse")
    out = list(range(n))
    bases = list(range(0, n - lanes + 1, lanes))
    if not bases:
        return out
    # exact conflict count: robust at small n where a per-group coin flip
    # could produce none at all
    count = min(len(bases), round(conflict_rate * len(bases)))
    if conflict_rate > 0.0 and count == 0:
        count = 1
    for base in rng.sample(bases, count):
        lane = rng.randrange(0, lanes - 1)
        victim = rng.randrange(lane + 1, lanes)
        out[base + lane] = base + victim
    return out


def forward_alias_indices(
    n: int,
    lanes: int,
    rate: float,
    *,
    min_dist: int | None = None,
    max_dist: int = 48,
    seed: int = 0,
) -> list[int]:
    """Mostly-identity indices with occasional *forward* references.

    A fraction ``rate`` of iterations writes ``min_dist..max_dist``
    elements ahead instead of in place.  With ``min_dist >= lanes`` the
    reference always lands in a *later* vector group, so SRV never has to
    replay (groups commit in order) — but a scalar out-of-order core sees
    genuine store-to-load aliases within its instruction window, the
    pattern that trains a store-set predictor.  This reproduces the
    benchmarks whose loops are SRV-vectorisable with *no* run-time
    violations yet whose scalar baselines pay real memory-dependence
    serialisation.
    """
    if min_dist is None:
        min_dist = lanes
    if min_dist < lanes:
        raise ValueError("min_dist below the lane count would cause replays")
    if max_dist < min_dist:
        raise ValueError("max_dist must be >= min_dist")
    rng = make_rng(seed, "forward-alias")
    out = list(range(n))
    for i in range(n):
        if rng.random() < rate and i + max_dist < n:
            out[i] = i + rng.randint(min_dist, max_dist)
    return out


def planted_conflict_indices(
    n: int,
    lanes: int,
    density: float,
    distance: int,
    *,
    seed: int = 0,
    backward: bool = False,
) -> list[int]:
    """Mostly-identity indices with conflicts of a *controlled distance*.

    A fraction ``density`` of vector groups contains exactly one lane
    whose index points ``distance`` lanes ahead inside the same group —
    a horizontal RAW whose lane distance is exactly ``distance`` (clamped
    to ``lanes - 1``).  Where :func:`sparse_conflict_indices` draws the
    victim lane uniformly, this generator pins the distance, which is
    what the fuzzer's ``dep_distance`` knob sweeps: short distances
    exercise the horizontal disambiguation fast paths, ``lanes - 1`` the
    worst-case replay mask.

    With ``backward`` the planted index points ``distance`` lanes
    *behind* instead.  A store used with a DOWN-direction loop (step -1)
    executes its high indices first, so only a backward-pointing index
    targets an iteration that runs *later* — the shape that actually
    violates under DOWN, mirroring what forward conflicts are to UP.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be within [0, 1]")
    if distance < 1:
        raise ValueError("distance must be at least 1")
    distance = min(distance, lanes - 1)
    rng = make_rng(seed, "planted")
    out = list(range(n))
    bases = list(range(0, n - lanes + 1, lanes))
    if not bases or density == 0.0:
        return out
    count = min(len(bases), round(density * len(bases)))
    if count == 0:
        count = 1
    for base in sorted(rng.sample(bases, count)):
        if backward:
            lane = rng.randrange(distance, lanes)
            out[base + lane] = base + lane - distance
        else:
            lane = rng.randrange(0, lanes - distance)
            out[base + lane] = base + lane + distance
    return out


def uniform_indices(n: int, table_size: int, *, seed: int = 0) -> list[int]:
    """Uniformly random indices into a table (RandomAccess-style updates)."""
    rng = make_rng(seed, "uniform")
    return [rng.randrange(table_size) for _ in range(n)]


def values(n: int, lo: int = 0, hi: int = 255, *, seed: int = 0) -> list[int]:
    """Uniform random data values."""
    rng = make_rng(seed, "values")
    return [rng.randint(lo, hi) for _ in range(n)]


def geometric_mean(xs: Sequence[float]) -> float:
    """Geometric mean, as used for the paper's whole-program summaries."""
    if not xs:
        raise ValueError("geometric mean of empty sequence")
    product = 1.0
    for x in xs:
        if x <= 0:
            raise ValueError(f"geometric mean requires positive values, got {x}")
        product *= x
    return product ** (1.0 / len(xs))
