"""Exception hierarchy for the SRV reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IsaError(ReproError):
    """Malformed instruction, register, or program."""


class MemoryAccessError(ReproError):
    """Out-of-range or misaligned access against a memory image."""


class SrvError(ReproError):
    """Violation of SRV execution rules."""


class NestedSrvRegionError(SrvError):
    """An ``srv_start`` was executed before the previous region's ``srv_end``.

    The paper (section III-A) forbids nested SRV-regions.
    """


class SrvRegionStateError(SrvError):
    """SRV operation attempted outside / misaligned with a region."""


class ReplayBoundExceededError(SrvError):
    """A region rolled back more than ``lanes - 1`` times.

    Section III-A proves this cannot happen for a correct implementation,
    so hitting this indicates a simulator bug rather than a workload issue.
    """


class LsuOverflowError(SrvError):
    """An SRV-region required more LSU entries than the machine provides.

    Raised only when the sequential fallback (section III-D7) is disabled.
    """


class CompilerError(ReproError):
    """Loop-IR construction or code-generation failure."""


class DependenceAnalysisError(CompilerError):
    """The dependence analyser was asked about malformed references."""


class PipelineError(ReproError):
    """Inconsistent microarchitectural state in the cycle model."""


class OracleMismatchError(ReproError):
    """A run's architectural result diverged from the scalar reference.

    Carries the loop name, the strategy that produced the wrong result,
    and the first mismatching array so sweeps can report precisely what
    broke instead of dying on a bare assertion.
    """

    def __init__(self, loop: str, strategy: str, array: str | None) -> None:
        self.loop = loop
        self.strategy = strategy
        self.array = array
        where = f" (first mismatching array: {array!r})" if array else ""
        super().__init__(
            f"loop {loop!r} under strategy {strategy!r} diverged from the "
            f"scalar reference oracle{where}"
        )


class RunTimeoutError(ReproError):
    """A single experiment run exceeded its wall-clock budget."""


class ObserveError(ReproError):
    """Misuse of the observability layer (:mod:`repro.observe`)."""


class ServeError(ReproError):
    """Base class for sweep-service (:mod:`repro.serve`) failures."""


class WorkerCrashError(ServeError):
    """A pool worker process died (e.g. SIGKILL) while running a job.

    The supervisor replaces the broken pool and retries the job; this
    error reaches a client only after the retry budget is exhausted.
    """


class WorkerHungError(ServeError):
    """A job exceeded its wall-clock budget inside a pool worker.

    The supervisor cannot interrupt a wedged worker cooperatively, so it
    kills and restarts the pool — queued jobs are unaffected.
    """


class JobRejectedError(ServeError):
    """A job was refused at admission (quota, queue bound, circuit open).

    Carries the HTTP-style status the server reports: ``429`` for load
    shedding (full queue / client quota), ``503`` for a tripped circuit
    breaker, ``400`` for a malformed request.
    """

    def __init__(self, status: int, reason: str) -> None:
        self.status = status
        self.reason = reason
        super().__init__(f"rejected ({status}): {reason}")



class SampleError(ReproError):
    """Interval-sampling failure (:mod:`repro.sample`).

    Raised when the re-simulation pass diverges from the fingerprint
    pass (boundary-digest mismatch) or when a projection cannot be
    formed (e.g. a representative segment could not be collected).
    """
