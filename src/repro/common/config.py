"""Machine configuration.

Defaults reproduce Table I of the paper ("Core and memory experimental
setup"): an 8-wide out-of-order core at 3 GHz with a 64-entry LSU, 32-entry
IQ, 400-entry ROB, 16-element vectors, and a two-level cache hierarchy.
Every structure in the simulator reads its size from here so that ablation
experiments can sweep a single field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class PortConfig:
    """Issue-port and register-file port provisioning (Table I, "Ports")."""

    saq_reads: int = 2
    saq_writes: int = 2
    saq_cams: int = 2
    sdq_reads: int = 5
    sdq_writes: int = 2
    vec_rf_reads: int = 6
    vec_rf_writes: int = 2
    cache_read_write: int = 1
    cache_read_only: int = 1


@dataclass(frozen=True)
class IssueConfig:
    """Per-cycle vector-operation issue limits (Table I, "Vec-op / cycle")."""

    vec_int_ops: int = 2
    vec_other_ops: int = 1
    vec_loads: int = 2
    vec_stores: int = 1
    scalar_ops: int = 4


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Tournament predictor sizing (Table I, "Branch pred")."""

    local_entries: int = 64
    global_entries: int = 1024
    btb_entries: int = 128
    chooser_entries: int = 1024
    ras_entries: int = 8
    local_history_bits: int = 6
    global_history_bits: int = 10
    mispredict_penalty: int = 14
    #: fetch bubble on a correctly-predicted taken branch (the redirect
    #: through the BTB still costs the front end a couple of cycles)
    taken_branch_bubble: int = 2


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    associativity: int
    hit_latency: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity * line size"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class MemoryConfig:
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, hit_latency=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 16, hit_latency=7)
    )
    dram_latency: int = 80


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description; defaults are Table I."""

    clock_ghz: float = 3.0
    pipeline_width: int = 8          # fetch / decode / issue width
    vector_lanes: int = 16           # 16 elements, element-size agnostic
    lsu_entries: int = 64
    iq_entries: int = 32
    rob_entries: int = 400
    alignment_region_bytes: int = 64
    max_element_bytes: int = 8
    physical_vec_regs: int = 128
    physical_scalar_regs: int = 180
    ports: PortConfig = field(default_factory=PortConfig)
    issue: IssueConfig = field(default_factory=IssueConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    store_set_entries: int = 256
    # SRV-specific knobs
    srv_enabled: bool = True
    srv_max_replays_check: bool = True   # assert the N-1 replay bound
    #: Future-work optimisation (paper section VIII): let ``srv_end`` wait
    #: only for the region's memory operations and stop stalling younger
    #: instructions' issue.  Models the upside of "removing the
    #: serialisation barrier in SRV-end".
    srv_relax_barrier: bool = False
    #: Section III-E: emulate a transactional-memory implementation that
    #: keeps no cache-line versions — WAR violations force lane
    #: re-execution in addition to RAW.
    srv_tm_mode: bool = False
    #: Run every SRV-region through the section III-D7 sequential fallback
    #: regardless of LSU demand.  The hardened experiment runner uses this
    #: to degrade gracefully when the cycle model hits an LSU overflow.
    srv_force_sequential: bool = False

    def __post_init__(self) -> None:
        if self.vector_lanes <= 0:
            raise ValueError("vector_lanes must be positive")
        if self.alignment_region_bytes & (self.alignment_region_bytes - 1):
            raise ValueError("alignment_region_bytes must be a power of two")
        if self.vector_lanes * self.max_element_bytes < self.alignment_region_bytes:
            # A full contiguous vector access must be representable in at
            # most two alignment regions; the paper uses 64-byte regions for
            # 16-lane x 4-byte vectors.
            pass

    def with_overrides(self, **kwargs: Any) -> "MachineConfig":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: The configuration used throughout the paper's evaluation.
TABLE_I = MachineConfig()
