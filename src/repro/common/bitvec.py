"""Fixed-width bit vectors used by the SRV disambiguation logic.

The paper's memory-disambiguation microarchitecture (section IV) is built
entirely from byte-granular bit vectors scoped to a 64-byte
*address-alignment region*:

* the *bytes-accessed* bit vector of each LQ/SAQ entry,
* the *VOB* (vertically-overlapped bytes) bit vector,
* the *horizontal-violation* bit vector,
* the *HOB* (horizontally-overlapped bytes) bit vector.

:class:`BitVector` implements those vectors on top of a Python integer
mask.  Bit ``i`` corresponds to byte ``i`` relative to the
address-alignment base; bit 0 is the lowest-addressed byte.
"""

from __future__ import annotations

from typing import Iterable, Iterator

try:  # optional: enables the numpy bridge used by the lane-batched LSU paths
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None  # type: ignore[assignment]


class BitVector:
    """An immutable-width, mutable-content bit vector.

    All binary operations require equal widths; this catches unit bugs where
    vectors from different alignment-region sizes are mixed.
    """

    __slots__ = ("width", "_bits")

    def __init__(self, width: int, bits: int = 0) -> None:
        if width <= 0:
            raise ValueError(f"BitVector width must be positive, got {width}")
        mask = (1 << width) - 1
        if bits & ~mask:
            raise ValueError(f"bits 0x{bits:x} do not fit in width {width}")
        self.width = width
        self._bits = bits

    # -- constructors ------------------------------------------------------

    @classmethod
    def _new(cls, width: int, bits: int) -> "BitVector":
        """Unvalidated constructor for internal hot paths.

        Callers must guarantee ``bits`` fits in ``width``; every operator
        below does (results of AND/OR/shift of already-valid vectors are
        masked by construction).  Skipping ``__init__`` validation roughly
        halves the cost of the operators, which dominate LSU issue time.
        """
        self = object.__new__(cls)
        self.width = width
        self._bits = bits
        return self

    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        return cls(width)

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        return cls(width, (1 << width) - 1)

    @classmethod
    def from_range(cls, width: int, start: int, length: int) -> "BitVector":
        """Vector with ``length`` bits set starting at bit ``start``.

        The range is clipped to ``[0, width)``; this mirrors how a memory
        access that spills past the alignment region only marks the bytes
        that fall inside the region (the remainder belongs to the next
        region's vectors).
        """
        if length < 0:
            raise ValueError(f"negative range length {length}")
        lo = max(start, 0)
        hi = min(start + length, width)
        if hi <= lo:
            return cls(width)
        return cls._new(width, ((1 << (hi - lo)) - 1) << lo)

    @classmethod
    def from_indices(cls, width: int, indices: Iterable[int]) -> "BitVector":
        bits = 0
        for i in indices:
            if not 0 <= i < width:
                raise ValueError(f"bit index {i} out of range for width {width}")
            bits |= 1 << i
        return cls(width, bits)

    # -- numpy bridge --------------------------------------------------------
    #
    # The lane-batched LSU paths evaluate byte-granular predicates over a
    # whole alignment region at once as numpy bool arrays; these two
    # converters bridge the array world and the int-mask representation
    # without changing the public API (callers still hold BitVectors).

    @classmethod
    def from_bool_array(cls, flags: "_np.ndarray") -> "BitVector":
        """Vector with bit ``i`` set where ``flags[i]`` is true."""
        if _np is None:  # pragma: no cover - exercised only on minimal installs
            raise RuntimeError("BitVector.from_bool_array requires numpy")
        packed = _np.packbits(flags, bitorder="little")
        return cls._new(len(flags), int.from_bytes(packed.tobytes(), "little"))

    def to_bool_array(self) -> "_np.ndarray":
        """The bits as a numpy bool array (index 0 = lowest-addressed byte)."""
        if _np is None:  # pragma: no cover - exercised only on minimal installs
            raise RuntimeError("BitVector.to_bool_array requires numpy")
        raw = self._bits.to_bytes((self.width + 7) // 8, "little")
        flags = _np.unpackbits(_np.frombuffer(raw, _np.uint8), bitorder="little")
        return flags[: self.width].astype(_np.bool_)

    # -- queries -----------------------------------------------------------

    def test(self, index: int) -> bool:
        if not 0 <= index < self.width:
            raise IndexError(f"bit index {index} out of range for width {self.width}")
        return bool(self._bits >> index & 1)

    def any(self) -> bool:
        return self._bits != 0

    def none(self) -> bool:
        return self._bits == 0

    def all(self) -> bool:
        return self._bits == (1 << self.width) - 1

    def popcount(self) -> int:
        return self._bits.bit_count()

    def lowest_set(self) -> int | None:
        """Index of the lowest set bit, or ``None`` if empty."""
        if self._bits == 0:
            return None
        return (self._bits & -self._bits).bit_length() - 1

    def set_indices(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    @property
    def bits(self) -> int:
        return self._bits

    # -- mutation-free operators -------------------------------------------

    def _check(self, other: "BitVector") -> None:
        if self.width != other.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector._new(self.width, self._bits & other._bits)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector._new(self.width, self._bits | other._bits)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector._new(self.width, self._bits ^ other._bits)

    def __invert__(self) -> "BitVector":
        return BitVector._new(self.width, self._bits ^ ((1 << self.width) - 1))

    def andnot(self, other: "BitVector") -> "BitVector":
        """Bits set in ``self`` and clear in ``other`` (``self & ~other``)."""
        self._check(other)
        return BitVector._new(self.width, self._bits & ~other._bits)

    def shift_left(self, amount: int) -> "BitVector":
        """Shift towards higher bit indices, dropping bits past the width."""
        if amount < 0:
            return self.shift_right(-amount)
        mask = (1 << self.width) - 1
        return BitVector._new(self.width, (self._bits << amount) & mask)

    def shift_right(self, amount: int) -> "BitVector":
        if amount < 0:
            return self.shift_left(-amount)
        return BitVector._new(self.width, self._bits >> amount)

    def with_bit(self, index: int, value: bool = True) -> "BitVector":
        if not 0 <= index < self.width:
            raise IndexError(f"bit index {index} out of range for width {self.width}")
        if value:
            return BitVector._new(self.width, self._bits | (1 << index))
        return BitVector._new(self.width, self._bits & ~(1 << index))

    def reduce(self, group: int) -> "BitVector":
        """OR-reduce consecutive groups of ``group`` bits into single bits.

        This is the paper's final step in section IV-D: the overall HOB bit
        vector is byte-granular, and "reducing its size, based on the element
        size recorded in the LSU" produces the lane-granular SRV-needs-replay
        register.  ``group`` is the element size in bytes.
        """
        if group <= 0 or self.width % group:
            raise ValueError(
                f"cannot reduce width {self.width} by group {group}"
            )
        lanes = self.width // group
        bits = self._bits
        out = 0
        if bits:
            mask = (1 << group) - 1
            for lane in range(lanes):
                if bits >> (lane * group) & mask:
                    out |= 1 << lane
        return BitVector._new(lanes, out)

    def expand(self, group: int) -> "BitVector":
        """Inverse of :meth:`reduce`: each bit becomes ``group`` copies."""
        if group <= 0:
            raise ValueError(f"group must be positive, got {group}")
        out = 0
        chunk = (1 << group) - 1
        for lane in self.set_indices():
            out |= chunk << (lane * group)
        return BitVector._new(self.width * group, out)

    # -- dunder housekeeping -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.width == other.width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self.width, self._bits))

    def __len__(self) -> int:
        return self.width

    def __bool__(self) -> bool:
        return self.any()

    def __repr__(self) -> str:
        return f"BitVector({self.width}, 0b{self._bits:0{self.width}b})"


def lane_mask_up_from(width: int, lane: int) -> BitVector:
    """All lanes ``>= lane`` set — "younger or same" lanes in an UP region."""
    return BitVector.from_range(width, lane, width - lane)


def lane_mask_strictly_above(width: int, lane: int) -> BitVector:
    """All lanes ``> lane`` set."""
    return BitVector.from_range(width, lane + 1, width - lane - 1)


def lane_mask_below(width: int, lane: int) -> BitVector:
    """All lanes ``< lane`` set — strictly older lanes in an UP region."""
    return BitVector.from_range(width, 0, lane)
