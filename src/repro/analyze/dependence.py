"""Region-granular dependence verdicts and the replay-risk estimator.

The engine enumerates, per vector group, the exact element addresses of
every memory reference whose address is statically resolvable (affine
indices, or indirect indices through an index table with exact facts —
see :mod:`repro.analyze.facts`) and detects *cross-lane* overlaps: two
distinct lanes of one group touching the same element with at least one
store.  Within a vector group those are precisely the dependences the
SRV hardware exists to repair; same-lane and cross-group orderings are
preserved by program order and sequential group execution regardless of
bracketing.

Verdict lattice (per region):

* ``NO_CONFLICT`` — proven: no cross-lane overlap at all.  The region's
  SRV brackets may be *omitted*; it can never replay.
* ``MAY_CONFLICT`` — at least one address is unresolvable (unknown
  table contents, a table written inside the loop, or an out-of-bounds
  index); the brackets must stay.  This is the Banerjee pass's
  ``UNKNOWN``, region-granular.
* ``MUST_CONFLICT`` — proven: some group has a cross-lane overlap.  The
  brackets must stay; the replay-risk estimator predicts how densely
  the region will replay.

Only ``NO_CONFLICT`` carries a soundness obligation (checked end to end
by ``repro fuzz --analyze-diff``); the other verdicts keep the
speculative machinery, so correctness never depends on their precision.

The replay predictor models the LSU's horizontal RAW rule: a younger
lane replays when its load executes (in program order of the emitted
vector instructions) *before* an older lane's overlapping store.
Overlaps ordered the other way (WAR) and store/store pairs (WAW) are
repaired by the speculative buffer without replays, so they make a
region non-omittable but contribute no predicted replay density.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analyze.facts import AnalysisFacts
from repro.analyze.regions import Region
from repro.compiler.analysis import DepClass, classify_pair
from repro.compiler.ir import (
    Affine,
    IndexExpr,
    Indirect,
    Loop,
    Store,
    expr_reads,
)

#: predicted violating-lane density at which the planner asks for the
#: section III-D7 one-lane-at-a-time execution instead of replaying
DENSE_LANE_THRESHOLD = 0.5


class RegionVerdict(enum.Enum):
    """Per-region dependence verdict (ordered by restrictiveness)."""

    NO_CONFLICT = "no_conflict"
    MAY_CONFLICT = "may_conflict"
    MUST_CONFLICT = "must_conflict"


@dataclass(frozen=True)
class MemRef:
    """One static memory reference of the vectorised loop body.

    ``order`` is the reference's position in the emitted vector
    program (expression reads before the store, the index-table load
    immediately before the gather/scatter it feeds), which is what the
    replay predictor compares.  Index-table loads appear as their own
    references (``is_table``) with the inner affine index.
    """

    stmt: int
    order: int
    array: str
    index: IndexExpr
    is_store: bool
    is_table: bool = False


def statement_refs(loop: Loop) -> list[MemRef]:
    """All memory references of ``loop`` in emitted program order.

    Reduction accumulators are *not* memory references here: the vector
    transform keeps them in registers with a post-loop horizontal
    combine, and the code generators never place a reduction inside an
    SRV-region in the first place.
    """
    refs: list[MemRef] = []

    def add(stmt: int, array: str, index: IndexExpr, is_store: bool,
            is_table: bool = False) -> None:
        refs.append(MemRef(stmt, len(refs), array, index, is_store, is_table))

    for s, stmt in enumerate(loop.body):
        for read in expr_reads(stmt.value):
            if isinstance(read.index, Indirect):
                add(s, read.index.array, read.index.inner, False, True)
            add(s, read.array, read.index, False)
        if isinstance(stmt, Store):
            if isinstance(stmt.index, Indirect):
                add(s, stmt.index.array, stmt.index.inner, False, True)
            add(s, stmt.array, stmt.index, True)
    return refs


def ref_lsu_demand(ref: MemRef, loop: Loop, vl: int) -> int:
    """LSU entries the reference's vector instruction occupies.

    Mirrors the emulator's section III-D7 sizing rule: contiguous and
    broadcast accesses take one entry, gathers/scatters one per lane.
    """
    if isinstance(ref.index, Affine):
        if ref.index.scale == 0 and not ref.is_store:
            return 1  # broadcast load
        if ref.index.scale == 1 and loop.step == 1:
            return 1  # contiguous
    return vl


# ---------------------------------------------------------------------------
# address resolution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Resolved:
    """A reference with a fully static address function."""

    ref: MemRef
    #: element-index interval over all iterations
    lo: int
    hi: int
    #: per-iteration element index (exact)
    table: tuple[int, ...] | None  # indirect: resolved table contents

    def addr(self, i: int) -> int:
        if self.table is None:
            return self.ref.index.at(i)
        return self.table[self.ref.index.inner.at(i)]


def _affine_bounds(index: Affine, n: int) -> tuple[int, int]:
    a, b = index.at(0), index.at(n - 1)
    return (a, b) if a <= b else (b, a)


def _resolve(
    ref: MemRef, loop: Loop, facts: AnalysisFacts, n: int
) -> tuple[_Resolved | None, str | None]:
    """Resolve a reference's addresses, or explain why it is unknown."""
    count = facts.counts.get(ref.array)
    if count is None:
        return None, f"{ref.array}: element count unknown"
    if isinstance(ref.index, Affine):
        lo, hi = _affine_bounds(ref.index, n)
        if lo < 0 or hi >= count:
            return None, (f"{ref.array}: affine index range [{lo}, {hi}] "
                          f"escapes [0, {count})")
        return _Resolved(ref, lo, hi, None), None
    table = facts.tables.get(ref.index.array)
    if table is None or not table.invariant:
        return None, (f"{ref.array}: index table {ref.index.array!r} is "
                      f"written inside the loop")
    if table.contents is None:
        return None, (f"{ref.array}: index table {ref.index.array!r} "
                      f"contents unknown")
    ilo, ihi = _affine_bounds(ref.index.inner, n)
    if ilo < 0 or ihi >= len(table.contents):
        return None, (f"{ref.array}: inner index range [{ilo}, {ihi}] "
                      f"escapes table {ref.index.array!r}")
    used = [table.contents[ref.index.inner.at(i)] for i in range(n)]
    lo, hi = min(used), max(used)
    if lo < 0 or hi >= count:
        return None, (f"{ref.array}: gathered index range [{lo}, {hi}] "
                      f"escapes [0, {count})")
    return _Resolved(ref, lo, hi, table.contents), None


# ---------------------------------------------------------------------------
# exact cross-lane conflict enumeration
# ---------------------------------------------------------------------------


@dataclass
class LoopConflicts:
    """Everything the exact pass learned about one loop's conflicts."""

    loop: Loop
    n: int
    vl: int
    refs: list[MemRef]
    #: unresolvable references with the reason (the ``MAY`` evidence)
    unresolved: list[tuple[MemRef, str]]
    #: statement pairs (s <= t) with a proven cross-lane overlap
    conflict_pairs: set[tuple[int, int]]
    #: statement pairs that could not be proven safe (unknown address)
    unknown_pairs: set[tuple[int, int]]
    #: first concrete witness per proven pair
    witnesses: dict[tuple[int, int], str]
    #: predicted replay events: (group, younger lane, load stmt, store stmt)
    raw_triples: set[tuple[int, int, int, int]]
    #: total active (group, lane) executions
    lane_executions: int
    groups: int

    @property
    def unsafe_pairs(self) -> set[tuple[int, int]]:
        """Pairs that force shared speculative coverage (for planning)."""
        return self.conflict_pairs | self.unknown_pairs


def _iteration(loop: Loop, n: int, group: int, lane: int, vl: int) -> int:
    slot = group * vl + lane
    return slot if loop.step == 1 else (n - 1) - slot


def _candidate_pairs(
    resolved: list[_Resolved], vl: int
) -> set[tuple[int, int]]:
    """Indices into ``resolved`` of pairs that need group enumeration.

    Pairs are pruned with the value-range domain (disjoint element
    intervals cannot overlap) and, for affine/affine pairs, with the
    Banerjee classification (``NONE``/distance-0/``PROVABLE_SAFE``
    means no *within-group* cross-lane coincidence exists).
    """
    pairs: set[tuple[int, int]] = set()
    for a in range(len(resolved)):
        ra = resolved[a]
        for b in range(a, len(resolved)):
            rb = resolved[b]
            if ra.ref.array != rb.ref.array:
                continue
            if not (ra.ref.is_store or rb.ref.is_store):
                continue
            if ra.hi < rb.lo or rb.hi < ra.lo:
                continue  # value-range domain: disjoint intervals
            if ra.table is None and rb.table is None:
                if a == b:
                    if ra.ref.index.scale != 0:
                        continue  # injective affine never self-collides
                else:
                    dep_class, _ = classify_pair(
                        ra.ref.index, rb.ref.index, vl
                    )
                    if dep_class in (DepClass.NONE, DepClass.PROVABLE_SAFE):
                        continue
            pairs.add((a, b))
    return pairs


def analyse_conflicts(
    loop: Loop,
    facts: AnalysisFacts,
    n: int,
    vl: int = 16,
) -> LoopConflicts:
    """Exact cross-lane conflict analysis of ``loop`` over its inputs."""
    refs = statement_refs(loop)
    resolved: list[_Resolved] = []
    unresolved: list[tuple[MemRef, str]] = []
    for ref in refs:
        res, reason = _resolve(ref, loop, facts, n)
        if res is None:
            unresolved.append((ref, reason))
        else:
            resolved.append(res)

    # An unresolvable address may alias anything: an unknown store taints
    # every statement with a memory reference, an unknown load every
    # statement with a store.
    unknown_pairs: set[tuple[int, int]] = set()
    ref_stmts = {ref.stmt for ref in refs}
    store_stmts = {ref.stmt for ref in refs if ref.is_store}
    for ref, _reason in unresolved:
        others = ref_stmts if ref.is_store else store_stmts
        for stmt in others:
            unknown_pairs.add((min(ref.stmt, stmt), max(ref.stmt, stmt)))

    conflict_pairs: set[tuple[int, int]] = set()
    witnesses: dict[tuple[int, int], str] = {}
    raw_triples: set[tuple[int, int, int, int]] = set()

    groups = (n + vl - 1) // vl
    lane_executions = n
    candidates = _candidate_pairs(resolved, vl)
    involved = sorted({i for pair in candidates for i in pair})
    if involved:
        refs_by_array: dict[str, list[_Resolved]] = {}
        for i in involved:
            refs_by_array.setdefault(resolved[i].ref.array, []).append(
                resolved[i]
            )
        for group in range(groups):
            active = min(vl, n - group * vl)
            for array, array_refs in refs_by_array.items():
                cells: dict[int, list[tuple[int, _Resolved]]] = {}
                for res in array_refs:
                    for lane in range(active):
                        i = _iteration(loop, n, group, lane, vl)
                        cells.setdefault(res.addr(i), []).append((lane, res))
                for elem, entries in cells.items():
                    if len(entries) < 2:
                        continue
                    for x in range(len(entries)):
                        lane_x, res_x = entries[x]
                        for y in range(x + 1, len(entries)):
                            lane_y, res_y = entries[y]
                            if lane_x == lane_y:
                                continue
                            if not (res_x.ref.is_store or res_y.ref.is_store):
                                continue
                            pair = (min(res_x.ref.stmt, res_y.ref.stmt),
                                    max(res_x.ref.stmt, res_y.ref.stmt))
                            conflict_pairs.add(pair)
                            if pair not in witnesses:
                                witnesses[pair] = (
                                    f"{array}[{elem}]: lanes "
                                    f"{min(lane_x, lane_y)}/"
                                    f"{max(lane_x, lane_y)} of group {group}"
                                )
                            for (sl, sr), (ll, lr) in (
                                ((lane_x, res_x), (lane_y, res_y)),
                                ((lane_y, res_y), (lane_x, res_x)),
                            ):
                                # horizontal RAW: older lane's store,
                                # younger lane's load issued earlier in
                                # program order
                                if (sr.ref.is_store and not lr.ref.is_store
                                        and sl < ll
                                        and lr.ref.order < sr.ref.order):
                                    raw_triples.add(
                                        (group, ll, lr.ref.stmt, sr.ref.stmt)
                                    )

    return LoopConflicts(
        loop=loop, n=n, vl=vl, refs=refs, unresolved=unresolved,
        conflict_pairs=conflict_pairs, unknown_pairs=unknown_pairs,
        witnesses=witnesses, raw_triples=raw_triples,
        lane_executions=lane_executions, groups=groups,
    )


# ---------------------------------------------------------------------------
# per-region verdicts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionAnalysis:
    """Verdict + replay-risk estimate for one region of a plan."""

    region: Region
    verdict: RegionVerdict
    conflict_pairs: tuple[tuple[int, int], ...]
    unknown_pairs: tuple[tuple[int, int], ...]
    #: predicted distinct (group, lane) replay victims — the numerator
    #: of the density estimate
    predicted_replay_lanes: int
    #: active lane executions across all groups — the denominator
    lane_executions: int
    lsu_demand: int
    #: the region exceeds the LSU budget: the emulator will run it with
    #: the sequential fallback, so zero replays are expected regardless
    #: of the verdict
    predicted_fallback: bool
    witness: str | None

    @property
    def density(self) -> float:
        """Predicted violating-lane density (fraction of lanes replayed)."""
        if not self.lane_executions:
            return 0.0
        return self.predicted_replay_lanes / self.lane_executions

    @property
    def dense(self) -> bool:
        return self.density > DENSE_LANE_THRESHOLD


def analyse_region(
    conflicts: LoopConflicts,
    region: Region,
    lsu_entries: int | None = None,
) -> RegionAnalysis:
    """Verdict and replay-risk estimate for ``region``."""

    def inside(pair: tuple[int, int]) -> bool:
        return (region.start <= pair[0] < region.stop
                and region.start <= pair[1] < region.stop)

    conflict = tuple(sorted(p for p in conflicts.conflict_pairs if inside(p)))
    unknown = tuple(sorted(p for p in conflicts.unknown_pairs if inside(p)))
    if conflict:
        verdict = RegionVerdict.MUST_CONFLICT
    elif unknown:
        verdict = RegionVerdict.MAY_CONFLICT
    else:
        verdict = RegionVerdict.NO_CONFLICT
    victims = {
        (group, lane)
        for group, lane, load_stmt, store_stmt in conflicts.raw_triples
        if inside((min(load_stmt, store_stmt), max(load_stmt, store_stmt)))
    }
    demand = sum(
        ref_lsu_demand(ref, conflicts.loop, conflicts.vl)
        for ref in conflicts.refs
        if region.start <= ref.stmt < region.stop
    )
    witness = None
    for pair in conflict:
        if pair in conflicts.witnesses:
            witness = conflicts.witnesses[pair]
            break
    if witness is None and unknown:
        for ref, reason in conflicts.unresolved:
            if region.start <= ref.stmt < region.stop:
                witness = reason
                break
    return RegionAnalysis(
        region=region,
        verdict=verdict,
        conflict_pairs=conflict,
        unknown_pairs=unknown,
        predicted_replay_lanes=len(victims),
        lane_executions=conflicts.lane_executions,
        lsu_demand=demand,
        predicted_fallback=(lsu_entries is not None
                            and demand > lsu_entries),
        witness=witness,
    )
