"""Region-granular static dependence analysis (``repro.analyze``).

The paper's compiler marks an SRV-region wherever it *cannot* statically
disambiguate memory dependences.  The Banerjee pass in
:mod:`repro.compiler.analysis` collapses to ``UNKNOWN`` the moment any
access is indirect, so every gather/scatter loop pays full speculation
cost even when its index data is statically known to be conflict-free.

This package closes that gap with a value-aware analysis:

* :mod:`repro.analyze.facts` — abstract domains over array contents
  (exact initial contents, value range, unknown) plus loop-invariance
  of index tables;
* :mod:`repro.analyze.regions` — the region model: a loop body is
  partitioned into contiguous statement segments, each either
  *speculative* (bracketed by ``srv_start``/``srv_end``) or *plain*;
* :mod:`repro.analyze.dependence` — per-region verdicts
  (``NO_CONFLICT`` / ``MAY_CONFLICT`` / ``MUST_CONFLICT``) by exact
  enumeration of cross-lane overlaps, plus the replay-risk estimator
  (predicted violating-lane density);
* :mod:`repro.analyze.report` — the machine-readable per-loop /
  per-workload report behind ``repro analyze``.

The soundness contract (checked end-to-end by ``repro fuzz
--analyze-diff``): a region with verdict ``NO_CONFLICT`` never replays
dynamically and may be executed without its SRV brackets; the other two
verdicts keep the brackets, so correctness never depends on their
precision.
"""

from repro.analyze.dependence import (
    DENSE_LANE_THRESHOLD,
    LoopConflicts,
    MemRef,
    RegionAnalysis,
    RegionVerdict,
    analyse_conflicts,
    analyse_region,
    statement_refs,
)
from repro.analyze.facts import (
    AnalysisFacts,
    TableFacts,
    facts_from_memory,
    gather_facts,
)
from repro.analyze.regions import Region, RegionPlan, plan_from_conflicts
from repro.analyze.report import (
    LoopAnalysis,
    WorkloadAnalysis,
    analyse_spec,
    analyse_workload,
    guided_plan,
)

__all__ = [
    "DENSE_LANE_THRESHOLD",
    "AnalysisFacts",
    "TableFacts",
    "facts_from_memory",
    "gather_facts",
    "Region",
    "RegionPlan",
    "plan_from_conflicts",
    "LoopConflicts",
    "MemRef",
    "RegionAnalysis",
    "RegionVerdict",
    "analyse_conflicts",
    "analyse_region",
    "statement_refs",
    "LoopAnalysis",
    "WorkloadAnalysis",
    "analyse_spec",
    "analyse_workload",
    "guided_plan",
]
