"""Abstract domains over array contents — the analyzer's fact base.

The dependence engine reasons about indirect references through three
stacked domains, from most to least precise:

* **exact** — the index table's initial contents are statically known
  *and* no statement in the loop stores to the table, so every gathered
  or scattered element index is a known integer;
* **value-range** — the ``[lo, hi]`` interval of the exact contents;
  used as a cheap disjointness pre-filter before any per-group
  enumeration (two reference families whose element intervals do not
  intersect cannot conflict);
* **unknown** — the table is written inside the loop, its contents were
  not supplied, or an index escapes the addressed array's bounds.  An
  unknown address may alias anything, so the verdict engine degrades to
  ``MAY_CONFLICT`` for every pair it could participate in.

Facts are derived either from the input arrays a workload spec
generates for a seed, or from a :class:`~repro.memory.image.MemoryImage`
at compile time (the generator allocates arrays before code generation,
so initial contents are visible to the guided code generator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Loop
from repro.memory.image import to_signed, to_unsigned


@dataclass(frozen=True)
class TableFacts:
    """What is statically known about one array used as an index table."""

    name: str
    #: no statement in the loop stores to the table (its contents during
    #: execution equal its initial contents)
    invariant: bool
    #: exact initial contents (sign-normalised to the element width), or
    #: ``None`` when unknown
    contents: tuple[int, ...] | None
    #: value-range domain over the contents (``None`` when unknown)
    lo: int | None = None
    hi: int | None = None

    @property
    def exact(self) -> bool:
        """True when indirect indices through this table are resolvable."""
        return self.invariant and self.contents is not None


@dataclass(frozen=True)
class AnalysisFacts:
    """Per-array element counts plus per-index-table knowledge."""

    counts: dict[str, int]
    tables: dict[str, TableFacts]

    def table(self, name: str) -> TableFacts:
        return self.tables[name]


def _normalise(values, elem: int) -> tuple[int, ...]:
    """Sign-normalise raw initial values exactly like array allocation."""
    return tuple(to_signed(to_unsigned(v, elem), elem) for v in values)


def _written_arrays(loop: Loop) -> set[str]:
    written = {store.array for store in loop.writes()}
    written.update(red.array for red in loop.reductions())
    return written


def gather_facts(
    loop: Loop, arrays: dict[str, list[int]] | None
) -> AnalysisFacts:
    """Build the fact base for ``loop`` over the given initial arrays.

    ``arrays`` maps array names to initial values (the same mapping a
    :class:`~repro.workloads.base.LoopSpec` produces for a seed).  Pass
    ``None`` when contents are unavailable: every table then degrades to
    the unknown domain and indirect references stay unresolvable.
    """
    written = _written_arrays(loop)
    counts: dict[str, int] = {}
    tables: dict[str, TableFacts] = {}
    if arrays is not None:
        counts = {name: len(values) for name, values in arrays.items()}
    for name in sorted(loop.index_arrays()):
        invariant = name not in written
        contents: tuple[int, ...] | None = None
        lo = hi = None
        if arrays is not None and name in arrays:
            contents = _normalise(arrays[name], loop.arrays[name])
            if contents:
                lo, hi = min(contents), max(contents)
        tables[name] = TableFacts(name, invariant, contents, lo, hi)
    return AnalysisFacts(counts=counts, tables=tables)


def facts_from_memory(loop: Loop, memory) -> AnalysisFacts:
    """Build facts from arrays already allocated in ``memory``.

    Used by the guided code generator, which runs after the experiment
    driver has allocated and initialised every array: the *current*
    contents at compile time are the initial contents.
    """
    by_name = {alloc.name: alloc for alloc in memory.allocations()}
    arrays = {
        name: memory.load_array(by_name[name])
        for name in loop.arrays
        if name in by_name
    }
    return gather_facts(loop, arrays)
