"""Per-loop / per-workload analysis reports and the guided-codegen entry.

This is the layer the CLI (``repro analyze``) and the guided code
generator (:class:`~repro.compiler.codegen.Strategy` ``SRV_GUIDED``)
consume.  A :class:`LoopAnalysis` records, for one loop and one input
seed:

* the execution ``mode`` the SRV strategy would pick (mirroring the
  code generator's dispatch): ``"regions"`` for plain store loops,
  ``"no-region-vector"`` for reduction loops whose affine pass is
  clean, ``"scalar"`` for reduction loops it cannot clear;
* the region plan (speculative/plain segments) and one
  :class:`~repro.analyze.dependence.RegionAnalysis` per region;
* the loop-granular Banerjee verdict for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.dependence import (
    RegionAnalysis,
    RegionVerdict,
    analyse_conflicts,
    analyse_region,
)
from repro.analyze.facts import AnalysisFacts, gather_facts
from repro.analyze.regions import Region, RegionPlan, plan_from_conflicts
from repro.common.config import TABLE_I
from repro.compiler.analysis import loop_class
from repro.compiler.ir import Loop
from repro.workloads.base import LoopSpec, Workload


def guided_plan(
    loop: Loop, facts: AnalysisFacts, n: int, vl: int = 16
) -> RegionPlan:
    """The region plan the guided code generator emits for ``loop``.

    Statements whose cross-lane safety is proven come out in *plain*
    regions (no SRV brackets); the remaining spans stay speculative, and
    a span whose predicted violating-lane density exceeds
    :data:`~repro.analyze.dependence.DENSE_LANE_THRESHOLD` additionally
    carries the ``sequential`` hint (execute one lane at a time rather
    than replaying most of them).
    """
    conflicts = analyse_conflicts(loop, facts, n, vl)
    plan = plan_from_conflicts(len(loop.body), conflicts.unsafe_pairs)
    # Pipeline-aware shaping: ``srv_end`` is a serialisation barrier, so
    # statements *after* a speculative region stall at it regardless of
    # their own verdict — splitting them out saves nothing and forfeits
    # their issue overlap with the region body.  ``srv_start`` does not
    # serialise, so a conflict-free *prefix* genuinely escapes
    # speculation (and replays re-execute less).  The emitted plan is
    # therefore plain-prefix + one speculative region to the end.
    spec = plan.speculative
    if not spec:
        return plan
    first = spec[0].start
    merged = Region(first, len(loop.body), speculative=True)
    analysis = analyse_region(conflicts, merged)
    if analysis.verdict is RegionVerdict.MUST_CONFLICT and analysis.dense:
        merged = Region(first, len(loop.body), speculative=True,
                        sequential=True)
    regions: list[Region] = []
    if first:
        regions.append(Region(0, first, speculative=False))
    regions.append(merged)
    return RegionPlan(tuple(regions))


@dataclass(frozen=True)
class LoopAnalysis:
    """Static analysis report for one loop over one input seed."""

    workload: str
    loop: str
    seed: int
    n: int
    vl: int
    #: how the SRV strategy executes this loop: ``"regions"`` (vector
    #: body with a region plan), ``"no-region-vector"`` (reduction loop,
    #: vectorised without regions), or ``"scalar"``
    mode: str
    #: loop-granular Banerjee verdict (``DepClass`` name), for contrast
    banerjee: str
    plan: RegionPlan | None
    regions: tuple[RegionAnalysis, ...]
    #: unresolvable references: ``(statement, reason)``
    unresolved: tuple[tuple[int, str], ...]

    @property
    def verdicts(self) -> tuple[RegionVerdict, ...]:
        """Speculative-region verdicts in program order."""
        return tuple(r.verdict for r in self.regions if r.region.speculative)

    @property
    def proven_safe_regions(self) -> int:
        return sum(
            1 for r in self.regions
            if r.verdict is RegionVerdict.NO_CONFLICT
        )

    @property
    def worst_verdict(self) -> RegionVerdict | None:
        """Most restrictive verdict over the speculative regions.

        ``None`` when the loop has no speculative region at all (every
        statement proven safe, or a non-region mode).
        """
        spec = [r.verdict for r in self.regions if r.region.speculative]
        if not spec:
            return None
        order = [RegionVerdict.NO_CONFLICT, RegionVerdict.MAY_CONFLICT,
                 RegionVerdict.MUST_CONFLICT]
        return max(spec, key=order.index)

    @property
    def loop_verdict(self) -> RegionVerdict | None:
        """Loop-level verdict for region-mode loops.

        A loop whose guided plan has no speculative region at all is
        proven safe end to end — ``NO_CONFLICT`` — even though
        ``worst_verdict`` has nothing to aggregate.  ``None`` only for
        non-region modes (reduction loops).
        """
        if self.mode != "regions":
            return None
        worst = self.worst_verdict
        return worst if worst is not None else RegionVerdict.NO_CONFLICT

    @property
    def predicted_replays(self) -> int:
        """Predicted replayed-lane executions across all regions."""
        return sum(r.predicted_replay_lanes for r in self.regions)

    def to_obj(self) -> dict:
        return {
            "workload": self.workload,
            "loop": self.loop,
            "seed": self.seed,
            "n": self.n,
            "vl": self.vl,
            "mode": self.mode,
            "banerjee": self.banerjee,
            "worst_verdict": (self.worst_verdict.value
                              if self.worst_verdict else None),
            "loop_verdict": (self.loop_verdict.value
                             if self.loop_verdict else None),
            "proven_safe_regions": self.proven_safe_regions,
            "predicted_replays": self.predicted_replays,
            "regions": [
                {
                    "start": r.region.start,
                    "stop": r.region.stop,
                    "speculative": r.region.speculative,
                    "sequential": r.region.sequential,
                    "verdict": r.verdict.value,
                    "conflict_pairs": [list(p) for p in r.conflict_pairs],
                    "unknown_pairs": [list(p) for p in r.unknown_pairs],
                    "predicted_replay_lanes": r.predicted_replay_lanes,
                    "lane_executions": r.lane_executions,
                    "density": r.density,
                    "dense": r.dense,
                    "lsu_demand": r.lsu_demand,
                    "predicted_fallback": r.predicted_fallback,
                    "witness": r.witness,
                }
                for r in self.regions
            ],
            "unresolved": [
                {"statement": stmt, "reason": reason}
                for stmt, reason in self.unresolved
            ],
        }


@dataclass(frozen=True)
class WorkloadAnalysis:
    """Analysis reports for every loop of one workload."""

    workload: str
    loops: tuple[LoopAnalysis, ...]

    def to_obj(self) -> dict:
        return {
            "workload": self.workload,
            "loops": [la.to_obj() for la in self.loops],
        }


def analyse_spec(
    spec: LoopSpec,
    workload: str = "",
    seed: int = 0,
    n_override: int | None = None,
    vl: int = 16,
    lsu_entries: int = TABLE_I.lsu_entries,
) -> LoopAnalysis:
    """Analyse one loop spec over the inputs it generates for ``seed``."""
    loop = spec.loop
    n = spec.n if n_override is None else min(n_override, spec.n)
    arrays = spec.arrays(seed)
    facts = gather_facts(loop, arrays)
    banerjee = loop_class(loop, vl).name

    if loop.reductions():
        # mirrors the SRV dispatch: reductions never enter a region
        from repro.compiler.analysis import DepClass

        clean = loop_class(loop, vl) in (DepClass.NONE, DepClass.PROVABLE_SAFE)
        mode = "no-region-vector" if clean else "scalar"
        return LoopAnalysis(
            workload=workload, loop=loop.name, seed=seed, n=n, vl=vl,
            mode=mode, banerjee=banerjee, plan=None, regions=(),
            unresolved=(),
        )

    conflicts = analyse_conflicts(loop, facts, n, vl)
    plan = guided_plan(loop, facts, n, vl)
    regions = tuple(
        analyse_region(conflicts, region, lsu_entries)
        for region in plan.regions
    )
    unresolved = tuple(
        (ref.stmt, reason) for ref, reason in conflicts.unresolved
    )
    return LoopAnalysis(
        workload=workload, loop=loop.name, seed=seed, n=n, vl=vl,
        mode="regions", banerjee=banerjee, plan=plan, regions=regions,
        unresolved=unresolved,
    )


def analyse_workload(
    workload: Workload,
    seed: int = 0,
    n_override: int | None = None,
    vl: int = 16,
    lsu_entries: int = TABLE_I.lsu_entries,
) -> WorkloadAnalysis:
    return WorkloadAnalysis(
        workload=workload.name,
        loops=tuple(
            analyse_spec(spec, workload.name, seed, n_override, vl,
                         lsu_entries)
            for spec in workload.loops
        ),
    )
