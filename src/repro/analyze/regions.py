"""The region model: contiguous statement segments of a loop body.

Baseline SRV brackets the *whole* vector body in one
``srv_start``/``srv_end`` pair.  The analyzer instead partitions the
body into an ordered sequence of contiguous segments, each either

* **speculative** — emitted inside SRV brackets (the speculative buffer
  orders its cross-lane accesses and triggers selective replay), or
* **plain** — emitted bare; its vector instructions write straight to
  memory.

Validity of a plan is a property of the *pairwise* statement conflict
relation: two statements with any possible cross-lane overlap (at least
one side a store) must share one region — the speculative buffer's
``(lane, instruction)`` sequential order is what reconstructs scalar
semantics between them, and separate regions commit in between.  The
planner therefore union-finds statements over the non-safe pairs and
widens each component to a contiguous span (regions cannot be
re-ordered, so everything between the component's first and last
statement is pulled in).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Loop


@dataclass(frozen=True)
class Region:
    """A contiguous statement segment ``body[start:stop]``."""

    start: int
    stop: int
    speculative: bool
    #: force the section III-D7 one-lane-at-a-time execution for this
    #: region (set by the planner for proven-dense regions)
    sequential: bool = False

    def __post_init__(self) -> None:
        if self.start >= self.stop:
            raise ValueError(f"empty region [{self.start}, {self.stop})")
        if self.sequential and not self.speculative:
            raise ValueError("plain regions cannot carry a sequential hint")

    @property
    def statements(self) -> range:
        return range(self.start, self.stop)


@dataclass(frozen=True)
class RegionPlan:
    """An ordered, gap-free partition of a loop body into regions."""

    regions: tuple[Region, ...]

    def __post_init__(self) -> None:
        at = 0
        for region in self.regions:
            if region.start != at:
                raise ValueError(f"plan has a gap/overlap at statement {at}")
            at = region.stop

    @property
    def speculative(self) -> tuple[Region, ...]:
        """The speculative regions, in program order."""
        return tuple(r for r in self.regions if r.speculative)

    @property
    def statement_count(self) -> int:
        return self.regions[-1].stop if self.regions else 0

    def region_of(self, stmt: int) -> Region:
        for region in self.regions:
            if region.start <= stmt < region.stop:
                return region
        raise IndexError(f"statement {stmt} outside the plan")

    @classmethod
    def baseline(cls, loop: Loop) -> "RegionPlan":
        """Baseline SRV: one speculative region over the whole body."""
        return cls((Region(0, len(loop.body), speculative=True),))

    @classmethod
    def all_plain(cls, loop: Loop) -> "RegionPlan":
        """Every statement bare — only valid when the loop is conflict
        free; used by the fuzzer's planted ``elide-regions`` self-test,
        which deliberately applies it regardless of verdicts."""
        return cls((Region(0, len(loop.body), speculative=False),))


def plan_from_conflicts(
    num_statements: int,
    unsafe_pairs: set[tuple[int, int]],
) -> RegionPlan:
    """Build the minimal contiguous-region plan covering the conflicts.

    ``unsafe_pairs`` holds ``(s, t)`` statement-index pairs (``s <= t``,
    self-pairs allowed) that could not be proven conflict-free; each
    such pair is forced into a shared speculative region.  Statements
    outside every speculative span come out in plain regions.
    """
    parent = list(range(num_statements))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    dirty: set[int] = set()
    for s, t in unsafe_pairs:
        union(s, t)
        dirty.add(s)
        dirty.add(t)

    # component -> [min, max] statement span, then merge overlapping spans
    spans: dict[int, list[int]] = {}
    for stmt in sorted(dirty):
        root = find(stmt)
        span = spans.setdefault(root, [stmt, stmt])
        span[0] = min(span[0], stmt)
        span[1] = max(span[1], stmt)
    merged: list[list[int]] = []
    for lo, hi in sorted(spans.values()):
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])

    regions: list[Region] = []
    at = 0
    for lo, hi in merged:
        if at < lo:
            regions.append(Region(at, lo, speculative=False))
        regions.append(Region(lo, hi + 1, speculative=True))
        at = hi + 1
    if at < num_statements:
        regions.append(Region(at, num_statements, speculative=False))
    return RegionPlan(tuple(regions))
