"""Per-job-class circuit breaker.

Standard three-state breaker guarding the worker pool from a job class
that keeps failing (a pathological kernel, a broken experiment harness,
a fault campaign gone wrong):

* **closed** — normal operation; consecutive terminal failures are
  counted, successes reset the count;
* **open** — tripped after ``threshold`` consecutive failures.  New
  submissions of the class are rejected at admission (HTTP 503) so they
  cannot occupy workers; cache hits still answer (the degradation story:
  a tripped class keeps serving whatever the content-addressed store
  already knows);
* **half-open** — after ``cooldown_s`` one *probe* job is admitted; its
  success closes the breaker, its failure re-opens it for another full
  cooldown.

The clock is injected so tests (and journal-replay determinism checks)
can drive state transitions without sleeping.
"""

from __future__ import annotations

import time


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    def __init__(
        self,
        threshold: int = 4,
        cooldown_s: float = 5.0,
        *,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = "closed"            # closed | open | half_open
        self.failures = 0                # consecutive failures while closed
        self.opened_at = 0.0
        self.trips = 0                   # lifetime closed->open transitions

    def allow(self) -> bool:
        """May a new job of this class be admitted right now?

        In the open state this is also the half-open transition: the
        first call after the cooldown admits the probe.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self.opened_at >= self.cooldown_s:
                self.state = "half_open"
                return True
            return False
        # half_open: the probe is already in flight; shed everything else
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"

    def record_failure(self) -> None:
        if self.state == "half_open":
            # failed probe: straight back to open, fresh cooldown
            self.state = "open"
            self.opened_at = self._clock()
            return
        self.failures += 1
        if self.state == "closed" and self.failures >= self.threshold:
            self.state = "open"
            self.opened_at = self._clock()
            self.trips += 1

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
        }
