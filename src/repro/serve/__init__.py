"""``repro.serve`` — fault-tolerant sweep service over the sharded engine.

The productionisation layer of the reproduction: a long-running
asyncio HTTP/JSON server (``repro serve``) that accepts loop / figure /
verify / attrib / trace jobs, answers cache hits from the
content-addressed store in milliseconds, and runs everything else on a
supervised worker pool with retry/backoff, circuit breakers, per-job
wall-clock budgets and a crash-safe write-ahead job journal.

Module map:

* :mod:`repro.serve.jobs` — job model + the picklable worker entry point;
* :mod:`repro.serve.journal` — append-only fsynced JSONL journal with
  atomic rotation and torn-write-tolerant recovery;
* :mod:`repro.serve.pool` — supervised ``ProcessPoolExecutor``: crash
  detection, hang budgets, kill-and-restart;
* :mod:`repro.serve.breaker` — per-job-class circuit breaker;
* :mod:`repro.serve.service` — admission control, dispatch, retries,
  recovery, stats;
* :mod:`repro.serve.http` — dependency-free HTTP front end + clients;
* :mod:`repro.serve.chaos` — process/disk-level fault injection for the
  chaos suite.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.jobs import Job, backoff_delay, execute_job
from repro.serve.journal import JobJournal
from repro.serve.pool import SupervisedPool
from repro.serve.service import ServeConfig, SweepService
from repro.serve.http import start_http_server, server_port, submit_job, wait_job

__all__ = [
    "CircuitBreaker",
    "Job",
    "JobJournal",
    "ServeConfig",
    "SupervisedPool",
    "SweepService",
    "backoff_delay",
    "execute_job",
    "server_port",
    "start_http_server",
    "submit_job",
    "wait_job",
]
