"""Chaos harness: process- and disk-level fault injection for the service.

:mod:`repro.verify.faults` perturbs *microarchitectural* state to prove
the simulator's checkers notice corruption.  This module is the same
idea one level up — it perturbs the *service's* world to prove the
supervision layer never silently loses an accepted job:

* **worker SIGKILL** (:func:`kill_one_worker`) — the supervisor must
  replace the broken pool and retry the victim's job;
* **injected hangs** — the ``chaos_hang`` / ``chaos_stall`` job kinds
  (:mod:`repro.serve.jobs`) wedge a worker so the per-job budget and
  pool recycling fire;
* **torn/corrupt disk state** (:func:`truncate_file`,
  :func:`corrupt_tail`, :func:`corrupt_cache_entry`) — the journal
  reader and the content-addressed cache must degrade to "recompute",
  never to a crash or a wrong answer;
* **microarchitectural faults inside jobs** — a chaos-enabled service
  accepts ``"inject": "<fault-class>"`` on ``loop`` jobs, routing the
  PR 1 fault injector through the serving path: the corruption surfaces
  as a structured ``correct: false`` result.

Everything here is deterministic (seeded choices, flag files instead of
timing races) so the chaos suite is an ordinary fast test suite, not a
flaky soak test.
"""

from __future__ import annotations

import os
import random
import signal


def kill_one_worker(pool, *, rng: random.Random | None = None) -> int:
    """SIGKILL one live worker process; returns the victim PID.

    Raises :class:`LookupError` when no worker is alive yet — callers
    should first ensure a job has been submitted (workers spawn lazily).
    """
    pids = pool.worker_pids()
    if not pids:
        raise LookupError("no live worker to kill (pool not started?)")
    victim = (rng or random).choice(pids)
    os.kill(victim, signal.SIGKILL)
    return victim


def truncate_file(path: str, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to a fraction of its size (torn write). Returns
    the new size."""
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def corrupt_tail(path: str, garbage: bytes = b"\x00{torn") -> None:
    """Append undecodable bytes to ``path`` (a kill mid-append)."""
    with open(path, "ab") as fh:
        fh.write(garbage)


def cache_entry_paths(cache_dir: str) -> list[str]:
    """Every on-disk result-cache entry under ``cache_dir``, sorted."""
    return sorted(
        os.path.join(dirpath, name)
        for dirpath, _, names in os.walk(cache_dir)
        for name in names
        if name.endswith(".pkl")
    )

def corrupt_cache_entry(
    cache_dir: str, *, seed: int = 0, mode: str = "truncate"
) -> str:
    """Damage one cache entry (``truncate`` or ``zero``); returns its path."""
    paths = cache_entry_paths(cache_dir)
    if not paths:
        raise LookupError(f"no cache entries under {cache_dir!r}")
    victim = random.Random(f"chaos/{seed}").choice(paths)
    if mode == "zero":
        with open(victim, "wb"):
            pass
    else:
        truncate_file(victim)
    return victim
