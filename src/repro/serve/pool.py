"""Supervised process pool: crash detection, hang budgets, restart.

``ProcessPoolExecutor`` alone is not enough for an always-on service:

* a **SIGKILLed worker** (OOM killer, chaos monkey) breaks the whole
  executor — every queued future raises ``BrokenProcessPool`` and the
  executor object is permanently dead;
* a **hung worker** (livelock, pathological input) occupies its slot
  forever; the executor offers no way to cancel a running call.

:class:`SupervisedPool` wraps one executor and owns both failure modes.
:meth:`SupervisedPool.run` awaits a submitted call under an optional
wall-clock budget:

* on ``BrokenProcessPool`` the pool is swapped for a fresh executor and
  the structured :class:`~repro.common.errors.WorkerCrashError` is
  raised — the *service* decides whether to retry (it does, with
  backoff), so no queued job is lost with the pool;
* on budget expiry the wedged worker cannot be reasoned with: every
  worker process is SIGKILLed, the executor replaced, and
  :class:`~repro.common.errors.WorkerHungError` raised.  This is the
  async generalisation of the hardened runner's SIGALRM budget — the
  supervisor enforces the deadline from *outside* the worker, so it
  works even when the worker is stuck in C code.

Restarts are idempotent per broken executor: concurrent ``run`` calls
that observe the same broken pool trigger exactly one replacement.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.common.errors import WorkerCrashError, WorkerHungError


class SupervisedPool:
    """A restartable ``ProcessPoolExecutor`` with per-call deadlines."""

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self.restarts = 0
        self.crashes = 0
        self.hangs = 0

    # -- lifecycle -----------------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def worker_pids(self) -> list[int]:
        """PIDs of live worker processes (for chaos: pick one, SIGKILL it).

        ``_processes`` is private executor state but stable across
        CPython 3.8–3.13; an empty list simply means no worker has been
        spawned yet (workers start lazily on first submit).
        """
        executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None) or {}
        return [p.pid for p in processes.values() if p.is_alive()]

    def _retire(self, executor: ProcessPoolExecutor, *, kill: bool) -> None:
        """Replace ``executor`` if it is still the active one."""
        if self._executor is not executor:
            return  # another run() call already handled this breakage
        self._executor = None
        self.restarts += 1
        if kill:
            for process in (getattr(executor, "_processes", None) or {}).values():
                try:
                    process.kill()
                except (OSError, ValueError):
                    pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass  # a broken executor may refuse even shutdown

    def shutdown(self) -> None:
        executor = self._executor
        if executor is not None:
            self._retire(executor, kill=True)
            self.restarts -= 1  # an orderly shutdown is not a restart

    # -- execution -----------------------------------------------------------

    async def run(self, fn, /, *args, timeout_s: float | None = None):
        """Run ``fn(*args)`` in a worker under an optional deadline."""
        executor = self._ensure()
        future = asyncio.wrap_future(executor.submit(fn, *args))
        try:
            if timeout_s is not None:
                return await asyncio.wait_for(future, timeout_s)
            return await future
        except (asyncio.TimeoutError, TimeoutError):
            self.hangs += 1
            self._retire(executor, kill=True)
            raise WorkerHungError(
                f"job exceeded its {timeout_s:.1f}s budget; "
                f"worker pool recycled"
            ) from None
        except BrokenProcessPool as exc:
            self.crashes += 1
            self._retire(executor, kill=False)
            raise WorkerCrashError(
                str(exc) or "a worker process died abruptly"
            ) from None

    def snapshot(self) -> dict:
        return {
            "workers": self.workers,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "pids": self.worker_pids(),
        }


def current_worker_pid() -> int:
    """Picklable helper: the PID of whichever worker runs it."""
    return os.getpid()
