"""Crash-safe write-ahead job journal.

The durability contract of the sweep service: **every accepted job
reaches a terminal state, even across a server kill**.  The journal is
how a restarted server knows what it still owes its clients.

Design, in order of importance:

* **append-only JSONL** — one JSON object per line.  An ``accept``
  record is written (and optionally fsynced) *before* the service
  acknowledges the job; a terminal record (``done`` / ``failed`` /
  ``rejected``) closes it.  Jobs with an ``accept`` but no terminal
  record are *pending* and are re-enqueued by
  :meth:`JobJournal.pending` after a restart.
* **torn writes cannot poison recovery** — a kill mid-append leaves at
  most one truncated final line; a corrupted disk can garble any line.
  The reader treats every undecodable line as damage to *count*, never
  an error to raise: recovery proceeds from the decodable records.
* **atomic rotation** — the file grows forever under load, so once it
  exceeds ``rotate_bytes`` the journal compacts itself: pending
  ``accept`` records are rewritten to a temp file, fsynced, and
  ``os.replace``d over the journal.  A kill at any point leaves either
  the old complete journal or the new complete journal, never a mix.

The journal never stores results — those are re-derivable from the
content-addressed result cache — so entries stay small and rotation
cheap.
"""

from __future__ import annotations

import json
import os
import time


class JobJournal:
    """Append-only JSONL journal with fsync and atomic compaction."""

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = True,
        rotate_bytes: int = 1 << 20,
        clock=time.time,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.rotate_bytes = rotate_bytes
        self._clock = clock
        #: job id -> accept record, for every job not yet terminal
        self._open: dict[str, dict] = {}
        #: undecodable lines encountered while loading (torn/corrupt)
        self.corrupt_lines = 0
        self._fh = None
        self._load()

    # -- recovery ------------------------------------------------------------

    def _load(self) -> None:
        """Rebuild the open-job map from whatever survives on disk."""
        self._open.clear()
        self.corrupt_lines = 0
        try:
            fh = open(self.path, "r", encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.corrupt_lines += 1
                    continue
                if not isinstance(record, dict) or "event" not in record:
                    self.corrupt_lines += 1
                    continue
                event = record.get("event")
                ident = record.get("id")
                if event == "accept" and isinstance(ident, str):
                    self._open[ident] = record
                elif event in ("done", "failed", "rejected"):
                    self._open.pop(ident, None)

    def pending(self) -> list[dict]:
        """Accept records with no terminal record, in accept order."""
        return list(self._open.values())

    def __len__(self) -> int:
        return len(self._open)

    # -- append --------------------------------------------------------------

    def _ensure_fh(self):
        if self._fh is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict) -> None:
        fh = self._ensure_fh()
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        event = record.get("event")
        ident = record.get("id")
        if event == "accept" and isinstance(ident, str):
            self._open[ident] = record
        elif event in ("done", "failed", "rejected"):
            self._open.pop(ident, None)
        if fh.tell() > self.rotate_bytes:
            self.compact()

    def record_accept(self, job, *, resumed: bool = False) -> None:
        """Journal an accepted job.  Journal-resumed jobs are already
        covered by their original ``accept`` record, so re-appending
        would double them on the *next* recovery."""
        if resumed:
            self._open.setdefault(job.id, self._accept_record(job))
            return
        self.append(self._accept_record(job))

    def _accept_record(self, job) -> dict:
        return {
            "event": "accept",
            "id": job.id,
            "kind": job.kind,
            "client": job.client,
            "payload": job.payload,
            "t": self._clock(),
        }

    def record_start(self, job) -> None:
        # progress records are best-effort (no fsync forced beyond the
        # configured policy): losing one only means a restarted server
        # re-runs the attempt, which retry semantics allow anyway
        self.append({
            "event": "start",
            "id": job.id,
            "attempt": job.attempts,
            "t": self._clock(),
        })

    def record_terminal(self, job) -> None:
        self.append({
            "event": job.status,
            "id": job.id,
            "attempts": job.attempts,
            "error": job.error,
            "t": self._clock(),
        })

    # -- rotation ------------------------------------------------------------

    def compact(self) -> None:
        """Atomically rewrite the journal to only its pending accepts."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in self._open.values():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
