"""The fault-tolerant sweep service.

:class:`SweepService` glues the robustness pieces together around one
asyncio event loop:

* **admission control** (:meth:`SweepService.submit`) — a synchronous
  decision made while the HTTP handler waits: unknown kinds are rejected
  ``400``, a full queue or an over-quota client is load-shed ``429``, a
  tripped circuit breaker rejects its class ``503``.  Rejections are
  structured terminal jobs, never silent drops;
* **cache fast path** — *before* any of that, a ``loop`` request whose
  content address is already in the result cache
  (:mod:`repro.parallel.cache`) is answered immediately.  This is the
  graceful-degradation guarantee: a saturated pool or an open breaker
  does not take away answers the store already knows;
* **durability** — accepted jobs hit the write-ahead journal
  (:mod:`repro.serve.journal`) before the client sees ``202``;
  :meth:`SweepService.recover` re-enqueues whatever a killed server left
  pending;
* **supervision** — dispatcher tasks (one per pool worker) pull jobs and
  run them on the :class:`~repro.serve.pool.SupervisedPool` under the
  per-job wall-clock budget; crashes and hangs surface as structured
  errors and are retried with exponential backoff + deterministic jitter
  (:func:`~repro.serve.jobs.backoff_delay`) up to ``max_retries``;
* **observability** — every lifecycle edge lands on the
  :mod:`repro.observe` bus (domain ``"serve"``) when one is installed,
  in each job's ``progress`` list always, and in the per-dispatcher
  :class:`~repro.experiments.report.ShardReport` accounting that
  ``GET /stats`` renders.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.experiments.report import ShardReport, SweepReport
from repro.observe import events as _obs
from repro.serve.breaker import CircuitBreaker
from repro.serve.jobs import (
    CHAOS_KINDS,
    PUBLIC_KINDS,
    Job,
    backoff_delay,
    execute_job,
    job_id,
    loop_result,
)
from repro.serve.journal import JobJournal
from repro.serve.pool import SupervisedPool

DEFAULT_CACHE_DIR = "results/cache"


@dataclass
class ServeConfig:
    """Tunables for one service instance."""

    workers: int = 2
    queue_limit: int = 64          # bounded queue; beyond it: load-shed 429
    client_quota: int = 8          # max non-terminal jobs per client
    max_retries: int = 2           # attempts = max_retries + 1
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    job_timeout_s: float | None = 60.0
    breaker_threshold: int = 4
    breaker_cooldown_s: float = 5.0
    cache_dir: str | None = DEFAULT_CACHE_DIR
    allow_chaos: bool = False      # accept chaos_* kinds and "inject"


@dataclass
class _Shard:
    """One dispatcher task's accounting, rendered via ShardReport."""

    report: ShardReport
    started: float = field(default_factory=time.perf_counter)


class SweepService:
    """Asyncio job service over the supervised pool and result cache."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        journal: JobJournal | None = None,
        *,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServeConfig()
        self.journal = journal
        if self.config.cache_dir is not None:
            # the fast path answers from the same content-addressed store
            # the pool workers publish into, so the parent needs the disk
            # layer too
            from repro.experiments import runner

            runner.enable_disk_cache(self.config.cache_dir)
        self.pool = SupervisedPool(self.config.workers)
        self.jobs: dict[str, Job] = {}
        self.queue: asyncio.Queue[Job] = asyncio.Queue()
        self.breakers: dict[str, CircuitBreaker] = {}
        self.counters: Counter = Counter()
        self.shards: list[ShardReport] = []
        self._clock = clock
        self._started_at = clock()
        self._seq = 0
        self._tasks: list[asyncio.Task] = []
        self._accepting = True

    # -- observability -------------------------------------------------------

    def _emit(self, kind: _obs.EventKind, job: Job, detail: str = "") -> None:
        job.note(kind.value.removeprefix("job_"), detail)
        bus = _obs.ACTIVE
        if bus is not None:
            t_ms = int((self._clock() - self._started_at) * 1000)
            bus.emit(
                kind, "serve", -1, t_ms,
                data=(("id", job.id), ("kind", job.kind), ("detail", detail)),
            )

    def breaker_for(self, kind: str) -> CircuitBreaker:
        breaker = self.breakers.get(kind)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker_threshold,
                self.config.breaker_cooldown_s,
                clock=self._clock,
            )
            self.breakers[kind] = breaker
        return breaker

    # -- admission -----------------------------------------------------------

    def _active_for_client(self, client: str, exclude: str = "") -> int:
        # ``exclude`` is the job currently under admission (already
        # registered in ``self.jobs``): it must not count against itself
        return sum(
            1 for job in self.jobs.values()
            if job.client == client and not job.terminal
            and job.id != exclude
        )

    def _cache_fast_path(self, kind: str, payload: dict) -> dict | None:
        """Millisecond answer for a ``loop`` request already in the store."""
        if kind != "loop" or "inject" in payload:
            return None
        try:
            from repro.compiler import Strategy
            from repro.experiments import runner
            from repro.parallel.cache import result_cache
            from repro.serve.jobs import _find_spec

            spec = _find_spec(payload["workload"], payload["loop"])
            strategy = Strategy(payload.get("strategy", "srv"))
            key = runner.cache_key_for(
                spec, strategy,
                int(payload.get("seed", 0)),
                timing=bool(payload.get("timing", True)),
                n_override=payload.get("n"),
                core=payload.get("core", "ooo"),
            )
            stored = result_cache().get(key)
            if stored is None:
                return None
            return loop_result(runner.payload_run(stored, spec, strategy))
        except (KeyError, ValueError):
            return None  # malformed payloads take the normal path -> 400 later

    def _reject(self, job: Job, status: int, reason: str) -> Job:
        job.status = "rejected"
        job.error = {"status": status, "reason": reason}
        job.finished_s = self._clock()
        self.counters[f"rejected_{status}"] += 1
        self.counters["rejected"] += 1
        self._emit(_obs.EventKind.JOB_REJECT, job, reason)
        return job

    def submit(
        self,
        kind: str,
        payload: dict | None = None,
        client: str = "anon",
        *,
        _resume_id: str | None = None,
    ) -> Job:
        """Admit (or reject, or answer) one request; never raises.

        Returns a :class:`Job` that is terminal (cache hit / rejection)
        or queued.  The journal holds the accept record before this
        method returns, so a crash immediately after cannot lose the job.
        """
        payload = dict(payload or {})
        self._seq += 1
        ident = _resume_id or job_id(kind, payload, client, self._seq)
        job = Job(
            id=ident, kind=kind, payload=payload, client=client,
            created_s=self._clock(), resumed=_resume_id is not None,
        )
        self.jobs[job.id] = job

        allowed = PUBLIC_KINDS + (CHAOS_KINDS if self.config.allow_chaos else ())
        if kind not in allowed:
            return self._reject(job, 400, f"unknown job kind {kind!r}")
        if "inject" in payload and not self.config.allow_chaos:
            return self._reject(
                job, 400, "fault injection requires a chaos-enabled service"
            )
        if not self._accepting:
            return self._reject(job, 503, "service is shutting down")

        # Degradation fast path: answer from the content-addressed store
        # regardless of queue depth, quota or breaker state.
        cached = self._cache_fast_path(kind, payload)
        if cached is not None:
            job.cache_hit = True
            job.status = "done"
            job.result = cached
            job.finished_s = self._clock()
            self.counters["cache_hits"] += 1
            self._emit(_obs.EventKind.JOB_DONE, job, "cache")
            return job

        if not self.breaker_for(kind).allow():
            return self._reject(
                job, 503, f"circuit breaker open for kind {kind!r}"
            )
        if self._active_for_client(client, job.id) >= self.config.client_quota:
            return self._reject(
                job, 429,
                f"client {client!r} already has "
                f"{self.config.client_quota} active jobs",
            )
        if self.queue.qsize() >= self.config.queue_limit:
            return self._reject(job, 429, "job queue is full (load shed)")

        self.counters["accepted"] += 1
        if job.resumed:
            self.counters["resumed"] += 1
        if self.journal is not None:
            self.journal.record_accept(job, resumed=job.resumed)
        self._emit(_obs.EventKind.JOB_ACCEPT, job)
        self.queue.put_nowait(job)
        return job

    # -- recovery ------------------------------------------------------------

    def recover(self) -> int:
        """Re-enqueue every job the journal still owes a terminal state."""
        if self.journal is None:
            return 0
        resumed = 0
        for record in self.journal.pending():
            job = self.submit(
                record.get("kind", "?"),
                record.get("payload") or {},
                record.get("client", "anon"),
                _resume_id=record["id"],
            )
            if not job.terminal:
                resumed += 1
            elif self.journal is not None:
                # already terminal on resubmission — answered from the
                # cache (computed before the crash, terminal record lost)
                # or rejected (kind no longer allowed): close out the
                # journal entry so it is not replayed again
                self.journal.record_terminal(job)
                if job.cache_hit:
                    resumed += 1
        return resumed

    # -- dispatch ------------------------------------------------------------

    async def start(self) -> None:
        for index in range(self.config.workers):
            report = ShardReport(index=index, cells=0)
            self.shards.append(report)
            self._tasks.append(
                asyncio.create_task(self._dispatch(report))
            )

    async def stop(self, *, drain: bool = False) -> None:
        self._accepting = False
        if drain:
            await self.drain()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        self.pool.shutdown()
        if self.journal is not None:
            self.journal.close()

    async def drain(self) -> None:
        """Wait until every accepted job reached a terminal state."""
        while any(not job.terminal for job in self.jobs.values()):
            await asyncio.sleep(0.01)

    async def _dispatch(self, report: ShardReport) -> None:
        start = time.perf_counter()
        while True:
            job = await self.queue.get()
            report.cells += 1
            if job.resumed:
                report.resumed += 1
            try:
                await self._run_job(job, report)
            finally:
                report.elapsed_s = time.perf_counter() - start
                self.queue.task_done()

    async def _run_job(self, job: Job, report: ShardReport) -> None:
        config = self.config
        breaker = self.breaker_for(job.kind)
        last_error: dict | None = None
        for attempt in range(config.max_retries + 1):
            job.attempts = attempt + 1
            job.status = "running"
            if self.journal is not None:
                self.journal.record_start(job)
            self._emit(
                _obs.EventKind.JOB_RETRY if attempt else _obs.EventKind.JOB_START,
                job, f"attempt {job.attempts}",
            )
            try:
                result = await self.pool.run(
                    execute_job, job.kind, job.payload, config.cache_dir,
                    timeout_s=config.job_timeout_s,
                )
            except Exception as exc:
                # WorkerCrashError / WorkerHungError from the supervisor,
                # any ReproError pickled back from the worker, or plumbing
                # failures — all retried the same bounded way
                last_error = {
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "attempt": job.attempts,
                }
                if isinstance(exc, (KeyError, ValueError, TypeError)):
                    # a malformed payload (unknown workload/strategy/...) is
                    # permanent — retrying it only burns pool capacity
                    break
                if attempt < config.max_retries:
                    self.counters["retries"] += 1
                    delay = backoff_delay(
                        job.id, attempt,
                        config.backoff_base_s, config.backoff_cap_s,
                    )
                    await asyncio.sleep(delay)
                    continue
            else:
                job.status = "done"
                job.result = result
                job.finished_s = self._clock()
                report.executed += 1
                self.counters["done"] += 1
                breaker.record_success()
                if self.journal is not None:
                    self.journal.record_terminal(job)
                self._emit(_obs.EventKind.JOB_DONE, job)
                return

        job.status = "failed"
        job.error = last_error
        job.finished_s = self._clock()
        report.failures.append(
            f"{job.id}: {last_error['error']}: {last_error['message']}"
        )
        self.counters["failed"] += 1
        breaker.record_failure()
        if self.journal is not None:
            self.journal.record_terminal(job)
        self._emit(
            _obs.EventKind.JOB_FAIL, job,
            f"{last_error['error']} after {job.attempts} attempt(s)",
        )

    # -- reporting -----------------------------------------------------------

    def stats_report(self) -> SweepReport:
        """The service's progress as a standard :class:`SweepReport`.

        Dispatcher tasks play the role of shards; journal-resumed jobs
        appear in the per-shard ``resumed`` column.
        """
        report = SweepReport(jobs=self.config.workers)
        report.planned_cells = self.counters["accepted"]
        report.skipped_cache = self.counters["cache_hits"]
        report.shards = self.shards
        return report

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(self._clock() - self._started_at, 3),
            "queue_depth": self.queue.qsize(),
            "jobs": len(self.jobs),
            "counters": dict(self.counters),
            "breakers": {
                kind: breaker.snapshot()
                for kind, breaker in self.breakers.items()
            },
            "pool": self.pool.snapshot(),
            "journal_pending": (
                len(self.journal) if self.journal is not None else None
            ),
        }
