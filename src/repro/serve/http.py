"""Minimal asyncio HTTP/JSON front end for the sweep service.

Dependency-free by design (the repo adds no packages): a small HTTP/1.1
request parser over ``asyncio.start_server`` plus a blocking
``http.client`` helper for CLI/benchmark clients.  The protocol surface:

==========================  ==============================================
``POST /jobs``              body ``{"kind", "payload", "client"}`` →
                            ``200`` terminal (cache hit), ``202`` queued,
                            ``400``/``429``/``503`` structured rejection
``GET /jobs/<id>``          job status, result, progress (``404`` unknown)
``GET /stats``              counters, breaker/pool snapshots, shard table
``GET /healthz``            liveness + queue depth
==========================  ==============================================

Robustness notes: request bodies are bounded (``MAX_BODY`` — oversized
uploads are rejected ``413`` without buffering them), malformed JSON and
unknown routes answer structured errors, and every connection is
``Connection: close`` so a wedged client cannot pin server state.
"""

from __future__ import annotations

import asyncio
import json

MAX_BODY = 1 << 20          # 1 MiB: sweep payloads are tiny descriptors
MAX_HEADER_LINES = 64

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(status: int, body: dict) -> bytes:
    payload = json.dumps(body).encode()
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + payload


def _status_for(job) -> int:
    if job.status == "rejected":
        return int(job.error.get("status", 400)) if job.error else 400
    if job.terminal:
        return 200
    return 202


async def _read_request(reader) -> tuple[str, str, bytes] | None:
    """Parse one request; returns (method, path, body) or None on EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ValueError("malformed request line")
    method, path = parts[0].upper(), parts[1]

    content_length = 0
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    else:
        raise ValueError("too many header lines")

    if content_length > MAX_BODY:
        raise _TooLarge()
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


class _TooLarge(Exception):
    pass


def _route(service, method: str, path: str, body: bytes) -> tuple[int, dict]:
    if method == "GET" and path == "/healthz":
        return 200, {"ok": True, "queue_depth": service.queue.qsize()}
    if method == "GET" and path == "/stats":
        snapshot = service.snapshot()
        snapshot["shard_table"] = service.stats_report().format_table()
        return 200, snapshot
    if method == "GET" and path.startswith("/jobs/"):
        job = service.jobs.get(path[len("/jobs/"):])
        if job is None:
            return 404, {"error": "unknown job id"}
        return _status_for(job), job.as_dict()
    if method == "POST" and path == "/jobs":
        try:
            request = json.loads(body or b"{}")
        except ValueError:
            return 400, {"error": "request body is not valid JSON"}
        if not isinstance(request, dict) or "kind" not in request:
            return 400, {"error": 'request must be {"kind": ..., "payload": ...}'}
        job = service.submit(
            str(request["kind"]),
            request.get("payload") or {},
            str(request.get("client", "anon")),
        )
        return _status_for(job), job.as_dict()
    if path in ("/jobs", "/healthz", "/stats") or path.startswith("/jobs/"):
        return 405, {"error": f"{method} not supported on {path}"}
    return 404, {"error": f"no route {path!r}"}


async def start_http_server(
    service, host: str = "127.0.0.1", port: int = 0
) -> asyncio.Server:
    """Serve ``service`` over HTTP; ``port=0`` picks a free port."""

    async def handle(reader, writer):
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                status, body = _route(service, *request)
            except _TooLarge:
                status, body = 413, {"error": "request body too large"}
            except (ValueError, asyncio.IncompleteReadError):
                status, body = 400, {"error": "malformed HTTP request"}
            except Exception as exc:  # a handler bug must not kill the server
                status, body = 500, {
                    "error": type(exc).__name__, "message": str(exc),
                }
            writer.write(_response(status, body))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    return await asyncio.start_server(handle, host, port)


def server_port(server: asyncio.Server) -> int:
    return server.sockets[0].getsockname()[1]


# ---------------------------------------------------------------------------
# blocking client helpers (CLI / benchmarks / CI smoke)
# ---------------------------------------------------------------------------


def request(
    host: str, port: int, method: str, path: str, body: dict | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """One blocking JSON request against a running server."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        data = response.read()
        return response.status, json.loads(data) if data else {}
    finally:
        conn.close()


def submit_job(
    host: str, port: int, kind: str, payload: dict,
    client: str = "cli", timeout: float = 30.0,
) -> tuple[int, dict]:
    return request(
        host, port, "POST", "/jobs",
        {"kind": kind, "payload": payload, "client": client},
        timeout=timeout,
    )


def wait_job(
    host: str, port: int, job_ident: str,
    poll_s: float = 0.1, timeout: float = 300.0,
) -> dict:
    """Poll until the job is terminal; returns its final dict."""
    import time as _time

    deadline = _time.monotonic() + timeout
    while True:
        status, body = request(host, port, "GET", f"/jobs/{job_ident}")
        if status == 404:
            raise KeyError(f"unknown job {job_ident!r}")
        if body.get("status") in ("done", "failed", "rejected"):
            return body
        if _time.monotonic() > deadline:
            raise TimeoutError(f"job {job_ident!r} still {body.get('status')!r}")
        _time.sleep(poll_s)
