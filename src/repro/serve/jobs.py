"""Job model and worker-side execution for the sweep service.

A :class:`Job` is one client request flowing through the service:
accepted (journaled), queued, dispatched to a pool worker, retried with
backoff on transient failure, and finally terminal — ``done``,
``failed`` or ``rejected``.  Jobs are JSON-serialisable end to end so
the write-ahead journal and the HTTP layer share one representation.

:func:`execute_job` is the *only* function the supervised pool runs.  It
is a top-level picklable entry point that maps a job kind onto the
existing machinery:

==============  ===========================================================
kind            backed by
==============  ===========================================================
``loop``        :func:`repro.experiments.runner.run_loop_hardened` (cache,
                retry-with-reseed, LSU-overflow degradation to the paper's
                III-D7 sequential fallback)
``experiment``  the figure harnesses (:data:`repro.experiments.ALL_EXPERIMENTS`)
``verify``      :func:`repro.verify.differential.verify_loop`
``attrib``      :func:`repro.observe.harness.observe_loop` cycle attribution
``trace``       :func:`repro.observe.harness.observe_loop` event counters
==============  ===========================================================

Chaos kinds (``chaos_crash``, ``chaos_hang``, ``chaos_flaky``,
``chaos_stall``) exist so the chaos suite can exercise the supervisor's
crash/hang paths deterministically; a service only accepts them when
constructed with ``allow_chaos=True``.

A ``loop`` job may carry ``"inject": "<fault-class>"`` (chaos services
only): the worker arms a :class:`repro.verify.faults.FaultPlan` for the
run, so injected corruption surfaces as a structured ``correct: false``
result — never a silently wrong answer.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field

#: Job kinds every service accepts.
PUBLIC_KINDS = ("loop", "experiment", "verify", "attrib", "trace")

#: Fault-injection kinds for the chaos harness (``allow_chaos`` only).
CHAOS_KINDS = ("chaos_crash", "chaos_hang", "chaos_flaky", "chaos_stall")

#: Statuses a job can no longer leave.
TERMINAL_STATES = frozenset({"done", "failed", "rejected"})


@dataclass
class Job:
    """One request moving through the service."""

    id: str
    kind: str
    payload: dict
    client: str = "anon"
    status: str = "queued"     # queued | running | done | failed | rejected
    attempts: int = 0
    created_s: float = 0.0
    finished_s: float = 0.0
    #: answered straight from the content-addressed cache at admission
    cache_hit: bool = False
    #: re-enqueued from the journal after a server restart
    resumed: bool = False
    result: dict | None = None
    #: terminal failure: {"error": <type name>, "message": ...} — or, for
    #: rejections, {"status": <int>, "reason": ...}
    error: dict | None = None
    #: (event, detail) pairs: "accept", "start", "retry", "done", ...
    progress: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def note(self, event: str, detail: str = "") -> None:
        self.progress.append((event, detail))

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "client": self.client,
            "status": self.status,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "resumed": self.resumed,
            "result": self.result,
            "error": self.error,
            "progress": [list(p) for p in self.progress],
        }


def job_id(kind: str, payload: dict, client: str, seq: int) -> str:
    """Deterministic job identifier: sequence number + content digest."""
    digest = hashlib.sha256(
        f"{kind}\x1f{sorted(payload.items())!r}\x1f{client}\x1f{seq}".encode()
    ).hexdigest()[:8]
    return f"{kind}-{seq:06d}-{digest}"


def backoff_delay(
    job_ident: str,
    attempt: int,
    base_s: float = 0.05,
    cap_s: float = 2.0,
) -> float:
    """Exponential backoff with deterministic jitter.

    The jitter term is a pure function of ``(job id, attempt)`` so a
    journal-replayed job retries on exactly the same schedule — no
    wall-clock or RNG state leaks into service behaviour.
    """
    word = hashlib.sha256(f"{job_ident}/{attempt}".encode()).digest()
    jitter = int.from_bytes(word[:4], "big") / 0xFFFFFFFF       # [0, 1]
    return min(cap_s, base_s * (2 ** attempt) * (0.5 + jitter))


# ---------------------------------------------------------------------------
# worker-side execution
# ---------------------------------------------------------------------------


def _find_spec(workload_name: str, loop_name: str):
    from repro.workloads import by_name

    workload = by_name(workload_name)
    for spec in workload.loops:
        if spec.name == loop_name or loop_name in spec.name:
            return spec
    raise KeyError(
        f"workload {workload_name!r} has loops: "
        f"{', '.join(s.name for s in workload.loops)}"
    )


def loop_result(run) -> dict:
    """JSON-able summary of a :class:`~repro.experiments.runner.LoopRun`.

    The service's cache fast path reconstructs *exactly* this dict from a
    stored payload, so a cache-hit answer is byte-identical to a
    freshly-computed one.
    """
    return {
        "loop": run.spec.name,
        "strategy": run.strategy.value,
        "correct": run.correct,
        "bad_array": run.bad_array,
        "instructions": run.emu.dynamic_instructions,
        "replays": run.emu.srv.replays,
        "cycles": run.pipe.cycles if run.pipe is not None else None,
        "degraded": any(f.degraded for f in run.failures),
        "failures": [str(f) for f in run.failures],
    }


def _execute_loop(payload: dict) -> dict:
    from repro.compiler import Strategy
    from repro.experiments import runner

    spec = _find_spec(payload["workload"], payload["loop"])
    strategy = Strategy(payload.get("strategy", "srv"))
    seed = int(payload.get("seed", 0))
    kwargs = dict(
        timing=bool(payload.get("timing", True)),
        n_override=payload.get("n"),
        core=payload.get("core", "ooo"),
    )

    inject = payload.get("inject")
    if inject is None:
        run = runner.run_loop_hardened(spec, strategy, seed, **kwargs)
        return loop_result(run)

    # chaos services only (the service refuses "inject" otherwise): arm a
    # repeating fault plan so the corruption is guaranteed to land, and
    # run uncached — an injected run must never publish its (corrupt)
    # payload under the clean content address.
    from repro.verify import faults

    plan = faults.FaultPlan(
        [faults.FaultSpec(fault=faults.FaultClass(inject), repeat=True)]
    )
    with faults.inject(plan):
        run = runner.run_loop(spec, strategy, seed, use_cache=False, **kwargs)
    result = loop_result(run)
    result["injected"] = sorted({f.fault.value for f in plan.fired})
    return result


def _execute_experiment(payload: dict) -> dict:
    from repro.experiments import ALL_EXPERIMENTS

    name = payload["name"]
    if name not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from: "
            f"{', '.join(ALL_EXPERIMENTS)}"
        )
    result = ALL_EXPERIMENTS[name](
        seed=int(payload.get("seed", 0)), n_override=payload.get("n")
    )
    return {
        "name": name,
        "table": result.format_table(),
        "rows": len(result.rows),
        "failures": [str(f) for f in result.failures],
    }


def _execute_verify(payload: dict) -> dict:
    from repro.compiler import Strategy
    from repro.verify.differential import verify_loop
    from repro.workloads import by_name

    strategy = Strategy(payload.get("strategy", "srv"))
    workload = by_name(payload["workload"])
    loop_filter = payload.get("loop")
    loops = violations = 0
    lines: list[str] = []
    for spec in workload.loops:
        if loop_filter and loop_filter not in spec.name:
            continue
        report = verify_loop(
            spec, strategy, seed=int(payload.get("seed", 0)),
            n_override=payload.get("n"),
        )
        loops += 1
        violations += len(report.violations)
        lines.extend(report.format_lines())
    return {"loops": loops, "violations": violations, "report": lines}


def _execute_observe(kind: str, payload: dict) -> dict:
    from repro.compiler import Strategy
    from repro.observe.harness import observe_loop

    spec = _find_spec(payload["workload"], payload["loop"])
    run = observe_loop(
        spec,
        Strategy(payload.get("strategy", "srv")),
        seed=int(payload.get("seed", 0)),
        core=payload.get("core", "ooo"),
        n_override=payload.get("n"),
    )
    out = {
        "loop": spec.name,
        "cycles": run.cycles,
        "degraded": run.degraded,
    }
    if kind == "attrib":
        out["buckets"] = {
            bucket: cycles
            for bucket, cycles in run.attribution.buckets.items()
        }
    else:
        counts: dict[str, int] = {}
        for event in run.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        out["events"] = len(run.events)
        out["event_counts"] = counts
    return out


def _execute_chaos(kind: str, payload: dict) -> dict:
    if kind == "chaos_crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "chaos_hang":
        time.sleep(float(payload.get("seconds", 3600.0)))
        return {"slept": True}
    # chaos_flaky / chaos_stall misbehave only until their flag file
    # exists, so "first attempt dies/stalls, retry succeeds" is exactly
    # reproducible: the first execution plants the flag, then crashes or
    # stalls; the retry sees the flag and returns immediately.
    flag = payload["flag"]
    if os.path.exists(flag):
        return {"recovered": True}
    with open(flag, "w") as fh:
        fh.write(str(os.getpid()))
        fh.flush()
        os.fsync(fh.fileno())
    if kind == "chaos_flaky":
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(float(payload.get("seconds", 3600.0)))
    return {"stalled": True}


def execute_job(kind: str, payload: dict, cache_dir: str | None = None) -> dict:
    """Run one job in a pool worker; returns a JSON-able result dict.

    Workers share nothing with the parent but the content-addressed disk
    cache directory, mirroring the sweep engine's shard contract
    (checkpoints stay parent-only — concurrent whole-file rewrites would
    race).
    """
    from repro.experiments import runner

    runner.disable_checkpoint()
    if cache_dir is not None:
        runner.enable_disk_cache(cache_dir)

    if kind in CHAOS_KINDS:
        return _execute_chaos(kind, payload)
    if kind == "loop":
        return _execute_loop(payload)
    if kind == "experiment":
        return _execute_experiment(payload)
    if kind == "verify":
        return _execute_verify(payload)
    if kind in ("attrib", "trace"):
        return _execute_observe(kind, payload)
    raise KeyError(f"unknown job kind {kind!r}")
