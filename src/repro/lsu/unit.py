"""The SRV load-store unit: queues, issue logic, and counters.

Ties together the vertical (section IV-B) and horizontal (section IV-C)
disambiguation logic over LQ / SAQ / SDQ state.  The unit is the
microarchitectural counterpart of the functional
:class:`~repro.emu.speculative.SpeculativeBuffer`: integration tests
cross-validate that both flag the same SRV-needs-replay lanes.

Counter conventions follow the paper's McPAT methodology (section VI-C):

* outside an SRV-region a load issue performs one CAM lookup of the store
  buffer and one of the load buffer; a store issue performs one CAM lookup
  of the load buffer;
* inside an SRV-region, horizontal disambiguation *replaces* vertical for
  loads (lookup counts unchanged), while stores perform both — their CAM
  lookups are doubled plus one extra store-buffer lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import MachineConfig
from repro.common.errors import LsuOverflowError
from repro.isa.instructions import SrvDirection
from repro.lsu.entries import LsuEntry
from repro.lsu.horizontal import (
    hob_and_forwardable,
    hob_for_pair,
    overall_hob,
    replay_lanes_from_hob,
)
from repro.lsu.vertical import vob_for_pair
from repro.observe import events as _obs
from repro.verify import faults as _faults


@dataclass
class LsuCounters:
    """Event counts backing figures 11 and 12."""

    vertical_disambiguations: int = 0
    horizontal_disambiguations: int = 0
    cam_lookups_lq: int = 0
    cam_lookups_saq: int = 0
    loads_forwarded: int = 0
    loads_from_memory: int = 0
    multi_entry_forwards: int = 0
    war_suppressions: int = 0
    waw_resolutions: int = 0
    raw_flags: int = 0

    @property
    def total_disambiguations(self) -> int:
        return self.vertical_disambiguations + self.horizontal_disambiguations

    @property
    def total_cam_lookups(self) -> int:
        return self.cam_lookups_lq + self.cam_lookups_saq


@dataclass
class LoadIssueResult:
    forwarded_from: set[tuple[int, int]] = field(default_factory=set)
    any_memory_bytes: bool = True
    war_suppressed: bool = False
    sdq_entries_combined: int = 0


@dataclass
class StoreIssueResult:
    replay_lanes: set[int] = field(default_factory=set)
    waw: bool = False
    vertical_squash: bool = False


class LoadStoreUnit:
    """LQ / SAQ / SDQ with SRV horizontal disambiguation."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.region_bytes = config.alignment_region_bytes
        self.counters = LsuCounters()
        self.lq: dict[tuple[int, int], LsuEntry] = {}
        self.saq: dict[tuple[int, int], LsuEntry] = {}
        self.in_region = False
        self.direction = SrvDirection.UP
        self.needs_replay: set[int] = set()
        self._seq = 0

    # -- region control -------------------------------------------------------

    def begin_region(self, direction: SrvDirection = SrvDirection.UP) -> None:
        """Arm extended disambiguation (executed by ``srv_start``)."""
        self.in_region = True
        self.direction = direction
        self.needs_replay.clear()

    def end_region(self) -> set[int]:
        """Handle ``srv_end``: return replay lanes, or commit and clear.

        A non-empty result means the caller must re-execute those lanes;
        entries are kept (SRV-ids will update them in place).  An empty
        result commits: speculative flags clear and the region's entries
        drain.
        """
        lanes = set(self.needs_replay)
        self.needs_replay.clear()
        if not lanes:
            for entry in self.saq.values():
                entry.speculative = False
            self.lq.clear()
            self.saq.clear()
            self.in_region = False
        return lanes

    def abort_region(self) -> None:
        """Discard speculative state (interrupt/exception path, III-D2)."""
        self.lq.clear()
        self.saq.clear()
        self.needs_replay.clear()
        self.in_region = False

    # -- capacity ---------------------------------------------------------------

    def entries_used(self) -> int:
        return len(self.lq) + len(self.saq)

    def has_capacity_for(self, demand: int) -> bool:
        return demand <= self.config.lsu_entries

    def _check_allocate(self, key: tuple[int, int], table: dict) -> None:
        if key in table:
            return  # replay updates the SRV-id's entry in place
        if self.entries_used() + 1 <= self.config.lsu_entries:
            return
        if not self.in_region:
            # Outside a region the oldest entries belong to committed
            # accesses and simply drain; evict the oldest by issue stamp.
            self._evict_oldest()
            return
        raise LsuOverflowError(
            f"LSU overflow: {self.entries_used()} entries in use, "
            f"capacity {self.config.lsu_entries}"
        )

    def _evict_oldest(self) -> None:
        oldest_key = None
        oldest_seq = None
        oldest_table = None
        for table in (self.lq, self.saq):
            for key, entry in table.items():
                if entry.speculative:
                    continue
                if oldest_seq is None or entry.seq < oldest_seq:
                    oldest_key, oldest_seq, oldest_table = key, entry.seq, table
        if oldest_table is None:
            raise LsuOverflowError(
                "LSU full of speculative entries outside a region"
            )
        del oldest_table[oldest_key]

    # -- issue -------------------------------------------------------------------

    def _stamp(self, entry: LsuEntry) -> None:
        self._seq += 1
        entry.seq = self._seq

    def _matching_rows(self, entry: LsuEntry, table: dict) -> int:
        """Rows sharing an address-alignment base with ``entry``.

        Capped at the SDQ read-port count: the hardware generates at most
        that many VOB/HOB bit-vector pairs per lookup (Table I provides 5
        SDQ read ports; further matches share the same activation).
        """
        bases = {chunk.base for chunk in entry.chunks}
        count = 0
        cap = self.config.ports.sdq_reads
        for other in table.values():
            if any(chunk.base in bases for chunk in other.chunks):
                count += 1
                if count >= cap:
                    break
        return count

    def issue_load(self, entry: LsuEntry) -> LoadIssueResult:
        """Issue a load (or one gather micro-op) against the SAQ."""
        if entry.is_store:
            raise ValueError("issue_load called with a store entry")
        key = (entry.srv_id, entry.lane)
        self._check_allocate(key, self.lq)
        self._stamp(entry)
        self.lq[key] = entry
        if _faults.ACTIVE is not None and _faults.ACTIVE.drop_lsu_entry("lq"):
            del self.lq[key]

        self.counters.cam_lookups_saq += 1
        self.counters.cam_lookups_lq += 1  # load-ordering check
        # Address disambiguations = bit-vector generations: one per CAM
        # activation plus one per row whose address-alignment base matches
        # (each match produces a VOB/HOB pair, figure 2).  Horizontal
        # replaces vertical for loads inside SRV-regions (section VI-B).
        work = 1 + self._matching_rows(entry, self.saq)
        if self.in_region:
            self.counters.horizontal_disambiguations += work
        else:
            self.counters.vertical_disambiguations += work

        result = LoadIssueResult()
        priors = list(self.saq.values())
        # Coverage as an int mask relative to entry.addr: forwardable
        # bytes always fall inside the load's own span, so bit i covers
        # byte entry.addr + i.
        covered = 0
        addr = entry.addr
        for prior in priors:
            if self.in_region:
                hob, ok = hob_and_forwardable(entry, prior, self.region_bytes)
                if hob:
                    result.war_suppressed = True
                    self.counters.war_suppressions += 1
            else:
                ok = vob_for_pair(entry, prior)
            if ok:
                result.forwarded_from.add((prior.srv_id, prior.lane))
                for base, bv in ok.items():
                    offset = base - addr
                    if offset >= 0:
                        covered |= bv.bits << offset
                    else:
                        covered |= bv.bits >> -offset
        need = (1 << entry.size) - 1
        result.any_memory_bytes = (covered & need) != need
        result.sdq_entries_combined = len(result.forwarded_from)
        if result.forwarded_from:
            self.counters.loads_forwarded += 1
            if result.sdq_entries_combined > 1:
                self.counters.multi_entry_forwards += 1
        if result.any_memory_bytes:
            self.counters.loads_from_memory += 1
        obs = _obs.ACTIVE
        if obs is not None:
            # op/cycle context was set by the timing model's _execute_mem
            if result.war_suppressed:
                obs.emit_lsu(
                    _obs.EventKind.WAR_SUPPRESS, entry.lane,
                    (("srv_id", entry.srv_id),),
                )
            if result.forwarded_from:
                obs.emit_lsu(
                    _obs.EventKind.STL_FORWARD, entry.lane,
                    (
                        ("srv_id", entry.srv_id),
                        ("sources", result.sdq_entries_combined),
                        ("full", not result.any_memory_bytes),
                    ),
                )
        return result

    def issue_store(self, entry: LsuEntry) -> StoreIssueResult:
        """Issue a store (or one scatter micro-op) against LQ and SAQ."""
        if not entry.is_store:
            raise ValueError("issue_store called with a load entry")
        key = (entry.srv_id, entry.lane)
        self._check_allocate(key, self.saq)
        self._stamp(entry)
        entry.speculative = self.in_region

        result = StoreIssueResult()
        self.counters.cam_lookups_lq += 1
        lq_work = 1 + self._matching_rows(entry, self.lq)
        self.counters.vertical_disambiguations += lq_work
        if self.in_region:
            # Doubled lookups plus the extra store-buffer CAM (section
            # VI-C): horizontal RAW search of the LQ plus WAW search of
            # the SAQ — "both horizontal and vertical disambiguations
            # occur when executing store instructions".
            self.counters.cam_lookups_lq += 1
            self.counters.cam_lookups_saq += 1
            self.counters.horizontal_disambiguations += lq_work + (
                1 + self._matching_rows(entry, self.saq)
            )

            # Horizontal RAW: prior loads in later lanes read stale bytes.
            prior_loads = [e for e in self.lq.values() if e.seq < entry.seq]
            hob = overall_hob(entry, prior_loads, self.region_bytes)
            if hob:
                lanes = replay_lanes_from_hob(
                    entry, hob, prior_loads, self.region_bytes
                )
                if lanes:
                    result.replay_lanes = lanes
                    self.needs_replay.update(lanes)
                    self.counters.raw_flags += len(lanes)

            # WAW: an older store in a later lane wrote the same bytes.
            for prior in self.saq.values():
                if (prior.srv_id, prior.lane) == key:
                    continue
                if hob_for_pair(entry, prior, self.region_bytes):
                    result.waw = True
                    self.counters.waw_resolutions += 1
                    break
        else:
            # Baseline vertical check: younger (program-order) loads that
            # already issued must squash.
            for prior in self.lq.values():
                if prior.srv_id > entry.srv_id and vob_for_pair(entry, prior):
                    result.vertical_squash = True
                    break

        self.saq[key] = entry
        if _faults.ACTIVE is not None and _faults.ACTIVE.drop_lsu_entry("saq"):
            del self.saq[key]
        obs = _obs.ACTIVE
        if obs is not None:
            if result.replay_lanes:
                obs.emit_lsu(
                    _obs.EventKind.H_VIOLATION, entry.lane,
                    (
                        ("srv_id", entry.srv_id),
                        ("lanes", tuple(sorted(result.replay_lanes))),
                    ),
                )
            if result.waw:
                obs.emit_lsu(
                    _obs.EventKind.WAW_RESOLVE, entry.lane,
                    (("srv_id", entry.srv_id),),
                )
            if result.vertical_squash:
                obs.emit_lsu(
                    _obs.EventKind.V_VIOLATION, entry.lane,
                    (("srv_id", entry.srv_id),),
                )
        return result

    # -- commit / drain ---------------------------------------------------------

    def committed_store_data(self) -> list[LsuEntry]:
        """Speculative stores in sequential writeback order.

        Sorting by (lane, srv_id) makes the program-order last writer win:
        the paper's selective memory update for WAW violations.
        """
        return sorted(self.saq.values(), key=lambda e: (e.lane, e.srv_id))

    def drain_non_speculative(self) -> None:
        self.saq = {k: e for k, e in self.saq.items() if e.speculative}
