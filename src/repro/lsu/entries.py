"""Load-queue / store-queue entry model (paper figures 3-5).

Each entry records the fields shown in the paper's figures: access type
(``Type``), element size (``Elem``), total size (``Size``), the lane field
(``Lane``, meaningful for gather/scatter micro-ops), the address-alignment
base, and the bytes-accessed bit vector(s).

Vector gathers and scatters are cracked into one micro-op per lane before
reaching the LSU ("a vector gather takes up one entry for each lane that
is loaded", section III-B); contiguous and broadcast accesses occupy a
single entry.  Entries carry the *SRV-id* (section III-C): memory
instructions with the same PC share an SRV-id, and replays update entries
in place rather than allocating new ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.bitvec import BitVector
from repro.isa.instructions import SrvDirection
from repro.lsu.alignment import RegionChunk, chunks_for_access


class AccessType(enum.Enum):
    CONTIGUOUS = "contiguous"
    GATHER_SCATTER = "gather_scatter"   # a single cracked lane micro-op
    BROADCAST = "broadcast"
    SCALAR = "scalar"


@dataclass
class LsuEntry:
    """One LQ or SAQ entry (with SDQ data attached for stores)."""

    srv_id: int                 # instruction identity within the region
    is_store: bool
    access: AccessType
    addr: int
    size: int                   # total bytes covered by this entry
    elem: int                   # element size in bytes
    lane: int                   # lane field; first lane for contiguous
    lanes_covered: int          # number of lanes this entry represents
    direction: SrvDirection = SrvDirection.UP
    speculative: bool = False   # SAQ speculative flag (section III-D4)
    data: bytes | None = None   # SDQ contents for stores
    chunks: list[RegionChunk] = field(default_factory=list)
    seq: int = 0                # machine-order issue stamp

    @classmethod
    def make(
        cls,
        *,
        srv_id: int,
        is_store: bool,
        access: AccessType,
        addr: int,
        size: int,
        elem: int,
        lane: int,
        lanes_covered: int,
        region_bytes: int,
        direction: SrvDirection = SrvDirection.UP,
        data: bytes | None = None,
        speculative: bool = False,
    ) -> "LsuEntry":
        entry = cls(
            srv_id=srv_id,
            is_store=is_store,
            access=access,
            addr=addr,
            size=size,
            elem=elem,
            lane=lane,
            lanes_covered=lanes_covered,
            direction=direction,
            speculative=speculative,
            data=data,
        )
        entry.chunks = chunks_for_access(addr, size, region_bytes)
        return entry

    # -- lane geometry -------------------------------------------------------

    def lane_of_byte(self, byte_addr: int) -> int:
        """SIMD lane that accesses ``byte_addr`` under this entry.

        * contiguous UP: lane grows with address;
        * contiguous DOWN: lane grows as address falls (section III-A);
        * gather/scatter micro-op and scalar: the entry's single lane;
        * broadcast: every lane reads the same bytes — callers must treat a
          broadcast entry as *all* lanes; this method returns the lowest
          (oldest) lane, which is the conservative value for violation
          checks against prior stores.
        """
        if not self.addr <= byte_addr < self.addr + self.size:
            raise ValueError(
                f"byte {byte_addr:#x} outside entry [{self.addr:#x},"
                f" {self.addr + self.size:#x})"
            )
        if self.access is AccessType.CONTIGUOUS:
            index = (byte_addr - self.addr) // self.elem
            if self.direction is SrvDirection.DOWN:
                return self.lane + (self.lanes_covered - 1 - index)
            return self.lane + index
        return self.lane

    def lane_span_of_byte(self, byte_addr: int) -> tuple[int, int]:
        """Closed lane range ``(min_lane, max_lane)`` touching ``byte_addr``.

        Broadcast entries touch the byte with every lane they cover.
        """
        if self.access is AccessType.BROADCAST:
            return self.lane, self.lane + self.lanes_covered - 1
        one = self.lane_of_byte(byte_addr)
        return one, one

    def overlaps(self, other: "LsuEntry") -> bool:
        return self.addr < other.addr + other.size and other.addr < self.addr + self.size

    def chunk_for_base(self, base: int) -> RegionChunk | None:
        for chunk in self.chunks:
            if chunk.base == base:
                return chunk
        return None

    def data_byte(self, byte_addr: int) -> int:
        if self.data is None:
            raise ValueError("entry has no store data")
        return self.data[byte_addr - self.addr]
