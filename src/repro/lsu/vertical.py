"""Vertical disambiguation logic (paper section IV-B).

Vertical dependences are the conventional inter-instruction dependences of
the baseline out-of-order core.  For an issuing access, each prior entry
with a matching address-alignment base contributes a *VOB*
(vertically-overlapped bytes) bit vector: the AND of the two
bytes-accessed vectors.  ORing all VOBs gives the overall VOB — for a
load, the bytes obtainable by store-to-load forwarding; for a store, a
non-zero overall VOB against younger loads signals a true vertical
violation requiring a squash.
"""

from __future__ import annotations

from repro.common.bitvec import BitVector
from repro.lsu.entries import LsuEntry


def vob_for_pair(issuing: LsuEntry, prior: LsuEntry) -> dict[int, BitVector]:
    """Per-alignment-base VOB bit vectors between two entries.

    Only regions present in *both* entries produce a vector ("a match
    occurs … since they have the same address-alignment base").
    """
    result: dict[int, BitVector] = {}
    for chunk in issuing.chunks:
        other = prior.chunk_for_base(chunk.base)
        if other is None:
            continue
        mine = chunk.bytes_accessed
        bits = mine.bits & other.bytes_accessed.bits
        if bits:
            result[chunk.base] = BitVector._new(mine.width, bits)
    return result


def overall_vob(
    issuing: LsuEntry, priors: list[LsuEntry]
) -> dict[int, BitVector]:
    """OR of the per-entry VOBs, per alignment base."""
    combined: dict[int, BitVector] = {}
    for prior in priors:
        for base, bv in vob_for_pair(issuing, prior).items():
            if base in combined:
                combined[base] = combined[base] | bv
            else:
                combined[base] = bv
    return combined
