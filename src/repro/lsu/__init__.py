"""SRV memory-disambiguation microarchitecture (paper section IV)."""

from repro.lsu.alignment import RegionChunk, align_base, align_offset, chunks_for_access
from repro.lsu.entries import AccessType, LsuEntry
from repro.lsu.horizontal import (
    forwardable_mask,
    hob_and_forwardable,
    hob_for_pair,
    horizontal_violation_vector,
    overall_hob,
    replay_lanes_from_hob,
)
from repro.lsu.unit import LoadIssueResult, LoadStoreUnit, LsuCounters, StoreIssueResult
from repro.lsu.vertical import overall_vob, vob_for_pair

__all__ = [
    "RegionChunk",
    "align_base",
    "align_offset",
    "chunks_for_access",
    "AccessType",
    "LsuEntry",
    "forwardable_mask",
    "hob_and_forwardable",
    "hob_for_pair",
    "horizontal_violation_vector",
    "overall_hob",
    "replay_lanes_from_hob",
    "LoadIssueResult",
    "LoadStoreUnit",
    "LsuCounters",
    "StoreIssueResult",
    "overall_vob",
    "vob_for_pair",
]
