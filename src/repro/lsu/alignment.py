"""Address-alignment regions (paper section IV-A).

The LSU's bit vectors are scoped to *address-alignment regions*: spans of
memory aligned to (and as long as) the machine's alignment-region size
(64 bytes in Table I).  The start of each region is its
*address-alignment base*.  A memory access is decomposed into one
bytes-accessed bit vector per region it touches; an access of at most one
vector length can span at most two consecutive regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitvec import BitVector


def align_base(addr: int, region_bytes: int) -> int:
    """The address-alignment base of the region containing ``addr``."""
    return addr & ~(region_bytes - 1)


def align_offset(addr: int, region_bytes: int) -> int:
    """Byte offset of ``addr`` within its alignment region."""
    return addr & (region_bytes - 1)


@dataclass(frozen=True)
class RegionChunk:
    """The portion of one access falling inside one alignment region."""

    base: int                 # address-alignment base
    bytes_accessed: BitVector  # byte-granular, relative to `base`
    first_byte_addr: int       # lowest accessed address inside this region

    @property
    def offset(self) -> int:
        return self.first_byte_addr - self.base


def chunks_for_access(addr: int, size: int, region_bytes: int) -> list[RegionChunk]:
    """Decompose ``[addr, addr+size)`` into per-region bytes-accessed vectors."""
    if size <= 0:
        raise ValueError(f"access size must be positive, got {size}")
    chunks: list[RegionChunk] = []
    cursor = addr
    end = addr + size
    while cursor < end:
        base = align_base(cursor, region_bytes)
        region_end = base + region_bytes
        chunk_end = min(end, region_end)
        bv = BitVector.from_range(region_bytes, cursor - base, chunk_end - cursor)
        chunks.append(RegionChunk(base, bv, cursor))
        cursor = chunk_end
    return chunks
