"""Horizontal disambiguation logic (paper sections IV-C and IV-D).

Horizontal dependences are the new, cross-lane dependences SRV detects.
For every pair of (issuing access, prior entry) sharing an
address-alignment base, the logic builds:

* the *horizontal-violation bit vector* — bytes of the region where the
  **prior** entry's lane is *sequentially later* than the issuing access's
  lane for that byte, and
* the *HOB* (horizontally-overlapped bytes) bit vector — the AND of the
  VOB and the horizontal-violation vector: the overlapped bytes that
  actually violate.

Interpretation depends on who is issuing:

* **issuing load vs prior store** — a non-zero HOB is a WAR: those bytes
  were written by a later lane and are *not forwardable*; the load reads
  them from the memory hierarchy (or from sequentially older SDQ entries).
* **issuing store vs prior load** — a non-zero HOB is a horizontal RAW:
  the prior load in a later lane already read stale bytes.  Reducing the
  HOB by the element size yields the lanes to set in the SRV-needs-replay
  register (the worked example of section IV-D).
* **issuing store vs prior store** — a non-zero HOB is a WAW, resolved by
  ordered selective writeback.

The per-access-type constructions of section IV-C (contiguous×contiguous,
gather×scatter, contiguous×scatter, gather×contiguous, broadcast×…) all
reduce to one predicate once each byte is mapped to the lane that accesses
it: *prior-lane(byte) > issuing-lane(byte)*.  ``LsuEntry.lane_of_byte``
encodes the per-type lane geometry (including the DOWN-direction mirror of
section III-A); broadcast entries are expanded per lane.
"""

from __future__ import annotations

from repro.common.bitvec import BitVector
from repro.isa.instructions import SrvDirection
from repro.lsu.entries import AccessType, LsuEntry
from repro.lsu.vertical import vob_for_pair

try:  # optional: enables the lane-batched violation-vector construction
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None  # type: ignore[assignment]

#: Cached ``arange(region_bytes)`` per region size for the batched path.
_BYTE_INDEX: dict[int, "_np.ndarray"] = {}

#: Offsets beyond this magnitude fall back to the per-byte Python loop so
#: the int64 address arithmetic below provably cannot wrap.
_ADDR_GUARD = 1 << 60


#: Memo for :func:`horizontal_violation_vector`.  The vector is a pure
#: function of the two entries' lane geometry *relative to the region
#: base* (every per-byte term below is of the form ``(base + bit) -
#: entry.addr``), so identical geometry across loop iterations — the
#: common case, since array strides typically advance whole alignment
#: regions — hits the cache.  BitVectors are immutable, so sharing the
#: result object is safe.
_VIOLATION_MEMO: dict[tuple, BitVector] = {}
_VIOLATION_MEMO_MAX = 1 << 16


def horizontal_violation_vector(
    issuing: LsuEntry, prior: LsuEntry, base: int, region_bytes: int
) -> BitVector:
    """Bytes of region ``base`` where the prior entry is in a later lane.

    Built independently of the overlap (as in figure 5, where the full
    suffix of the region is marked) and later ANDed with the VOB.
    """
    prior_chunk = prior.chunk_for_base(base)
    if prior_chunk is None:
        return BitVector.zeros(region_bytes)
    memo_key = (
        prior_chunk.bytes_accessed.bits,
        prior.access,
        prior.lane,
        prior.lanes_covered,
        prior.elem,
        prior.direction,
        base - prior.addr,
        issuing.access,
        issuing.lane,
        issuing.lanes_covered,
        issuing.elem,
        issuing.direction,
        base - issuing.addr,
        issuing.size,
        region_bytes,
    )
    cached = _VIOLATION_MEMO.get(memo_key)
    if cached is not None:
        return cached
    # Inlined lane geometry (LsuEntry.lane_span_of_byte and
    # _issuing_lane_for_byte) with the per-entry attributes hoisted out of
    # the per-byte evaluation: this function dominates LSU issue time.
    p_lane = prior.lane
    if prior.access is AccessType.BROADCAST:
        p_base_lane, p_contig = p_lane + prior.lanes_covered - 1, False
    elif prior.access is AccessType.CONTIGUOUS:
        p_base_lane, p_contig = p_lane, True
        p_addr, p_elem = prior.addr, prior.elem
        p_mirror = (
            prior.lanes_covered - 1
            if prior.direction is SrvDirection.DOWN
            else None
        )
    else:
        p_base_lane, p_contig = p_lane, False
    i_lane = issuing.lane
    i_contig = issuing.access is AccessType.CONTIGUOUS
    if i_contig:
        i_addr, i_end, i_elem = issuing.addr, issuing.addr + issuing.size, issuing.elem
        i_mirror = (
            issuing.lanes_covered - 1
            if issuing.direction is SrvDirection.DOWN
            else None
        )
    p_mask = prior_chunk.bytes_accessed.bits
    p_off = base - p_addr if p_contig else 0
    i_off = base - i_addr if i_contig else 0
    if not p_contig and not i_contig:
        # Both lanes are position-independent: one scalar comparison.
        bits = p_mask if p_base_lane > i_lane else 0
    elif (
        _np is not None
        and -_ADDR_GUARD < p_off < _ADDR_GUARD
        and -_ADDR_GUARD < i_off < _ADDR_GUARD
    ):
        # Lane-batched construction: evaluate the per-byte predicate
        # prior-lane(byte) > issuing-lane(byte) over the whole alignment
        # region at once, then mask to the prior's bytes-accessed vector.
        # The offset guard keeps every int64 intermediate exact.
        idx = _BYTE_INDEX.get(region_bytes)
        if idx is None:
            idx = _np.arange(region_bytes, dtype=_np.int64)
            _BYTE_INDEX[region_bytes] = idx
        if p_contig:
            pindex = (p_off + idx) // p_elem
            prior_max = p_base_lane + (
                p_mirror - pindex if p_mirror is not None else pindex
            )
        else:
            prior_max = p_base_lane
        if i_contig:
            off = i_off + idx
            iindex = off // i_elem
            delta = i_mirror - iindex if i_mirror is not None else iindex
            in_span = (off >= 0) & (off < issuing.size)
            issuing_lane = i_lane + _np.where(in_span, delta, 0)
        else:
            issuing_lane = i_lane
        packed = _np.packbits(prior_max > issuing_lane, bitorder="little")
        bits = int.from_bytes(packed.tobytes(), "little") & p_mask
    else:
        bits = 0
        for bit in prior_chunk.bytes_accessed.set_indices():
            byte_addr = base + bit
            prior_max = p_base_lane
            if p_contig:
                index = (byte_addr - p_addr) // p_elem
                prior_max += p_mirror - index if p_mirror is not None else index
            issuing_lane = i_lane
            if i_contig and i_addr <= byte_addr < i_end:
                index = (byte_addr - i_addr) // i_elem
                issuing_lane += i_mirror - index if i_mirror is not None else index
            if prior_max > issuing_lane:
                bits |= 1 << bit
    result = BitVector._new(region_bytes, bits)
    if len(_VIOLATION_MEMO) >= _VIOLATION_MEMO_MAX:
        _VIOLATION_MEMO.clear()
    _VIOLATION_MEMO[memo_key] = result
    return result


def _issuing_lane_for_byte(issuing: LsuEntry, byte_addr: int) -> int:
    """Lane of the issuing access relevant for the comparison at ``byte_addr``.

    If the issuing access covers the byte, the lane accessing that byte is
    used.  Otherwise (the violation vector is built for bytes the issuing
    access does not touch, cf. figure 5 setting "all but the first 4
    bits") the issuing entry's own lane field is used — for broadcast
    issuers the *youngest* covered lane, as every lane performs the access.
    """
    if issuing.addr <= byte_addr < issuing.addr + issuing.size:
        lo, _ = issuing.lane_span_of_byte(byte_addr)
        return lo
    if issuing.access is AccessType.BROADCAST:
        return issuing.lane
    return issuing.lane


def hob_for_pair(
    issuing: LsuEntry, prior: LsuEntry, region_bytes: int
) -> dict[int, BitVector]:
    """Per-base HOB = VOB AND horizontal-violation (figure 4)."""
    result: dict[int, BitVector] = {}
    for chunk in issuing.chunks:
        other = prior.chunk_for_base(chunk.base)
        if other is None:
            continue
        vob_bits = chunk.bytes_accessed.bits & other.bytes_accessed.bits
        if not vob_bits:
            continue
        violation = horizontal_violation_vector(
            issuing, prior, chunk.base, region_bytes
        )
        hob_bits = vob_bits & violation.bits
        if hob_bits:
            result[chunk.base] = BitVector._new(region_bytes, hob_bits)
    return result


def hob_and_forwardable(
    issuing: LsuEntry, prior: LsuEntry, region_bytes: int
) -> tuple[dict[int, BitVector], dict[int, BitVector]]:
    """One pass yielding (:func:`hob_for_pair`, :func:`forwardable_mask`).

    An issuing load needs both views of the same VOB/violation pair; the
    LSU calls this so the violation vector is built once per (pair, base)
    instead of twice.  Masks are combined as plain ints and only wrapped
    back into :class:`BitVector` when non-empty — this pairing runs once
    per (load, SAQ entry) and dominates load-issue time.
    """
    hobs: dict[int, BitVector] = {}
    forwardable: dict[int, BitVector] = {}
    for chunk in issuing.chunks:
        other = prior.chunk_for_base(chunk.base)
        if other is None:
            continue
        vob_bits = chunk.bytes_accessed.bits & other.bytes_accessed.bits
        if not vob_bits:
            continue
        base = chunk.base
        violation = horizontal_violation_vector(issuing, prior, base, region_bytes)
        hob_bits = vob_bits & violation.bits
        if hob_bits:
            hobs[base] = BitVector._new(region_bytes, hob_bits)
        ok_bits = vob_bits & ~violation.bits
        if ok_bits:
            forwardable[base] = BitVector._new(region_bytes, ok_bits)
    return hobs, forwardable


def overall_hob(
    issuing: LsuEntry, priors: list[LsuEntry], region_bytes: int
) -> dict[int, BitVector]:
    """OR of per-entry HOBs — "all HOB bit vectors are ORed together"."""
    combined: dict[int, int] = {}
    for prior in priors:
        for base, bv in hob_for_pair(issuing, prior, region_bytes).items():
            combined[base] = combined.get(base, 0) | bv.bits
    return {
        base: BitVector._new(region_bytes, bits)
        for base, bits in combined.items()
    }


def replay_lanes_from_hob(
    issuing: LsuEntry,
    hob_by_base: dict[int, BitVector],
    priors: list[LsuEntry],
    region_bytes: int,
) -> set[int]:
    """Translate HOB bytes back into SRV-needs-replay lanes (section IV-D).

    The paper reduces the overall HOB by the element size recorded in the
    LSU.  The reduction must map each violating byte to the lane of the
    *prior load* that read it (the lane to be replayed), which for
    contiguous loads is position-dependent and for gathers is the entry's
    lane field.  Only lanes sequentially later than the issuing store's
    lane for that byte are flagged.
    """
    lanes: set[int] = set()
    for base, hob in hob_by_base.items():
        for bit in hob.set_indices():
            byte_addr = base + bit
            issuing_lane = _issuing_lane_for_byte(issuing, byte_addr)
            for prior in priors:
                if prior.is_store:
                    continue
                if not prior.addr <= byte_addr < prior.addr + prior.size:
                    continue
                chunk = prior.chunk_for_base(base)
                if chunk is None or not chunk.bytes_accessed.test(bit):
                    continue
                lo, hi = prior.lane_span_of_byte(byte_addr)
                lanes.update(
                    lane for lane in range(lo, hi + 1) if lane > issuing_lane
                )
    return lanes


def forwardable_mask(
    issuing: LsuEntry, prior: LsuEntry, region_bytes: int
) -> dict[int, BitVector]:
    """Bytes of the prior store forwardable to the issuing load.

    Forwardable = VOB AND NOT horizontal-violation: the overlapped bytes
    written by the same or an older lane (sections IV-C1/C2: "if the
    load's lane is larger than or equal to a previous store's lane, the
    VOB bit vector indicates the forwardable bytes").
    """
    result: dict[int, BitVector] = {}
    for base, vob in vob_for_pair(issuing, prior).items():
        violation = horizontal_violation_vector(issuing, prior, base, region_bytes)
        ok_bits = vob.bits & ~violation.bits
        if ok_bits:
            result[base] = BitVector._new(region_bytes, ok_bits)
    return result
