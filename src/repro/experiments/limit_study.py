"""Section II limit study — the motivation experiment.

The paper instrumented each workload to record through-memory dependences
at run time and "emulated vectorisation in groups of 16 iterations at a
time", estimating:

* an average **2.1x** potential whole-program speedup if *all* inner
  loops could be vectorised,
* only **1.02x** if loops with unknown through-memory dependences are
  excluded,
* with more than **70%** of the currently-unvectorised inner loops having
  such dependences.

Substitution note (we cannot instrument SPEC binaries): each workload's
*total* inner-loop coverage is a documented assumption
(:data:`INNER_LOOP_COVERAGE`), while the unknown-dependence loop share and
the ideal vectorisation factor are **measured** — the latter by emulating
16-iteration groups through the functional emulator and taking the
dynamic-instruction reduction, exactly the paper's emulated-vectorisation
method.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop, whole_program_speedup
from repro.workloads import ALL_WORKLOADS

#: Assumed fraction of dynamic instructions inside (currently
#: unvectorised) inner loops, per benchmark.  SPEC integer codes sit
#: around 50-60%; HPC codes are loop-dominated.
INNER_LOOP_COVERAGE: dict[str, float] = {
    "perlbench": 0.45,
    "bzip2": 0.60,
    "gcc": 0.50,
    "gobmk": 0.45,
    "hmmer": 0.70,
    "h264ref": 0.65,
    "omnetpp": 0.45,
    "astar": 0.55,
    "soplex": 0.60,
    "xalancbmk": 0.55,
    "milc": 0.80,
    "is": 0.85,
    "livermore": 0.90,
    "ssca2": 0.70,
    "randacc": 0.80,
    "lc": 0.80,
}

#: Share of the unvectorised inner loops (by count) that carry unknown
#: through-memory dependences ("More than 70% ... have these types of
#: dependences").
UNKNOWN_DEP_LOOP_COUNT_SHARE = 0.75

#: The same share weighted by dynamic instructions: the unknown-dependence
#: loops are the hot ones, so excluding them removes nearly all of the
#: vectorisation benefit (which is how 2.1x collapses to 1.02x).
UNKNOWN_DEP_INSTRUCTION_SHARE = 0.95


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="limit_study",
        title="Section II limit study: potential of vectorising inner loops",
        columns=(
            "benchmark",
            "ideal_vector_factor",
            "potential_speedup",
            "without_unknown_dep_loops",
        ),
    )
    for workload in ALL_WORKLOADS:
        # measured ideal factor: dynamic-instruction reduction of emulated
        # 16-wide vectorisation (SRV run vs scalar run) per loop
        scalar_instr = vector_instr = 0
        for spec in workload.loops:
            scalar = run_loop(
                spec, Strategy.SCALAR, seed=seed, config=config,
                n_override=n_override, timing=False,
            )
            vector = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override, timing=False,
            )
            scalar_instr += scalar.emu.dynamic_instructions
            vector_instr += vector.emu.dynamic_instructions
        ideal = scalar_instr / vector_instr
        inner = INNER_LOOP_COVERAGE[workload.name]
        potential = whole_program_speedup(ideal, inner)
        clean_coverage = inner * (1.0 - UNKNOWN_DEP_INSTRUCTION_SHARE)
        without = whole_program_speedup(ideal, clean_coverage)
        result.rows.append((workload.name, ideal, potential, without))

    potentials = result.column("potential_speedup")
    withouts = result.column("without_unknown_dep_loops")
    result.summary["average_potential"] = sum(potentials) / len(potentials)
    result.summary["average_without_unknown"] = sum(withouts) / len(withouts)
    result.summary["unknown_dep_loop_count_share"] = UNKNOWN_DEP_LOOP_COUNT_SHARE
    result.summary["paper_potential"] = 2.1
    result.summary["paper_without_unknown"] = 1.02
    result.summary["paper_unknown_share"] = ">70%"
    return result
