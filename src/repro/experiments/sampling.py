"""Sampling validation — projected vs exact cycles (no paper counterpart).

Two halves:

* **suite accuracy** — every suite loop under SRV and SVE, exact
  streaming cycles vs the :mod:`repro.sample` projection at a small
  interval size (suite loops run a few thousand dynamic ops).  The
  summary reports the worst absolute error and the within-5% count —
  the repo's standing accuracy gate for the sampler.
* **long-kernel reduction** — one generated kernel at
  :data:`LONG_TRIP` iterations (multi-million dynamic ops at full
  size), demonstrating the point of sampling: detailed-simulated ops
  drop by an order of magnitude while the projection stays within the
  same 5% bound.

``n_override`` trims both halves for quick runs (CI smoke uses the
``repro sample`` CLI on a short kernel instead of this harness).
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import RunFailure, run_loop
from repro.workloads import ALL_WORKLOADS

#: suite-half sampling geometry: suite loops are short, so intervals
#: must be small enough to give the clusterer something to choose from.
#: The warm-up window is deliberately larger than the interval — the
#: out-of-order machine needs ~ROB-fill ops of replay before its commit
#: clock reaches steady state, and a too-short window shows up as a
#: systematic per-segment overestimate (pinned by the telescoping test
#: in tests/test_sample.py)
SUITE_INTERVAL = 256
SUITE_WARMUP = 1536
SUITE_MAX_K = 4

#: long-kernel half: one generated kernel at this trip count (about
#: 1.3M dynamic ops for the seed-0 kernel body) with the default
#: projection geometry
LONG_TRIP = 524_288
LONG_INTERVAL = 2048
LONG_WARMUP = 1024


def long_workload_name(seed: int) -> str:
    """by_name key of the long-kernel workload for ``seed``."""
    from repro.gen.emitter import workload_name

    return workload_name(seed, 1, n=LONG_TRIP)


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    # lazy: repro.sample imports the runner's cache layer
    from repro.sample import resolve_spec, sample_loop

    result = ExperimentResult(
        name="sampling",
        title="Sampling validation: projected vs exact cycles "
              "(suite + long generated kernel)",
        columns=(
            "loop",
            "strategy",
            "exact_cycles",
            "projected_cycles",
            "error_pct",
            "k",
            "intervals",
            "total_ops",
            "detailed_ops",
            "reduction",
        ),
    )

    def one(workload_key, spec, strategy, interval, warmup, max_k):
        exact = run_loop(
            spec, strategy, seed=seed, config=config, n_override=n_override,
        )
        report = sample_loop(
            spec, strategy, seed=seed, config=config,
            interval_size=interval, warmup=warmup, max_clusters=max_k,
            n_override=n_override, workload_key=workload_key,
        ).with_exact(exact.cycles)
        if report.degraded:
            result.failures.append(RunFailure(
                loop=spec.name, strategy=strategy.value, seed=seed,
                stage="timing", error="LsuOverflowError",
                message="sampled projection used the sequential fallback",
                degraded=True,
            ))
        result.failures.extend(exact.failures)
        result.rows.append((
            spec.name,
            strategy.value,
            exact.cycles,
            report.projected_cycles,
            round(report.error_pct, 3),
            report.k,
            report.intervals,
            report.total_ops,
            report.detailed_ops,
            round(report.reduction, 2),
        ))
        return report

    for workload in ALL_WORKLOADS:
        for spec in workload.loops:
            for strategy in (Strategy.SRV, Strategy.SVE):
                one(workload.name, spec, strategy,
                    SUITE_INTERVAL, SUITE_WARMUP, SUITE_MAX_K)

    suite_errors = [abs(row[4]) for row in result.rows]

    long_name = long_workload_name(seed)
    _, long_spec = resolve_spec(long_name)
    long_report = one(long_name, long_spec, Strategy.SRV,
                      LONG_INTERVAL, LONG_WARMUP, 8)

    result.summary = {
        "suite_loops": len(suite_errors) // 2,
        "suite_max_error_pct": round(max(suite_errors), 3),
        "suite_within_5pct": sum(1 for e in suite_errors if e <= 5.0),
        "suite_runs": len(suite_errors),
        "long_workload": long_name,
        "long_total_ops": long_report.total_ops,
        "long_detailed_ops": long_report.detailed_ops,
        "long_reduction": round(long_report.reduction, 2),
        "long_error_pct": round(long_report.error_pct, 3),
    }
    return result
