"""Fuzz smoke — a small generated-scenario sweep (no paper counterpart).

Runs a fixed-size generated workload (:data:`FUZZ_SMOKE_COUNT` kernels,
derived from the experiment seed) under SRV and SVE with the scalar
oracle armed, one row per kernel.  This is the experiment the sweep
matrix shards and caches: the per-kernel differential *campaign* (with
shrinking) lives in ``repro fuzz`` / :mod:`repro.gen.campaign`, while
this harness keeps a representative generated slice inside the standard
``repro sweep`` / CI surface.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.gen.emitter import generated_workload

#: kernels per smoke workload — small enough for per-PR CI, large enough
#: to cover scatter/gather/predication/direction variation
FUZZ_SMOKE_COUNT = 12


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fuzz_smoke",
        title=f"Fuzz smoke: {FUZZ_SMOKE_COUNT} generated kernels, "
              f"SRV vs SVE with oracle",
        columns=(
            "kernel",
            "srv_correct",
            "sve_correct",
            "srv_cycles",
            "sve_cycles",
            "raw_violations",
        ),
    )
    workload = generated_workload(seed, FUZZ_SMOKE_COUNT)
    for spec in workload.loops:
        srv = run_loop(spec, Strategy.SRV, seed=seed, config=config,
                       n_override=n_override)
        sve = run_loop(spec, Strategy.SVE, seed=seed, config=config,
                       n_override=n_override)
        result.rows.append((
            spec.name,
            srv.correct,
            sve.correct,
            srv.cycles,
            sve.cycles,
            srv.emu.srv.raw_violations,
        ))
        result.failures.extend(srv.failures)
        result.failures.extend(sve.failures)
    result.summary = {
        "workload": workload.name,
        "kernels": len(result.rows),
        "all_correct": all(r[1] and r[2] for r in result.rows),
    }
    return result
