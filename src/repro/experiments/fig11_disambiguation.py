"""Figure 11 — address disambiguations: SRV-vectorised vs sequential.

"The number of address disambiguations when executing loops vectorised
through SRV compared [to] sequential execution, broken down by type."
Inside SRV-regions, horizontal disambiguations replace vertical ones for
loads, while stores perform both (section VI-B).

Paper values: SRV increases disambiguations by up to 60%; bzip2, omnetpp,
milc and xalancbmk perform *fewer* than sequential execution because
vectorisation cuts the dynamic instruction count; horizontal
disambiguations take up a large fraction of the total.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="figure11",
        title="Figure 11: address disambiguations, SRV vs sequential",
        columns=(
            "benchmark",
            "sequential_vertical",
            "srv_vertical",
            "srv_horizontal",
            "srv_over_sequential",
        ),
    )
    for workload in ALL_WORKLOADS:
        seq_v = srv_v = srv_h = 0
        for spec in workload.loops:
            base = run_loop(
                spec, Strategy.SCALAR, seed=seed, config=config,
                n_override=n_override,
            )
            srv = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override,
            )
            seq_v += base.pipe.lsu.vertical_disambiguations
            srv_v += srv.pipe.lsu.vertical_disambiguations
            srv_h += srv.pipe.lsu.horizontal_disambiguations
        ratio = (srv_v + srv_h) / seq_v if seq_v else 0.0
        result.rows.append((workload.name, seq_v, srv_v, srv_h, ratio))
    ratios = result.column("srv_over_sequential")
    result.summary["max_increase"] = max(ratios) - 1.0
    result.summary["benchmarks_with_fewer"] = [
        row[0] for row in result.rows if row[4] < 1.0
    ]
    result.summary["paper_max_increase"] = 0.60
    result.summary["paper_fewer"] = ["bzip2", "omnetpp", "milc", "xalancbmk"]
    return result
