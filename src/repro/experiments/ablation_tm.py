"""Ablation — transactional-memory lane conflicts (paper section III-E).

"Applying [transactional memory] to vector execution, each SIMD lane
could be viewed as a thread […] However, unless the transactional memory
system kept versions of each cache line, then it would have to re-execute
lanes on WAR dependence violations, as well as RAW, to ensure correct
execution in all situations."

With ``MachineConfig.srv_tm_mode`` the functional executor emulates the
version-less TM design: a WAR conflict (a later lane's buffered store
covering bytes an older lane loads) aborts and replays the writing lane.
The ablation counts the extra replay passes TM pays over SRV — SRV's
store-buffering makes WAR free, which is exactly the section III-E
argument for the SRV design point.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    tm_config = config.with_overrides(srv_tm_mode=True)
    result = ExperimentResult(
        name="ablation_tm",
        title="Ablation: replay passes, SRV vs version-less TM (III-E)",
        columns=(
            "benchmark", "srv_replays", "tm_replays", "tm_war_lane_aborts",
        ),
    )
    for workload in ALL_WORKLOADS:
        srv_replays = tm_replays = tm_war = 0
        for spec in workload.loops:
            srv = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override, timing=False,
            )
            tm = run_loop(
                spec, Strategy.SRV, seed=seed, config=tm_config,
                n_override=n_override, timing=False,
            )
            assert srv.correct and tm.correct
            srv_replays += srv.emu.srv.replays
            tm_replays += tm.emu.srv.replays
            tm_war += tm.emu.srv.tm_war_replays
        result.rows.append((workload.name, srv_replays, tm_replays, tm_war))
    result.summary["total_srv_replays"] = sum(result.column("srv_replays"))
    result.summary["total_tm_replays"] = sum(result.column("tm_replays"))
    result.summary["paper_claim"] = (
        "version-less TM must also re-execute lanes on WAR violations"
    )
    return result
