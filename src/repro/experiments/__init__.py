"""Experiment harnesses: one module per paper figure/table.

Each module exposes ``run(seed=0, config=TABLE_I, n_override=None)``
returning an :class:`~repro.experiments.report.ExperimentResult` whose
rows mirror the figure's series.  ``n_override`` trims loop trip counts
for quick runs; the benchmarks run at full size.
"""

from repro.experiments import (
    ablation_barrier,
    ablation_inorder,
    ablation_tm,
    analyze_guided,
    fig6_loop_speedup,
    fig7_whole_program,
    fig8_barrier,
    fig9_violations,
    fig10_mem_accesses,
    fig11_disambiguation,
    fig12_power,
    fig13_flexvec,
    fuzz_smoke,
    headline,
    limit_study,
    sampling,
)
from repro.experiments.report import ExperimentResult, ShardReport, SweepReport
from repro.experiments.runner import (
    LoopRun,
    RunFailure,
    cache_key_for,
    checkpoint_has,
    clear_cache,
    disable_checkpoint,
    disable_disk_cache,
    enable_checkpoint,
    enable_disk_cache,
    loop_speedup,
    run_loop,
    run_loop_hardened,
    whole_program_speedup,
    workload_loop_speedup,
)

ALL_EXPERIMENTS = {
    "limit_study": limit_study.run,
    "figure6": fig6_loop_speedup.run,
    "figure7": fig7_whole_program.run,
    "figure8": fig8_barrier.run,
    "figure9": fig9_violations.run,
    "figure10": fig10_mem_accesses.run,
    "figure11": fig11_disambiguation.run,
    "figure12": fig12_power.run,
    "figure13": fig13_flexvec.run,
    "fuzz_smoke": fuzz_smoke.run,
    "headline": headline.run,
    "sampling": sampling.run,
    "ablation_inorder": ablation_inorder.run,
    "ablation_barrier": ablation_barrier.run,
    "ablation_tm": ablation_tm.run,
    "analyze_guided": analyze_guided.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "LoopRun",
    "RunFailure",
    "ShardReport",
    "SweepReport",
    "cache_key_for",
    "checkpoint_has",
    "clear_cache",
    "disable_checkpoint",
    "disable_disk_cache",
    "enable_checkpoint",
    "enable_disk_cache",
    "loop_speedup",
    "run_loop",
    "run_loop_hardened",
    "whole_program_speedup",
    "workload_loop_speedup",
]
