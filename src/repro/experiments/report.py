"""Experiment result containers and table rendering.

Every figure harness returns an :class:`ExperimentResult`; its
``format_table`` renders the same rows/series the paper reports, so the
benchmark harness can print paper-comparable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    name: str                 # e.g. "figure6"
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)
    #: structured per-run failure records (``RunFailure`` or compatible)
    #: survived while producing the rows — degraded runs, retries,
    #: skipped workloads.  Empty for a fully clean experiment.
    failures: list[Any] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def row_for(self, key: str) -> tuple:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row {key!r} in {self.name}")

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return {
            row[0]: dict(zip(self.columns[1:], row[1:])) for row in self.rows
        }

    def format_table(self) -> str:
        widths = [
            max(len(str(col)), *(len(_fmt(row[i])) for row in self.rows))
            if self.rows
            else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title, ""]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"{key}: {_fmt(value)}")
        if self.failures:
            lines.append("")
            lines.append(f"failures ({len(self.failures)}):")
            lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
