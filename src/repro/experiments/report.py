"""Experiment result containers and table rendering.

Every figure harness returns an :class:`ExperimentResult`; its
``format_table`` renders the same rows/series the paper reports, so the
benchmark harness can print paper-comparable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    name: str                 # e.g. "figure6"
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)
    #: structured per-run failure records (``RunFailure`` or compatible)
    #: survived while producing the rows — degraded runs, retries,
    #: skipped workloads.  Empty for a fully clean experiment.
    failures: list[Any] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def row_for(self, key: str) -> tuple:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row {key!r} in {self.name}")

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return {
            row[0]: dict(zip(self.columns[1:], row[1:])) for row in self.rows
        }

    def format_table(self) -> str:
        widths = [
            max(len(str(col)), *(len(_fmt(row[i])) for row in self.rows))
            if self.rows
            else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title, ""]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"{key}: {_fmt(value)}")
        if self.failures:
            lines.append("")
            lines.append(f"failures ({len(self.failures)}):")
            lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# parallel-sweep reporting
# ---------------------------------------------------------------------------


@dataclass
class ShardReport:
    """Progress/timing record of one shard of a parallel sweep."""

    index: int
    cells: int                 # cells assigned to this shard
    executed: int = 0          # computed fresh in the worker
    cached: int = 0            # already present in a cache layer
    resumed: int = 0           # replayed from a crash-safe journal
    elapsed_s: float = 0.0
    pid: int = 0
    #: structured ``RunFailure``-compatible records for cells that failed
    #: (including a crashed worker, where every cell is recorded)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class SweepReport:
    """Aggregate accounting for one parallel sweep invocation."""

    jobs: int
    planned_cells: int = 0
    skipped_checkpoint: int = 0    # honoured from a prior (sequential) run
    skipped_cache: int = 0         # already in the content-addressed cache
    shards: list = field(default_factory=list)
    warm_elapsed_s: float = 0.0
    replay_elapsed_s: float = 0.0
    #: (experiment name, wall seconds) pairs from the replay phase
    experiment_timings: list = field(default_factory=list)

    @property
    def executed(self) -> int:
        return sum(shard.executed for shard in self.shards)

    @property
    def failures(self) -> list:
        return [f for shard in self.shards for f in shard.failures]

    def format_table(self) -> str:
        lines = [
            f"Sweep: {self.planned_cells} cells, {self.jobs} worker(s); "
            f"{self.skipped_checkpoint} from checkpoint, "
            f"{self.skipped_cache} from cache, {self.executed} executed",
            "",
            "shard  cells  executed  cached  resumed  failed  elapsed_s  pid",
            "-" * 67,
        ]
        for shard in self.shards:
            lines.append(
                f"{shard.index:5d}  {shard.cells:5d}  {shard.executed:8d}  "
                f"{shard.cached:6d}  {shard.resumed:7d}  "
                f"{len(shard.failures):6d}  "
                f"{shard.elapsed_s:9.2f}  {shard.pid}"
            )
        lines.append(
            f"\nwarm phase: {self.warm_elapsed_s:.2f}s   "
            f"replay phase: {self.replay_elapsed_s:.2f}s"
        )
        if self.experiment_timings:
            timing = "  ".join(
                f"{name}={seconds:.1f}s" for name, seconds in self.experiment_timings
            )
            lines.append(f"experiments: {timing}")
        if self.failures:
            lines.append(f"\nfailures ({len(self.failures)}):")
            lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)
