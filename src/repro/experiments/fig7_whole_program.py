"""Figure 7 — whole-program speedup over SVE vectorisation.

"Calculated based on the dynamic instruction count of the SRV-vectorisable
loops and their coverage": an Amdahl combination of each benchmark's loop
speedup (figure 6) with its coverage.

Paper values: up to 1.09x for SPEC and 1.19x for other applications
(geometric means 1.04x and 1.10x); is reaches 1.26x; overall geometric
mean 1.05x.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.common.rng import geometric_mean
from repro.experiments.fig6_loop_speedup import run as run_fig6
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import whole_program_speedup


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    fig6 = run_fig6(seed=seed, config=config, n_override=n_override)
    result = ExperimentResult(
        name="figure7",
        title="Figure 7: whole-program speedup over SVE",
        columns=("benchmark", "suite", "whole_program_speedup"),
    )
    for name, suite, loop_speedup, coverage in fig6.rows:
        result.rows.append(
            (name, suite, whole_program_speedup(loop_speedup, coverage))
        )
    spec = [r[2] for r in result.rows if r[1] == "spec"]
    hpc = [r[2] for r in result.rows if r[1] == "hpc"]
    result.summary["geomean_spec"] = geometric_mean(spec)
    result.summary["geomean_hpc"] = geometric_mean(hpc)
    result.summary["geomean_all"] = geometric_mean(spec + hpc)
    result.summary["max_spec"] = max(spec)
    result.summary["max_hpc"] = max(hpc)
    result.summary["paper_geomean_spec"] = 1.04
    result.summary["paper_geomean_hpc"] = 1.10
    result.summary["paper_geomean_all"] = 1.05
    return result
