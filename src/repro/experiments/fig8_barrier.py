"""Figure 8 — fraction of execution barrier cycles in SRV-vectorised loops.

"The number of cycles each SRV-end instruction stalls the issue of later
instructions until it has executed due to serialisation" (section III-D1),
as a fraction of the total cycles of the SRV-vectorisable loops.

Paper values: mostly below 4%; negligible for bzip2 (0.9%), omnetpp
(0.03%), astar (0.12%) and milc (0.05%); more significant for perlbench,
hmmer, h264ref and xalancbmk whose loops are small with short trip counts.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="figure8",
        title="Figure 8: srv_end barrier cycles / total SRV-loop cycles",
        columns=("benchmark", "barrier_fraction", "barrier_cycles", "loop_cycles"),
    )
    for workload in ALL_WORKLOADS:
        barrier = 0
        total = 0
        for spec, weight in zip(workload.loops, workload.normalised_weights()):
            run_ = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override,
            )
            barrier += weight * run_.pipe.barrier_cycles
            total += weight * run_.pipe.cycles
        result.rows.append(
            (workload.name, barrier / total if total else 0.0, barrier, total)
        )
    fractions = result.column("barrier_fraction")
    result.summary["benchmarks_below_4pct"] = sum(1 for f in fractions if f < 0.04)
    result.summary["total_benchmarks"] = len(fractions)
    return result
