"""Ablation — SRV on an in-order core (paper section III-D6).

The paper argues that applying SRV to an in-order processor is
straightforward ("we simply add an LSU to a standard in-order processor
pipeline, with the SRV extensions of section III-B") and effectively adds
a limited form of out-of-order execution.  This ablation quantifies the
claim: the in-order scalar baseline cannot hide latency by reordering, so
SRV's relative loop speedup is *larger* on the in-order machine than on
the Table I out-of-order core.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation_inorder",
        title="Ablation: SRV loop speedup, out-of-order vs in-order core",
        columns=("benchmark", "ooo_speedup", "inorder_speedup", "ratio"),
    )
    for workload in ALL_WORKLOADS:
        ooo = inorder = 0.0
        for spec, weight in zip(workload.loops, workload.normalised_weights()):
            runs = {
                core: {
                    strat: run_loop(
                        spec, strat, seed=seed, config=config,
                        n_override=n_override, core=core,
                    )
                    for strat in (Strategy.SVE, Strategy.SRV)
                }
                for core in ("ooo", "inorder")
            }
            ooo += weight * (
                runs["ooo"][Strategy.SVE].cycles
                / runs["ooo"][Strategy.SRV].cycles
            )
            inorder += weight * (
                runs["inorder"][Strategy.SVE].cycles
                / runs["inorder"][Strategy.SRV].cycles
            )
        result.rows.append((workload.name, ooo, inorder, inorder / ooo))
    ratios = result.column("ratio")
    result.summary["mean_inorder_advantage"] = sum(ratios) / len(ratios)
    result.summary["paper_claim"] = (
        "SRV is akin to adding limited OoO execution to an in-order CPU"
    )
    return result
