"""Ablation — removing the srv_end serialisation barrier (section VIII).

The paper's future work: "develop optimisations, such as removing the
serialisation barrier in SRV-end, to improve performance and power
efficiency."  This ablation models the upside: with
``MachineConfig.srv_relax_barrier``, srv_end waits only for the region's
memory operations (so replay decisions remain sound) and no longer stalls
younger instructions' issue, letting consecutive regions overlap.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    relaxed_config = config.with_overrides(srv_relax_barrier=True)
    result = ExperimentResult(
        name="ablation_barrier",
        title="Ablation: srv_end serialisation barrier removal (future work)",
        columns=("benchmark", "baseline_cycles", "relaxed_cycles", "gain"),
    )
    for workload in ALL_WORKLOADS:
        base_cycles = relaxed_cycles = 0.0
        for spec, weight in zip(workload.loops, workload.normalised_weights()):
            base = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override,
            )
            relaxed = run_loop(
                spec, Strategy.SRV, seed=seed, config=relaxed_config,
                n_override=n_override,
            )
            assert base.correct and relaxed.correct
            base_cycles += weight * base.cycles
            relaxed_cycles += weight * relaxed.cycles
        result.rows.append(
            (
                workload.name,
                base_cycles,
                relaxed_cycles,
                base_cycles / relaxed_cycles,
            )
        )
    gains = result.column("gain")
    result.summary["mean_gain"] = sum(gains) / len(gains)
    result.summary["max_gain"] = max(gains)
    return result
