"""Analysis-guided SRV — static verdicts vs dynamic behaviour.

Two questions over the full 28-loop suite:

* **Does the analysis pay?**  Baseline SRV vs analysis-guided SRV
  (``Strategy.SRV_GUIDED``) cycles per loop.  Guided code must be
  result-identical and never slower; loops with at least one proven-safe
  region should be strictly faster.
* **Is it honest?**  The per-loop confusion matrix of static verdict
  (worst over the guided plan's speculative regions) against observed
  replay events from the instrumented baseline-SRV run.  The
  ``false_safe`` cell — a proven-safe region that replayed — must be
  empty; ``repro fuzz --analyze-diff`` hunts the same cell over
  generated kernels.
"""

from __future__ import annotations

from repro.analyze import analyse_spec
from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.observe.harness import observe_loop
from repro.observe.replay_truth import confusion_cell, replay_truth
from repro.workloads import ALL_WORKLOADS

CONFUSION_CELLS = (
    "proven_safe_clean",
    "false_safe",
    "predicted_replay_hit",
    "predicted_replay_miss",
    "unknown_clean",
    "unknown_replayed",
    "fallback",
)


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="analyze_guided",
        title=("Analysis-guided SRV: cycles vs baseline and "
               "static-verdict/observed-replay confusion"),
        columns=(
            "loop",
            "workload",
            "verdict",
            "safe_regions",
            "srv_cycles",
            "guided_cycles",
            "cycle_delta",
            "observed_replays",
            "confusion",
        ),
    )
    confusion = {cell: 0 for cell in CONFUSION_CELLS}
    mismatched: list[str] = []
    regressed: list[str] = []
    for workload in ALL_WORKLOADS:
        for spec in workload.loops:
            analysis = analyse_spec(
                spec, workload.name, seed=seed, n_override=n_override,
                lsu_entries=config.lsu_entries,
            )
            base = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override,
            )
            guided = run_loop(
                spec, Strategy.SRV_GUIDED, seed=seed, config=config,
                n_override=n_override,
            )
            if not (base.correct and guided.correct):
                mismatched.append(spec.name)
            delta = base.cycles - guided.cycles
            if delta < 0:
                regressed.append(spec.name)

            verdict = analysis.loop_verdict
            if verdict is not None:
                observed = observe_loop(
                    spec, Strategy.SRV, seed=seed, config=config,
                    n_override=n_override,
                )
                # baseline SRV brackets the whole body in one region
                truth = replay_truth(
                    observed.events, 1, degraded=observed.degraded
                )
                cell = confusion_cell(verdict.value, truth)
                confusion[cell] += 1
                verdict_name = verdict.value
                replays = truth.replayed_lanes
            else:
                # reduction loops execute without regions: nothing for
                # the verdict lattice or the replay truth to say
                cell = "-"
                verdict_name = "-"
                replays = 0
            result.rows.append(
                (
                    spec.name,
                    workload.name,
                    verdict_name,
                    analysis.proven_safe_regions,
                    base.cycles,
                    guided.cycles,
                    delta,
                    replays,
                    cell,
                )
            )
    result.summary["confusion_matrix"] = confusion
    result.summary["false_safe"] = confusion["false_safe"]
    result.summary["result_mismatches"] = mismatched
    result.summary["guided_regressions"] = regressed
    result.summary["loops_with_safe_regions"] = sum(
        1 for row in result.rows if row[3] > 0
    )
    result.summary["total_cycles_saved"] = sum(row[6] for row in result.rows)
    if mismatched:
        result.failures.append(
            {"kind": "result_mismatch", "loops": mismatched}
        )
    if regressed:
        result.failures.append(
            {"kind": "guided_regression", "loops": regressed}
        )
    if confusion["false_safe"]:
        result.failures.append(
            {"kind": "false_safe", "count": confusion["false_safe"]}
        )
    return result
