"""Figure 13 — dynamic instruction count: SRV vs FlexVec.

The paper's closest-competitor comparison (section VI-D): both techniques
vectorise the same loops; FlexVec pays compiler-generated run-time checks
(the cracked VPCONFLICTM) and partial vectorisation, SRV uses implicit
hardware disambiguation.  Both are executed on the functional emulator,
exactly as the paper did ("we model FlexVec and SRV in an emulator that
was validated against our gem5 implementation of SRV").

Paper values: "SRV requires fewer than 60% dynamic instructions to
vectorise loops, compared with FlexVec, for most benchmarks."
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="figure13",
        title="Figure 13: dynamic instructions, SRV relative to FlexVec",
        columns=("benchmark", "srv_instructions", "flexvec_instructions", "ratio"),
    )
    for workload in ALL_WORKLOADS:
        srv_instr = flex_instr = 0
        for spec in workload.loops:
            srv = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override, timing=False,
            )
            flex = run_loop(
                spec, Strategy.FLEXVEC, seed=seed, config=config,
                n_override=n_override, timing=False,
            )
            if not (srv.correct and flex.correct):
                raise AssertionError(f"incorrect results in {spec.name}")
            srv_instr += srv.emu.dynamic_instructions
            flex_instr += flex.emu.dynamic_instructions
        result.rows.append(
            (workload.name, srv_instr, flex_instr, srv_instr / flex_instr)
        )
    ratios = result.column("ratio")
    below_60 = sum(1 for r in ratios if r < 0.60)
    result.summary["benchmarks_below_60pct"] = below_60
    result.summary["total_benchmarks"] = len(ratios)
    result.summary["paper_claim"] = "SRV < 60% of FlexVec for most benchmarks"
    return result
