"""Figure 9 — memory-dependence violations and replay overhead.

"Percentage of different violations and re-execution in SRV-vectorised
loops": for the four benchmarks that actually incur run-time violations
(bzip2, hmmer, is, randacc), three bars give RAW / WAR / WAW violation
events normalised by the loops' static instruction counts, and a fourth
gives the replay overhead as a fraction of vector iterations.

Paper values: RAW dominates; bzip2 14% and is 29% per static instruction;
replay overhead at most 0.07% extra iterations (is: 0.001%).
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy, compile_loop
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.memory import MemoryImage
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="figure9",
        title="Figure 9: violation mix and replay overhead (violating benchmarks)",
        columns=(
            "benchmark",
            "raw_per_static_instr",
            "war_per_static_instr",
            "waw_per_static_instr",
            "extra_iteration_fraction",
        ),
    )
    for workload in ALL_WORKLOADS:
        raw = war = waw = 0
        passes = regions = 0
        static_instructions = 0
        for spec in workload.loops:
            run_ = run_loop(
                spec, Strategy.SRV, seed=seed, config=config,
                n_override=n_override, timing=False,
            )
            srv = run_.emu.srv
            raw += srv.raw_violations
            war += srv.war_events
            waw += srv.waw_events
            passes += srv.region_passes
            regions += srv.regions_entered
            mem = MemoryImage()
            arrays = spec.arrays(seed)
            for name, init in arrays.items():
                mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
            program = compile_loop(
                spec.loop, mem, spec.n, Strategy.SRV, params=spec.params
            )
            static_instructions += len(program)
        if raw + war + waw == 0:
            continue  # the paper only shows benchmarks with violations
        extra = (passes - regions) / regions if regions else 0.0
        result.rows.append(
            (
                workload.name,
                raw / static_instructions,
                war / static_instructions,
                waw / static_instructions,
                extra,
            )
        )
    result.summary["violating_benchmarks"] = [row[0] for row in result.rows]
    result.summary["paper_violators"] = ["bzip2", "hmmer", "is", "randacc"]
    return result
