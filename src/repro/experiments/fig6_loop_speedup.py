"""Figure 6 — per-loop SRV speedup and dynamic-instruction coverage.

"Per-loop speedup for all SRV-vectorisable loops in each benchmark and
their corresponding coverage in dynamic instructions compared to a
baseline out-of-order microarchitecture."  Speedups are normalised to the
SVE binary, in which these loops execute scalar code (they cannot be
vectorised without SRV).

Paper values to compare against: average 2.9x, up to 5.3x (is); low
outliers omnetpp 1.49x, soplex 1.29x, xalancbmk 1.78x; coverage astar
12.7%, milc 25.7%, xalancbmk 20.8%, is 25.3%, randacc 17.3%, lc 11.4%.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import workload_loop_speedup
from repro.workloads import ALL_WORKLOADS


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="figure6",
        title="Figure 6: per-loop SRV speedup over SVE and coverage",
        columns=("benchmark", "suite", "loop_speedup", "coverage"),
    )
    for workload in ALL_WORKLOADS:
        speedup = workload_loop_speedup(
            workload, seed=seed, config=config, n_override=n_override
        )
        result.rows.append(
            (workload.name, workload.suite, speedup, workload.coverage)
        )
    speedups = result.column("loop_speedup")
    result.summary["average_loop_speedup"] = sum(speedups) / len(speedups)
    result.summary["max_loop_speedup"] = max(speedups)
    result.summary["min_loop_speedup"] = min(speedups)
    result.summary["paper_average"] = 2.9
    result.summary["paper_max"] = 5.3
    return result
