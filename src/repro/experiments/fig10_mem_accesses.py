"""Figure 10 — SRV-vectorised loops by number of memory accesses.

Histogram over the static memory-reference counts of all SRV-vectorisable
loops, plus the gather-fraction statistic and the LSU sizing argument of
section VI-B:

* "The majority of loops (80%) have ten memory accesses or fewer";
* "all loops with ten memory accesses, or fewer, contain a maximum of
  three gather-scatter instructions";
* "only 5.8% of loads are gathers" (dynamic);
* with 16-element vectors and a 64-entry LSU, those loops fit:
  ``16 * 3 + (10 - 3) = 55 <= 64``.
"""

from __future__ import annotations

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_loop
from repro.workloads import all_loops

BUCKETS = ((1, 5), (6, 10), (11, 16), (17, 10_000))


def run(
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="figure10",
        title="Figure 10: SRV-vectorised loops by memory-access count",
        columns=("bucket", "loops", "max_gather_scatter"),
    )
    counts: list[tuple[int, int]] = []
    gather_loads = 0
    total_loads = 0
    for _, spec in all_loops():
        refs = spec.loop.memory_reference_count()
        gs = spec.loop.gather_scatter_count()
        counts.append((refs, gs))
        run_ = run_loop(
            spec, Strategy.SRV, seed=seed, config=config,
            n_override=n_override, timing=False,
        )
        # dynamic gather share of loads ("5.8% of loads are gathers")
        total_loads += run_.emu.load_instructions
        gather_loads += run_.emu.gather_load_instructions

    for lo, hi in BUCKETS:
        in_bucket = [(r, g) for r, g in counts if lo <= r <= hi]
        label = f"{lo}-{hi}" if hi < 10_000 else f">{lo - 1}"
        result.rows.append(
            (
                label,
                len(in_bucket),
                max((g for _, g in in_bucket), default=0),
            )
        )

    ten_or_fewer = [c for c in counts if c[0] <= 10]
    result.summary["share_10_or_fewer"] = len(ten_or_fewer) / len(counts)
    result.summary["max_gs_in_10_or_fewer"] = max(
        (g for _, g in ten_or_fewer), default=0
    )
    result.summary["dynamic_gather_load_share"] = (
        gather_loads / total_loads if total_loads else 0.0
    )
    lanes = config.vector_lanes
    worst_gs = result.summary["max_gs_in_10_or_fewer"]
    result.summary["lsu_demand_10_access_loops"] = lanes * worst_gs + (10 - worst_gs)
    result.summary["lsu_capacity"] = config.lsu_entries
    result.summary["paper_share_10_or_fewer"] = 0.80
    result.summary["paper_demand"] = 55
    return result
