"""Shared experiment driver.

Compiles a workload loop under a strategy, executes it on the functional
emulator (collecting dynamic-instruction and SRV metrics plus a trace),
optionally times it on the cycle-approximate pipeline, and always checks
the architectural result against the pure-Python IR oracle.

Results are memoised per ``(loop, strategy, seed, config)`` because the
figure harnesses share runs (e.g. the scalar baseline feeds figures 6, 7,
11 and 12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import TABLE_I, MachineConfig
from repro.compiler import Strategy, compile_loop, scalar_reference
from repro.emu import EmuMetrics, run_program
from repro.memory import MemoryImage
from repro.pipeline import PipelineStats, Tracer, simulate
from repro.workloads.base import LoopSpec


@dataclass
class LoopRun:
    spec: LoopSpec
    strategy: Strategy
    emu: EmuMetrics
    pipe: PipelineStats | None
    correct: bool

    @property
    def cycles(self) -> int:
        if self.pipe is None:
            raise ValueError("run was executed without timing")
        return self.pipe.cycles


_CACHE: dict[tuple, LoopRun] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_loop(
    spec: LoopSpec,
    strategy: Strategy,
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    timing: bool = True,
    validate_lsu: bool = True,
    check_oracle: bool = True,
    n_override: int | None = None,
    core: str = "ooo",
) -> LoopRun:
    """Compile, execute, time and verify one loop under one strategy.

    ``core`` selects the timing model: ``"ooo"`` (Table I out-of-order)
    or ``"inorder"`` (the section III-D6 dual-issue in-order variant).
    """
    if core not in ("ooo", "inorder"):
        raise ValueError(f"unknown core model {core!r}")
    n = spec.n if n_override is None else min(n_override, spec.n)
    key = (spec.loop.name, strategy, seed, id(config), timing, n, core)
    if key in _CACHE:
        return _CACHE[key]

    arrays = spec.arrays(seed)
    mem = MemoryImage()
    for name, init in arrays.items():
        mem.alloc(name, len(init), spec.loop.arrays[name], init=init)
    program = compile_loop(spec.loop, mem, n, strategy, params=spec.params)

    tracer = Tracer() if timing else None
    emu_metrics, _ = run_program(program, mem, config=config, tracer=tracer)

    correct = True
    if check_oracle:
        reference = scalar_reference(spec.loop, arrays, n, params=spec.params)
        for name in arrays:
            got = mem.load_array(mem.allocation(name))
            if got != reference[name]:
                correct = False
                break

    pipe: PipelineStats | None = None
    if timing:
        if core == "inorder":
            from repro.pipeline.inorder import simulate_in_order

            pipe = simulate_in_order(tracer.ops, config=config, warm=True)
        else:
            pipe = simulate(
                tracer.ops, config=config, validate_lsu=validate_lsu, warm=True
            )

    run = LoopRun(spec, strategy, emu_metrics, pipe, correct)
    _CACHE[key] = run
    return run


def loop_speedup(
    spec: LoopSpec,
    seed: int = 0,
    config: MachineConfig = TABLE_I,
    baseline: Strategy = Strategy.SVE,
    n_override: int | None = None,
) -> float:
    """Cycle speedup of SRV over the baseline strategy for one loop.

    The paper normalises SRV-vectorisable loop performance to the SVE
    binary, in which these loops run scalar (figure 6).
    """
    base = run_loop(spec, baseline, seed, config, n_override=n_override)
    srv = run_loop(spec, Strategy.SRV, seed, config, n_override=n_override)
    if not (base.correct and srv.correct):
        raise AssertionError(f"loop {spec.name} produced incorrect results")
    return base.cycles / srv.cycles


def workload_loop_speedup(
    workload, seed: int = 0, config: MachineConfig = TABLE_I,
    n_override: int | None = None,
) -> float:
    """Weight-averaged SRV loop speedup for a workload (figure 6 bars)."""
    weights = workload.normalised_weights()
    total = 0.0
    for spec, weight in zip(workload.loops, weights):
        total += weight * loop_speedup(spec, seed, config, n_override=n_override)
    return total


def whole_program_speedup(loop_speedup_value: float, coverage: float) -> float:
    """Amdahl combination used for figure 7.

    The paper computes whole-program speedup "based on the dynamic
    instruction count of the SRV-vectorisable loops and their coverage".
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError(f"coverage must be within [0, 1], got {coverage}")
    if loop_speedup_value <= 0:
        raise ValueError("loop speedup must be positive")
    return 1.0 / (1.0 - coverage + coverage / loop_speedup_value)
